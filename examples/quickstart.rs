//! Quickstart: allocate congestion-free bandwidth on a WAN and compare
//! FFC against PCF's schemes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pcf_core::{
    optimal_demand_scale, pcf_cls_pipeline, pcf_ls_instance, scale_to_mlu, solve_ffc, solve_pcf_ls,
    solve_pcf_tf, tunnel_instance, FailureModel, RobustOptions, ScenarioCoverage,
};
use pcf_topology::zoo;
use pcf_traffic::gravity;

fn main() {
    // 1. A topology: one of the paper's 21 evaluation networks (synthetic
    //    stand-in; drop in a real Topology Zoo GML via pcf_topology::gml).
    let topo = zoo::build("Sprint");
    println!(
        "topology: {} ({} nodes, {} links)",
        topo.name(),
        topo.node_count(),
        topo.link_count()
    );

    // 2. Gravity-model traffic, normalised so the optimal-routing MLU is
    //    0.6, as in the paper's setup (§5).
    let tm = gravity(&topo, 42);
    let (tm, _) = scale_to_mlu(&topo, &tm, 0.6);
    println!(
        "traffic: {} node pairs, total demand {:.2}",
        tm.positive_pairs().len(),
        tm.total()
    );

    // 3. Design against any single link failure.
    let fm = FailureModel::links(1);
    let opts = RobustOptions::default();

    // FFC (the baseline) uses 2 tunnels — its best setting; PCF schemes use
    // 3 (more tunnels only help PCF, Proposition 2).
    let ffc = solve_ffc(&tunnel_instance(&topo, &tm, 2), &fm, &opts);
    let tf = solve_pcf_tf(&tunnel_instance(&topo, &tm, 3), &fm, &opts);
    let ls = solve_pcf_ls(&pcf_ls_instance(&topo, &tm, 3), &fm, &opts);
    let cls = pcf_cls_pipeline(&topo, &tm, 3, &fm, &opts);
    let (opt, scenarios, _) = optimal_demand_scale(&topo, &tm, &fm, ScenarioCoverage::Exhaustive);

    println!("\nguaranteed demand scale under any single link failure:");
    println!("  {:<22} {:>8}  {:>9}", "scheme", "scale", "vs FFC");
    for (name, v) in [
        ("FFC (2 tunnels)", ffc.objective),
        ("PCF-TF (3 tunnels)", tf.objective),
        ("PCF-LS", ls.objective),
        ("PCF-CLS", cls.solution.objective),
        ("optimal response", opt),
    ] {
        println!("  {:<22} {:>8.4}  {:>8.2}x", name, v, v / ffc.objective);
    }
    println!("\n(optimal = per-scenario multi-commodity flow over {scenarios} scenarios)");
}
