//! The 21 evaluation topologies (paper §5, Table 3).
//!
//! The paper evaluates on topologies from the Internet Topology Zoo \[22\] and
//! from \[23\]. The original GML files are not redistributable here, so this
//! module generates *synthetic stand-ins* that match Table 3 exactly in node
//! and link counts, are 2-edge-connected (the property the paper enforces by
//! recursively pruning degree-one nodes), and have heterogeneous capacities.
//! Real GML files can be loaded through [`crate::gml`] instead and dropped
//! into any experiment.
//!
//! The generator is deterministic: a ring backbone (which guarantees
//! 2-edge-connectivity) plus locality-biased chords drawn from an RNG seeded
//! by the topology name, mimicking the ring-and-chord structure of real ISP
//! backbones.

use crate::graph::Topology;
use pcf_rng::Pcg32;

/// Name, node count, and link count of each evaluation topology (Table 3).
pub const TABLE3: &[(&str, usize, usize)] = &[
    ("B4", 12, 19),
    ("IBM", 17, 23),
    ("ATT", 25, 56),
    ("Quest", 19, 30),
    ("Tinet", 48, 84),
    ("Sprint", 10, 17),
    ("GEANT", 32, 50),
    ("Xeex", 22, 32),
    ("CWIX", 21, 26),
    ("Digex", 31, 35),
    ("IIJ", 27, 55),
    ("JanetBackbone", 29, 45),
    ("Highwinds", 16, 29),
    ("BTNorthAmerica", 36, 76),
    ("CRLNetwork", 32, 37),
    ("Darkstrand", 28, 31),
    ("Integra", 23, 32),
    ("Xspedius", 33, 47),
    ("InternetMCI", 18, 32),
    ("Deltacom", 103, 151),
    ("ION", 114, 135),
];

/// Extra buildable topologies outside the paper's Table 3 — small
/// well-known networks used by the chaos/fault-injection harness, where a
/// quick solve matters more than matching the paper's evaluation set.
pub const EXTRAS: &[(&str, usize, usize)] = &[
    // The Internet2/Abilene backbone: 11 PoPs, 14 links.
    ("Abilene", 11, 14),
];

/// Capacity tiers in abstract units, loosely mirroring 1/2.5/5/10 Gbps WAN
/// link classes.
const CAPACITY_TIERS: &[f64] = &[1.0, 2.5, 5.0, 10.0];

/// Names of every buildable topology: the 21 evaluation topologies
/// followed by [`EXTRAS`].
pub fn names() -> Vec<&'static str> {
    TABLE3
        .iter()
        .chain(EXTRAS.iter())
        .map(|&(n, _, _)| n)
        .collect()
}

/// FNV-1a hash of the topology name, used as the deterministic RNG seed.
fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Builds the named topology ([`TABLE3`] or [`EXTRAS`]), or `None` for an
/// unknown name. Use this from request-handling code where the name comes
/// from outside.
pub fn try_build(name: &str) -> Option<Topology> {
    let &(_, n, m) = TABLE3
        .iter()
        .chain(EXTRAS.iter())
        .find(|&&(t, _, _)| t == name)?;
    Some(synthetic(name, n, m))
}

/// Builds the named topology ([`TABLE3`] or [`EXTRAS`]).
///
/// # Panics
/// Panics if `name` is not one of [`TABLE3`] or [`EXTRAS`]; use
/// [`try_build`] when the name is untrusted.
pub fn build(name: &str) -> Topology {
    // audit:allow(no-panic-paths, documented contract; fallible path is try_build, and every in-tree caller passes a literal table name)
    try_build(name).unwrap_or_else(|| panic!("unknown zoo topology {name:?}"))
}

/// Builds all 21 evaluation topologies, smallest link count first.
pub fn build_all() -> Vec<Topology> {
    let mut specs: Vec<_> = TABLE3.to_vec();
    specs.sort_by_key(|&(_, _, m)| m);
    specs
        .iter()
        .map(|&(name, n, m)| synthetic(name, n, m))
        .collect()
}

/// Deterministically generates a simple 2-edge-connected topology with
/// exactly `n` nodes and `m` links.
///
/// # Panics
/// Panics unless `3 <= n <= m <= n*(n-1)/2`.
pub fn synthetic(name: &str, n: usize, m: usize) -> Topology {
    assert!(n >= 3, "need at least 3 nodes, got {n}");
    assert!(
        m >= n,
        "a 2-edge-connected simple graph needs m >= n ({m} < {n})"
    );
    assert!(m <= n * (n - 1) / 2, "too many links for a simple graph");
    let mut rng = Pcg32::seed_from_u64(seed_for(name));
    let mut topo = Topology::new(name.to_string());
    let nodes: Vec<_> = (0..n)
        .map(|i| topo.add_node(format!("{name}-{i}")))
        .collect();
    let mut have = std::collections::HashSet::new();
    let cap = |rng: &mut Pcg32| {
        // Mild preference for thin links, as in real WAN inventories.
        let r: f64 = rng.f64();
        let idx = if r < 0.35 {
            0
        } else if r < 0.65 {
            1
        } else if r < 0.85 {
            2
        } else {
            3
        };
        CAPACITY_TIERS[idx]
    };
    // Ring backbone: guarantees 2-edge-connectivity.
    for i in 0..n {
        let j = (i + 1) % n;
        have.insert((i.min(j), i.max(j)));
        let c = cap(&mut rng);
        topo.add_link(nodes[i], nodes[j], c);
    }
    // Locality-biased chords: short skips are more likely than long hauls,
    // mimicking regional shortcut links in ISP backbones.
    let mut remaining = m - n;
    let mut attempts = 0usize;
    while remaining > 0 {
        attempts += 1;
        assert!(attempts < 100_000, "chord sampling failed to converge");
        let i = rng.range_usize(0, n);
        // Skip distance: 2..n/2, geometric-ish bias toward short skips.
        let max_skip = (n / 2).max(2);
        let skip = if rng.f64() < 0.7 {
            rng.range_usize_inclusive(2, max_skip.min(4))
        } else {
            rng.range_usize_inclusive(2, max_skip)
        };
        let j = (i + skip) % n;
        if i == j {
            continue;
        }
        let key = (i.min(j), i.max(j));
        if have.contains(&key) {
            continue;
        }
        have.insert(key);
        let c = cap(&mut rng);
        topo.add_link(nodes[i], nodes[j], c);
        remaining -= 1;
    }
    topo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::prune_degree_one;

    #[test]
    fn table3_matches_paper_totals() {
        assert_eq!(TABLE3.len(), 21);
        let deltacom = TABLE3.iter().find(|t| t.0 == "Deltacom").unwrap();
        assert_eq!((deltacom.1, deltacom.2), (103, 151));
        let ion = TABLE3.iter().find(|t| t.0 == "ION").unwrap();
        assert_eq!((ion.1, ion.2), (114, 135));
    }

    #[test]
    fn every_topology_matches_counts_and_is_two_edge_connected() {
        for &(name, n, m) in TABLE3 {
            let t = build(name);
            assert_eq!(t.node_count(), n, "{name} node count");
            assert_eq!(t.link_count(), m, "{name} link count");
            assert!(
                t.is_two_edge_connected(),
                "{name} must survive any single link failure"
            );
        }
    }

    #[test]
    fn extras_build_by_name_without_joining_table3() {
        assert_eq!(TABLE3.len(), 21);
        let t = build("Abilene");
        assert_eq!(t.node_count(), 11);
        assert_eq!(t.link_count(), 14);
        assert!(t.is_two_edge_connected());
        assert!(names().contains(&"Abilene"));
        assert!(!TABLE3.iter().any(|&(n, _, _)| n == "Abilene"));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = build("GEANT");
        let b = build("GEANT");
        assert_eq!(a.link_count(), b.link_count());
        for l in a.links() {
            assert_eq!(a.link(l).u, b.link(l).u);
            assert_eq!(a.link(l).v, b.link(l).v);
            assert_eq!(a.capacity(l), b.capacity(l));
        }
    }

    #[test]
    fn pruning_is_a_no_op_on_generated_topologies() {
        // Already 2-edge-connected, so the paper's degree-one pruning keeps
        // every node.
        let t = build("Sprint");
        let (p, _) = prune_degree_one(&t);
        assert_eq!(p.node_count(), t.node_count());
        assert_eq!(p.link_count(), t.link_count());
    }

    #[test]
    fn capacities_are_heterogeneous_tiers() {
        let t = build("Deltacom");
        let mut tiers: Vec<f64> = t.links().map(|l| t.capacity(l)).collect();
        tiers.sort_by(|a, b| a.total_cmp(b));
        tiers.dedup();
        assert!(
            tiers.len() >= 3,
            "expected several capacity tiers, got {tiers:?}"
        );
        assert!(tiers.iter().all(|c| CAPACITY_TIERS.contains(c)));
    }

    #[test]
    #[should_panic(expected = "unknown zoo topology")]
    fn unknown_name_panics() {
        build("NotANetwork");
    }

    #[test]
    fn build_all_is_sorted_by_size() {
        let all = build_all();
        assert_eq!(all.len(), 21);
        let sizes: Vec<_> = all.iter().map(|t| t.link_count()).collect();
        let mut sorted = sizes.clone();
        sorted.sort();
        assert_eq!(sizes, sorted);
    }
}
