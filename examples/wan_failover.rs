//! WAN failover walkthrough: solve PCF-LS offline, then watch the *online*
//! response — the light-weight rescaling/linear-system step the paper's §4
//! describes — as links die, and audit congestion-freedom across every
//! targeted scenario.
//!
//! ```text
//! cargo run --release --example wan_failover
//! ```

use pcf_core::realize::{proportional_routing, realize_routing, topological_order, FailureState};
use pcf_core::validate::validate_all;
use pcf_core::{pcf_ls_instance, scale_to_mlu, solve_pcf_ls, FailureModel, RobustOptions};
use pcf_topology::{zoo, LinkId};
use pcf_traffic::gravity;

fn main() {
    let topo = zoo::build("B4");
    let (tm, _) = scale_to_mlu(&topo, &gravity(&topo, 7), 0.6);
    let fm = FailureModel::links(1);

    // Offline: compute reservations (runs every few minutes in practice).
    let inst = pcf_ls_instance(&topo, &tm, 3);
    let sol = solve_pcf_ls(&inst, &fm, &RobustOptions::default());
    println!(
        "offline plan: demand scale {:.4} ({} tunnels, {} logical sequences, {} cutting-plane rounds)",
        sol.objective,
        inst.num_tunnels(),
        inst.num_lss(),
        sol.rounds
    );
    assert!(
        topological_order(&inst, &sol.b).is_some(),
        "shortest-path LSs are topologically sorted -> local proportional routing applies"
    );

    let served: Vec<f64> = inst
        .pair_ids()
        .map(|p| sol.z[p.0] * inst.demand(p))
        .collect();

    // Online: no failure.
    let no_fail = vec![false; topo.link_count()];
    let state = FailureState::new(&inst, &no_fail).expect("mask matches topology");
    let routing = realize_routing(&inst, &state, &sol.a, &sol.b, &served, 1e-6).unwrap();
    println!(
        "\nno failure:  max link utilization {:.3}",
        routing.max_utilization(&inst)
    );

    // Online: fail each of the three highest-capacity links in turn.
    let mut links: Vec<LinkId> = topo.links().collect();
    links.sort_by(|&a, &b| topo.capacity(b).partial_cmp(&topo.capacity(a)).unwrap());
    for &l in links.iter().take(3) {
        let mut dead = vec![false; topo.link_count()];
        dead[l.index()] = true;
        let state = FailureState::new(&inst, &dead).expect("mask matches topology");
        // The centralized realization (one linear system, Prop. 6)...
        let lin = realize_routing(&inst, &state, &sol.a, &sol.b, &served, 1e-6).unwrap();
        // ...and the fully distributed proportional rescaling (Prop. 7).
        let prop = proportional_routing(&inst, &state, &sol.a, &sol.b, &served, 1e-6).unwrap();
        let delta: f64 = lin
            .u
            .iter()
            .zip(&prop.u)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        println!(
            "fail {} (cap {:>4.1}): max utilization {:.3}, live tunnels {}, |linear - proportional| = {:.2e}",
            l,
            topo.capacity(l),
            lin.max_utilization(&inst),
            state.tunnel_alive.iter().filter(|&&x| x).count(),
            delta
        );
    }

    // Audit: every targeted scenario.
    let report = validate_all(&inst, &fm, &sol.a, &sol.b, &served, 1e-6);
    println!(
        "\naudit over all {} single-failure scenarios: {} (max utilization {:.3})",
        report.scenarios,
        if report.congestion_free() {
            "CONGESTION-FREE"
        } else {
            "VIOLATIONS FOUND"
        },
        report.max_utilization
    );
    assert!(report.congestion_free());
}
