//! The paper's formal results (Propositions 1–7, Corollary 3.1), checked on
//! concrete instances.
//!
//! These are necessarily finite checks of universally quantified claims —
//! each proposition is exercised on the paper's own examples plus zoo
//! topologies with gravity traffic, across several seeds.

use pcf_core::figures::{fig1_instance, fig4_ls_instance, fig4_topology};
use pcf_core::instance::InstanceBuilder;
use pcf_core::realize::{proportional_routing, realize_routing, topological_order, FailureState};
use pcf_core::{
    optimal_demand_scale, pcf_ls_instance, solve_ffc, solve_pcf_ls, solve_pcf_tf, solve_r3,
    tunnel_instance, FailureModel, Objective, RobustOptions, ScenarioCoverage,
};
use pcf_topology::zoo;
use pcf_traffic::gravity;

fn opts() -> RobustOptions {
    RobustOptions::default()
}

/// Proposition 1: PCF-TF performs at least as well as FFC for any metric
/// (same instance, same tunnel set).
#[test]
fn prop1_pcf_tf_dominates_ffc() {
    for (name, seed) in [("Sprint", 1u64), ("B4", 2), ("IBM", 3)] {
        let topo = zoo::build(name);
        let tm = gravity(&topo, seed);
        for k in [2, 3] {
            let inst = tunnel_instance(&topo, &tm, k);
            let fm = FailureModel::links(1);
            let ffc = solve_ffc(&inst, &fm, &opts());
            let tf = solve_pcf_tf(&inst, &fm, &opts());
            assert!(
                tf.objective >= ffc.objective - 1e-6 * (1.0 + ffc.objective),
                "{name} k={k}: PCF-TF {} < FFC {}",
                tf.objective,
                ffc.objective
            );
        }
    }
}

/// Proposition 1 also holds for the throughput metric.
#[test]
fn prop1_holds_for_throughput_metric() {
    let topo = zoo::build("B4");
    let tm = gravity(&topo, 7);
    let inst = tunnel_instance(&topo, &tm, 3);
    let fm = FailureModel::links(1);
    let o = RobustOptions {
        objective: Objective::Throughput,
        ..RobustOptions::default()
    };
    let ffc = solve_ffc(&inst, &fm, &o);
    let tf = solve_pcf_tf(&inst, &fm, &o);
    assert!(tf.objective >= ffc.objective - 1e-6 * (1.0 + ffc.objective));
}

/// Proposition 2: PCF-TF's performance cannot decrease as tunnels are
/// added.
#[test]
fn prop2_pcf_tf_monotone_in_tunnels() {
    let topo = zoo::build("Sprint");
    let tm = gravity(&topo, 4);
    let fm = FailureModel::links(1);
    let mut prev = 0.0f64;
    for k in [2, 3, 4] {
        let inst = tunnel_instance(&topo, &tm, k);
        let sol = solve_pcf_tf(&inst, &fm, &opts());
        assert!(
            sol.objective >= prev - 1e-5 * (1.0 + prev),
            "k={k}: {} < previous {prev}",
            sol.objective
        );
        prev = sol.objective;
    }
}

/// The contrast to Proposition 2: FFC *can* degrade with more tunnels
/// (Fig. 1/Fig. 2: FFC-4 is worse than FFC-3).
#[test]
fn ffc_can_degrade_with_more_tunnels() {
    let fm = FailureModel::links(1);
    let f3 = solve_ffc(&fig1_instance(3), &fm, &opts());
    let f4 = solve_ffc(&fig1_instance(4), &fm, &opts());
    assert!(
        f4.objective < f3.objective - 0.25,
        "FFC-4 {} should be well below FFC-3 {}",
        f4.objective,
        f3.objective
    );
}

/// Proposition 3: the gap between tunnel-based PCF-TF and optimal grows
/// without bound on the Fig. 4 family (here: checked to widen with n).
#[test]
fn prop3_pcf_tf_gap_grows_on_fig4_family() {
    let mut gaps = Vec::new();
    for n in [2usize, 3] {
        let p = n * n;
        let m = 2;
        let (topo, nodes) = fig4_topology(p, n, m);
        // All p * n tunnels.
        let mut b =
            InstanceBuilder::with_demands(&topo, vec![(nodes[0], nodes[m], 1.0)]).no_auto_tunnels();
        for l0 in topo.links().filter(|&l| topo.link(l).touches(nodes[0])) {
            for l1 in topo
                .links()
                .filter(|&l| topo.link(l).touches(nodes[1]) && topo.link(l).touches(nodes[2]))
            {
                b = b.add_tunnel(pcf_paths::Path {
                    nodes: nodes.clone(),
                    links: vec![l0, l1],
                });
            }
        }
        let inst = b.build();
        // Design for n-1 failures.
        let fm_n = FailureModel::links(n - 1);
        let tf = solve_pcf_tf(&inst, &fm_n, &opts());
        let optimal = 1.0 - (n as f64 - 1.0) / p as f64;
        // Paper: PCF-TF <= 1/n; optimal = 1 - (n-1)/p.
        assert!(
            tf.objective <= 1.0 / n as f64 + 1e-5,
            "n={n}: PCF-TF {} above 1/n",
            tf.objective
        );
        gaps.push(optimal - tf.objective);
    }
    assert!(gaps[1] > gaps[0], "gap should widen with n: {gaps:?}");
}

/// Corollary 3.1: with the logical sequence, PCF-LS attains the optimum on
/// Fig. 4 while PCF-TF is stuck at 1/n.
#[test]
fn corollary31_single_ls_recovers_optimum() {
    for (p, n, m) in [(4usize, 2usize, 3usize), (9, 3, 2)] {
        let inst = fig4_ls_instance(p, n, m);
        let fm = FailureModel::links(n - 1);
        let sol = solve_pcf_ls(&inst, &fm, &opts());
        let optimal = 1.0 - (n as f64 - 1.0) / p as f64;
        assert!(
            (sol.objective - optimal).abs() < 1e-5,
            "p={p},n={n},m={m}: LS {} vs optimal {optimal}",
            sol.objective
        );
    }
}

/// Proposition 4 (spirit): the logical-flow-derived PCF-CLS dominates R3 on
/// instances where both are defined.
#[test]
fn prop4_cls_dominates_r3() {
    let topo = zoo::build("Sprint");
    let tm = gravity(&topo, 3);
    let fm = FailureModel::links(1);
    let r3 = solve_r3(&topo, &tm, 1);
    let cls = pcf_core::pcf_cls_pipeline(&topo, &tm, 3, &fm, &opts());
    assert!(
        cls.solution.objective >= r3.objective - 1e-6,
        "CLS {} < R3 {}",
        cls.solution.objective,
        r3.objective
    );
}

/// Propositions 5–6: the reservation matrix is invertible, `U* ∈ [0,1]`,
/// and the realized routing is congestion-free across every targeted
/// scenario.
#[test]
fn prop5_6_realization_is_feasible_everywhere() {
    let topo = zoo::build("B4");
    let tm = gravity(&topo, 11);
    let inst = pcf_ls_instance(&topo, &tm, 3);
    let fm = FailureModel::links(1);
    let sol = solve_pcf_ls(&inst, &fm, &opts());
    assert!(sol.objective > 0.0);
    let served: Vec<f64> = inst
        .pair_ids()
        .map(|p| sol.z[p.0] * inst.demand(p))
        .collect();
    for mask in fm.enumerate_scenarios(inst.topo()) {
        let state = FailureState::new(&inst, &mask).unwrap();
        let routing = realize_routing(&inst, &state, &sol.a, &sol.b, &served, 1e-6)
            .expect("Prop 5/6: the linear system must be solvable with U in [0,1]");
        for u in &routing.u {
            assert!((-1e-9..=1.0 + 1e-9).contains(u));
        }
        assert!(
            routing.max_utilization(&inst) <= 1.0 + 1e-6,
            "congestion under {mask:?}"
        );
    }
}

/// Proposition 7: for topologically sorted LSs, local proportional routing
/// realizes exactly the same split as the linear system.
#[test]
fn prop7_proportional_equals_linear_system() {
    let topo = zoo::build("B4");
    let tm = gravity(&topo, 11);
    let inst = pcf_ls_instance(&topo, &tm, 3);
    let fm = FailureModel::links(1);
    let sol = solve_pcf_ls(&inst, &fm, &opts());
    assert!(
        topological_order(&inst, &sol.b).is_some(),
        "shortest-path LSs must be topologically sorted"
    );
    let served: Vec<f64> = inst
        .pair_ids()
        .map(|p| sol.z[p.0] * inst.demand(p))
        .collect();
    for mask in fm.enumerate_scenarios(inst.topo()).into_iter().step_by(3) {
        let state = FailureState::new(&inst, &mask).unwrap();
        let lin = realize_routing(&inst, &state, &sol.a, &sol.b, &served, 1e-6).unwrap();
        let prop = proportional_routing(&inst, &state, &sol.a, &sol.b, &served, 1e-6).unwrap();
        assert_eq!(lin.pairs, prop.pairs);
        for (i, (ul, up)) in lin.u.iter().zip(&prop.u).enumerate() {
            assert!(
                (ul - up).abs() < 1e-7,
                "pair {:?}: linear {ul} vs proportional {up}",
                lin.pairs[i]
            );
        }
    }
}

/// Sanity anchor for all of the above: no congestion-free scheme can exceed
/// the intrinsic network capability.
#[test]
fn schemes_never_exceed_optimal() {
    let topo = zoo::build("Sprint");
    let tm = gravity(&topo, 5);
    let fm = FailureModel::links(1);
    let (opt, _, exact) = optimal_demand_scale(&topo, &tm, &fm, ScenarioCoverage::Exhaustive);
    assert!(exact);
    let ffc = solve_ffc(&tunnel_instance(&topo, &tm, 2), &fm, &opts());
    let tf = solve_pcf_tf(&tunnel_instance(&topo, &tm, 3), &fm, &opts());
    let ls = solve_pcf_ls(&pcf_ls_instance(&topo, &tm, 3), &fm, &opts());
    for (name, v) in [
        ("FFC", ffc.objective),
        ("PCF-TF", tf.objective),
        ("PCF-LS", ls.objective),
    ] {
        assert!(
            v <= opt + 1e-5 * (1.0 + opt),
            "{name} {v} exceeds optimal {opt}"
        );
    }
}
