//! A minimal in-tree benchmark harness (Criterion-shaped, zero deps).
//!
//! The workspace builds fully offline, so the former Criterion benches now
//! run on this harness. The API mirrors the subset of Criterion the bench
//! files used — [`Harness::bench_function`], [`Harness::benchmark_group`],
//! [`Group::sample_size`], [`Bencher::iter`] — so bench bodies read the
//! same.
//!
//! Behaviour:
//! * under `cargo bench` (cargo passes `--bench`), every benchmark is
//!   calibrated to ~1 ms per sample and timed over `sample_size` samples;
//! * under `cargo test` (no `--bench`, or an explicit `--test`), every
//!   benchmark body runs exactly once as a smoke test;
//! * a summary table goes to stdout; if `PCF_BENCH_JSON` names a path, a
//!   JSON report is written there as well.

use std::time::Instant;

/// One benchmark's timing summary, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Group name, empty for top-level benchmarks.
    pub group: String,
    /// Benchmark name within the group.
    pub name: String,
    /// Samples actually taken (1 in test mode).
    pub samples: usize,
    /// Iterations per sample after calibration.
    pub iters_per_sample: u64,
    pub mean_ns: f64,
    pub median_ns: f64,
    pub min_ns: f64,
    pub max_ns: f64,
}

/// Top-level harness; create with [`Harness::from_args`] in `main`.
pub struct Harness {
    bench_name: String,
    test_mode: bool,
    filter: Option<String>,
    results: Vec<BenchResult>,
    default_sample_size: usize,
}

impl Harness {
    /// Parses the argument conventions cargo uses for `harness = false`
    /// targets: `--bench` means "really benchmark", `--test` (or absence of
    /// `--bench`) means "run each body once". The first free argument, if
    /// any, is a substring filter on `group/name`.
    pub fn from_args(bench_name: &str) -> Harness {
        let mut saw_bench = false;
        let mut saw_test = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => saw_bench = true,
                "--test" => saw_test = true,
                s if s.starts_with("--") => {} // ignore list/format/etc.
                s => filter = Some(s.to_string()),
            }
        }
        Harness {
            bench_name: bench_name.to_string(),
            test_mode: saw_test || !saw_bench,
            filter,
            results: Vec::new(),
            default_sample_size: 20,
        }
    }

    /// Runs a top-level benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let sample_size = self.default_sample_size;
        self.run(String::new(), name.into(), sample_size, f);
        self
    }

    /// Opens a named group whose benchmarks share a sample size.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> Group<'_> {
        Group {
            harness: self,
            name: name.into(),
            sample_size: None,
        }
    }

    fn run(
        &mut self,
        group: String,
        name: String,
        sample_size: usize,
        mut f: impl FnMut(&mut Bencher),
    ) {
        let label = if group.is_empty() {
            name.clone()
        } else {
            format!("{group}/{name}")
        };
        if let Some(filt) = &self.filter {
            if !label.contains(filt.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            test_mode: self.test_mode,
            sample_size,
            result: None,
        };
        f(&mut b);
        let Some((samples, iters, times)) = b.result else {
            return; // body never called iter()
        };
        let mut per_iter: Vec<f64> = times.iter().map(|&ns| ns as f64 / iters as f64).collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let res = BenchResult {
            group,
            name,
            samples,
            iters_per_sample: iters,
            mean_ns: mean,
            median_ns: per_iter[per_iter.len() / 2],
            min_ns: per_iter[0],
            max_ns: per_iter[per_iter.len() - 1],
        };
        if self.test_mode {
            println!("test {label} ... ok (ran once)");
        } else {
            println!(
                "{label}: median {} (mean {}, {} samples x {} iters)",
                fmt_ns(res.median_ns),
                fmt_ns(res.mean_ns),
                res.samples,
                res.iters_per_sample,
            );
        }
        self.results.push(res);
    }

    /// Prints the closing summary and writes the JSON report when
    /// `PCF_BENCH_JSON` is set. Call last in `main`.
    pub fn finish(self) {
        if self.test_mode {
            println!(
                "{}: {} benchmark(s) smoke-tested",
                self.bench_name,
                self.results.len()
            );
        }
        if let Ok(path) = std::env::var("PCF_BENCH_JSON") {
            let json = self.to_json();
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {path}: {e}");
            } else {
                println!("wrote {path}");
            }
        }
    }

    /// The report as a JSON document (hand-rolled; no serializer in-tree).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"bench\": {},\n  \"mode\": \"{}\",\n  \"results\": [\n",
            json_string(&self.bench_name),
            if self.test_mode { "test" } else { "bench" },
        ));
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"group\": {}, \"name\": {}, \"samples\": {}, \
                 \"iters_per_sample\": {}, \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \
                 \"min_ns\": {:.1}, \"max_ns\": {:.1}}}{}\n",
                json_string(&r.group),
                json_string(&r.name),
                r.samples,
                r.iters_per_sample,
                r.mean_ns,
                r.median_ns,
                r.min_ns,
                r.max_ns,
                if i + 1 == self.results.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Results collected so far (mainly for tests of the harness itself).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// A benchmark group sharing a sample size, mirroring Criterion's.
pub struct Group<'a> {
    harness: &'a mut Harness,
    name: String,
    sample_size: Option<usize>,
}

impl Group<'_> {
    /// Overrides the number of samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let sample_size = self.sample_size.unwrap_or(self.harness.default_sample_size);
        self.harness
            .run(self.name.clone(), name.into(), sample_size, f);
        self
    }

    /// Ends the group (kept for Criterion API parity; dropping works too).
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; call [`Bencher::iter`]
/// with the body to measure.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    /// `(samples, iters_per_sample, per-sample wall time in ns)`.
    result: Option<(usize, u64, Vec<u128>)>,
}

impl Bencher {
    /// Measures `f`, calibrated so one sample spans at least ~1 ms. In test
    /// mode `f` runs exactly once.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        if self.test_mode {
            let t = Instant::now();
            std::hint::black_box(f());
            self.result = Some((1, 1, vec![t.elapsed().as_nanos().max(1)]));
            return;
        }
        // Calibration: aim for >= 1 ms per sample.
        let t = Instant::now();
        std::hint::black_box(f());
        let once = t.elapsed().as_nanos().max(1);
        let iters = (1_000_000u128.div_ceil(once)).clamp(1, 1_000_000) as u64;
        let mut times = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            times.push(t.elapsed().as_nanos().max(1));
        }
        self.result = Some((self.sample_size, iters, times));
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_harness(name: &str) -> Harness {
        Harness {
            bench_name: name.to_string(),
            test_mode: true,
            filter: None,
            results: Vec::new(),
            default_sample_size: 20,
        }
    }

    #[test]
    fn groups_and_toplevel_benches_record_results() {
        let mut h = test_harness("t");
        h.bench_function("top", |b| b.iter(|| 1 + 1));
        let mut g = h.benchmark_group("grp");
        g.sample_size(5);
        g.bench_function("inner", |b| b.iter(|| 2 + 2));
        g.finish();
        assert_eq!(h.results().len(), 2);
        assert_eq!(h.results()[0].name, "top");
        assert_eq!(h.results()[1].group, "grp");
        // Test mode: exactly one sample of one iteration.
        assert_eq!(h.results()[1].samples, 1);
        assert_eq!(h.results()[1].iters_per_sample, 1);
    }

    #[test]
    fn json_report_is_well_formed() {
        let mut h = test_harness("json");
        h.bench_function("a\"quote", |b| b.iter(|| 0));
        let j = h.to_json();
        assert!(j.contains("\"bench\": \"json\""));
        assert!(j.contains("\\\"quote"));
        assert!(j.trim_end().ends_with('}'));
        // Balanced braces/brackets as a cheap structural check.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn timings_are_positive_and_ordered() {
        let mut h = test_harness("ord");
        h.bench_function("spin", |b| {
            b.iter(|| {
                let mut s = 0u64;
                for i in 0..1000 {
                    s = s.wrapping_add(std::hint::black_box(i));
                }
                s
            })
        });
        let r = &h.results()[0];
        assert!(r.min_ns > 0.0);
        assert!(r.min_ns <= r.median_ns);
        assert!(r.median_ns <= r.max_ns);
    }
}
