//! Deterministic pseudo-random numbers and a minimal property-test harness.
//!
//! The workspace builds fully offline, so this crate replaces the external
//! `rand` and `proptest` dependencies with two small, well-known generators
//! and a `forall`-style test runner:
//!
//! * [`SplitMix64`] — Steele et al.'s 64-bit mixer; used to derive seeds and
//!   as a fast standalone generator;
//! * [`Pcg32`] — O'Neill's PCG-XSH-RR 64/32; the workhorse generator behind
//!   topology synthesis, gravity traffic, and the test harness;
//! * [`check`] — a property-test runner with a fixed per-case seed corpus,
//!   an iteration cap, and shrinking-lite (caller-provided candidate
//!   shrinkers, greedily applied while the property still fails).
//!
//! Everything is deterministic: the same seed always produces the same
//! stream on every platform, so failures reproduce bit-for-bit.

pub mod check;

pub use check::{forall, no_shrink, Config};

/// SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a tiny, high-quality
/// 64-bit generator. Primarily used to expand one user seed into many
/// independent stream seeds.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// PCG-XSH-RR 64/32 (O'Neill 2014): 64-bit state, 32-bit output, period
/// 2^64 per stream. Seeded through [`SplitMix64`] so that nearby seeds
/// yield uncorrelated streams.
#[derive(Debug, Clone)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl Pcg32 {
    /// Creates a generator from a 64-bit seed (default stream).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self::new(sm.next_u64(), sm.next_u64())
    }

    /// Creates a generator with an explicit state and stream selector.
    pub fn new(initstate: u64, initseq: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (initseq << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(initstate);
        rng.next_u32();
        rng
    }

    /// Next 32-bit output.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64-bit output (two 32-bit draws).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32() as u64;
        let lo = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Uniform `f64` in `[0, 1)` with 53 random bits.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, n)` via Lemire's widening-multiply method
    /// (debiased). Returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let wide = (x as u128) * (n as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            // Reject the short final stripe to debias.
            if lo >= n.wrapping_neg() % n {
                return hi;
            }
        }
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        // audit:allow(panic-reachability, documented precondition; generators only call with literal non-empty ranges)
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn range_usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        // audit:allow(panic-reachability, documented precondition; generators only call with literal non-empty ranges)
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        lo + self.below((hi - lo) as u64 + 1) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "bad range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli draw: true with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// A standard normal deviate (Box–Muller, cosine branch).
    pub fn normal(&mut self) -> f64 {
        let u1 = self.f64().max(1e-12);
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Uniformly chooses an element of a non-empty slice.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.range_usize(0, items.len())]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range_usize(0, i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference sequence for seed 1234567 (from the public-domain
        // reference implementation).
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
        assert_eq!(sm.next_u64(), 9817491932198370423);
    }

    #[test]
    fn pcg_deterministic_across_clones() {
        let mut a = Pcg32::seed_from_u64(42);
        let mut b = Pcg32::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
        let mut c = Pcg32::seed_from_u64(43);
        let same = (0..100).filter(|_| a.next_u32() == c.next_u32()).count();
        assert!(
            same < 5,
            "different seeds should diverge ({same} collisions)"
        );
    }

    #[test]
    fn f64_in_unit_interval_and_well_spread() {
        let mut rng = Pcg32::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Pcg32::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(rng.below(0), 0);
        assert_eq!(rng.below(1), 0);
    }

    #[test]
    fn range_helpers_respect_bounds() {
        let mut rng = Pcg32::seed_from_u64(11);
        for _ in 0..100 {
            let v = rng.range_usize(3, 9);
            assert!((3..9).contains(&v));
            let w = rng.range_usize_inclusive(3, 3);
            assert_eq!(w, 3);
            let x = rng.range_f64(-2.0, 2.0);
            assert!((-2.0..2.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Pcg32::seed_from_u64(13);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn normal_has_roughly_unit_variance() {
        let mut rng = Pcg32::seed_from_u64(17);
        let n = 20_000;
        let (mut s, mut s2) = (0.0, 0.0);
        for _ in 0..n {
            let x = rng.normal();
            s += x;
            s2 += x * x;
        }
        let mean = s / n as f64;
        let var = s2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
