//! Solved-plan epochs and the lock-free cell readers load them through.
//!
//! A [`PlanEpoch`] is one immutable solved plan — instance, reservations,
//! served demand, dual worst-case availabilities, and a
//! [`SharedFactorCache`] scoped to exactly this plan — tagged with a
//! monotonically increasing generation. The background solver builds a
//! new epoch on every `update` command and publishes it through
//! [`PlanCell::swap`]; readers never see a partially built plan because
//! the whole epoch travels as one `Arc`.
//!
//! [`PlanCell`] is the hot-swap primitive. The steady-state read path is
//! a single `Acquire` load of the generation counter ([`PlanCell::generation`]
//! against the reader's cached epoch) — no lock, no reference-count
//! traffic. Only when the generation moved does a reader take the slot
//! mutex to clone the new `Arc` ([`PlanCell::current`]), which is O(1)
//! and uncontended outside swap instants. A reader mid-query keeps its
//! old `Arc` alive, so swaps never invalidate in-flight work: old and
//! new epochs coexist until the last reader of the old one drops it.
//!
//! The alternative designs were measured and rejected: a spin-swap
//! `ArcCell` serializes readers on a single cache line, and a raw
//! `AtomicPtr` with epoch-based reclamation needs `unsafe` the rest of
//! this workspace deliberately avoids. The mutex-slot-plus-generation
//! design keeps the fast path lock-free in safe Rust and is what the
//! TSan job exercises.

use crate::ServeError;
use pcf_core::{
    pcf_cls_pipeline, pcf_ls_instance, scale_to_mlu, solve_ffc_seeded, solve_pcf_ls_seeded,
    solve_pcf_tf_seeded, tunnel_instance, CutPool, FailureModel, Instance, RobustOptions,
};
use pcf_replay::SharedFactorCache;
use pcf_topology::{LinkId, Topology};
use pcf_traffic::gravity;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Which solver builds the plan (the schemes with a tunnel/LS plan to
/// serve; R3 is excluded because it has no reservations to realize).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeKind {
    /// FFC (tunnel model, per-pair failure constraints).
    Ffc,
    /// PCF-TF (tunnel model, dualizable adversary).
    PcfTf,
    /// PCF-LS (logical sequences).
    PcfLs,
    /// PCF-CLS (conditional logical sequences, bypass pipeline).
    PcfCls,
}

impl SchemeKind {
    /// Parses the CLI spelling (`ffc | pcf-tf | pcf-ls | pcf-cls`).
    pub fn from_flag(s: &str) -> Option<SchemeKind> {
        match s {
            "ffc" => Some(SchemeKind::Ffc),
            "pcf-tf" => Some(SchemeKind::PcfTf),
            "pcf-ls" => Some(SchemeKind::PcfLs),
            "pcf-cls" => Some(SchemeKind::PcfCls),
            _ => None,
        }
    }

    /// The stable CLI spelling.
    pub fn as_flag(self) -> &'static str {
        match self {
            SchemeKind::Ffc => "ffc",
            SchemeKind::PcfTf => "pcf-tf",
            SchemeKind::PcfLs => "pcf-ls",
            SchemeKind::PcfCls => "pcf-cls",
        }
    }
}

/// Everything the background solver needs to (re)build a plan: the
/// topology, the scheme, the traffic recipe, and the robust-engine
/// options. `update` commands vary the demand scale and gravity seed;
/// the rest is fixed at server start.
#[derive(Debug, Clone)]
pub struct PlanSpec {
    /// The (already built/pruned) topology to serve.
    pub topo: Topology,
    /// Which scheme solves the plan.
    pub scheme: SchemeKind,
    /// Tunnels per pair.
    pub tunnels: usize,
    /// Simultaneous link failures the plan must survive.
    pub f: usize,
    /// Gravity traffic seed (the `update` command may override per epoch).
    pub seed: u64,
    /// Optimal-routing MLU target for traffic normalization; `0` skips it.
    pub mlu: f64,
    /// Keep only the n heaviest demands.
    pub max_pairs: usize,
    /// Relative feasibility tolerance for realization and admission.
    pub tol: f64,
    /// Cutting-plane engine options.
    pub opts: RobustOptions,
    /// Shared-risk link groups the `srlg` protocol verb may fire as
    /// correlated bursts (empty: the verb reports an error).
    pub srlgs: Vec<Vec<LinkId>>,
}

/// One immutable solved plan, shared by every reader at its generation.
pub struct PlanEpoch {
    /// Generation tag (monotonically increasing across swaps, starts at 1).
    pub gen: u64,
    /// The solved instance (tunnels, logical sequences, demands).
    pub inst: Instance,
    /// Per-tunnel reservations `a_l`.
    pub a: Vec<f64>,
    /// Per-LS reservations `b_q`.
    pub b: Vec<f64>,
    /// Served fraction per pair.
    pub z: Vec<f64>,
    /// Served demand per pair (`z_p * d_p`), the realization input.
    pub served: Vec<f64>,
    /// Per-pair relaxed worst-case availability (the admission fast path).
    pub worst_available: Vec<f64>,
    /// The solved objective (guaranteed demand scale).
    pub objective: f64,
    /// The failure model the plan defends against (and admission checks).
    pub fm: FailureModel,
    /// Relative feasibility tolerance.
    pub tol: f64,
    /// Demand scale this epoch was solved at.
    pub scale: f64,
    /// Gravity seed this epoch was solved with.
    pub seed: u64,
    /// Factorization cache scoped to this plan (readers share it; a swap
    /// abandons it with the epoch, so caches never mix plans).
    pub cache: SharedFactorCache,
    /// FNV-1a digest over the plan's numerical content (reservations,
    /// served demand, objective) — generation-independent, so identical
    /// re-solves produce identical digests.
    pub plan_digest: u64,
    /// Cuts seeded into this epoch's first master from the previous
    /// epoch's [`CutPool`] (0 for a cold solve).
    pub warm_cuts: usize,
}

impl PlanSpec {
    /// Solves the spec into a fresh epoch at `gen`, with the demand
    /// matrix scaled by `scale` and drawn from `seed`. Cold solve: no cut
    /// pool in, none out (see [`PlanSpec::solve_epoch_seeded`]).
    pub fn solve_epoch(
        &self,
        gen: u64,
        scale: f64,
        seed: u64,
        cache_capacity: usize,
    ) -> Result<PlanEpoch, ServeError> {
        self.solve_epoch_seeded(gen, scale, seed, cache_capacity, None)
            .map(|(epoch, _)| epoch)
    }

    /// [`PlanSpec::solve_epoch`] with an epoch-to-epoch warm start: `prev`
    /// carries the scenario cuts of the previous epoch's solve, and the
    /// returned pool carries this epoch's cuts for the next one. Re-solves
    /// vary only the demand scale and gravity seed, so the instance shape
    /// is stable and the binding scenarios transfer; a shape mismatch (or
    /// the PCF-CLS pipeline, whose flow-stage instance varies) falls back
    /// to a cold solve and returns `None`.
    pub fn solve_epoch_seeded(
        &self,
        gen: u64,
        scale: f64,
        seed: u64,
        cache_capacity: usize,
        prev: Option<&CutPool>,
    ) -> Result<(PlanEpoch, Option<CutPool>), ServeError> {
        if !(scale.is_finite() && scale > 0.0) {
            return Err(ServeError::BadSpec(format!(
                "demand scale must be positive and finite, got {scale}"
            )));
        }
        let mut tm = gravity(&self.topo, seed);
        tm.truncate_to_top_k(self.max_pairs);
        if self.mlu > 0.0 {
            let (normalized, _) = scale_to_mlu(&self.topo, &tm, self.mlu);
            tm = normalized;
        }
        tm.scale(scale);
        let fm = FailureModel::links(self.f);
        let (inst, sol, pool) = match self.scheme {
            SchemeKind::Ffc => {
                let inst = tunnel_instance(&self.topo, &tm, self.tunnels);
                let (sol, pool) = solve_ffc_seeded(&inst, &fm, &self.opts, prev)?;
                (inst, sol, Some(pool))
            }
            SchemeKind::PcfTf => {
                let inst = tunnel_instance(&self.topo, &tm, self.tunnels);
                let (sol, pool) = solve_pcf_tf_seeded(&inst, &fm, &self.opts, prev)?;
                (inst, sol, Some(pool))
            }
            SchemeKind::PcfLs => {
                let inst = pcf_ls_instance(&self.topo, &tm, self.tunnels);
                let (sol, pool) = solve_pcf_ls_seeded(&inst, &fm, &self.opts, prev)?;
                (inst, sol, Some(pool))
            }
            SchemeKind::PcfCls => {
                // The CLS pipeline derives its final instance from the
                // flow decomposition, so its shape shifts between epochs;
                // always solve cold.
                let cls = pcf_cls_pipeline(&self.topo, &tm, self.tunnels, &fm, &self.opts);
                (cls.instance, cls.solution, None)
            }
        };
        let served: Vec<f64> = inst
            .pair_ids()
            .map(|p| sol.z[p.0] * inst.demand(p))
            .collect();
        let plan_digest = plan_digest(sol.objective, &sol.a, &sol.b, &sol.z, &served);
        let epoch = PlanEpoch {
            gen,
            inst,
            a: sol.a,
            b: sol.b,
            z: sol.z,
            served,
            worst_available: sol.worst_available,
            objective: sol.objective,
            fm,
            tol: self.tol,
            scale,
            seed,
            cache: SharedFactorCache::new(cache_capacity),
            plan_digest,
            warm_cuts: sol.seeded_cuts,
        };
        Ok((epoch, pool))
    }
}

/// FNV-1a over the exact bit patterns of the plan's numbers. Identical
/// plans (same topology, traffic, scheme, options) digest identically on
/// every thread and every run; any numerical divergence shows up even
/// when rounded summaries agree.
fn plan_digest(objective: f64, a: &[f64], b: &[f64], z: &[f64], served: &[f64]) -> u64 {
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |x: f64| {
        for byte in x.to_bits().to_le_bytes() {
            digest ^= u64::from(byte);
            digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(objective);
    for &x in a.iter().chain(b).chain(z).chain(served) {
        eat(x);
    }
    digest
}

/// The hot-swap cell: a generation counter readers poll lock-free, and a
/// mutex-guarded slot holding the current epoch `Arc`.
///
/// Invariant: `gen` is only stored *after* the slot holds the epoch with
/// that generation (both under the slot mutex), so a reader that observes
/// a new generation and then takes the mutex always finds an epoch at
/// least that new. Readers that observe the old generation keep serving
/// the old epoch — a consistent, fully solved plan — until their next
/// check. There is deliberately no moment where a reader can see half a
/// plan.
pub struct PlanCell {
    gen: AtomicU64,
    slot: Mutex<Arc<PlanEpoch>>,
}

impl PlanCell {
    /// Creates the cell holding its first epoch.
    pub fn new(epoch: Arc<PlanEpoch>) -> PlanCell {
        PlanCell {
            gen: AtomicU64::new(epoch.gen),
            slot: Mutex::new(epoch),
        }
    }

    /// The published generation — the lock-free fast path. Readers
    /// compare this against their cached epoch's `gen` and only touch the
    /// slot mutex on a mismatch.
    // audit:hot
    pub fn generation(&self) -> u64 {
        self.gen.load(Ordering::Acquire)
    }

    /// Clones the current epoch `Arc` (takes the slot mutex briefly).
    // audit:hot
    pub fn current(&self) -> Arc<PlanEpoch> {
        Arc::clone(&self.slot.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// Publishes a new epoch. The slot is updated before the generation
    /// becomes visible, so `generation()`/`current()` can never observe a
    /// generation without its epoch.
    // audit:hot
    pub fn swap(&self, epoch: Arc<PlanEpoch>) {
        let mut slot = self.slot.lock().unwrap_or_else(|p| p.into_inner());
        let gen = epoch.gen;
        *slot = epoch;
        self.gen.store(gen, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcf_topology::zoo;

    fn abilene_spec() -> PlanSpec {
        PlanSpec {
            topo: zoo::build("Abilene"),
            scheme: SchemeKind::Ffc,
            tunnels: 3,
            f: 1,
            seed: 1,
            mlu: 0.0,
            max_pairs: 40,
            tol: 1e-6,
            opts: RobustOptions::default(),
            srlgs: Vec::new(),
        }
    }

    #[test]
    fn solve_epoch_builds_a_consistent_plan() {
        let spec = abilene_spec();
        let epoch = spec.solve_epoch(1, 1.0, 1, 64).unwrap();
        assert_eq!(epoch.gen, 1);
        assert_eq!(epoch.served.len(), epoch.inst.num_pairs());
        assert_eq!(epoch.worst_available.len(), epoch.inst.num_pairs());
        assert!(epoch.objective > 0.0);
        // Identical inputs → identical digest; scaled inputs → different.
        let again = spec.solve_epoch(7, 1.0, 1, 64).unwrap();
        assert_eq!(epoch.plan_digest, again.plan_digest);
        let scaled = spec.solve_epoch(2, 0.5, 1, 64).unwrap();
        assert_ne!(epoch.plan_digest, scaled.plan_digest);
        assert!(spec.solve_epoch(3, 0.0, 1, 64).is_err());
        assert!(spec.solve_epoch(3, f64::NAN, 1, 64).is_err());
    }

    #[test]
    fn seeded_epoch_matches_cold_solve() {
        let spec = abilene_spec();
        let (first, pool) = spec.solve_epoch_seeded(1, 1.0, 1, 16, None).unwrap();
        assert_eq!(first.warm_cuts, 0);
        let pool = pool.expect("robust schemes export a pool");
        assert!(!pool.is_empty());

        // Warm re-solve at a new scale: same plan as the cold solve of the
        // same inputs, and the seeding is visible in warm_cuts.
        let (warm, next) = spec.solve_epoch_seeded(2, 0.8, 1, 16, Some(&pool)).unwrap();
        assert_eq!(warm.warm_cuts, pool.len());
        assert!(next.is_some());
        let cold = spec.solve_epoch(2, 0.8, 1, 16).unwrap();
        assert!(
            (warm.objective - cold.objective).abs() < 1e-6,
            "warm {} vs cold {}",
            warm.objective,
            cold.objective
        );
    }

    #[test]
    fn mismatched_pool_falls_back_to_cold() {
        let spec = abilene_spec();
        let (_, pool) = spec.solve_epoch_seeded(1, 1.0, 1, 16, None).unwrap();
        let pool = pool.unwrap();
        // A spec with a different tunnel count yields a different instance
        // shape; the pool must be ignored, not misapplied.
        let other = PlanSpec {
            tunnels: 2,
            ..abilene_spec()
        };
        let (epoch, _) = other
            .solve_epoch_seeded(1, 1.0, 1, 16, Some(&pool))
            .unwrap();
        assert_eq!(epoch.warm_cuts, 0);
    }

    #[test]
    fn plan_cell_swaps_are_ordered() {
        let spec = abilene_spec();
        let first = Arc::new(spec.solve_epoch(1, 1.0, 1, 16).unwrap());
        let cell = PlanCell::new(Arc::clone(&first));
        assert_eq!(cell.generation(), 1);
        assert_eq!(cell.current().gen, 1);

        let second = Arc::new(spec.solve_epoch(2, 0.8, 1, 16).unwrap());
        cell.swap(second);
        assert_eq!(cell.generation(), 2);
        assert_eq!(cell.current().gen, 2);
        // The old epoch Arc is still alive for holders.
        assert_eq!(first.gen, 1);
    }

    #[test]
    fn scheme_flags_round_trip() {
        for kind in [
            SchemeKind::Ffc,
            SchemeKind::PcfTf,
            SchemeKind::PcfLs,
            SchemeKind::PcfCls,
        ] {
            assert_eq!(SchemeKind::from_flag(kind.as_flag()), Some(kind));
        }
        assert_eq!(SchemeKind::from_flag("r3"), None);
    }
}
