//! `pcf-audit` binary: the CI lint gate.
//!
//! ```text
//! pcf-audit                     # audit the workspace against audit.baseline
//! pcf-audit --write-baseline    # rewrite audit.baseline from current findings
//! pcf-audit --json              # JSON findings report on stdout (summary on stderr)
//! pcf-audit --list              # print the lint catalog
//! pcf-audit --root <path>       # audit a different workspace root
//! ```

use pcf_audit::{find_root, run_with, BaselineMode, ALL_LINTS};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut mode = BaselineMode::Check;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--write-baseline" => mode = BaselineMode::Write,
            "--json" => json = true,
            "--list" => {
                for lint in ALL_LINTS {
                    println!("{:<26} {}", lint.name(), lint.describe());
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("pcf-audit: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "pcf-audit [--write-baseline] [--json] [--list] [--root <path>]\n\
                     Static analysis over the PCF workspace; see DESIGN.md §9."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("pcf-audit: unknown flag {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = root
        .or_else(|| std::env::current_dir().ok().and_then(|d| find_root(&d)))
        .or_else(|| find_root(&PathBuf::from(env!("CARGO_MANIFEST_DIR"))));
    let Some(root) = root else {
        eprintln!("pcf-audit: cannot locate the workspace root (use --root <path>)");
        return ExitCode::from(2);
    };
    ExitCode::from(run_with(&root, mode, json) as u8)
}
