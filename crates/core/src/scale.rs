//! Traffic-matrix normalisation to a target MLU (paper §5).
//!
//! "We use the gravity model to generate traffic matrices with the
//! utilization of the most congested link (MLU) in the range [0.6, 0.63]."
//! The MLU of an optimally routed matrix is the inverse of its maximum
//! concurrent flow, so scaling the matrix by `z* · target` lands the
//! optimal-routing MLU exactly on `target`.

use crate::optimal::max_concurrent_flow;
use pcf_topology::Topology;
use pcf_traffic::TrafficMatrix;

/// Scales `tm` so that the optimal-routing MLU equals `target_mlu`
/// (paper: 0.6). Returns the scaled matrix and the factor applied.
///
/// # Panics
/// Panics if the matrix has no demand or some demand is disconnected.
pub fn scale_to_mlu(topo: &Topology, tm: &TrafficMatrix, target_mlu: f64) -> (TrafficMatrix, f64) {
    assert!(target_mlu > 0.0);
    let z = max_concurrent_flow(topo, tm, None).value();
    assert!(
        z.is_finite() && z > 0.0,
        "matrix must have routable demand (z = {z})"
    );
    // Serving the scaled matrix optimally uses 1/(z / factor)... after
    // scaling demands by k, the optimal concurrent flow is z / k, so the
    // MLU for serving it fully is k / z. Set k = z * target.
    let factor = z * target_mlu;
    (tm.scaled(factor), factor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcf_topology::zoo;
    use pcf_traffic::gravity;

    #[test]
    fn scaling_hits_target_mlu() {
        let topo = zoo::build("Sprint");
        let tm = gravity(&topo, 5);
        let (scaled, factor) = scale_to_mlu(&topo, &tm, 0.6);
        assert!(factor > 0.0);
        let z = max_concurrent_flow(&topo, &scaled, None).value();
        // Optimal MLU of the scaled matrix = 1/z = 0.6.
        assert!((1.0 / z - 0.6).abs() < 1e-6, "MLU {}", 1.0 / z);
    }

    #[test]
    fn scaling_is_linear() {
        let topo = zoo::build("Sprint");
        let tm = gravity(&topo, 5);
        let (s1, f1) = scale_to_mlu(&topo, &tm, 0.6);
        let (s2, f2) = scale_to_mlu(&topo, &tm.scaled(2.0), 0.6);
        // Same final matrix regardless of the input's own scale.
        assert!((f1 - 2.0 * f2).abs() < 1e-9 * f1.abs());
        for (a, b) in s1.positive_pairs().iter().zip(s2.positive_pairs().iter()) {
            assert!((a.2 - b.2).abs() < 1e-9 * a.2);
        }
    }
}
