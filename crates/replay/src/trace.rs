//! Event traces: scripted or generated sequences of link up/down events.
//!
//! A trace is what the replay engine consumes — an ordered list of
//! [`LinkEvent`]s, each flipping one link's liveness. Traces come from
//! three places:
//!
//! * scripted files ([`EventTrace::parse`] / [`EventTrace::to_text`]) with
//!   one `down <link>`, `up <link>`, `wobble <link> <permille>`, or
//!   `degrade <link> <permille>` per line — plus the correlated verbs
//!   `srlg <group>` and `node <id>` that [`EventTrace::parse_strict_with`]
//!   expands into the member links' down events;
//! * the deterministic generators ([`EventTrace::flaps`],
//!   [`EventTrace::srlg_bursts`], [`EventTrace::rolling_maintenance`]),
//!   seeded through [`pcf_rng::Pcg32`] so the same seed reproduces the
//!   same trace on every platform;
//! * test code constructing event lists directly.
//!
//! Generators only emit *state-changing* events (a link goes down only
//! while up, and vice versa), and [`EventTrace::flaps`] additionally keeps
//! the number of concurrently dead links at or below its `max_down` bound,
//! so a plan solved for `f = max_down` failures should replay
//! violation-free.

use pcf_rng::Pcg32;
use pcf_topology::{LinkId, Topology};

/// Direction of a link state change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The link fails.
    Down,
    /// The link is repaired.
    Up,
    /// The link's capacity changes to `permille`/1000 of nominal (an
    /// integer so event equality and trace round-trips stay exact).
    /// `1000` restores nominal capacity; values above it model headroom.
    ///
    /// Wobbles are *capacity-blind* to realization: they only move the bar
    /// overload judging measures against. Contrast [`EventKind::Degrade`].
    Wobble {
        /// New capacity in thousandths of the nominal one.
        permille: u32,
    },
    /// Partial-capacity degradation: the link stays alive but only
    /// `permille`/1000 of its nominal capacity survives (a fiber cut in a
    /// bundle, a brown-out). Unlike [`EventKind::Wobble`], degradation is
    /// visible to realization — the engine rescales reservations riding
    /// the link and keys its factorization cache on the degradation
    /// pattern. `1000` restores the link to undegraded.
    Degrade {
        /// Surviving capacity in thousandths of the nominal one (`1..=1000`).
        permille: u32,
    },
}

/// One link state change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkEvent {
    /// The link whose state flips.
    pub link: LinkId,
    /// Down, up, or a capacity wobble.
    pub kind: EventKind,
}

/// An ordered sequence of link events applied to an initially all-alive
/// topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventTrace {
    /// Human-readable trace name (generator + parameters, or file stem).
    pub name: String,
    /// The events, in replay order.
    pub events: Vec<LinkEvent>,
}

/// Error from parsing a scripted trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line of the offending entry.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

impl EventTrace {
    /// Wraps an explicit event list.
    pub fn new(name: impl Into<String>, events: Vec<LinkEvent>) -> Self {
        EventTrace {
            name: name.into(),
            events,
        }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Largest number of simultaneously dead links over the trace
    /// (idempotent events — down while down, up while up — don't count).
    pub fn max_concurrent_down(&self) -> usize {
        let n = self
            .events
            .iter()
            .map(|e| e.link.index() + 1)
            .max()
            .unwrap_or(0);
        let mut dead = vec![false; n];
        let mut now = 0usize;
        let mut peak = 0usize;
        for e in &self.events {
            match e.kind {
                EventKind::Down if !dead[e.link.index()] => {
                    dead[e.link.index()] = true;
                    now += 1;
                    peak = peak.max(now);
                }
                EventKind::Up if dead[e.link.index()] => {
                    dead[e.link.index()] = false;
                    now -= 1;
                }
                _ => {}
            }
        }
        peak
    }

    /// Independent link flaps: at each step a random alive link dies or a
    /// random dead link recovers, never exceeding `max_down` concurrent
    /// failures. With `max_down = 0` the trace is empty.
    pub fn flaps(topo: &Topology, count: usize, max_down: usize, seed: u64) -> Self {
        let n = topo.link_count();
        let max_down = max_down.min(n);
        let mut rng = Pcg32::seed_from_u64(seed);
        let mut dead: Vec<LinkId> = Vec::new();
        let mut alive: Vec<LinkId> = topo.links().collect();
        let mut events = Vec::with_capacity(count);
        if max_down > 0 {
            while events.len() < count {
                let go_down = if dead.is_empty() {
                    true
                } else if dead.len() == max_down || alive.is_empty() {
                    false
                } else {
                    rng.chance(0.5)
                };
                let (from, to) = if go_down {
                    (&mut alive, &mut dead)
                } else {
                    (&mut dead, &mut alive)
                };
                let i = rng.range_usize(0, from.len());
                let link = from.swap_remove(i);
                to.push(link);
                events.push(LinkEvent {
                    link,
                    kind: if go_down {
                        EventKind::Down
                    } else {
                        EventKind::Up
                    },
                });
            }
        }
        EventTrace::new(
            format!("flaps(n={count},max_down={max_down},seed={seed})"),
            events,
        )
    }

    /// Correlated SRLG bursts: repeatedly picks a random group, fails every
    /// link in it, then repairs them all before the next burst. Concurrent
    /// failures reach the largest group's size.
    pub fn srlg_bursts(groups: &[Vec<LinkId>], count: usize, seed: u64) -> Self {
        let mut rng = Pcg32::seed_from_u64(seed);
        let mut events = Vec::with_capacity(count);
        let usable: Vec<&Vec<LinkId>> = groups.iter().filter(|g| !g.is_empty()).collect();
        if !usable.is_empty() {
            while events.len() < count {
                let group = *rng.pick(&usable);
                for &l in group {
                    events.push(LinkEvent {
                        link: l,
                        kind: EventKind::Down,
                    });
                }
                for &l in group {
                    events.push(LinkEvent {
                        link: l,
                        kind: EventKind::Up,
                    });
                }
            }
            events.truncate(count);
        }
        EventTrace::new(format!("srlg_bursts(n={count},seed={seed})"), events)
    }

    /// Rolling maintenance: takes links down one at a time, in a seeded
    /// random order, repairing each before the next goes down (at most one
    /// link is ever dead). Cycles through the topology as often as `count`
    /// requires.
    pub fn rolling_maintenance(topo: &Topology, count: usize, seed: u64) -> Self {
        let mut rng = Pcg32::seed_from_u64(seed);
        let mut order: Vec<LinkId> = topo.links().collect();
        let mut events = Vec::with_capacity(count);
        if !order.is_empty() {
            while events.len() < count {
                rng.shuffle(&mut order);
                for &l in &order {
                    events.push(LinkEvent {
                        link: l,
                        kind: EventKind::Down,
                    });
                    events.push(LinkEvent {
                        link: l,
                        kind: EventKind::Up,
                    });
                }
            }
            events.truncate(count);
        }
        EventTrace::new(
            format!("rolling_maintenance(n={count},seed={seed})"),
            events,
        )
    }

    /// Parses the scripted format: one `down <link>`, `up <link>`,
    /// `wobble <link> <permille>`, or `degrade <link> <permille>` per
    /// line; blank lines and `#` comments are ignored. Links are given by
    /// index, with or without the `e` prefix the CLI prints (`down 3` and
    /// `down e3` are the same event).
    ///
    /// This lenient form accepts any link index and idempotent events
    /// (the engine treats them as no-ops); use
    /// [`EventTrace::parse_strict`] to validate a trace against a
    /// concrete topology. The correlated verbs `srlg <group>` and
    /// `node <id>` need resolution context and are only accepted by
    /// [`EventTrace::parse_strict_with`].
    pub fn parse(name: impl Into<String>, text: &str) -> Result<Self, TraceParseError> {
        let mut events = Vec::new();
        for (line, d) in parse_directives(text)? {
            match d {
                Directive::Event(e) => events.push(e),
                Directive::Srlg(_) | Directive::Node(_) => {
                    return Err(TraceParseError {
                        line,
                        message: "correlated event needs topology context \
                                  (use parse_strict_with)"
                            .to_string(),
                    })
                }
            }
        }
        Ok(EventTrace::new(name, events))
    }

    /// Parses like [`EventTrace::parse`], then validates every event
    /// against `topo`, reporting the offending line number:
    ///
    /// * link indices must exist in the topology;
    /// * `down` of an already-dead link and `up` of an alive one are
    ///   rejected (duplicate / contradictory state changes usually mean
    ///   a corrupt or misordered trace);
    /// * `wobble` permille must be in `1..=2000` (a zero-capacity link
    ///   should be scripted as `down`);
    /// * `degrade` permille must be in `1..=1000` (degradation never
    ///   exceeds nominal; total loss is scripted as `down`).
    ///
    /// `srlg` events are rejected here (no group table); use
    /// [`EventTrace::parse_strict_with`] for the full verb set.
    pub fn parse_strict(
        name: impl Into<String>,
        text: &str,
        topo: &Topology,
    ) -> Result<Self, TraceParseError> {
        EventTrace::parse_strict_with(name, text, topo, &[])
    }

    /// The full scripted language: everything [`EventTrace::parse_strict`]
    /// accepts plus the correlated failure verbs, resolved against `topo`
    /// and the SRLG `groups` table (e.g. `SrlgSet::link_groups()` from the
    /// topology's sidecar file):
    ///
    /// * `srlg <group>` — fails every link of group `<group>` (0-based
    ///   index into `groups`); members already down are skipped, so
    ///   overlapping groups compose;
    /// * `node <id>` — fails every link incident to node `<id>`, again
    ///   skipping members already down.
    ///
    /// Both expand into plain per-link down events (recovery is scripted
    /// with per-link `up` lines), so the returned trace replays on an
    /// unmodified engine and [`EventTrace::to_text`] emits the expansion.
    pub fn parse_strict_with(
        name: impl Into<String>,
        text: &str,
        topo: &Topology,
        groups: &[Vec<LinkId>],
    ) -> Result<Self, TraceParseError> {
        let mut events = Vec::new();
        let mut dead = vec![false; topo.link_count()];
        let check_link = |idx: usize, line: usize| -> Result<(), TraceParseError> {
            if idx >= topo.link_count() {
                return Err(TraceParseError {
                    line,
                    message: format!(
                        "unknown link e{idx}: topology {:?} has {} links",
                        topo.name(),
                        topo.link_count()
                    ),
                });
            }
            Ok(())
        };
        for (line, d) in parse_directives(text)? {
            match d {
                Directive::Event(e) => {
                    let idx = e.link.index();
                    check_link(idx, line)?;
                    match e.kind {
                        EventKind::Down => {
                            if dead[idx] {
                                return Err(TraceParseError {
                                    line,
                                    message: format!("duplicate down: link e{idx} is already down"),
                                });
                            }
                            dead[idx] = true;
                        }
                        EventKind::Up => {
                            if !dead[idx] {
                                return Err(TraceParseError {
                                    line,
                                    message: format!("spurious up: link e{idx} is not down"),
                                });
                            }
                            dead[idx] = false;
                        }
                        EventKind::Wobble { permille } => {
                            if permille == 0 || permille > 2000 {
                                return Err(TraceParseError {
                                    line,
                                    message: format!(
                                        "wobble permille {permille} out of range 1..=2000"
                                    ),
                                });
                            }
                        }
                        EventKind::Degrade { permille } => {
                            if permille == 0 || permille > 1000 {
                                return Err(TraceParseError {
                                    line,
                                    message: format!(
                                        "degrade permille {permille} out of range 1..=1000 \
                                         (script total loss as `down`)"
                                    ),
                                });
                            }
                        }
                    }
                    events.push(e);
                }
                Directive::Srlg(g) => {
                    let Some(members) = groups.get(g as usize) else {
                        return Err(TraceParseError {
                            line,
                            message: format!(
                                "unknown srlg group {g} (table has {} groups)",
                                groups.len()
                            ),
                        });
                    };
                    for &l in members {
                        check_link(l.index(), line)?;
                        if !dead[l.index()] {
                            dead[l.index()] = true;
                            events.push(LinkEvent {
                                link: l,
                                kind: EventKind::Down,
                            });
                        }
                    }
                }
                Directive::Node(n) => {
                    if n as usize >= topo.node_count() {
                        return Err(TraceParseError {
                            line,
                            message: format!(
                                "unknown node {n}: topology {:?} has {} nodes",
                                topo.name(),
                                topo.node_count()
                            ),
                        });
                    }
                    for l in topo.links() {
                        if topo.link(l).touches(pcf_topology::NodeId(n)) && !dead[l.index()] {
                            dead[l.index()] = true;
                            events.push(LinkEvent {
                                link: l,
                                kind: EventKind::Down,
                            });
                        }
                    }
                }
            }
        }
        Ok(EventTrace::new(name, events))
    }

    /// Renders the scripted format [`EventTrace::parse`] reads.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(8 * self.events.len() + self.name.len() + 3);
        out.push_str(&format!("# {}\n", self.name));
        for e in &self.events {
            match e.kind {
                EventKind::Down => out.push_str(&format!("down {}\n", e.link.index())),
                EventKind::Up => out.push_str(&format!("up {}\n", e.link.index())),
                EventKind::Wobble { permille } => {
                    out.push_str(&format!("wobble {} {permille}\n", e.link.index()))
                }
                EventKind::Degrade { permille } => {
                    out.push_str(&format!("degrade {} {permille}\n", e.link.index()))
                }
            }
        }
        out
    }
}

/// One parsed trace line: a plain link event, or a correlated verb that
/// still needs resolution context to expand.
enum Directive {
    Event(LinkEvent),
    /// `srlg <group>` — 0-based index into an SRLG group table.
    Srlg(u32),
    /// `node <id>` — fail every link incident to this node.
    Node(u32),
}

/// The shared scripted-format reader: directives tagged with their 1-based
/// source line so strict validation can point at the offending entry.
fn parse_directives(text: &str) -> Result<Vec<(usize, Directive)>, TraceParseError> {
    let mut directives = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        let mut parts = line.split_whitespace();
        let Some(verb) = parts.next() else {
            continue; // blank or comment-only line
        };
        let lineno = i + 1;
        let directive = match verb {
            "down" => Directive::Event(LinkEvent {
                link: next_link(&mut parts, "down", lineno)?,
                kind: EventKind::Down,
            }),
            "up" => Directive::Event(LinkEvent {
                link: next_link(&mut parts, "up", lineno)?,
                kind: EventKind::Up,
            }),
            "wobble" => {
                let link = next_link(&mut parts, "wobble", lineno)?;
                let permille = next_permille(&mut parts, "wobble", lineno)?;
                Directive::Event(LinkEvent {
                    link,
                    kind: EventKind::Wobble { permille },
                })
            }
            "degrade" => {
                let link = next_link(&mut parts, "degrade", lineno)?;
                let permille = next_permille(&mut parts, "degrade", lineno)?;
                Directive::Event(LinkEvent {
                    link,
                    kind: EventKind::Degrade { permille },
                })
            }
            "srlg" => Directive::Srlg(next_index(&mut parts, "srlg", "group index", lineno)?),
            "node" => Directive::Node(next_index(&mut parts, "node", "node index", lineno)?),
            other => {
                return Err(TraceParseError {
                    line: lineno,
                    message: format!(
                        "expected `down`, `up`, `wobble`, `degrade`, `srlg`, or `node`, \
                         got {other:?}"
                    ),
                })
            }
        };
        if let Some(extra) = parts.next() {
            return Err(TraceParseError {
                line: lineno,
                message: format!("trailing token {extra:?}"),
            });
        }
        directives.push((lineno, directive));
    }
    Ok(directives)
}

/// Reads and parses the `<link>` argument of a trace verb.
fn next_link(
    parts: &mut std::str::SplitWhitespace<'_>,
    verb: &str,
    lineno: usize,
) -> Result<LinkId, TraceParseError> {
    let arg = parts.next().ok_or_else(|| TraceParseError {
        line: lineno,
        message: format!("`{verb}` needs a link index"),
    })?;
    let digits = arg.strip_prefix('e').unwrap_or(arg);
    let link: u32 = digits.parse().map_err(|_| TraceParseError {
        line: lineno,
        message: format!("bad link index {arg:?}"),
    })?;
    Ok(LinkId(link))
}

/// Reads the `<permille>` argument of `wobble` / `degrade`.
fn next_permille(
    parts: &mut std::str::SplitWhitespace<'_>,
    verb: &str,
    lineno: usize,
) -> Result<u32, TraceParseError> {
    let arg = parts.next().ok_or_else(|| TraceParseError {
        line: lineno,
        message: format!("`{verb}` needs a permille after the link"),
    })?;
    arg.parse().map_err(|_| TraceParseError {
        line: lineno,
        message: format!("bad {verb} permille {arg:?}"),
    })
}

/// Reads a bare numeric argument (`srlg <group>`, `node <id>`).
fn next_index(
    parts: &mut std::str::SplitWhitespace<'_>,
    verb: &str,
    what: &str,
    lineno: usize,
) -> Result<u32, TraceParseError> {
    let arg = parts.next().ok_or_else(|| TraceParseError {
        line: lineno,
        message: format!("`{verb}` needs a {what}"),
    })?;
    arg.parse().map_err(|_| TraceParseError {
        line: lineno,
        message: format!("bad {what} {arg:?}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcf_topology::zoo;

    #[test]
    fn flaps_respect_the_concurrency_bound() {
        let topo = zoo::build("Sprint");
        for max_down in 1..4 {
            let t = EventTrace::flaps(&topo, 500, max_down, 42);
            assert_eq!(t.len(), 500);
            assert!(t.max_concurrent_down() <= max_down);
            // Links referenced exist.
            for e in &t.events {
                assert!(e.link.index() < topo.link_count());
            }
        }
    }

    #[test]
    fn flaps_are_deterministic_per_seed() {
        let topo = zoo::build("Sprint");
        assert_eq!(
            EventTrace::flaps(&topo, 200, 2, 7),
            EventTrace::flaps(&topo, 200, 2, 7)
        );
        assert_ne!(
            EventTrace::flaps(&topo, 200, 2, 7).events,
            EventTrace::flaps(&topo, 200, 2, 8).events
        );
    }

    #[test]
    fn srlg_bursts_fail_groups_atomically() {
        let groups = vec![vec![LinkId(0), LinkId(1)], vec![LinkId(4)]];
        let t = EventTrace::srlg_bursts(&groups, 100, 3);
        assert_eq!(t.len(), 100);
        assert!(t.max_concurrent_down() <= 2);
    }

    #[test]
    fn rolling_maintenance_keeps_one_link_down() {
        let topo = zoo::build("Sprint");
        let t = EventTrace::rolling_maintenance(&topo, 120, 5);
        assert_eq!(t.len(), 120);
        assert_eq!(t.max_concurrent_down(), 1);
    }

    #[test]
    fn scripted_round_trip() {
        let t = EventTrace::new(
            "scripted",
            vec![
                LinkEvent {
                    link: LinkId(3),
                    kind: EventKind::Down,
                },
                LinkEvent {
                    link: LinkId(3),
                    kind: EventKind::Up,
                },
            ],
        );
        let parsed = EventTrace::parse("scripted", &t.to_text()).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(EventTrace::parse("t", "explode 3").is_err());
        assert!(EventTrace::parse("t", "down").is_err());
        assert!(EventTrace::parse("t", "down x").is_err());
        assert!(EventTrace::parse("t", "down 1 2").is_err());
        assert!(EventTrace::parse("t", "wobble 1").is_err());
        assert!(EventTrace::parse("t", "wobble 1 x").is_err());
        // Comments and blanks are fine; the printed `e<idx>` form parses.
        let ok = EventTrace::parse("t", "# header\n\ndown 1 # inline\nup e1\n").unwrap();
        assert_eq!(ok.len(), 2);
        assert_eq!(ok.events[0].link, ok.events[1].link);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = EventTrace::parse("t", "down 1\n\n# fine\nbogus 2\n").unwrap_err();
        assert_eq!(err.line, 4);
        assert!(err.to_string().contains("line 4"), "{err}");
        let err = EventTrace::parse("t", "up 1\ndown\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn wobble_round_trips_through_text() {
        let t = EventTrace::new(
            "wobbly",
            vec![
                LinkEvent {
                    link: LinkId(2),
                    kind: EventKind::Wobble { permille: 850 },
                },
                LinkEvent {
                    link: LinkId(2),
                    kind: EventKind::Wobble { permille: 1000 },
                },
            ],
        );
        assert_eq!(EventTrace::parse("wobbly", &t.to_text()).unwrap(), t);
        // Wobbles never count as concurrent failures.
        assert_eq!(t.max_concurrent_down(), 0);
    }

    #[test]
    fn strict_parse_validates_against_the_topology() {
        let topo = zoo::build("Sprint"); // 17 links
        let ok = EventTrace::parse_strict("t", "down 3\nwobble 4 500\nup 3\n", &topo);
        assert_eq!(ok.unwrap().len(), 3);
        // Unknown link, with the line number.
        let err = EventTrace::parse_strict("t", "down 3\ndown 99\n", &topo).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown link e99"), "{err}");
        // Duplicate down / spurious up.
        let err = EventTrace::parse_strict("t", "down 3\ndown 3\n", &topo).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("duplicate down"), "{err}");
        let err = EventTrace::parse_strict("t", "up 3\n", &topo).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("spurious up"), "{err}");
        // Wobble range.
        let err = EventTrace::parse_strict("t", "wobble 3 0\n", &topo).unwrap_err();
        assert!(err.message.contains("out of range"), "{err}");
        let err = EventTrace::parse_strict("t", "wobble 3 2001\n", &topo).unwrap_err();
        assert_eq!(err.line, 1);
        // The lenient parser accepts all of those shapes.
        assert!(EventTrace::parse("t", "down 99\ndown 99\nup 3\nwobble 3 9999\n").is_ok());
    }

    #[test]
    fn degrade_round_trips_and_is_range_checked() {
        let topo = zoo::build("Sprint");
        let t = EventTrace::parse_strict("t", "degrade 2 400\ndegrade e2 1000\n", &topo).unwrap();
        assert_eq!(
            t.events,
            vec![
                LinkEvent {
                    link: LinkId(2),
                    kind: EventKind::Degrade { permille: 400 },
                },
                LinkEvent {
                    link: LinkId(2),
                    kind: EventKind::Degrade { permille: 1000 },
                },
            ]
        );
        assert_eq!(EventTrace::parse("t", &t.to_text()).unwrap(), t);
        // Degradation never counts as a concurrent failure.
        assert_eq!(t.max_concurrent_down(), 0);
        // Range 1..=1000: zero capacity and headroom are both rejected.
        let err = EventTrace::parse_strict("t", "degrade 2 0\n", &topo).unwrap_err();
        assert!(err.message.contains("out of range 1..=1000"), "{err}");
        let err = EventTrace::parse_strict("t", "down 1\ndegrade 2 1001\n", &topo).unwrap_err();
        assert_eq!(err.line, 2);
        // Missing / malformed arguments carry line numbers.
        assert!(EventTrace::parse("t", "degrade 2").is_err());
        assert!(EventTrace::parse("t", "degrade 2 x").is_err());
    }

    #[test]
    fn srlg_and_node_verbs_expand_to_member_downs() {
        let topo = zoo::build("Abilene");
        let groups = vec![vec![LinkId(0), LinkId(3)], vec![LinkId(3), LinkId(5)]];
        // Overlapping groups compose: e3 is already down when srlg 1 fires.
        let t = EventTrace::parse_strict_with(
            "t",
            "srlg 0\nsrlg 1\nup 0\nup 3\nup 5\n",
            &topo,
            &groups,
        )
        .unwrap();
        let downs: Vec<LinkId> = t
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Down)
            .map(|e| e.link)
            .collect();
        assert_eq!(downs, vec![LinkId(0), LinkId(3), LinkId(5)]);
        assert_eq!(t.max_concurrent_down(), 3);
        // node <id> fails exactly the incident links.
        let n = pcf_topology::NodeId(0);
        let t = EventTrace::parse_strict_with("t", "node 0\n", &topo, &groups).unwrap();
        let expect: Vec<LinkId> = topo.links().filter(|&l| topo.link(l).touches(n)).collect();
        let got: Vec<LinkId> = t.events.iter().map(|e| e.link).collect();
        assert_eq!(got, expect);
        assert!(t.events.iter().all(|e| e.kind == EventKind::Down));
        // The expansion is a valid trace in its own right.
        assert!(EventTrace::parse_strict("t", &t.to_text(), &topo).is_ok());
    }

    #[test]
    fn correlated_verbs_are_validated_with_line_numbers() {
        let topo = zoo::build("Abilene"); // 11 nodes
        let groups = vec![vec![LinkId(0)]];
        let err =
            EventTrace::parse_strict_with("t", "srlg 0\nsrlg 7\n", &topo, &groups).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown srlg group 7"), "{err}");
        let err = EventTrace::parse_strict_with("t", "node 99\n", &topo, &groups).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("unknown node 99"), "{err}");
        // plain parse_strict has no group table: every srlg index is unknown.
        let err = EventTrace::parse_strict("t", "srlg 0\n", &topo).unwrap_err();
        assert!(err.message.contains("table has 0 groups"), "{err}");
        // The lenient parser can't resolve correlated verbs at all.
        let err = EventTrace::parse("t", "srlg 0\n").unwrap_err();
        assert!(err.message.contains("needs topology context"), "{err}");
        let err = EventTrace::parse("t", "node 1\n").unwrap_err();
        assert!(err.message.contains("needs topology context"), "{err}");
        // Bad arguments.
        assert!(EventTrace::parse("t", "srlg\n").is_err());
        assert!(EventTrace::parse("t", "node x\n").is_err());
        assert!(EventTrace::parse("t", "srlg 0 1\n").is_err());
    }
}
