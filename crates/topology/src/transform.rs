//! Topology transforms used by the paper's evaluation setup (§5).
//!
//! * [`prune_degree_one`] — "We remove one-degree nodes in the topologies
//!   recursively so that the networks are not disconnected with any single
//!   link failure."
//! * [`split_sublinks`] — "To avoid disconnecting the topologies, we split
//!   the capacity of each link evenly across two sub-links that fail
//!   independently." (multi-failure experiments, Fig. 12)

use crate::graph::{NodeId, Topology};

/// Recursively removes nodes of degree ≤ 1 (and their incident links).
///
/// Returns the pruned topology together with a map from old node ids to new
/// node ids (`None` for removed nodes). Node labels and link capacities are
/// preserved; link ids are renumbered densely.
pub fn prune_degree_one(topo: &Topology) -> (Topology, Vec<Option<NodeId>>) {
    let n = topo.node_count();
    let mut alive = vec![true; n];
    let mut degree: Vec<usize> = topo.nodes().map(|u| topo.degree(u)).collect();
    // Worklist of candidate leaves.
    let mut queue: Vec<NodeId> = topo.nodes().filter(|&u| degree[u.index()] <= 1).collect();
    while let Some(u) = queue.pop() {
        if !alive[u.index()] || degree[u.index()] > 1 {
            continue;
        }
        alive[u.index()] = false;
        for &(w, _) in topo.incident(u) {
            if alive[w.index()] {
                degree[w.index()] -= 1;
                if degree[w.index()] <= 1 {
                    queue.push(w);
                }
            }
        }
    }
    let mut out = Topology::new(topo.name().to_string());
    let mut map: Vec<Option<NodeId>> = vec![None; n];
    for u in topo.nodes() {
        if alive[u.index()] {
            map[u.index()] = Some(out.add_node(topo.node_name(u).to_string()));
        }
    }
    for l in topo.links() {
        let link = topo.link(l);
        if let (Some(nu), Some(nv)) = (map[link.u.index()], map[link.v.index()]) {
            out.add_link(nu, nv, link.capacity);
        }
    }
    (out, map)
}

/// Splits every link into `parts` parallel sub-links with `1/parts` of the
/// capacity each, failing independently.
///
/// The paper uses `parts = 2` so that designing for three simultaneous
/// sub-link failures never disconnects a 2-edge-connected topology. Each
/// sub-link records the parent [`crate::graph::LinkId`] in the *source* topology via
/// [`crate::graph::Link::sublink_of`].
pub fn split_sublinks(topo: &Topology, parts: usize) -> Topology {
    assert!(parts >= 1, "parts must be at least 1");
    let mut out = Topology::new(format!("{} (x{} sub-links)", topo.name(), parts));
    for u in topo.nodes() {
        out.add_node(topo.node_name(u).to_string());
    }
    for l in topo.links() {
        let link = topo.link(l);
        let cap = link.capacity / parts as f64;
        for _ in 0..parts {
            out.add_sublink(link.u, link.v, cap, l);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prune_removes_pendant_chain() {
        // triangle with a two-node tail hanging off node 0
        let mut t = Topology::new("tailed");
        let n: Vec<_> = (0..5).map(|i| t.add_node(format!("n{i}"))).collect();
        t.add_link(n[0], n[1], 1.0);
        t.add_link(n[1], n[2], 1.0);
        t.add_link(n[2], n[0], 1.0);
        t.add_link(n[0], n[3], 1.0);
        t.add_link(n[3], n[4], 1.0);
        let (p, map) = prune_degree_one(&t);
        assert_eq!(p.node_count(), 3);
        assert_eq!(p.link_count(), 3);
        assert!(map[3].is_none() && map[4].is_none());
        assert!(map[0].is_some());
        assert!(p.is_two_edge_connected());
    }

    #[test]
    fn prune_keeps_two_edge_connected_graph_intact() {
        let mut t = Topology::new("cycle");
        let n: Vec<_> = (0..4).map(|i| t.add_node(format!("n{i}"))).collect();
        for i in 0..4 {
            t.add_link(n[i], n[(i + 1) % 4], 1.0);
        }
        let (p, map) = prune_degree_one(&t);
        assert_eq!(p.node_count(), 4);
        assert_eq!(p.link_count(), 4);
        assert!(map.iter().all(|m| m.is_some()));
    }

    #[test]
    fn prune_can_empty_a_tree() {
        let mut t = Topology::new("path");
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        t.add_link(a, b, 1.0);
        t.add_link(b, c, 1.0);
        let (p, _) = prune_degree_one(&t);
        assert_eq!(p.node_count(), 0);
        assert_eq!(p.link_count(), 0);
    }

    #[test]
    fn split_produces_parallel_half_capacity_sublinks() {
        let mut t = Topology::new("one link");
        let a = t.add_node("a");
        let b = t.add_node("b");
        let l = t.add_link(a, b, 4.0);
        let s = split_sublinks(&t, 2);
        assert_eq!(s.link_count(), 2);
        for sl in s.links() {
            assert_eq!(s.capacity(sl), 2.0);
            assert_eq!(s.link(sl).sublink_of, Some(l));
        }
        assert_eq!(s.total_capacity(), t.total_capacity());
        // Parallel sub-links keep the pair 2-edge-connected.
        assert!(s.is_two_edge_connected());
    }

    #[test]
    fn split_one_part_is_identity_up_to_metadata() {
        let mut t = Topology::new("tri");
        let n: Vec<_> = (0..3).map(|i| t.add_node(format!("n{i}"))).collect();
        t.add_link(n[0], n[1], 1.0);
        t.add_link(n[1], n[2], 2.0);
        t.add_link(n[2], n[0], 3.0);
        let s = split_sublinks(&t, 1);
        assert_eq!(s.link_count(), 3);
        assert_eq!(s.total_capacity(), 6.0);
    }
}
