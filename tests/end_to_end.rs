//! End-to-end pipeline tests: from a zoo topology and gravity traffic all
//! the way to a validated, congestion-free routing under every targeted
//! failure scenario, for every scheme.

use pcf_core::realize::{greedy_topsort, topological_order};
use pcf_core::validate::validate_all;
use pcf_core::{
    pcf_cls_pipeline, pcf_ls_instance, scale_to_mlu, solve_ffc, solve_pcf_ls, solve_pcf_tf,
    tunnel_instance, FailureModel, Instance, RobustOptions, RobustSolution,
};
use pcf_topology::{transform::split_sublinks, zoo};
use pcf_traffic::gravity;

fn served(inst: &Instance, sol: &RobustSolution) -> Vec<f64> {
    inst.pair_ids()
        .map(|p| sol.z[p.0] * inst.demand(p))
        .collect()
}

fn check(inst: &Instance, sol: &RobustSolution, fm: &FailureModel, label: &str) {
    let report = validate_all(inst, fm, &sol.a, &sol.b, &served(inst, sol), 1e-6);
    assert!(
        report.congestion_free(),
        "{label}: {} violations, first: {:?}",
        report.violations.len(),
        report.violations.first().map(|v| &v.kind)
    );
}

#[test]
fn sprint_ffc_is_congestion_free_under_all_single_failures() {
    let topo = zoo::build("Sprint");
    let (tm, _) = scale_to_mlu(&topo, &gravity(&topo, 21), 0.6);
    let fm = FailureModel::links(1);
    let inst = tunnel_instance(&topo, &tm, 2);
    let sol = solve_ffc(&inst, &fm, &RobustOptions::default());
    assert!(sol.objective > 0.2, "FFC too weak: {}", sol.objective);
    check(&inst, &sol, &fm, "FFC");
}

#[test]
fn sprint_pcf_tf_is_congestion_free_under_all_single_failures() {
    let topo = zoo::build("Sprint");
    let (tm, _) = scale_to_mlu(&topo, &gravity(&topo, 21), 0.6);
    let fm = FailureModel::links(1);
    let inst = tunnel_instance(&topo, &tm, 3);
    let sol = solve_pcf_tf(&inst, &fm, &RobustOptions::default());
    check(&inst, &sol, &fm, "PCF-TF");
}

#[test]
fn sprint_pcf_ls_is_congestion_free_under_all_single_failures() {
    let topo = zoo::build("Sprint");
    let (tm, _) = scale_to_mlu(&topo, &gravity(&topo, 21), 0.6);
    let fm = FailureModel::links(1);
    let inst = pcf_ls_instance(&topo, &tm, 3);
    let sol = solve_pcf_ls(&inst, &fm, &RobustOptions::default());
    check(&inst, &sol, &fm, "PCF-LS");
}

#[test]
fn sprint_pcf_cls_is_congestion_free_under_all_single_failures() {
    let topo = zoo::build("Sprint");
    let (tm, _) = scale_to_mlu(&topo, &gravity(&topo, 21), 0.6);
    let fm = FailureModel::links(1);
    let cls = pcf_cls_pipeline(&topo, &tm, 3, &fm, &RobustOptions::default());
    check(&cls.instance, &cls.solution, &fm, "PCF-CLS");
}

#[test]
fn b4_sublinks_double_failure_end_to_end() {
    // The Fig. 12 setup in miniature: split links into sub-links, design
    // for f = 2 sub-link failures, then validate over all C(38,2) = 703
    // concrete scenarios.
    let topo = split_sublinks(&zoo::build("B4"), 2);
    let (tm, _) = scale_to_mlu(&topo, &gravity(&topo, 4), 0.6);
    let fm = FailureModel::links(2);
    let inst = tunnel_instance(&topo, &tm, 4);
    let sol = solve_pcf_tf(&inst, &fm, &RobustOptions::default());
    assert!(sol.objective > 0.0);
    check(&inst, &sol, &fm, "PCF-TF sublinks f=2");
}

#[test]
fn node_failures_end_to_end() {
    // §3.5: node failures as link groups. Design against any single node
    // failure; traffic to/from the failed node is lost, but transit pairs
    // must stay congestion-free.
    let topo = zoo::build("B4");
    let tm = {
        // Demands only between nodes 0 and 5 so a middle-node failure is a
        // pure transit event.
        let mut m = pcf_traffic::TrafficMatrix::zeros(topo.node_count());
        m.set_demand(pcf_topology::NodeId(0), pcf_topology::NodeId(5), 1.0);
        m.set_demand(pcf_topology::NodeId(5), pcf_topology::NodeId(0), 1.0);
        m
    };
    // Exclude the endpoints' own groups: protect against any *other* node
    // failing.
    let groups: Vec<Vec<pcf_topology::LinkId>> = topo
        .nodes()
        .filter(|n| n.index() != 0 && n.index() != 5)
        .map(|n| topo.incident(n).iter().map(|&(_, l)| l).collect())
        .collect();
    let fm = FailureModel::Groups { groups, f: 1 };
    let inst = tunnel_instance(&topo, &tm, 3);
    let sol = solve_pcf_tf(&inst, &fm, &RobustOptions::default());
    assert!(sol.objective > 0.0, "transit pairs survive node failures");
    check(&inst, &sol, &fm, "PCF-TF node failures");
}

#[test]
fn cls_topsort_pipeline_end_to_end() {
    // §5.2: prune CLS logical sequences to a topologically sorted subset
    // and re-solve; the result must still beat plain PCF-TF... at minimum
    // be valid and positive.
    let topo = zoo::build("Sprint");
    let (tm, _) = scale_to_mlu(&topo, &gravity(&topo, 8), 0.6);
    let fm = FailureModel::links(1);
    let cls = pcf_cls_pipeline(&topo, &tm, 3, &fm, &RobustOptions::default());
    // Collect the final LS set and prune to sortable.
    let all_lss: Vec<_> = cls
        .instance
        .ls_ids()
        .map(|q| cls.instance.ls(q).clone())
        .collect();
    let (kept, pruned) = greedy_topsort(&all_lss);
    assert!(kept.len() + pruned == all_lss.len());
    // Rebuild and re-solve with the sorted subset.
    let mut b = pcf_core::instance::InstanceBuilder::new(&topo, &tm).tunnels_per_pair(3);
    for ls in &kept {
        b = b.add_ls(ls.clone());
    }
    let inst = b.build();
    let sol = solve_pcf_ls(&inst, &fm, &RobustOptions::default());
    assert!(
        topological_order(&inst, &sol.b).is_some(),
        "pruned LS set must be sortable"
    );
    assert!(sol.objective > 0.0);
    check(&inst, &sol, &fm, "PCF-CLS-TopSort");
}
