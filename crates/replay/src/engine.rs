//! The replay engine: incremental failure tracking plus a factorization
//! cache.
//!
//! [`ReplayEngine`] holds a solved allocation and a mutable link-liveness
//! state. Each [`LinkEvent`](crate::LinkEvent) updates the state
//! *incrementally* — per-tunnel dead-link counters and per-link condition
//! indexes make an event O(tunnels and LSs touching that link) instead of
//! O(instance) — and [`ReplayEngine::realize`] turns the current state
//! into a routing.
//!
//! Realization reads the failure state only through its liveness signature
//! (which tunnels are alive, which LSs are active), so repeated states can
//! share the expensive part of the linear solve: the engine caches the LU
//! factorization of the reservation matrix keyed by
//! [`FailureState::liveness_signature`]. A cache hit replaces the O(n³)
//! factorization with an O(n²) triangular solve; the numerical path is the
//! *same code* [`realize_routing`] runs (factor, solve, range-check,
//! expand), so cached and cold results are bit-identical.

use crate::trace::{EventKind, LinkEvent};
use pcf_core::{
    absolute_tolerance, check_utilizations, expand_routing, live_pairs, realize_routing,
    reservation_matrix, Condition, FailureState, Instance, LsId, PairId, RealizeError, Routing,
    TunnelId,
};
use pcf_lp::{lu_factor, LuFactors};
use std::collections::{BTreeMap, VecDeque};

/// Hit/miss/eviction counters of the factorization cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Realizations served from a cached factorization.
    pub hits: u64,
    /// Realizations that had to factor from scratch (cold mode counts every
    /// realization here).
    pub misses: u64,
    /// Entries dropped to respect the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of realizations served from cache (0 when none ran).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accumulates another engine's counters (batch aggregation).
    pub fn absorb(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }
}

/// What a cache entry remembers about one liveness signature: the solved
/// pair order and the LU factors of its reservation matrix (`None` when
/// there are no pairs of interest), or the structural error realization
/// hit.
enum Solved {
    Empty,
    Factored { pairs: Vec<PairId>, lu: LuFactors },
}

type CacheEntry = Result<Solved, RealizeError>;

/// Insertion-order (FIFO) bounded map from liveness signature to solve
/// state.
struct FactorCache {
    capacity: usize,
    entries: BTreeMap<Vec<u64>, CacheEntry>,
    order: VecDeque<Vec<u64>>,
    stats: CacheStats,
}

impl FactorCache {
    fn new(capacity: usize) -> Self {
        FactorCache {
            capacity,
            entries: BTreeMap::new(),
            order: VecDeque::new(),
            stats: CacheStats::default(),
        }
    }

    /// Returns the entry for `sig`, computing and inserting it on a miss
    /// (evicting the oldest signature when full).
    fn lookup_or_insert(
        &mut self,
        sig: Vec<u64>,
        compute: impl FnOnce() -> CacheEntry,
    ) -> &CacheEntry {
        if self.entries.contains_key(&sig) {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
            if self.entries.len() >= self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.entries.remove(&old);
                    self.stats.evictions += 1;
                }
            }
            self.order.push_back(sig.clone());
            self.entries.insert(sig.clone(), compute());
        }
        &self.entries[&sig]
    }
}

/// A streaming failure-replay engine over one solved allocation.
///
/// Borrows the instance and the plan (`a`, `b`, `served`); owns the
/// evolving failure state and the factorization cache. Create one per
/// trace — replaying a second trace on a warm engine is legal but its
/// state continues from wherever the first trace left the network.
pub struct ReplayEngine<'a> {
    inst: &'a Instance,
    a: &'a [f64],
    b: &'a [f64],
    served: &'a [f64],
    tol: f64,
    // Incrementally maintained failure state (kept materialized so
    // realization never has to rebuild or clone it).
    fs: FailureState,
    // `fs.liveness_signature()`, maintained bit-by-bit as events flip
    // liveness flags, so a cache lookup never rescans every tunnel/LS.
    sig: Vec<u64>,
    dead_links: usize,
    tunnel_dead_links: Vec<u32>,
    // Link -> affected entities, precomputed once.
    tunnels_on_link: Vec<Vec<TunnelId>>,
    lss_on_link: Vec<Vec<LsId>>,
    cache: Option<FactorCache>,
    cold_stats: CacheStats,
}

impl<'a> ReplayEngine<'a> {
    /// Builds an engine over an all-alive network.
    ///
    /// `cache_capacity` bounds the number of retained factorizations;
    /// `0` disables the cache entirely (every realization factors from
    /// scratch — the baseline the cache is measured against).
    pub fn new(
        inst: &'a Instance,
        a: &'a [f64],
        b: &'a [f64],
        served: &'a [f64],
        tol: f64,
        cache_capacity: usize,
    ) -> Self {
        let links = inst.topo().link_count();
        let mut tunnels_on_link: Vec<Vec<TunnelId>> = vec![Vec::new(); links];
        for l in inst.tunnel_ids() {
            for &e in &inst.tunnel(l).links {
                tunnels_on_link[e.index()].push(l);
            }
        }
        let mut lss_on_link: Vec<Vec<LsId>> = vec![Vec::new(); links];
        for q in inst.ls_ids() {
            for e in condition_links(&inst.ls(q).condition) {
                lss_on_link[e].push(q);
            }
        }
        let no_fail = vec![false; links];
        let fs = FailureState {
            tunnel_alive: vec![true; inst.num_tunnels()],
            ls_active: inst
                .ls_ids()
                .map(|q| inst.ls(q).condition.holds(&no_fail))
                .collect(),
            dead: no_fail,
        };
        let sig = fs.liveness_signature();
        ReplayEngine {
            inst,
            a,
            b,
            served,
            tol,
            fs,
            sig,
            dead_links: 0,
            tunnel_dead_links: vec![0; inst.num_tunnels()],
            tunnels_on_link,
            lss_on_link,
            cache: (cache_capacity > 0).then(|| FactorCache::new(cache_capacity)),
            cold_stats: CacheStats::default(),
        }
    }

    /// Applies one link event. Idempotent events (down while down, up while
    /// up) are no-ops; out-of-range links are rejected.
    pub fn apply(&mut self, event: &LinkEvent) -> Result<(), RealizeError> {
        let e = event.link.index();
        if e >= self.fs.dead.len() {
            return Err(RealizeError::MaskLengthMismatch {
                expected: self.fs.dead.len(),
                got: e + 1,
            });
        }
        let goes_down = match event.kind {
            EventKind::Down => {
                if self.fs.dead[e] {
                    return Ok(());
                }
                true
            }
            EventKind::Up => {
                if !self.fs.dead[e] {
                    return Ok(());
                }
                false
            }
        };
        self.fs.dead[e] = goes_down;
        if goes_down {
            self.dead_links += 1;
        } else {
            self.dead_links -= 1;
        }
        for &l in &self.tunnels_on_link[e] {
            if goes_down {
                self.tunnel_dead_links[l.0] += 1;
            } else {
                self.tunnel_dead_links[l.0] -= 1;
            }
            let alive = self.tunnel_dead_links[l.0] == 0;
            if alive != self.fs.tunnel_alive[l.0] {
                self.sig[l.0 >> 6] ^= 1 << (l.0 & 63);
            }
            self.fs.tunnel_alive[l.0] = alive;
        }
        let tunnel_bits = self.inst.num_tunnels();
        for &q in &self.lss_on_link[e] {
            let active = self.inst.ls(q).condition.holds(&self.fs.dead);
            if active != self.fs.ls_active[q.0] {
                let bit = tunnel_bits + q.0;
                self.sig[bit >> 6] ^= 1 << (bit & 63);
            }
            self.fs.ls_active[q.0] = active;
        }
        debug_assert_eq!(self.sig, self.fs.liveness_signature());
        Ok(())
    }

    /// Number of currently dead links.
    pub fn dead_links(&self) -> usize {
        self.dead_links
    }

    /// The current state as a [`FailureState`] (a snapshot — further events
    /// don't affect it). Equal, field for field, to
    /// `FailureState::new(inst, &dead)` for the accumulated mask.
    pub fn state(&self) -> FailureState {
        self.fs.clone()
    }

    /// Realizes the routing for the current failure state.
    ///
    /// With the cache enabled, a previously seen liveness signature reuses
    /// its stored LU factors (an O(n²) solve); a new signature pays the
    /// full factorization once. Results — including errors — are identical
    /// to calling [`realize_routing`] on [`ReplayEngine::state`].
    pub fn realize(&mut self) -> Result<Routing, RealizeError> {
        let state = &self.fs;
        let Some(cache) = self.cache.as_mut() else {
            self.cold_stats.misses += 1;
            return realize_routing(self.inst, state, self.a, self.b, self.served, self.tol);
        };
        let (inst, a, b, served, tol) = (self.inst, self.a, self.b, self.served, self.tol);
        let entry = cache.lookup_or_insert(self.sig.clone(), || {
            let tol_abs = absolute_tolerance(served, tol);
            let pairs = live_pairs(inst, state, a, b, served, tol_abs)?;
            if pairs.is_empty() {
                return Ok(Solved::Empty);
            }
            let m = reservation_matrix(inst, state, a, b, &pairs);
            let lu = lu_factor(&m).map_err(|_| RealizeError::SingularMatrix)?;
            Ok(Solved::Factored { pairs, lu })
        });
        match entry {
            Err(e) => Err(e.clone()),
            Ok(Solved::Empty) => Ok(Routing {
                pairs: Vec::new(),
                u: Vec::new(),
                tunnel_flow: vec![0.0; inst.num_tunnels()],
                arc_loads: vec![0.0; inst.topo().arc_count()],
            }),
            Ok(Solved::Factored { pairs, lu }) => {
                let d: Vec<f64> = pairs.iter().map(|&p| served[p.0]).collect();
                let u = lu.solve(&d);
                let u = check_utilizations(pairs, u, tol)?;
                Ok(expand_routing(inst, state, a, pairs, &u))
            }
        }
    }

    /// Cache counters so far (in cold mode: every realization is a miss).
    pub fn cache_stats(&self) -> CacheStats {
        match &self.cache {
            Some(c) => c.stats,
            None => self.cold_stats,
        }
    }

    /// Number of factorizations currently retained.
    pub fn cached_entries(&self) -> usize {
        self.cache.as_ref().map_or(0, |c| c.entries.len())
    }
}

/// The links a condition's truth value depends on.
fn condition_links(c: &Condition) -> Vec<usize> {
    match c {
        Condition::Always => Vec::new(),
        Condition::LinkDead(e) => vec![e.index()],
        Condition::AliveDead { alive, dead } => {
            alive.iter().chain(dead).map(|e| e.index()).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::EventTrace;
    use pcf_core::{solve_pcf_ls, FailureModel, RobustOptions};
    use pcf_topology::zoo;
    use pcf_traffic::gravity;

    fn sprint_plan() -> (Instance, Vec<f64>, Vec<f64>, Vec<f64>) {
        let topo = zoo::build("Sprint");
        let tm = gravity(&topo, 11);
        let inst = pcf_core::pcf_ls_instance(&topo, &tm, 3);
        let sol = solve_pcf_ls(&inst, &FailureModel::links(1), &RobustOptions::default());
        let served: Vec<f64> = inst
            .pair_ids()
            .map(|p| sol.z[p.0] * inst.demand(p))
            .collect();
        (inst, sol.a, sol.b, served)
    }

    #[test]
    fn incremental_state_matches_from_scratch() {
        let (inst, a, b, served) = sprint_plan();
        let trace = EventTrace::flaps(inst.topo(), 200, 3, 9);
        let mut engine = ReplayEngine::new(&inst, &a, &b, &served, 1e-6, 64);
        let mut mask = vec![false; inst.topo().link_count()];
        for ev in &trace.events {
            engine.apply(ev).unwrap();
            mask[ev.link.index()] = ev.kind == EventKind::Down;
            let expect = FailureState::new(&inst, &mask).unwrap();
            let got = engine.state();
            assert_eq!(got.dead, expect.dead);
            assert_eq!(got.tunnel_alive, expect.tunnel_alive);
            assert_eq!(got.ls_active, expect.ls_active);
        }
    }

    #[test]
    fn cached_realization_is_bit_identical_to_cold() {
        let (inst, a, b, served) = sprint_plan();
        let trace = EventTrace::flaps(inst.topo(), 100, 1, 3);
        let mut engine = ReplayEngine::new(&inst, &a, &b, &served, 1e-6, 64);
        for ev in &trace.events {
            engine.apply(ev).unwrap();
            let cached = engine.realize();
            let cold = realize_routing(&inst, &engine.state(), &a, &b, &served, 1e-6);
            match (cached, cold) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(x.pairs, y.pairs);
                    for (c, f) in x.u.iter().zip(&y.u) {
                        assert_eq!(c.to_bits(), f.to_bits());
                    }
                    for (c, f) in x.arc_loads.iter().zip(&y.arc_loads) {
                        assert_eq!(c.to_bits(), f.to_bits());
                    }
                }
                (Err(x), Err(y)) => assert_eq!(x, y),
                (x, y) => panic!("cached {x:?} disagrees with cold {y:?}"),
            }
        }
        let stats = engine.cache_stats();
        assert!(stats.hits > 0, "repeat states must hit: {stats:?}");
    }

    #[test]
    fn eviction_respects_capacity() {
        let (inst, a, b, served) = sprint_plan();
        // Rolling maintenance visits every link: more signatures than the
        // tiny cache holds.
        let trace = EventTrace::rolling_maintenance(inst.topo(), 120, 5);
        let mut engine = ReplayEngine::new(&inst, &a, &b, &served, 1e-6, 4);
        for ev in &trace.events {
            engine.apply(ev).unwrap();
            engine.realize().unwrap();
        }
        assert!(engine.cached_entries() <= 4);
        let stats = engine.cache_stats();
        assert!(stats.evictions > 0, "{stats:?}");
        assert_eq!(stats.hits + stats.misses, 120);
    }

    #[test]
    fn out_of_range_event_is_rejected() {
        let (inst, a, b, served) = sprint_plan();
        let mut engine = ReplayEngine::new(&inst, &a, &b, &served, 1e-6, 4);
        let bad = LinkEvent {
            link: pcf_topology::LinkId(10_000),
            kind: EventKind::Down,
        };
        assert!(matches!(
            engine.apply(&bad),
            Err(RealizeError::MaskLengthMismatch { .. })
        ));
    }

    #[test]
    fn idempotent_events_are_noops() {
        let (inst, a, b, served) = sprint_plan();
        let mut engine = ReplayEngine::new(&inst, &a, &b, &served, 1e-6, 4);
        let down = LinkEvent {
            link: pcf_topology::LinkId(0),
            kind: EventKind::Down,
        };
        engine.apply(&down).unwrap();
        engine.apply(&down).unwrap();
        assert_eq!(engine.dead_links(), 1);
        let up = LinkEvent {
            link: pcf_topology::LinkId(0),
            kind: EventKind::Up,
        };
        engine.apply(&up).unwrap();
        engine.apply(&up).unwrap();
        assert_eq!(engine.dead_links(), 0);
    }
}
