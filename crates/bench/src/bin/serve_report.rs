//! Generates `BENCH_serve.json` — the serving-daemon acceptance report.
//!
//! Usage: `cargo run --release -p pcf-bench --bin serve_report [out.json]`
//! (default output path `BENCH_serve.json` in the current directory).
//!
//! Four sections, matching the serving acceptance criteria:
//!
//! * `qps` — sustained realization throughput: 8 reader connections
//!   pipeline `realize` queries (batch depth 64) against a Sprint plan
//!   pinned in an f=2 failure scenario served from the shared factor
//!   cache. The plan is solved at f=1 — on the synthetic Sprint every
//!   f=2-solved plan is structurally empty (min degree 2: two failures
//!   can disconnect a node, forcing the guaranteed scale to zero), so
//!   the two-failure *scenario* on the f=1 plan is what exercises a
//!   non-trivial cached realization. Gate: ≥ 100k queries/sec.
//! * `event_latency` — p50/p99 of event-command handling (log append +
//!   engine replay), measured server-side over a down/up churn sequence.
//!   Gate: p99 ≤ 100 ms (a CI-robust ceiling; typical is microseconds).
//! * `hot_swap` — readers keep querying while the background solver
//!   publishes a new generation. Gates: every pipelined query gets
//!   exactly one `ok` response (zero loss), and the generation→digest
//!   table is byte-identical under 1 vs 8 reader threads.
//! * `admission` — a fixed set of admission checks split across 1 vs 8
//!   connections; the sorted transcript digests must be byte-identical
//!   (admission answers are a pure function of the plan).
//!
//! The binary exits non-zero if any acceptance bound is violated, so CI
//! can run it as a gate.

use pcf_serve::{Json, PlanSpec, SchemeKind, ServeClient, ServeOptions, Server};
use std::collections::BTreeMap;
use std::thread;
use std::time::Instant;

const QPS_GATE: f64 = 100_000.0;
const EVENT_P99_GATE_NS: u64 = 100_000_000;
const READERS: usize = 8;
const BATCH_DEPTH: usize = 64;

/// The two links whose joint failure keeps the Sprint f=1 plan on the
/// normal (cached, congestion-free) realization path. Deterministic: the
/// synthetic topologies are seeded by name.
const SCENARIO: [u32; 2] = [3, 11];

fn sprint_spec() -> PlanSpec {
    PlanSpec {
        topo: pcf_topology::zoo::build("Sprint"),
        scheme: SchemeKind::Ffc,
        tunnels: 3,
        f: 1,
        seed: 1,
        mlu: 0.0,
        max_pairs: 200,
        tol: 1e-6,
        opts: pcf_core::RobustOptions::default(),
        srlgs: Vec::new(),
    }
}

fn boot(spec: PlanSpec) -> Server {
    Server::bind(spec, ServeOptions::default(), "127.0.0.1:0").expect("bind serving daemon")
}

fn fnv(digest: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *digest ^= u64::from(b);
        *digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

struct QpsResult {
    queries: u64,
    elapsed_secs: f64,
    qps: f64,
    stage: String,
}

/// 8 readers hammer the cached realization path for ~1.5 s of wall clock.
fn qps_section(failures: &mut Vec<String>) -> QpsResult {
    let server = boot(sprint_spec());
    let addr = server.local_addr().expect("local addr").to_string();
    let result = thread::scope(|s| {
        let daemon = s.spawn(|| server.run());

        // Pin the f=2 scenario and warm the shared factor cache.
        let mut warm = ServeClient::connect(&addr).expect("connect");
        for link in SCENARIO {
            warm.request(&format!("{{\"cmd\":\"down\",\"link\":{link}}}"))
                .expect("down");
        }
        let first = warm.request("{\"cmd\":\"realize\"}").expect("realize");
        let stage = first
            .get("stage")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string();

        let batch: Vec<&str> = vec!["{\"cmd\":\"realize\"}"; BATCH_DEPTH];
        let t0 = Instant::now();
        let counts: Vec<u64> = {
            let handles: Vec<_> = (0..READERS)
                .map(|_| {
                    let addr = addr.clone();
                    let batch = batch.clone();
                    s.spawn(move || {
                        let mut client = ServeClient::connect(&addr).expect("connect");
                        let mut served = 0u64;
                        let t = Instant::now();
                        while t.elapsed().as_secs_f64() < 1.5 {
                            let resps = client.request_batch(&batch).expect("batch");
                            served += resps
                                .iter()
                                .filter(|r| r.get("ok").and_then(Json::as_bool) == Some(true))
                                .count() as u64;
                        }
                        served
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("reader"))
                .collect()
        };
        let elapsed = t0.elapsed().as_secs_f64();
        warm.request("{\"cmd\":\"shutdown\"}").expect("shutdown");
        let _ = daemon.join();
        (counts.iter().sum::<u64>(), elapsed, stage)
    });
    let (queries, elapsed_secs, stage) = result;
    let qps = queries as f64 / elapsed_secs.max(1e-9);
    if stage != "normal" {
        failures.push(format!(
            "qps scenario left the cached path: stage {stage:?} (expected \"normal\")"
        ));
    }
    if qps < QPS_GATE {
        failures.push(format!(
            "sustained realization throughput {qps:.0} qps < {QPS_GATE:.0} gate"
        ));
    }
    QpsResult {
        queries,
        elapsed_secs,
        qps,
        stage,
    }
}

struct EventLatency {
    events: u64,
    p50_ns: u64,
    p99_ns: u64,
}

/// Down/up churn over every Sprint link, latency measured server-side.
fn event_section(failures: &mut Vec<String>) -> EventLatency {
    let server = boot(sprint_spec());
    let addr = server.local_addr().expect("local addr").to_string();
    thread::scope(|s| {
        let daemon = s.spawn(|| server.run());
        let mut client = ServeClient::connect(&addr).expect("connect");
        let links = sprint_spec().topo.link_count() as u32;
        for round in 0..40 {
            let link = round % links;
            client
                .request(&format!("{{\"cmd\":\"down\",\"link\":{link}}}"))
                .expect("down");
            client
                .request(&format!("{{\"cmd\":\"up\",\"link\":{link}}}"))
                .expect("up");
        }
        client.request("{\"cmd\":\"shutdown\"}").expect("shutdown");
        let _ = daemon.join();
    });
    let report = server.report();
    if report.event_p99_ns > EVENT_P99_GATE_NS {
        failures.push(format!(
            "event-command p99 {} ns > {} ns gate",
            report.event_p99_ns, EVENT_P99_GATE_NS
        ));
    }
    EventLatency {
        events: report.events,
        p50_ns: report.event_p50_ns,
        p99_ns: report.event_p99_ns,
    }
}

struct SwapRun {
    readers: usize,
    sent: u64,
    answered: u64,
    table: BTreeMap<u64, String>,
}

/// Readers pipeline queries across a hot swap; every query must get its
/// `ok` response and every generation must travel with one digest.
fn swap_run(readers: usize) -> SwapRun {
    let server = boot(sprint_spec());
    let addr = server.local_addr().expect("local addr").to_string();
    let per_reader = 400usize;
    let (sent, answered, tables) = thread::scope(|s| {
        let daemon = s.spawn(|| server.run());
        let handles: Vec<_> = (0..readers)
            .map(|_| {
                let addr = addr.clone();
                s.spawn(move || {
                    let mut client = ServeClient::connect(&addr).expect("connect");
                    let mut answered = 0u64;
                    let mut table: BTreeMap<u64, String> = BTreeMap::new();
                    let batch: Vec<&str> = vec!["{\"cmd\":\"plan\"}"; BATCH_DEPTH.min(per_reader)];
                    let mut sent = 0usize;
                    // Query at least `per_reader` times AND until the
                    // swap lands, so every run spans both generations.
                    while sent < per_reader || !table.contains_key(&2) {
                        let n = batch.len().min(per_reader.max(sent + 1) - sent);
                        let resps = client.request_batch(&batch[..n]).expect("batch");
                        sent += n;
                        for resp in &resps {
                            if resp.get("ok").and_then(Json::as_bool) == Some(true) {
                                answered += 1;
                            }
                            let gen = resp.get("gen").and_then(Json::as_u64).expect("gen");
                            let digest = resp
                                .get("plan_digest")
                                .and_then(Json::as_str)
                                .expect("digest")
                                .to_string();
                            if let Some(seen) = table.get(&gen) {
                                assert_eq!(seen, &digest, "gen {gen} served two digests");
                            }
                            table.insert(gen, digest);
                        }
                    }
                    (sent as u64, answered, table)
                })
            })
            .collect();

        // Publish generation 2 mid-stream.
        let mut ctl = ServeClient::connect(&addr).expect("connect");
        ctl.request("{\"cmd\":\"update\",\"scale\":0.9}")
            .expect("update");
        ctl.request("{\"cmd\":\"wait\",\"gen\":2,\"timeout_ms\":120000}")
            .expect("wait");

        let results: Vec<(u64, u64, BTreeMap<u64, String>)> = handles
            .into_iter()
            .map(|h| h.join().expect("reader"))
            .collect();
        ctl.request("{\"cmd\":\"shutdown\"}").expect("shutdown");
        let _ = daemon.join();
        let sent: u64 = results.iter().map(|(s, _, _)| s).sum();
        let answered: u64 = results.iter().map(|(_, a, _)| a).sum();
        let tables: Vec<BTreeMap<u64, String>> = results.into_iter().map(|(_, _, t)| t).collect();
        (sent, answered, tables)
    });
    let mut merged: BTreeMap<u64, String> = BTreeMap::new();
    for table in tables {
        for (gen, digest) in table {
            if let Some(seen) = merged.get(&gen) {
                assert_eq!(seen, &digest, "readers disagree on gen {gen}");
            }
            merged.insert(gen, digest);
        }
    }
    SwapRun {
        readers,
        sent,
        answered,
        table: merged,
    }
}

fn table_digest(table: &BTreeMap<u64, String>) -> u64 {
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for (gen, plan) in table {
        fnv(&mut digest, &gen.to_le_bytes());
        fnv(&mut digest, plan.as_bytes());
    }
    digest
}

struct AdmissionRun {
    threads: usize,
    checks: u64,
    digest: u64,
}

/// A fixed admission workload split across `threads` connections; the
/// sorted transcript digest must be thread-count independent.
fn admission_run(threads: usize) -> AdmissionRun {
    let spec = sprint_spec();
    // The daemon's generation-1 epoch is a deterministic function of the
    // spec, so enumerating pairs from a local solve names the same nodes.
    let epoch = spec.solve_epoch(1, 1.0, spec.seed, 0).expect("solve");
    let topo = epoch.inst.topo();
    let requests: Vec<String> = epoch
        .inst
        .pair_ids()
        .take(16)
        .flat_map(|p| {
            let (s, t) = epoch.inst.pair(p);
            let src = topo.node_name(s).to_string();
            let dst = topo.node_name(t).to_string();
            [0.0f64, 0.05, 1e9].into_iter().map(move |d| {
                format!("{{\"cmd\":\"admit\",\"src\":\"{src}\",\"dst\":\"{dst}\",\"demand\":{d}}}")
            })
        })
        .collect();

    let server = boot(spec);
    let addr = server.local_addr().expect("local addr").to_string();
    let mut transcript: Vec<(String, String)> = thread::scope(|s| {
        let daemon = s.spawn(|| server.run());
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let addr = addr.clone();
                let mine: Vec<String> = requests
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % threads == t)
                    .map(|(_, r)| r.clone())
                    .collect();
                s.spawn(move || {
                    let mut client = ServeClient::connect(&addr).expect("connect");
                    let resps = client.request_batch(&mine).expect("batch");
                    mine.into_iter()
                        .zip(resps.into_iter().map(|r| r.render()))
                        .collect::<Vec<(String, String)>>()
                })
            })
            .collect();
        let transcript: Vec<(String, String)> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("admitter"))
            .collect();
        let mut ctl = ServeClient::connect(&addr).expect("connect");
        ctl.request("{\"cmd\":\"shutdown\"}").expect("shutdown");
        let _ = daemon.join();
        transcript
    });
    transcript.sort();
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for (req, resp) in &transcript {
        fnv(&mut digest, req.as_bytes());
        fnv(&mut digest, resp.as_bytes());
    }
    AdmissionRun {
        threads,
        checks: transcript.len() as u64,
        digest,
    }
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve.json".into());
    let mut failures: Vec<String> = Vec::new();

    let qps = qps_section(&mut failures);
    println!(
        "qps: {} realize queries over {:.2}s with {READERS} readers -> {:.0} qps (stage {})",
        qps.queries, qps.elapsed_secs, qps.qps, qps.stage
    );

    let latency = event_section(&mut failures);
    println!(
        "events: {} commands, p50 {} ns, p99 {} ns",
        latency.events, latency.p50_ns, latency.p99_ns
    );

    let swap1 = swap_run(1);
    let swap8 = swap_run(READERS);
    for run in [&swap1, &swap8] {
        println!(
            "hot swap ({} reader(s)): {}/{} queries answered, {} generation(s)",
            run.readers,
            run.answered,
            run.sent,
            run.table.len()
        );
        if run.answered != run.sent {
            failures.push(format!(
                "hot swap with {} reader(s) lost {} queries",
                run.readers,
                run.sent - run.answered
            ));
        }
        if !run.table.contains_key(&2) {
            failures.push(format!(
                "hot swap with {} reader(s) never observed generation 2",
                run.readers
            ));
        }
    }
    let (swap_digest_1, swap_digest_8) = (table_digest(&swap1.table), table_digest(&swap8.table));
    // Both runs re-solve the same spec at the same scales, so the full
    // generation→digest tables must agree byte-for-byte.
    if swap1.table != swap8.table {
        failures.push("swap generation→digest tables differ across thread counts".into());
    }

    let adm1 = admission_run(1);
    let adm8 = admission_run(READERS);
    println!(
        "admission: {} checks, digest {:016x} (1 thread) vs {:016x} ({} threads)",
        adm1.checks, adm1.digest, adm8.digest, adm8.threads
    );
    if adm1.digest != adm8.digest {
        failures.push("admission transcript digests differ across thread counts".into());
    }

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"qps\": {{\"topology\": \"Sprint\", \"scheme\": \"ffc\", \
         \"plan_f\": 1, \"scenario_dead_links\": {}, \"readers\": {READERS}, \
         \"batch_depth\": {BATCH_DEPTH}, \"queries\": {}, \"elapsed_secs\": {:.3}, \
         \"qps\": {:.0}, \"stage\": \"{}\", \"gate_qps\": {QPS_GATE:.0}}},\n  \
         \"event_latency\": {{\"events\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \
         \"gate_p99_ns\": {EVENT_P99_GATE_NS}}},\n  \
         \"hot_swap\": {{\"sent_1\": {}, \"answered_1\": {}, \"sent_8\": {}, \"answered_8\": {}, \
         \"generations\": {}, \"table_digest_1\": \"{:016x}\", \"table_digest_8\": \"{:016x}\"}},\n  \
         \"admission\": {{\"checks\": {}, \"digest_1\": \"{:016x}\", \"digest_8\": \"{:016x}\"}},\n  \
         \"pass\": {}\n}}\n",
        SCENARIO.len(),
        qps.queries,
        qps.elapsed_secs,
        qps.qps,
        qps.stage,
        latency.events,
        latency.p50_ns,
        latency.p99_ns,
        swap1.sent,
        swap1.answered,
        swap8.sent,
        swap8.answered,
        swap8.table.len(),
        swap_digest_1,
        swap_digest_8,
        adm1.checks,
        adm1.digest,
        adm8.digest,
        failures.is_empty(),
    );
    std::fs::write(&out, &json).expect("write report");
    println!("wrote {out}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("all acceptance bounds met");
}
