//! Property tests for the replay engine, on the workspace's deterministic
//! `forall` harness.
//!
//! The two contracts that make the factorization cache trustworthy:
//!
//! 1. **Bit-identity** — for any trace, realizing through the cached
//!    engine produces exactly (`f64::to_bits` exactly) the routing the
//!    cold path (`realize_routing` on a freshly built `FailureState`)
//!    produces, including agreeing on errors.
//! 2. **Determinism** — the same seed yields the same trace, and replaying
//!    it twice (or across different thread counts) yields identical
//!    reports.

use pcf_core::{
    pcf_ls_instance, realize_routing, solve_pcf_ls, DegradeMode, FailureModel, FailureState,
    Instance, RobustOptions,
};
use pcf_replay::{
    replay_batch, replay_trace, EventKind, EventStage, EventTrace, FaultInjector, ReplayEngine,
    ReplayOptions,
};
use pcf_rng::{forall, Config, Pcg32};
use pcf_topology::zoo;
use pcf_traffic::gravity;

/// One solved plan shared by every property case (solving dominates the
/// test's cost; the properties vary the traces, not the plan).
fn sprint_plan() -> (Instance, Vec<f64>, Vec<f64>, Vec<f64>) {
    let topo = zoo::build("Sprint");
    let tm = gravity(&topo, 11);
    let inst = pcf_ls_instance(&topo, &tm, 3);
    let sol = solve_pcf_ls(&inst, &FailureModel::links(1), &RobustOptions::default());
    let served: Vec<f64> = inst
        .pair_ids()
        .map(|p| sol.z[p.0] * inst.demand(p))
        .collect();
    (inst, sol.a, sol.b, served)
}

/// Trace parameters a property case explores.
#[derive(Debug, Clone)]
struct TraceParams {
    seed: u64,
    events: usize,
    max_down: usize,
    cache_capacity: usize,
}

fn gen_params(rng: &mut Pcg32) -> TraceParams {
    TraceParams {
        seed: rng.next_u64(),
        events: rng.range_usize(10, 80),
        // max_down 2 exceeds the f=1 plan on purpose: error paths must be
        // bit-identical too.
        max_down: rng.range_usize_inclusive(1, 2),
        cache_capacity: *rng.pick(&[1usize, 2, 8, 1024]),
    }
}

fn shrink_params(p: &TraceParams) -> Vec<TraceParams> {
    let mut out = Vec::new();
    if p.events > 1 {
        out.push(TraceParams {
            events: p.events / 2,
            ..p.clone()
        });
        out.push(TraceParams {
            events: p.events - 1,
            ..p.clone()
        });
    }
    if p.max_down > 1 {
        out.push(TraceParams {
            max_down: p.max_down - 1,
            ..p.clone()
        });
    }
    out
}

#[test]
fn cached_engine_is_bit_identical_to_cold_realization() {
    let (inst, a, b, served) = sprint_plan();
    forall(
        "cached replay == cold realize_routing, bit for bit",
        &Config::with_cases(16),
        gen_params,
        shrink_params,
        |p| {
            let trace = EventTrace::flaps(inst.topo(), p.events, p.max_down, p.seed);
            let mut engine = ReplayEngine::new(&inst, &a, &b, &served, 1e-6, p.cache_capacity);
            let mut mask = vec![false; inst.topo().link_count()];
            for (i, ev) in trace.events.iter().enumerate() {
                engine
                    .apply(ev)
                    .map_err(|e| format!("event {i}: apply failed: {e}"))?;
                mask[ev.link.index()] = ev.kind == EventKind::Down;
                let state = FailureState::new(&inst, &mask).expect("valid mask");
                let cached = engine.realize();
                let cold = realize_routing(&inst, &state, &a, &b, &served, 1e-6);
                match (cached, cold) {
                    (Ok(x), Ok(y)) => {
                        if x.pairs != y.pairs {
                            return Err(format!("event {i}: pair sets differ"));
                        }
                        for (j, (c, f)) in x.u.iter().zip(&y.u).enumerate() {
                            if c.to_bits() != f.to_bits() {
                                return Err(format!(
                                    "event {i}: u[{j}] cached {c:e} != cold {f:e}"
                                ));
                            }
                        }
                        for (j, (c, f)) in x.arc_loads.iter().zip(&y.arc_loads).enumerate() {
                            if c.to_bits() != f.to_bits() {
                                return Err(format!(
                                    "event {i}: arc_loads[{j}] cached {c:e} != cold {f:e}"
                                ));
                            }
                        }
                    }
                    (Err(x), Err(y)) => {
                        if x != y {
                            return Err(format!("event {i}: errors differ: {x:?} vs {y:?}"));
                        }
                    }
                    (x, y) => {
                        return Err(format!("event {i}: cached {x:?} disagrees with cold {y:?}"))
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn same_seed_replay_is_deterministic() {
    let (inst, a, b, served) = sprint_plan();
    forall(
        "same seed, same report",
        &Config::with_cases(12),
        gen_params,
        shrink_params,
        |p| {
            let t1 = EventTrace::flaps(inst.topo(), p.events, p.max_down, p.seed);
            let t2 = EventTrace::flaps(inst.topo(), p.events, p.max_down, p.seed);
            if t1 != t2 {
                return Err("generator is not deterministic".into());
            }
            let opts = ReplayOptions {
                cache_capacity: p.cache_capacity,
                ..ReplayOptions::default()
            };
            let r1 = replay_trace(&inst, &a, &b, &served, &t1, &opts);
            let r2 = replay_trace(&inst, &a, &b, &served, &t2, &opts);
            // Latency differs run to run; everything else must not.
            if r1.event_utilization != r2.event_utilization {
                return Err("utilizations differ across identical replays".into());
            }
            if r1.violations != r2.violations {
                return Err("violations differ across identical replays".into());
            }
            if r1.cache != r2.cache {
                return Err(format!(
                    "cache stats differ: {:?} vs {:?}",
                    r1.cache, r2.cache
                ));
            }
            Ok(())
        },
    );
}

#[test]
fn batch_report_is_thread_count_invariant() {
    let (inst, a, b, served) = sprint_plan();
    let traces: Vec<EventTrace> = (0..5)
        .map(|s| EventTrace::flaps(inst.topo(), 40, 1, 900 + s))
        .collect();
    let run = |threads| {
        let opts = ReplayOptions {
            threads,
            ..ReplayOptions::default()
        };
        replay_batch(&inst, &a, &b, &served, &traces, &opts)
    };
    let base = run(1);
    for threads in [2, 3, 8] {
        let r = run(threads);
        assert_eq!(
            base.event_utilization, r.event_utilization,
            "{threads} threads"
        );
        assert_eq!(base.violations, r.violations, "{threads} threads");
        assert_eq!(base.cache, r.cache, "{threads} threads");
    }
}

/// Chaos parameters a degrade property case explores.
#[derive(Debug, Clone)]
struct ChaosParams {
    seed: u64,
    events: usize,
    f: usize,
    mode: DegradeMode,
}

fn gen_chaos(rng: &mut Pcg32) -> ChaosParams {
    ChaosParams {
        seed: rng.next_u64(),
        events: rng.range_usize(10, 60),
        // Well beyond the f=1 plan: the ladder must carry the slack.
        f: rng.range_usize_inclusive(2, 8),
        mode: *rng.pick(&[DegradeMode::Rescale, DegradeMode::Shed]),
    }
}

fn shrink_chaos(p: &ChaosParams) -> Vec<ChaosParams> {
    let mut out = Vec::new();
    if p.events > 1 {
        out.push(ChaosParams {
            events: p.events / 2,
            ..p.clone()
        });
    }
    if p.f > 2 {
        out.push(ChaosParams {
            f: p.f - 1,
            ..p.clone()
        });
    }
    out
}

/// The tentpole contract: with a degrade mode on, any chaos trace — deep
/// beyond-budget failures plus capacity wobble — replays with no panic,
/// no blank event, and a ladder stage on every event.
#[test]
fn degraded_replay_is_total_under_chaos() {
    let (inst, a, b, served) = sprint_plan();
    let total_served: f64 = served.iter().sum();
    forall(
        "degraded replay serves every event",
        &Config::with_cases(12),
        gen_chaos,
        shrink_chaos,
        |p| {
            let trace = FaultInjector::new(p.seed).chaos(inst.topo(), p.events, p.f);
            let opts = ReplayOptions {
                degrade: p.mode,
                ..ReplayOptions::default()
            };
            let r = replay_trace(&inst, &a, &b, &served, &trace, &opts);
            if r.events != trace.len() {
                return Err(format!("replay stopped at {}/{}", r.events, trace.len()));
            }
            if r.event_stage.len() != trace.len() || r.event_shed.len() != trace.len() {
                return Err("per-event vectors out of step with the trace".into());
            }
            for (i, (&stage, &shed)) in r.event_stage.iter().zip(&r.event_shed).enumerate() {
                if stage == EventStage::Failed {
                    return Err(format!("event {i} fell off the ladder"));
                }
                if !(0.0..=total_served + 1e-9).contains(&shed) {
                    return Err(format!("event {i}: shed {shed} out of [0, total]"));
                }
                if stage == EventStage::Normal && shed > 1e-9 {
                    return Err(format!("event {i}: stage-1 event sheds demand"));
                }
            }
            if r.degrade.total() != trace.len() as u64 {
                return Err(format!(
                    "degrade counters {:?} don't cover the trace",
                    r.degrade
                ));
            }
            if r.worst_overload < 0.0 {
                return Err("negative overload bound".into());
            }
            // Identical replays agree exactly (degraded paths included).
            let r2 = replay_trace(&inst, &a, &b, &served, &trace, &opts);
            if r.event_stage != r2.event_stage
                || r.event_shed != r2.event_shed
                || r.event_utilization != r2.event_utilization
            {
                return Err("degraded replay is not deterministic".into());
            }
            Ok(())
        },
    );
}

/// Partial-capacity degradation threads through the batch path without
/// breaking determinism: a mixed fleet of degradation storms, flaps, and
/// interleaved degrade+failure traces produces byte-identical
/// deterministic JSON (utilization and degrade digests included) at every
/// thread count.
#[test]
fn degraded_capacity_batch_digests_are_thread_count_invariant() {
    let (inst, a, b, served) = sprint_plan();
    let inj = FaultInjector::new(77);
    let mut traces: Vec<EventTrace> = (0..3)
        .map(|s| EventTrace::flaps(inst.topo(), 30, 1, 700 + s))
        .collect();
    traces.push(inj.degradation_storm(inst.topo(), 40, 400));
    // Interleave degradations with failures inside one trace.
    let mut mixed = EventTrace::flaps(inst.topo(), 30, 1, 910);
    let storm = inj.degradation_storm(inst.topo(), 30, 500);
    mixed.events = mixed
        .events
        .iter()
        .zip(&storm.events)
        .flat_map(|(&x, &y)| [x, y])
        .collect();
    mixed.name = "mixed_degrade_flaps".into();
    traces.push(mixed);
    let run = |threads| {
        let opts = ReplayOptions {
            threads,
            degrade: DegradeMode::Shed,
            ..ReplayOptions::default()
        };
        replay_batch(&inst, &a, &b, &served, &traces, &opts)
    };
    let base = run(1);
    assert!(base.events > 0);
    let base_json = base.deterministic_json();
    assert!(base_json.contains("\"utilization_digest\""));
    for threads in [2, 3, 8] {
        let r = run(threads);
        assert_eq!(
            base_json,
            r.deterministic_json(),
            "degraded batch diverged at {threads} threads"
        );
    }
}

/// The parser never panics on corrupt text, and when it rejects a trace
/// the error points at a line inside it.
#[test]
fn trace_parser_is_total_on_malformed_text() {
    forall(
        "parse rejects fuzzed traces gracefully",
        &Config::with_cases(40),
        |rng| (rng.next_u64(), rng.range_usize(1, 60)),
        |&(seed, lines)| {
            if lines > 1 {
                vec![(seed, lines / 2), (seed, lines - 1)]
            } else {
                Vec::new()
            }
        },
        |&(seed, lines)| {
            let text = FaultInjector::new(seed).malformed_trace(lines);
            match EventTrace::parse("fuzz", &text) {
                Ok(_) => Err("poisoned trace parsed cleanly".into()),
                Err(e) => {
                    if e.line < 1 || e.line > lines {
                        return Err(format!("error line {} outside 1..={lines}", e.line));
                    }
                    if e.to_string().is_empty() {
                        return Err("empty parse error message".into());
                    }
                    Ok(())
                }
            }
        },
    );
}
