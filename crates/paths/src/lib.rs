//! Path algorithms for the PCF reproduction.
//!
//! Provides the machinery the paper's evaluation setup needs:
//!
//! * [`shortest_path`] — hop-count Dijkstra with a dead-link mask;
//! * [`yen_k_shortest`] — Yen's algorithm for the k shortest simple paths,
//!   used as the candidate pool for tunnel selection;
//! * [`select_tunnels`] — the paper's tunnel choice rule: "as disjoint as
//!   possible, preferring shorter ones when there are multiple choices" (§5);
//! * [`widest_path`] — maximum-bottleneck path over an arbitrary weighted
//!   digraph, used to decompose logical flows into logical sequences (§3.5).

use pcf_topology::{ArcId, LinkId, NodeId, Topology};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A simple path through a topology: `nodes.len() == links.len() + 1`,
/// `links[i]` connects `nodes[i]` and `nodes[i+1]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Path {
    /// Visited nodes, source first.
    pub nodes: Vec<NodeId>,
    /// Traversed links, in order.
    pub links: Vec<LinkId>,
}

impl Path {
    /// The source node.
    ///
    /// # Panics
    /// Panics on a malformed empty path; every constructor in this crate
    /// produces at least one node.
    pub fn source(&self) -> NodeId {
        // audit:allow(no-panic-paths, documented contract; all constructors yield non-empty node lists) audit:allow(panic-reachability, same invariant: paths are built by this crate's own algorithms)
        *self.nodes.first().expect("path has at least one node")
    }

    /// The destination node.
    ///
    /// # Panics
    /// Panics on a malformed empty path; every constructor in this crate
    /// produces at least one node.
    pub fn dest(&self) -> NodeId {
        // audit:allow(no-panic-paths, documented contract; all constructors yield non-empty node lists) audit:allow(panic-reachability, same invariant: paths are built by this crate's own algorithms)
        *self.nodes.last().expect("path has at least one node")
    }

    /// Hop count.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the path has no links (source == dest).
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Whether the path uses the given link.
    pub fn uses(&self, l: LinkId) -> bool {
        self.links.contains(&l)
    }

    /// Number of links shared with another path.
    pub fn shared_links(&self, other: &Path) -> usize {
        self.links
            .iter()
            .filter(|l| other.links.contains(l))
            .count()
    }

    /// Whether the path visits each node at most once.
    pub fn is_simple(&self) -> bool {
        let mut seen = self.nodes.clone();
        seen.sort();
        seen.windows(2).all(|w| w[0] != w[1])
    }

    /// Minimum capacity over the path's links.
    pub fn bottleneck(&self, topo: &Topology) -> f64 {
        self.links
            .iter()
            .map(|&l| topo.capacity(l))
            .fold(f64::INFINITY, f64::min)
    }
}

#[derive(Debug, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on dist (reverse), ties by node id for determinism.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra from `s` to `t` with per-link weights and a dead-link mask.
///
/// `weight(l)` must be non-negative; `dead[l]` (if provided) removes links.
/// Ties are broken deterministically toward smaller node ids. Returns `None`
/// when `t` is unreachable.
pub fn shortest_path_weighted(
    topo: &Topology,
    s: NodeId,
    t: NodeId,
    weight: impl Fn(LinkId) -> f64,
    dead: Option<&[bool]>,
) -> Option<Path> {
    let n = topo.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[s.index()] = 0.0;
    heap.push(HeapEntry { dist: 0.0, node: s });
    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if d > dist[u.index()] {
            continue;
        }
        if u == t {
            break;
        }
        for &(w, l) in topo.incident(u) {
            if let Some(mask) = dead {
                if mask[l.index()] {
                    continue;
                }
            }
            let wl = weight(l);
            debug_assert!(wl >= 0.0, "negative link weight");
            let nd = d + wl;
            if nd < dist[w.index()] - 1e-15 {
                dist[w.index()] = nd;
                prev[w.index()] = Some((u, l));
                heap.push(HeapEntry { dist: nd, node: w });
            }
        }
    }
    if dist[t.index()].is_infinite() {
        return None;
    }
    let mut nodes = vec![t];
    let mut links = Vec::new();
    let mut cur = t;
    while cur != s {
        // A finite distance implies a recorded predecessor; bail out rather
        // than panic if the invariant is ever broken.
        let Some((p, l)) = prev[cur.index()] else {
            return None;
        };
        nodes.push(p);
        links.push(l);
        cur = p;
    }
    nodes.reverse();
    links.reverse();
    Some(Path { nodes, links })
}

/// Hop-count shortest path (all links weight 1).
pub fn shortest_path(topo: &Topology, s: NodeId, t: NodeId) -> Option<Path> {
    shortest_path_weighted(topo, s, t, |_| 1.0, None)
}

/// Yen's algorithm: the `k` shortest simple paths from `s` to `t` by hop
/// count, in non-decreasing length, deterministic tie order.
///
/// Returns fewer than `k` paths when the graph does not contain that many
/// simple paths.
pub fn yen_k_shortest(topo: &Topology, s: NodeId, t: NodeId, k: usize) -> Vec<Path> {
    let mut found: Vec<Path> = Vec::new();
    let Some(first) = shortest_path(topo, s, t) else {
        return found;
    };
    found.push(first);
    let mut candidates: Vec<Path> = Vec::new();
    while found.len() < k {
        let Some(last) = found.last().cloned() else {
            break;
        };
        // Spur from each node of the last found path.
        for i in 0..last.nodes.len() - 1 {
            let spur_node = last.nodes[i];
            let root_nodes = &last.nodes[..=i];
            let root_links = &last.links[..i];
            // Mask links that would recreate already-found paths with this root.
            let mut dead = vec![false; topo.link_count()];
            for p in found.iter().chain(candidates.iter()) {
                if p.nodes.len() > i && p.nodes[..=i] == *root_nodes {
                    if let Some(&l) = p.links.get(i) {
                        dead[l.index()] = true;
                    }
                }
            }
            // Mask links touching interior root nodes so paths stay simple.
            for &rn in &root_nodes[..i] {
                for &(_, l) in topo.incident(rn) {
                    dead[l.index()] = true;
                }
            }
            let Some(spur) = shortest_path_weighted(topo, spur_node, t, |_| 1.0, Some(&dead))
            else {
                continue;
            };
            let mut nodes = root_nodes.to_vec();
            nodes.extend_from_slice(&spur.nodes[1..]);
            let mut links = root_links.to_vec();
            links.extend_from_slice(&spur.links);
            let cand = Path { nodes, links };
            if !cand.is_simple() {
                continue;
            }
            if !found.contains(&cand) && !candidates.contains(&cand) {
                candidates.push(cand);
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Take shortest candidate; deterministic tie-break on node sequence.
        let Some(best) = candidates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.len().cmp(&b.len()).then_with(|| a.nodes.cmp(&b.nodes)))
            .map(|(i, _)| i)
        else {
            break;
        };
        found.push(candidates.swap_remove(best));
    }
    found
}

/// Selects `k` tunnels between `s` and `t` following the paper's rule:
/// tunnels "as disjoint as possible, preferring shorter ones when there are
/// multiple choices".
///
/// Candidates are generated on the *collapsed* graph (parallel links merged)
/// so that multigraphs — in particular the paper's sub-link topologies —
/// contribute one candidate per node route; each route is then expanded into
/// parallel-link variants where variant `v` consistently takes the `v`-th
/// parallel link of every hop, which makes variants mutually link-disjoint
/// wherever parallelism allows. Greedy selection then minimizes, in order,
/// (1) the maximum per-link overlap the selection would create (the quantity
/// that drives FFC's `p_st`), (2) total links shared with already selected
/// tunnels, (3) hop length, (4) discovery order.
pub fn select_tunnels(topo: &Topology, s: NodeId, t: NodeId, k: usize) -> Vec<Path> {
    // Group parallel links by unordered endpoint pair.
    let mut groups: std::collections::HashMap<(NodeId, NodeId), Vec<LinkId>> =
        std::collections::HashMap::new();
    let mut max_par = 1usize;
    for l in topo.links() {
        let link = topo.link(l);
        let key = (link.u.min(link.v), link.u.max(link.v));
        let g = groups.entry(key).or_default();
        g.push(l);
        max_par = max_par.max(g.len());
    }
    let pool: Vec<Path> = if max_par == 1 {
        let mut pool = yen_k_shortest(topo, s, t, (4 * k).max(12));
        // Guarantee a fully disjoint pair is always on offer (Yen's pool,
        // ordered by length, can miss a long disjoint alternative).
        if let Some((q1, q2)) = edge_disjoint_pair(topo, s, t) {
            for q in [q1, q2] {
                if !pool.contains(&q) {
                    pool.push(q);
                }
            }
        }
        pool
    } else {
        // Collapsed simple graph with the same node ids.
        let mut simple = Topology::new("collapsed");
        for n in topo.nodes() {
            simple.add_node(topo.node_name(n).to_string());
        }
        // Deterministic order over groups.
        let mut keys: Vec<(NodeId, NodeId)> = groups.keys().copied().collect();
        keys.sort();
        let mut group_of: Vec<&Vec<LinkId>> = Vec::new();
        for key in &keys {
            simple.add_link(key.0, key.1, 1.0);
            group_of.push(&groups[key]);
        }
        let mut routes = yen_k_shortest(&simple, s, t, (4 * k).max(12));
        if let Some((q1, q2)) = edge_disjoint_pair(&simple, s, t) {
            for q in [q1, q2] {
                if !routes.contains(&q) {
                    routes.push(q);
                }
            }
        }
        let mut pool = Vec::new();
        for route in routes {
            for v in 0..max_par {
                let links: Vec<LinkId> = route
                    .links
                    .iter()
                    .map(|cl| {
                        let g = group_of[cl.index()];
                        g[v % g.len()]
                    })
                    .collect();
                let cand = Path {
                    nodes: route.nodes.clone(),
                    links,
                };
                if !pool.contains(&cand) {
                    pool.push(cand);
                }
            }
        }
        pool
    };
    let mut chosen: Vec<Path> = Vec::new();
    let mut usage = vec![0usize; topo.link_count()];
    // Seed with a minimum-total-length disjoint pair (when k >= 2 and one
    // exists): disjointness dominates the selection criteria, and a greedy
    // start from the single shortest path can make a disjoint second tunnel
    // impossible (the classic "trap" topology).
    if k >= 2 {
        let mut seed: Vec<Path> = Vec::new();
        for cand in &pool {
            if seed.is_empty() || (seed.len() == 1 && cand.shared_links(&seed[0]) == 0) {
                seed.push(cand.clone());
            }
            if seed.len() == 2 {
                break;
            }
        }
        if seed.len() < 2 {
            seed.clear();
            if let Some((q1, q2)) = edge_disjoint_pair(topo, s, t) {
                let (short, long) = if q1.len() <= q2.len() {
                    (q1, q2)
                } else {
                    (q2, q1)
                };
                seed.push(short);
                seed.push(long);
            }
        }
        for path in seed {
            for l in &path.links {
                usage[l.index()] += 1;
            }
            chosen.push(path);
        }
    }
    while chosen.len() < k {
        let mut best: Option<(usize, (usize, usize, usize, usize))> = None;
        for (idx, cand) in pool.iter().enumerate() {
            if chosen.contains(cand) {
                continue;
            }
            let max_overlap = cand
                .links
                .iter()
                .map(|l| usage[l.index()] + 1)
                .max()
                .unwrap_or(1);
            let shared: usize = cand.links.iter().map(|l| usage[l.index()]).sum();
            let key = (max_overlap, shared, cand.len(), idx);
            if best.is_none_or(|(_, bk)| key < bk) {
                best = Some((idx, key));
            }
        }
        let Some((idx, _)) = best else { break };
        for l in &pool[idx].links {
            usage[l.index()] += 1;
        }
        chosen.push(pool[idx].clone());
    }
    chosen
}

/// Shortest pair of edge-disjoint paths between `s` and `t` (Bhandari's
/// algorithm), or `None` when the pair is separated by a bridge.
///
/// Guarantees the paper's evaluation premise that "any node pair has at
/// least two disjoint physical tunnels" on 2-edge-connected topologies even
/// when the k-shortest pool alone would miss the (possibly much longer)
/// disjoint alternative.
pub fn edge_disjoint_pair(topo: &Topology, s: NodeId, t: NodeId) -> Option<(Path, Path)> {
    let p1 = shortest_path(topo, s, t)?;
    // Bellman-Ford on the residual digraph: arcs of p1 (in its direction)
    // are removed; their reverses get weight -1; all other arcs weight +1.
    let n = topo.node_count();
    let mut removed = vec![false; topo.arc_count()]; // arc unusable
    let mut weight = vec![1.0f64; topo.arc_count()];
    for (i, &l) in p1.links.iter().enumerate() {
        let fwd = topo.arc_from(l, p1.nodes[i]);
        removed[fwd.index()] = true;
        weight[fwd.reversed().index()] = -1.0;
    }
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<ArcId>> = vec![None; n];
    dist[s.index()] = 0.0;
    for _ in 0..n {
        let mut changed = false;
        for arc in topo.arcs() {
            if removed[arc.index()] {
                continue;
            }
            let u = topo.arc_src(arc);
            let v = topo.arc_dst(arc);
            if dist[u.index()].is_finite() {
                let nd = dist[u.index()] + weight[arc.index()];
                if nd < dist[v.index()] - 1e-12 {
                    dist[v.index()] = nd;
                    prev[v.index()] = Some(arc);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    if !dist[t.index()].is_finite() {
        return None;
    }
    // Arc multiset of both paths, canceling opposite traversals.
    let mut use_count: std::collections::HashMap<u32, i32> = std::collections::HashMap::new();
    for (i, &l) in p1.links.iter().enumerate() {
        let fwd = topo.arc_from(l, p1.nodes[i]);
        *use_count.entry(fwd.0).or_insert(0) += 1;
    }
    let mut cur = t;
    let mut guard = 0;
    while cur != s {
        guard += 1;
        if guard > topo.arc_count() + 1 {
            return None; // negative-cycle guard (cannot happen with simple p1)
        }
        let arc = prev[cur.index()]?;
        let rev = arc.reversed();
        match use_count.get_mut(&rev.0) {
            Some(cnt) if *cnt > 0 => *cnt -= 1, // cancel the reverse arc
            _ => *use_count.entry(arc.0).or_insert(0) += 1,
        }
        cur = topo.arc_src(arc);
    }
    // Walk two arc-disjoint s->t paths through the surviving arc set.
    let mut out_arcs: Vec<Vec<ArcId>> = vec![Vec::new(); n];
    for (&arc, &cnt) in &use_count {
        for _ in 0..cnt.max(0) {
            let a = ArcId(arc);
            out_arcs[topo.arc_src(a).index()].push(a);
        }
    }
    let mut walk = || -> Option<Path> {
        let mut nodes = vec![s];
        let mut links = Vec::new();
        let mut cur = s;
        let mut steps = 0;
        while cur != t {
            steps += 1;
            if steps > topo.arc_count() + 1 {
                return None;
            }
            let arc = out_arcs[cur.index()].pop()?;
            links.push(arc.link());
            cur = topo.arc_dst(arc);
            // Strip any incidental loop so tunnels stay simple paths.
            if let Some(pos) = nodes.iter().position(|&n| n == cur) {
                nodes.truncate(pos + 1);
                links.truncate(pos);
            } else {
                nodes.push(cur);
            }
        }
        Some(Path { nodes, links })
    };
    let q1 = walk()?;
    let q2 = walk()?;
    debug_assert_eq!(q1.shared_links(&q2), 0, "Bhandari paths must be disjoint");
    Some((q1, q2))
}

/// Maximum-bottleneck (widest) path on an arbitrary weighted digraph given
/// as `(from, to, width)` edges over `n` nodes. Returns the node sequence
/// and achieved bottleneck width, or `None` if `t` is unreachable from `s`.
///
/// Used to decompose a logical flow into a logical sequence (paper §3.5):
/// nodes are routers, edge widths are the flow `p_w(i,j)` on each logical
/// segment.
pub fn widest_path(
    n: usize,
    edges: &[(usize, usize, f64)],
    s: usize,
    t: usize,
) -> Option<(Vec<usize>, f64)> {
    assert!(s < n && t < n);
    let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for &(u, v, w) in edges {
        assert!(u < n && v < n, "edge endpoint out of range");
        if w > 0.0 {
            adj[u].push((v, w));
        }
    }
    if s == t {
        return Some((vec![s], f64::INFINITY));
    }
    let mut width = vec![0.0f64; n];
    let mut prev: Vec<Option<usize>> = vec![None; n];
    let mut visited = vec![false; n];
    width[s] = f64::INFINITY;
    loop {
        // Pick unvisited node of maximum width (deterministic tie-break).
        let mut u = None;
        let mut best = 0.0;
        for i in 0..n {
            if !visited[i] && width[i] > best {
                best = width[i];
                u = Some(i);
            }
        }
        let Some(u) = u else { break };
        if u == t {
            break;
        }
        visited[u] = true;
        for &(v, w) in &adj[u] {
            let nw = width[u].min(w);
            if nw > width[v] {
                width[v] = nw;
                prev[v] = Some(u);
            }
        }
    }
    if width[t] <= 0.0 {
        return None;
    }
    let mut nodes = vec![t];
    let mut cur = t;
    while cur != s {
        // Positive width implies a recorded predecessor; bail out rather
        // than panic if the invariant is ever broken.
        let Some(p) = prev[cur] else {
            return None;
        };
        cur = p;
        nodes.push(cur);
    }
    nodes.reverse();
    Some((nodes, width[t]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcf_topology::zoo;

    /// 2x3 grid: 0-1-2 / 3-4-5 with verticals.
    fn grid() -> Topology {
        let mut t = Topology::new("grid");
        let n: Vec<_> = (0..6).map(|i| t.add_node(format!("n{i}"))).collect();
        t.add_link(n[0], n[1], 1.0); // e0
        t.add_link(n[1], n[2], 1.0); // e1
        t.add_link(n[3], n[4], 1.0); // e2
        t.add_link(n[4], n[5], 1.0); // e3
        t.add_link(n[0], n[3], 1.0); // e4
        t.add_link(n[1], n[4], 1.0); // e5
        t.add_link(n[2], n[5], 1.0); // e6
        t
    }

    #[test]
    fn shortest_path_prefers_fewest_hops() {
        let t = grid();
        let p = shortest_path(&t, NodeId(0), NodeId(2)).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.source(), NodeId(0));
        assert_eq!(p.dest(), NodeId(2));
        assert!(p.is_simple());
    }

    #[test]
    fn shortest_path_respects_dead_links() {
        let t = grid();
        let mut dead = vec![false; t.link_count()];
        dead[0] = true; // kill 0-1
        let p = shortest_path_weighted(&t, NodeId(0), NodeId(2), |_| 1.0, Some(&dead)).unwrap();
        assert!(!p.uses(LinkId(0)));
        assert_eq!(p.len(), 4); // 0-3-4-5-2 or 0-3-4-1-2
    }

    #[test]
    fn shortest_path_unreachable_is_none() {
        let mut t = Topology::new("split");
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        let d = t.add_node("d");
        t.add_link(a, b, 1.0);
        t.add_link(c, d, 1.0);
        assert!(shortest_path(&t, a, c).is_none());
    }

    #[test]
    fn weighted_dijkstra_uses_weights() {
        let t = grid();
        let p = shortest_path_weighted(
            &t,
            NodeId(0),
            NodeId(2),
            |l| if l == LinkId(1) { 10.0 } else { 1.0 },
            None,
        )
        .unwrap();
        assert!(!p.uses(LinkId(1)));
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn yen_returns_increasing_lengths_and_simple_paths() {
        let t = grid();
        let ps = yen_k_shortest(&t, NodeId(0), NodeId(5), 6);
        assert!(ps.len() >= 3);
        for w in ps.windows(2) {
            assert!(w[0].len() <= w[1].len());
        }
        for p in &ps {
            assert!(p.is_simple());
            assert_eq!(p.source(), NodeId(0));
            assert_eq!(p.dest(), NodeId(5));
        }
        for i in 0..ps.len() {
            for j in (i + 1)..ps.len() {
                assert_ne!(ps[i], ps[j]);
            }
        }
    }

    #[test]
    fn yen_finds_all_paths_in_small_graph() {
        // Triangle: exactly 2 simple paths between any pair.
        let mut t = Topology::new("tri");
        let n: Vec<_> = (0..3).map(|i| t.add_node(format!("n{i}"))).collect();
        t.add_link(n[0], n[1], 1.0);
        t.add_link(n[1], n[2], 1.0);
        t.add_link(n[2], n[0], 1.0);
        let ps = yen_k_shortest(&t, n[0], n[1], 10);
        assert_eq!(ps.len(), 2);
    }

    #[test]
    fn yen_handles_parallel_links() {
        let mut t = Topology::new("par");
        let a = t.add_node("a");
        let b = t.add_node("b");
        t.add_link(a, b, 1.0);
        t.add_link(a, b, 1.0);
        let ps = yen_k_shortest(&t, a, b, 5);
        assert_eq!(ps.len(), 2, "two parallel one-hop paths");
        assert_ne!(ps[0].links, ps[1].links);
    }

    #[test]
    fn tunnel_selection_prefers_disjoint() {
        let t = grid();
        let tunnels = select_tunnels(&t, NodeId(0), NodeId(2), 2);
        assert_eq!(tunnels.len(), 2);
        assert_eq!(tunnels[0].shared_links(&tunnels[1]), 0);
    }

    #[test]
    fn tunnel_selection_on_zoo_has_two_disjoint() {
        // Paper: "With all our topologies, any node pair has at least two
        // disjoint physical tunnels." Spot-check a few pairs.
        let t = zoo::build("Sprint");
        for (s, d) in [(0u32, 5u32), (2, 7), (1, 9)] {
            let tunnels = select_tunnels(&t, NodeId(s), NodeId(d), 2);
            assert_eq!(tunnels.len(), 2);
            assert_eq!(
                tunnels[0].shared_links(&tunnels[1]),
                0,
                "pair ({s},{d}) should have 2 disjoint tunnels"
            );
        }
    }

    #[test]
    fn tunnel_selection_three_tunnels_bounded_overlap() {
        let t = zoo::build("Sprint");
        let tunnels = select_tunnels(&t, NodeId(0), NodeId(5), 3);
        assert_eq!(tunnels.len(), 3);
        let mut usage = std::collections::HashMap::new();
        for p in &tunnels {
            for l in &p.links {
                *usage.entry(*l).or_insert(0usize) += 1;
            }
        }
        let p_st = usage.values().copied().max().unwrap();
        assert!(p_st <= 2, "selection should keep overlap low, got {p_st}");
    }

    #[test]
    fn widest_path_picks_max_bottleneck() {
        // 0->1->3 widths (5, 2); 0->2->3 widths (3, 3). Widest = 3 via node 2.
        let edges = [(0, 1, 5.0), (1, 3, 2.0), (0, 2, 3.0), (2, 3, 3.0)];
        let (nodes, w) = widest_path(4, &edges, 0, 3).unwrap();
        assert_eq!(nodes, vec![0, 2, 3]);
        assert!((w - 3.0).abs() < 1e-12);
    }

    #[test]
    fn widest_path_unreachable() {
        let edges = [(0, 1, 1.0)];
        assert!(widest_path(3, &edges, 0, 2).is_none());
    }

    #[test]
    fn widest_path_trivial_source_equals_dest() {
        let (nodes, w) = widest_path(2, &[], 1, 1).unwrap();
        assert_eq!(nodes, vec![1]);
        assert!(w.is_infinite());
    }

    #[test]
    fn path_bottleneck_uses_capacities() {
        let t = grid();
        let p = shortest_path(&t, NodeId(0), NodeId(2)).unwrap();
        assert_eq!(p.bottleneck(&t), 1.0);
    }
}

#[cfg(test)]
mod bhandari_tests {
    use super::*;
    use pcf_topology::zoo;

    #[test]
    fn disjoint_pair_on_every_zoo_pair() {
        // 2-edge-connected topologies always admit a disjoint pair; verify
        // across a sample of pairs on several networks.
        for name in ["Sprint", "IBM", "B4", "Darkstrand", "CWIX"] {
            let t = zoo::build(name);
            for s in t.nodes().step_by(3) {
                for d in t.nodes().step_by(4) {
                    if s == d {
                        continue;
                    }
                    let (q1, q2) = edge_disjoint_pair(&t, s, d)
                        .unwrap_or_else(|| panic!("{name}: no disjoint pair {s}->{d}"));
                    assert_eq!(q1.shared_links(&q2), 0);
                    assert_eq!(q1.source(), s);
                    assert_eq!(q2.dest(), d);
                    assert!(q1.is_simple() && q2.is_simple());
                }
            }
        }
    }

    #[test]
    fn disjoint_pair_none_across_bridge() {
        let mut t = Topology::new("bridge");
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        t.add_link(a, b, 1.0);
        t.add_link(b, c, 1.0);
        assert!(edge_disjoint_pair(&t, a, c).is_none());
    }

    #[test]
    fn selection_always_has_disjoint_pair_on_zoo() {
        // The invariant that broke FFC on IBM: k = 2 tunnels must be fully
        // disjoint on every pair of a 2-edge-connected topology.
        for name in ["IBM", "Darkstrand", "CRLNetwork", "Digex"] {
            let t = zoo::build(name);
            for s in t.nodes().step_by(4) {
                for d in t.nodes().step_by(5) {
                    if s == d {
                        continue;
                    }
                    let ts = select_tunnels(&t, s, d, 2);
                    assert_eq!(ts.len(), 2, "{name} {s}->{d}");
                    assert_eq!(
                        ts[0].shared_links(&ts[1]),
                        0,
                        "{name} {s}->{d}: tunnels share a link"
                    );
                }
            }
        }
    }

    #[test]
    fn bhandari_prefers_short_total_length() {
        // Diamond: the two 2-hop paths.
        let mut t = Topology::new("diamond");
        let s = t.add_node("s");
        let a = t.add_node("a");
        let b = t.add_node("b");
        let d = t.add_node("t");
        t.add_link(s, a, 1.0);
        t.add_link(a, d, 1.0);
        t.add_link(s, b, 1.0);
        t.add_link(b, d, 1.0);
        let (q1, q2) = edge_disjoint_pair(&t, s, d).unwrap();
        assert_eq!(q1.len() + q2.len(), 4);
    }

    #[test]
    fn bhandari_reroutes_through_trap_topology() {
        // The classic "trap": shortest path uses the middle edge, making a
        // naive second-disjoint-path search fail; Bhandari must recover.
        //   s - a - t     s - b - t    and a - b (the trap edge),
        // with the shortest path s-a-b-t (via cheap trap)... emulate with
        // hop counts: s-a, a-b, b-t, plus long arcs s-x-b and a-y-t.
        let mut t = Topology::new("trap");
        let s = t.add_node("s");
        let a = t.add_node("a");
        let b = t.add_node("b");
        let tt = t.add_node("t");
        let x = t.add_node("x");
        let y = t.add_node("y");
        t.add_link(s, a, 1.0);
        t.add_link(a, b, 1.0);
        t.add_link(b, tt, 1.0);
        t.add_link(s, x, 1.0);
        t.add_link(x, b, 1.0);
        t.add_link(a, y, 1.0);
        t.add_link(y, tt, 1.0);
        // Shortest path is s-a-b-t (3 hops); the disjoint pair must split
        // into s-a-y-t and s-x-b-t.
        let (q1, q2) = edge_disjoint_pair(&t, s, tt).unwrap();
        assert_eq!(q1.shared_links(&q2), 0);
        assert_eq!(q1.len() + q2.len(), 6);
    }
}
