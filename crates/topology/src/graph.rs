//! Capacitated multigraph used throughout the PCF reproduction.
//!
//! The paper models a network as an undirected graph `G = <V, E>` where each
//! link `e` has a capacity `c_e`. Traffic engineering formulations operate on
//! *directed arcs*: every undirected link contributes one arc per direction,
//! and — as is standard for full-duplex WAN links (and as FFC/PCF assume) —
//! each direction independently offers the full link capacity. A link
//! *failure* removes both directions at once.
//!
//! Parallel links are allowed; they are required for the paper's sub-link
//! experiments (§5, Fig. 12) where every physical link is split into two
//! independently-failing sub-links of half capacity.

use std::fmt;

/// Index of a node in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Index of an undirected link in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

/// A directed arc: one direction of an undirected link.
///
/// Arc `2*l` points from `link.u` to `link.v`; arc `2*l + 1` points the other
/// way. Both share the link's failure state but have independent capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArcId(pub u32);

impl NodeId {
    /// Zero-based index as `usize`, for indexing parallel arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    /// Zero-based index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The arc traversing this link from its `u` endpoint to its `v` endpoint.
    #[inline]
    pub fn forward(self) -> ArcId {
        ArcId(self.0 * 2)
    }

    /// The arc traversing this link from its `v` endpoint to its `u` endpoint.
    #[inline]
    pub fn backward(self) -> ArcId {
        ArcId(self.0 * 2 + 1)
    }
}

impl ArcId {
    /// Zero-based index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The undirected link this arc belongs to.
    #[inline]
    pub fn link(self) -> LinkId {
        LinkId(self.0 / 2)
    }

    /// Whether this arc runs from the link's `u` endpoint to its `v` endpoint.
    #[inline]
    pub fn is_forward(self) -> bool {
        self.0.is_multiple_of(2)
    }

    /// The arc traversing the same link in the opposite direction.
    #[inline]
    pub fn reversed(self) -> ArcId {
        ArcId(self.0 ^ 1)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An undirected capacitated link.
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    /// One endpoint.
    pub u: NodeId,
    /// The other endpoint.
    pub v: NodeId,
    /// Capacity per direction (full duplex), in abstract traffic units.
    pub capacity: f64,
    /// When this link was produced by splitting a physical link into
    /// sub-links (§5, Fig. 12), the original link's id in the parent
    /// topology; `None` for ordinary links.
    pub sublink_of: Option<LinkId>,
}

impl Link {
    /// The endpoint opposite to `n`.
    ///
    /// # Panics
    /// Panics if `n` is not an endpoint of the link.
    pub fn other(&self, n: NodeId) -> NodeId {
        if n == self.u {
            self.v
        } else if n == self.v {
            self.u
        } else {
            // audit:allow(no-panic-paths, documented contract; callers pass endpoints read from this link's own adjacency)
            panic!("node {n} is not an endpoint of link {self:?}");
        }
    }

    /// Whether `n` is one of the two endpoints.
    pub fn touches(&self, n: NodeId) -> bool {
        n == self.u || n == self.v
    }
}

/// A capacitated multigraph network topology.
///
/// Construction is append-only via [`Topology::add_node`] /
/// [`Topology::add_link`]; adjacency indices are built lazily and cached on
/// first use by cloning into the immutable accessors, so typical usage is
/// build-then-query.
#[derive(Debug, Clone)]
pub struct Topology {
    name: String,
    node_names: Vec<String>,
    links: Vec<Link>,
    /// adjacency[u] = list of (neighbor, link) incident to u, in insertion order.
    adjacency: Vec<Vec<(NodeId, LinkId)>>,
}

impl Topology {
    /// Creates an empty topology with the given display name.
    pub fn new(name: impl Into<String>) -> Self {
        Topology {
            name: name.into(),
            node_names: Vec::new(),
            links: Vec::new(),
            adjacency: Vec::new(),
        }
    }

    /// Display name (e.g. the Topology Zoo network name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a node with the given label and returns its id.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.node_names.len() as u32);
        self.node_names.push(name.into());
        self.adjacency.push(Vec::new());
        id
    }

    /// Adds an undirected link between `u` and `v` with the given per-direction
    /// capacity, and returns its id.
    ///
    /// # Panics
    /// Panics if `u == v` (self loops are meaningless for routing), if either
    /// endpoint is out of range, or if `capacity` is not strictly positive
    /// and finite.
    pub fn add_link(&mut self, u: NodeId, v: NodeId, capacity: f64) -> LinkId {
        assert!(u != v, "self loop at {u} rejected");
        assert!(
            u.index() < self.node_names.len() && v.index() < self.node_names.len(),
            "endpoint out of range"
        );
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "capacity must be positive and finite, got {capacity}"
        );
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            u,
            v,
            capacity,
            sublink_of: None,
        });
        self.adjacency[u.index()].push((v, id));
        self.adjacency[v.index()].push((u, id));
        id
    }

    /// Like [`Topology::add_link`] but records the parent physical link of a
    /// sub-link (used by [`crate::transform::split_sublinks`]).
    pub fn add_sublink(&mut self, u: NodeId, v: NodeId, capacity: f64, parent: LinkId) -> LinkId {
        let id = self.add_link(u, v, capacity);
        self.links[id.index()].sublink_of = Some(parent);
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of undirected links (sub-links count individually).
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Number of directed arcs (`2 * link_count`).
    pub fn arc_count(&self) -> usize {
        self.links.len() * 2
    }

    /// All node ids, in order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_names.len() as u32).map(NodeId)
    }

    /// All link ids, in order.
    pub fn links(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.links.len() as u32).map(LinkId)
    }

    /// All arc ids, in order.
    pub fn arcs(&self) -> impl Iterator<Item = ArcId> + '_ {
        (0..self.arc_count() as u32).map(ArcId)
    }

    /// All ordered node pairs `(s, t)` with `s != t`.
    pub fn node_pairs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes()
            .flat_map(move |s| self.nodes().filter(move |&t| t != s).map(move |t| (s, t)))
    }

    /// The label of node `n`.
    pub fn node_name(&self, n: NodeId) -> &str {
        &self.node_names[n.index()]
    }

    /// Looks a node up by label.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.node_names
            .iter()
            .position(|n| n == name)
            .map(|i| NodeId(i as u32))
    }

    /// The link record for `l`.
    pub fn link(&self, l: LinkId) -> &Link {
        &self.links[l.index()]
    }

    /// Per-direction capacity of link `l`.
    pub fn capacity(&self, l: LinkId) -> f64 {
        self.links[l.index()].capacity
    }

    /// Sets link `l`'s per-direction capacity (a permanent topology
    /// update — the serving daemon's `rebase` verb re-solves against it).
    pub fn set_capacity(&mut self, l: LinkId, capacity: f64) {
        assert!(capacity.is_finite() && capacity > 0.0);
        self.links[l.index()].capacity = capacity;
    }

    /// Rescales every link capacity by `factor` (used when normalising MLU).
    pub fn scale_capacities(&mut self, factor: f64) {
        assert!(factor.is_finite() && factor > 0.0);
        for l in &mut self.links {
            l.capacity *= factor;
        }
    }

    /// The node an arc leaves from.
    pub fn arc_src(&self, a: ArcId) -> NodeId {
        let link = self.link(a.link());
        if a.is_forward() {
            link.u
        } else {
            link.v
        }
    }

    /// The node an arc points at.
    pub fn arc_dst(&self, a: ArcId) -> NodeId {
        let link = self.link(a.link());
        if a.is_forward() {
            link.v
        } else {
            link.u
        }
    }

    /// The arc traversing link `l` out of node `from`.
    ///
    /// # Panics
    /// Panics if `from` is not an endpoint of `l`.
    pub fn arc_from(&self, l: LinkId, from: NodeId) -> ArcId {
        let link = self.link(l);
        if from == link.u {
            l.forward()
        } else if from == link.v {
            l.backward()
        } else {
            // audit:allow(no-panic-paths, documented contract; routing callers pass link-node pairs read from this topology's own adjacency) audit:allow(panic-reachability, same invariant: adjacency only yields incident links)
            panic!("node {from} is not an endpoint of link {l}");
        }
    }

    /// Links incident to `n` (with the opposite endpoint), in insertion order.
    pub fn incident(&self, n: NodeId) -> &[(NodeId, LinkId)] {
        &self.adjacency[n.index()]
    }

    /// Degree of `n` counting parallel links individually.
    pub fn degree(&self, n: NodeId) -> usize {
        self.adjacency[n.index()].len()
    }

    /// Arcs leaving node `n`.
    pub fn out_arcs(&self, n: NodeId) -> impl Iterator<Item = ArcId> + '_ {
        self.adjacency[n.index()]
            .iter()
            .map(move |&(_, l)| self.arc_from(l, n))
    }

    /// Arcs entering node `n`.
    pub fn in_arcs(&self, n: NodeId) -> impl Iterator<Item = ArcId> + '_ {
        self.out_arcs(n).map(ArcId::reversed)
    }

    /// Whether the graph is connected when the links in `dead` (a
    /// `link_count()`-sized mask) are removed. An empty graph is connected.
    pub fn connected_without(&self, dead: &[bool]) -> bool {
        assert_eq!(dead.len(), self.link_count());
        let n = self.node_count();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &(w, l) in self.incident(u) {
                if !dead[l.index()] && !seen[w.index()] {
                    seen[w.index()] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == n
    }

    /// Whether the graph is connected.
    pub fn is_connected(&self) -> bool {
        self.connected_without(&vec![false; self.link_count()])
    }

    /// All bridge links (links whose individual failure disconnects the
    /// graph), via Tarjan's low-link algorithm. Parallel links are never
    /// bridges.
    pub fn bridges(&self) -> Vec<LinkId> {
        let n = self.node_count();
        let mut disc = vec![usize::MAX; n];
        let mut low = vec![usize::MAX; n];
        let mut bridges = Vec::new();
        let mut timer = 0usize;
        // Iterative DFS to avoid stack overflow on long path graphs.
        // Frame: (node, parent-link, next incident index).
        for root in self.nodes() {
            if disc[root.index()] != usize::MAX {
                continue;
            }
            let mut stack: Vec<(NodeId, Option<LinkId>, usize)> = vec![(root, None, 0)];
            disc[root.index()] = timer;
            low[root.index()] = timer;
            timer += 1;
            while !stack.is_empty() {
                let top = stack.len() - 1;
                let (u, parent, idx) = stack[top];
                let inc = self.incident(u);
                if idx < inc.len() {
                    stack[top].2 += 1;
                    let (w, l) = inc[idx];
                    if Some(l) == parent {
                        continue;
                    }
                    if disc[w.index()] == usize::MAX {
                        disc[w.index()] = timer;
                        low[w.index()] = timer;
                        timer += 1;
                        stack.push((w, Some(l), 0));
                    } else {
                        low[u.index()] = low[u.index()].min(disc[w.index()]);
                    }
                } else {
                    stack.pop();
                    if let Some(&(p, _, _)) = stack.last() {
                        low[p.index()] = low[p.index()].min(low[u.index()]);
                        if low[u.index()] > disc[p.index()] {
                            // audit:allow(no-panic-paths, Tarjan invariant; a frame with a predecessor on the stack was pushed with its entering link)
                            bridges.push(parent.expect("non-root frame has a parent link"));
                        }
                    }
                }
            }
        }
        bridges.sort();
        bridges
    }

    /// Whether the topology stays connected under any single link failure
    /// (i.e. is connected and has no bridges). The paper prunes topologies
    /// until this holds.
    pub fn is_two_edge_connected(&self) -> bool {
        self.is_connected() && self.bridges().is_empty()
    }

    /// Sum of all link capacities (both directions counted once).
    pub fn total_capacity(&self) -> f64 {
        self.links.iter().map(|l| l.capacity).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Topology {
        let mut t = Topology::new("triangle");
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        t.add_link(a, b, 1.0);
        t.add_link(b, c, 2.0);
        t.add_link(c, a, 3.0);
        t
    }

    #[test]
    fn arc_link_round_trips() {
        let l = LinkId(7);
        assert_eq!(l.forward().link(), l);
        assert_eq!(l.backward().link(), l);
        assert!(l.forward().is_forward());
        assert!(!l.backward().is_forward());
        assert_eq!(l.forward().reversed(), l.backward());
        assert_eq!(l.backward().reversed(), l.forward());
    }

    #[test]
    fn arc_endpoints() {
        let t = triangle();
        let l = LinkId(0);
        assert_eq!(t.arc_src(l.forward()), NodeId(0));
        assert_eq!(t.arc_dst(l.forward()), NodeId(1));
        assert_eq!(t.arc_src(l.backward()), NodeId(1));
        assert_eq!(t.arc_dst(l.backward()), NodeId(0));
        assert_eq!(t.arc_from(l, NodeId(0)), l.forward());
        assert_eq!(t.arc_from(l, NodeId(1)), l.backward());
    }

    #[test]
    fn adjacency_and_degree() {
        let t = triangle();
        assert_eq!(t.degree(NodeId(0)), 2);
        assert_eq!(t.out_arcs(NodeId(0)).count(), 2);
        let dsts: Vec<_> = t.out_arcs(NodeId(0)).map(|a| t.arc_dst(a)).collect();
        assert!(dsts.contains(&NodeId(1)) && dsts.contains(&NodeId(2)));
        let srcs: Vec<_> = t.in_arcs(NodeId(0)).map(|a| t.arc_src(a)).collect();
        assert!(srcs.contains(&NodeId(1)) && srcs.contains(&NodeId(2)));
    }

    #[test]
    fn node_pairs_are_ordered_and_complete() {
        let t = triangle();
        let pairs: Vec<_> = t.node_pairs().collect();
        assert_eq!(pairs.len(), 6);
        assert!(pairs.contains(&(NodeId(0), NodeId(1))));
        assert!(pairs.contains(&(NodeId(1), NodeId(0))));
        assert!(!pairs.contains(&(NodeId(1), NodeId(1))));
    }

    #[test]
    fn triangle_has_no_bridges() {
        let t = triangle();
        assert!(t.is_connected());
        assert!(t.bridges().is_empty());
        assert!(t.is_two_edge_connected());
    }

    #[test]
    fn path_graph_is_all_bridges() {
        let mut t = Topology::new("path");
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        let l0 = t.add_link(a, b, 1.0);
        let l1 = t.add_link(b, c, 1.0);
        assert_eq!(t.bridges(), vec![l0, l1]);
        assert!(!t.is_two_edge_connected());
    }

    #[test]
    fn parallel_links_are_not_bridges() {
        let mut t = Topology::new("parallel");
        let a = t.add_node("a");
        let b = t.add_node("b");
        t.add_link(a, b, 1.0);
        t.add_link(a, b, 1.0);
        assert!(t.bridges().is_empty());
        assert!(t.is_two_edge_connected());
    }

    #[test]
    fn bridge_in_barbell() {
        // Two triangles joined by one link: that link is the unique bridge.
        let mut t = Topology::new("barbell");
        let n: Vec<_> = (0..6).map(|i| t.add_node(format!("n{i}"))).collect();
        t.add_link(n[0], n[1], 1.0);
        t.add_link(n[1], n[2], 1.0);
        t.add_link(n[2], n[0], 1.0);
        t.add_link(n[3], n[4], 1.0);
        t.add_link(n[4], n[5], 1.0);
        t.add_link(n[5], n[3], 1.0);
        let bridge = t.add_link(n[2], n[3], 1.0);
        assert_eq!(t.bridges(), vec![bridge]);
    }

    #[test]
    fn connected_without_respects_mask() {
        let t = triangle();
        assert!(t.connected_without(&[true, false, false]));
        assert!(t.connected_without(&[false, true, false]));
        assert!(!t.connected_without(&[true, true, false]));
    }

    #[test]
    fn disconnected_graph_detected() {
        let mut t = Topology::new("two islands");
        let a = t.add_node("a");
        let b = t.add_node("b");
        t.add_node("c");
        t.add_link(a, b, 1.0);
        assert!(!t.is_connected());
    }

    #[test]
    #[should_panic(expected = "self loop")]
    fn self_loop_rejected() {
        let mut t = Topology::new("x");
        let a = t.add_node("a");
        t.add_link(a, a, 1.0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn non_positive_capacity_rejected() {
        let mut t = Topology::new("x");
        let a = t.add_node("a");
        let b = t.add_node("b");
        t.add_link(a, b, 0.0);
    }

    #[test]
    fn scale_capacities_scales_all() {
        let mut t = triangle();
        t.scale_capacities(2.0);
        assert_eq!(t.capacity(LinkId(0)), 2.0);
        assert_eq!(t.capacity(LinkId(2)), 6.0);
        assert_eq!(t.total_capacity(), 12.0);
    }

    #[test]
    fn node_lookup_by_name() {
        let t = triangle();
        assert_eq!(t.node_by_name("b"), Some(NodeId(1)));
        assert_eq!(t.node_by_name("zzz"), None);
        assert_eq!(t.node_name(NodeId(2)), "c");
    }
}
