//! Export of [`crate::LpProblem`] in the CPLEX LP text format.
//!
//! Useful for debugging models and for cross-checking this repository's
//! simplex against an external solver: every model built here can be dumped
//! and fed to CBC/HiGHS/Gurobi unchanged.

use crate::model::{LpProblem, Sense};
use std::fmt::Write as _;

/// Renders the problem in CPLEX LP format.
///
/// Variables are named `x0, x1, ...` in declaration order; constraints
/// `c0, c1, ...`. Range rows are split into a `>=` and a `<=` constraint,
/// matching common solver expectations.
pub fn to_lp_format(problem: &LpProblem) -> String {
    let mut out = String::new();
    match problem.sense {
        Sense::Maximize => out.push_str("Maximize\n obj:"),
        Sense::Minimize => out.push_str("Minimize\n obj:"),
    }
    let mut any = false;
    for (j, &c) in problem.obj.iter().enumerate() {
        if crate::float::nonzero(c) {
            let _ = write!(out, " {} {} x{}", sign(c, any), c.abs(), j);
            any = true;
        }
    }
    if !any {
        out.push_str(" 0 x0");
    }
    out.push_str("\nSubject To\n");
    let mut cid = 0usize;
    for row in &problem.rows {
        let expr = render_expr(&row.coeffs);
        let (lo, hi) = (row.lower, row.upper);
        if lo == hi {
            let _ = writeln!(out, " c{cid}: {expr} = {lo}");
            cid += 1;
        } else {
            if lo.is_finite() {
                let _ = writeln!(out, " c{cid}: {expr} >= {lo}");
                cid += 1;
            }
            if hi.is_finite() {
                let _ = writeln!(out, " c{cid}: {expr} <= {hi}");
                cid += 1;
            }
        }
    }
    out.push_str("Bounds\n");
    for j in 0..problem.num_vars() {
        let (lo, hi) = (problem.lower[j], problem.upper[j]);
        match (lo.is_finite(), hi.is_finite()) {
            (true, true) => {
                let _ = writeln!(out, " {lo} <= x{j} <= {hi}");
            }
            (true, false) => {
                if crate::float::nonzero(lo) {
                    let _ = writeln!(out, " x{j} >= {lo}");
                }
            }
            (false, true) => {
                let _ = writeln!(out, " -inf <= x{j} <= {hi}");
            }
            (false, false) => {
                let _ = writeln!(out, " x{j} free");
            }
        }
    }
    out.push_str("End\n");
    out
}

fn sign(c: f64, any: bool) -> &'static str {
    if c < 0.0 {
        "-"
    } else if any {
        "+"
    } else {
        ""
    }
}

fn render_expr(coeffs: &[(usize, f64)]) -> String {
    let mut s = String::new();
    let mut any = false;
    for &(j, c) in coeffs {
        let _ = write!(s, "{} {} x{} ", sign(c, any), c.abs(), j);
        any = true;
    }
    if !any {
        s.push_str("0 x0 ");
    }
    s.trim_end().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LpProblem;

    #[test]
    fn renders_a_small_model() {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_var(0.0, 4.0, 3.0);
        let y = lp.add_nonneg(5.0);
        lp.add_le(vec![(x, 1.0), (y, 2.0)], 14.0);
        lp.add_eq(vec![(x, 1.0), (y, -1.0)], 0.0);
        lp.add_row(vec![(y, 1.0)], 1.0, 6.0);
        let s = to_lp_format(&lp);
        assert!(s.starts_with("Maximize"));
        assert!(s.contains("3 x0 + 5 x1"), "{s}");
        assert!(s.contains("1 x0 + 2 x1 <= 14"), "{s}");
        assert!(s.contains("1 x0 - 1 x1 = 0"), "{s}");
        assert!(s.contains("1 x1 >= 1"), "{s}");
        assert!(s.contains("1 x1 <= 6"), "{s}");
        assert!(s.contains("0 <= x0 <= 4"), "{s}");
        assert!(s.trim_end().ends_with("End"));
    }

    #[test]
    fn negative_and_free_bounds() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_var(f64::NEG_INFINITY, f64::INFINITY, -1.0);
        let y = lp.add_var(f64::NEG_INFINITY, 3.0, 0.0);
        lp.add_ge(vec![(x, 1.0), (y, 1.0)], -2.0);
        let s = to_lp_format(&lp);
        assert!(s.contains("Minimize"));
        assert!(s.contains("- 1 x0"), "{s}");
        assert!(s.contains("x0 free"), "{s}");
        assert!(s.contains("-inf <= x1 <= 3"), "{s}");
    }

    #[test]
    fn empty_objective_is_valid() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_nonneg(0.0);
        lp.add_ge(vec![(x, 1.0)], 1.0);
        let s = to_lp_format(&lp);
        assert!(s.contains("obj: 0 x0"), "{s}");
    }
}
