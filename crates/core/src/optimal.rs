//! The optimal baseline: the network's *intrinsic capability*.
//!
//! The paper compares every congestion-free scheme against "the performance
//! achieved by the optimal network response which involves computing the
//! optimal multi-commodity flow for each failure scenario" (§5). This module
//! provides that baseline:
//!
//! * [`max_concurrent_flow`] — the largest uniform demand scale `z` routable
//!   on the surviving topology (destination-aggregated MCF LP);
//! * [`max_throughput`] — the largest admitted bandwidth `Σ min(d, bw)`;
//! * [`optimal_demand_scale`] / [`optimal_throughput`] — minima over all (or
//!   a sampled subset of) worst-cardinality failure scenarios.
//!
//! The commodity aggregation by destination keeps the LP at
//! `|V| · |arcs|` variables instead of `|V|^2 · |arcs|`, the standard trick
//! for concurrent-flow computations.

use crate::failure::FailureModel;
use pcf_lp::{is_zero, LpProblem, Sense, SimplexOptions, Status, VarId};
use pcf_topology::{NodeId, Topology};
use pcf_traffic::TrafficMatrix;

/// Outcome of a per-scenario optimal computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum McfResult {
    /// The optimum value.
    Value(f64),
    /// Some demand's endpoints are disconnected in this scenario (demand
    /// scale is 0 by convention).
    Disconnected,
}

impl McfResult {
    /// The numeric value (0 when disconnected).
    pub fn value(self) -> f64 {
        match self {
            McfResult::Value(v) => v,
            McfResult::Disconnected => 0.0,
        }
    }
}

/// Destinations with any positive demand.
fn active_destinations(topo: &Topology, tm: &TrafficMatrix) -> Vec<NodeId> {
    topo.nodes()
        .filter(|&t| topo.nodes().any(|s| s != t && tm.demand(s, t) > 0.0))
        .collect()
}

/// Builds the destination-aggregated MCF skeleton shared by both objectives.
///
/// Returns `(lp, flow_vars)` where `flow_vars[k][arc]` is the flow toward
/// destination `dests[k]` on each directed arc; callers add the balance rows
/// because the right-hand side depends on the objective.
fn flow_skeleton(topo: &Topology, dests: &[NodeId], dead: &[bool]) -> (LpProblem, Vec<Vec<VarId>>) {
    let mut lp = LpProblem::new(Sense::Maximize);
    let mut flows: Vec<Vec<VarId>> = Vec::with_capacity(dests.len());
    for _ in dests {
        flows.push(
            topo.arcs()
                .map(|arc| {
                    let cap = if dead[arc.link().index()] {
                        0.0
                    } else {
                        topo.capacity(arc.link())
                    };
                    lp.add_var(0.0, cap, 0.0)
                })
                .collect(),
        );
    }
    // Arc capacity over all destinations.
    for arc in topo.arcs() {
        if dead[arc.link().index()] {
            continue; // per-variable bounds already force zero
        }
        let row: Vec<(VarId, f64)> = flows.iter().map(|f| (f[arc.index()], 1.0)).collect();
        lp.add_le(row, topo.capacity(arc.link()));
    }
    (lp, flows)
}

/// Maximum concurrent flow: the largest `z` such that `z * d_st` is
/// simultaneously routable for every pair on the surviving links.
///
/// `dead` is a link mask (`None` = no failures). Returns
/// [`McfResult::Disconnected`] if a demanded pair has no surviving path, and
/// `Value(inf)` when the matrix has no demand.
pub fn max_concurrent_flow(
    topo: &Topology,
    tm: &TrafficMatrix,
    dead: Option<&[bool]>,
) -> McfResult {
    let no_fail = vec![false; topo.link_count()];
    let dead = dead.unwrap_or(&no_fail);
    let dests = active_destinations(topo, tm);
    if dests.is_empty() {
        return McfResult::Value(f64::INFINITY);
    }
    // Quick reachability screen (also catches z unbounded... demands exist,
    // so z is bounded by capacity whenever connected).
    for &t in &dests {
        for s in topo.nodes() {
            if s != t
                && tm.demand(s, t) > 0.0
                && pcf_paths::shortest_path_weighted(topo, s, t, |_| 1.0, Some(dead)).is_none()
            {
                return McfResult::Disconnected;
            }
        }
    }
    let (mut lp, flows) = flow_skeleton(topo, &dests, dead);
    let z = lp.add_nonneg(1.0);
    for (k, &t) in dests.iter().enumerate() {
        for v in topo.nodes() {
            if v == t {
                continue;
            }
            // out - in = z * d(v, t)
            let mut row: Vec<(VarId, f64)> = Vec::new();
            for arc in topo.out_arcs(v) {
                row.push((flows[k][arc.index()], 1.0));
            }
            for arc in topo.in_arcs(v) {
                row.push((flows[k][arc.index()], -1.0));
            }
            let d = tm.demand(v, t);
            if d > 0.0 {
                row.push((z, -d));
            }
            lp.add_eq(row, 0.0);
        }
    }
    // audit:allow(no-panic-paths, optimal-baseline evaluator; MCF on a validated topology always solves, so an engine failure should halt the experiment)
    let sol = lp.solve().expect("MCF LP is structurally valid");
    assert_eq!(sol.status, Status::Optimal, "MCF must be solvable");
    McfResult::Value(sol.objective)
}

/// Maximum throughput: `max Σ bw_st` with `bw_st <= d_st`, routable on the
/// surviving links. Disconnected pairs simply contribute zero.
pub fn max_throughput(topo: &Topology, tm: &TrafficMatrix, dead: Option<&[bool]>) -> f64 {
    let no_fail = vec![false; topo.link_count()];
    let dead = dead.unwrap_or(&no_fail);
    let dests = active_destinations(topo, tm);
    if dests.is_empty() {
        return 0.0;
    }
    let (mut lp, flows) = flow_skeleton(topo, &dests, dead);
    // bw vars per (source, dest) with demand.
    for (k, &t) in dests.iter().enumerate() {
        for v in topo.nodes() {
            if v == t {
                continue;
            }
            let mut row: Vec<(VarId, f64)> = Vec::new();
            for arc in topo.out_arcs(v) {
                row.push((flows[k][arc.index()], 1.0));
            }
            for arc in topo.in_arcs(v) {
                row.push((flows[k][arc.index()], -1.0));
            }
            let d = tm.demand(v, t);
            if d > 0.0 {
                let bw = lp.add_var(0.0, d, 1.0);
                row.push((bw, -1.0));
            }
            lp.add_eq(row, 0.0);
        }
    }
    // audit:allow(no-panic-paths, optimal-baseline evaluator; the throughput LP is bounded and feasible by construction, so an engine failure should halt the experiment)
    let sol = lp.solve().expect("throughput LP is structurally valid");
    assert_eq!(sol.status, Status::Optimal);
    sol.objective
}

/// How to cover the scenario space of a failure model.
#[derive(Debug, Clone, Copy)]
pub enum ScenarioCoverage {
    /// Enumerate every worst-cardinality scenario (exact).
    Exhaustive,
    /// Deterministically sample at most this many scenarios. The resulting
    /// minimum is an *upper bound* of the true worst case.
    Sampled(usize),
}

/// Optimal demand scale under the failure model: the minimum over scenarios
/// of [`max_concurrent_flow`]. Returns `(value, scenarios_evaluated, exact)`.
pub fn optimal_demand_scale(
    topo: &Topology,
    tm: &TrafficMatrix,
    fm: &FailureModel,
    coverage: ScenarioCoverage,
) -> (f64, usize, bool) {
    let (scenarios, exact) = match coverage {
        ScenarioCoverage::Exhaustive => (fm.enumerate_scenarios(topo), true),
        ScenarioCoverage::Sampled(k) => {
            let exact = fm.scenario_count(topo) <= k;
            (fm.sample_scenarios(topo, k, 0x5eed), exact)
        }
    };
    let mut worst = f64::INFINITY;
    let count = scenarios.len();
    for mask in &scenarios {
        let v = max_concurrent_flow(topo, tm, Some(mask)).value();
        if v < worst {
            worst = v;
        }
        if is_zero(worst) {
            break;
        }
    }
    (worst, count, exact)
}

/// Optimal worst-case throughput under the failure model. Returns
/// `(value, scenarios_evaluated, exact)`.
pub fn optimal_throughput(
    topo: &Topology,
    tm: &TrafficMatrix,
    fm: &FailureModel,
    coverage: ScenarioCoverage,
) -> (f64, usize, bool) {
    let (scenarios, exact) = match coverage {
        ScenarioCoverage::Exhaustive => (fm.enumerate_scenarios(topo), true),
        ScenarioCoverage::Sampled(k) => {
            let exact = fm.scenario_count(topo) <= k;
            (fm.sample_scenarios(topo, k, 0x5eed), exact)
        }
    };
    let mut worst = f64::INFINITY;
    let count = scenarios.len();
    for mask in &scenarios {
        let v = max_throughput(topo, tm, Some(mask));
        if v < worst {
            worst = v;
        }
    }
    (worst, count, exact)
}

/// Relaxed simplex settings for the larger MCF LPs.
#[allow(dead_code)]
fn mcf_options() -> SimplexOptions {
    SimplexOptions {
        reinvert_every: 600,
        ..SimplexOptions::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcf_topology::zoo;
    use pcf_traffic::gravity;

    fn diamond() -> (Topology, TrafficMatrix) {
        let mut t = Topology::new("diamond");
        let s = t.add_node("s");
        let a = t.add_node("a");
        let b = t.add_node("b");
        let d = t.add_node("t");
        t.add_link(s, a, 1.0);
        t.add_link(a, d, 1.0);
        t.add_link(s, b, 1.0);
        t.add_link(b, d, 1.0);
        let mut tm = TrafficMatrix::zeros(4);
        tm.set_demand(s, d, 1.0);
        (t, tm)
    }

    #[test]
    fn concurrent_flow_no_failure() {
        let (t, tm) = diamond();
        let z = max_concurrent_flow(&t, &tm, None).value();
        assert!((z - 2.0).abs() < 1e-6, "got {z}");
    }

    #[test]
    fn concurrent_flow_with_failure() {
        let (t, tm) = diamond();
        let mut dead = vec![false; 4];
        dead[0] = true;
        let z = max_concurrent_flow(&t, &tm, Some(&dead)).value();
        assert!((z - 1.0).abs() < 1e-6, "got {z}");
    }

    #[test]
    fn disconnection_detected() {
        let (t, tm) = diamond();
        let dead = vec![true, false, true, false];
        assert_eq!(
            max_concurrent_flow(&t, &tm, Some(&dead)),
            McfResult::Disconnected
        );
    }

    #[test]
    fn optimal_demand_scale_single_failure() {
        let (t, tm) = diamond();
        let (v, n, exact) = optimal_demand_scale(
            &t,
            &tm,
            &FailureModel::links(1),
            ScenarioCoverage::Exhaustive,
        );
        assert!(exact);
        assert_eq!(n, 4);
        assert!((v - 1.0).abs() < 1e-6, "got {v}");
    }

    #[test]
    fn throughput_caps_at_demand() {
        let (t, mut tm) = diamond();
        tm.set_demand(NodeId(0), NodeId(3), 0.5);
        let thr = max_throughput(&t, &tm, None);
        assert!((thr - 0.5).abs() < 1e-6, "got {thr}");
    }

    #[test]
    fn throughput_caps_at_capacity() {
        let (t, mut tm) = diamond();
        tm.set_demand(NodeId(0), NodeId(3), 10.0);
        let thr = max_throughput(&t, &tm, None);
        assert!((thr - 2.0).abs() < 1e-5, "got {thr}");
    }

    #[test]
    fn multi_pair_flow_shares_capacity() {
        // Two demands crossing a shared middle link.
        let mut t = Topology::new("bowtie");
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        let d = t.add_node("d");
        t.add_link(a, b, 1.0);
        t.add_link(b, c, 1.0);
        t.add_link(c, d, 1.0);
        let mut tm = TrafficMatrix::zeros(4);
        tm.set_demand(a, c, 1.0);
        tm.set_demand(b, d, 1.0);
        // Both cross b-c (capacity 1): z = 0.5.
        let z = max_concurrent_flow(&t, &tm, None).value();
        assert!((z - 0.5).abs() < 1e-6, "got {z}");
    }

    #[test]
    fn zoo_sprint_full_gravity_runs() {
        let t = zoo::build("Sprint");
        let tm = gravity(&t, 1);
        let z = max_concurrent_flow(&t, &tm, None).value();
        assert!(z.is_finite() && z > 0.0);
        // Any single failure can only reduce the scale.
        let (worst, _, exact) = optimal_demand_scale(
            &t,
            &tm,
            &FailureModel::links(1),
            ScenarioCoverage::Exhaustive,
        );
        assert!(exact);
        assert!(worst <= z + 1e-9);
        assert!(worst > 0.0, "2-edge-connected topology stays connected");
    }
}

#[cfg(test)]
mod coverage_tests {
    use super::*;
    use pcf_topology::zoo;
    use pcf_traffic::gravity;

    #[test]
    fn sampled_coverage_is_an_upper_bound_of_exhaustive() {
        let t = zoo::build("Sprint");
        let tm = gravity(&t, 4);
        let fm = FailureModel::links(2); // C(17,2) = 136 scenarios
        let (full, n_full, exact) =
            optimal_demand_scale(&t, &tm, &fm, ScenarioCoverage::Exhaustive);
        assert!(exact);
        assert_eq!(n_full, 136);
        let (sampled, n_s, s_exact) =
            optimal_demand_scale(&t, &tm, &fm, ScenarioCoverage::Sampled(20));
        assert!(!s_exact);
        assert_eq!(n_s, 20);
        assert!(sampled >= full - 1e-9, "sample {sampled} < full {full}");
    }

    #[test]
    fn optimal_throughput_under_failures() {
        let t = zoo::build("Sprint");
        let tm = gravity(&t, 4);
        let no_fail = max_throughput(&t, &tm, None);
        let (worst, _, exact) = optimal_throughput(
            &t,
            &tm,
            &FailureModel::links(1),
            ScenarioCoverage::Exhaustive,
        );
        assert!(exact);
        assert!(worst <= no_fail + 1e-9);
        assert!(worst > 0.0);
    }

    #[test]
    fn node_failure_scenarios_for_optimal() {
        // Node failure of a transit node: the optimal re-routes around it.
        let t = zoo::build("Sprint");
        let mut tm = pcf_traffic::TrafficMatrix::zeros(t.node_count());
        tm.set_demand(pcf_topology::NodeId(0), pcf_topology::NodeId(5), 1.0);
        let groups: Vec<Vec<pcf_topology::LinkId>> = t
            .nodes()
            .filter(|n| n.index() != 0 && n.index() != 5)
            .map(|n| t.incident(n).iter().map(|&(_, l)| l).collect())
            .collect();
        let fm = FailureModel::Groups { groups, f: 1 };
        let (v, n, exact) = optimal_demand_scale(&t, &tm, &fm, ScenarioCoverage::Exhaustive);
        assert!(exact);
        assert_eq!(n, 8);
        assert!(v > 0.0, "a single transit-node failure cannot cut 0-5");
    }
}
