//! `pcf` — congestion-free traffic engineering from the command line.
//!
//! ```text
//! pcf solve    --topology GEANT --scheme pcf-ls --f 1 [--tunnels 3] [--seed 1]
//! pcf solve    --gml net.gml --scheme pcf-tf --f 2
//! pcf validate --topology B4 --scheme pcf-ls --f 1       # check all scenarios
//! pcf replay   --topology Sprint --f 2 --events 1000      # stream link churn
//! pcf augment  --topology IBM --f 1 --target 1.2          # capacity to reach z*
//! pcf topology --topology Deltacom                        # inspect a topology
//! pcf adversary --topology Abilene --f 1                  # worst-case campaign
//! pcf serve    --topology Abilene --scheme ffc --port 0   # online serving daemon
//! pcf audit                                               # static analysis gate
//! ```
//!
//! Topologies come from the built-in evaluation set (`--topology <name>`)
//! or a Topology Zoo GML file (`--gml <path>`); traffic is a gravity matrix
//! normalised to optimal-routing MLU 0.6 (`--seed` selects the draw;
//! `--mlu` overrides the target).

mod args;

use args::{ArgError, Args};
use pcf_core::validate::validate_all;
use pcf_core::DegradeMode;
use pcf_core::{
    augment_capacity, pcf_cls_pipeline, pcf_ls_instance, scale_to_mlu, solve_ffc, solve_pcf_ls,
    solve_pcf_tf, solve_r3, tunnel_instance, FailureModel, Instance, RobustOptions, RobustSolution,
};
use pcf_lp::{EngineKind, Pricing, SimplexOptions};
use pcf_replay::{
    replay_batch, run_campaign, CampaignOptions, CampaignPlan, EventTrace, FaultInjector,
    ReplayOptions,
};
use pcf_topology::Topology;
use pcf_traffic::{gravity, TrafficMatrix};

const FLAGS: &[&str] = &[
    "topology",
    "gml",
    "scheme",
    "f",
    "tunnels",
    "seed",
    "mlu",
    "target",
    "max-pairs",
    "threads",
    "trace",
    "events",
    "traces",
    "cache",
    "json",
    "degrade",
    "inject",
    "djson",
    "pricing",
    "refactor-every",
    "engine",
    "host",
    "port",
    "drive",
    "steps",
    "srlg",
    "srlg-size",
    "srlg-count",
    "degrade-permille",
    "max-down",
    "max-conns",
    "idle-ms",
];

const SWITCHES: &[&str] = &["fail-fast"];

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "help" || argv[0] == "--help" {
        usage();
        return;
    }
    match run(&argv) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            usage();
            std::process::exit(2);
        }
    }
}

fn usage() {
    eprintln!(
        "pcf — provably congestion-free traffic engineering (PCF, SIGCOMM 2020)\n\
         \n\
         commands:\n\
         \x20 solve     compute a congestion-free allocation\n\
         \x20 validate  solve, then check every targeted failure scenario\n\
         \x20 replay    solve, then stream link up/down events through the plan\n\
         \x20 augment   cheapest capacity additions to reach --target demand scale\n\
         \x20 topology  print a topology summary\n\
         \x20 serve     solve, then serve the plan over TCP (line-delimited JSON;\n\
         \x20           events, realization/utilization queries, admission control)\n\
         \x20 adversary greedy worst-case campaign: per-scheme throughput-retention\n\
         \x20           curves under SRLG/node/link/degradation events\n\
         \x20 audit     run the in-tree static-analysis gate (see DESIGN.md §9)\n\
         \n\
         flags:\n\
         \x20 --topology <name>   built-in evaluation topology (e.g. Sprint, GEANT)\n\
         \x20 --gml <path>        Topology Zoo GML file instead of --topology\n\
         \x20 --scheme <s>        ffc | pcf-tf | pcf-ls | pcf-cls | r3   (default pcf-ls)\n\
         \x20 --f <n>             simultaneous link failures to survive  (default 1)\n\
         \x20 --tunnels <k>       tunnels per pair                       (default 3)\n\
         \x20 --seed <n>          gravity traffic seed                   (default 1)\n\
         \x20 --mlu <x>           optimal-routing MLU target; 0 skips the\n\
         \x20                     normalization (fast on large topologies) (default 0.6)\n\
         \x20 --max-pairs <n>     keep only the n heaviest demands       (default 200)\n\
         \x20 --threads <n>       separation worker threads; 0 = all available cores\n\
         \x20                     (default 0)\n\
         \x20 --engine <e>        LP basis engine: sparse | dense          (default sparse)\n\
         \x20 --pricing <p>       simplex pricing: devex | dantzig         (default devex)\n\
         \x20 --refactor-every <k> sparse-basis refactorization period     (default 400)\n\
         \x20 --target <z>        (augment) demand scale to guarantee\n\
         \x20 --trace <path>      (replay) scripted trace file (`down <l>` / `up <l>` lines)\n\
         \x20 --events <n>        (replay) generate an n-event flap trace    (default 1000)\n\
         \x20 --traces <n>        (replay) replay n generated traces in parallel (default 1)\n\
         \x20 --cache <n>         (replay) retained factorizations; 0 = cold (default 1024)\n\
         \x20 --json <path>       (solve/replay) also write the report as JSON\n\
         \x20 --djson <path>      (replay) write the deterministic (digest) report as JSON\n\
         \x20 --degrade <m>       (replay) off | rescale | shed: how far down the\n\
         \x20                     degradation ladder beyond-budget events may fall\n\
         \x20                     (default off; see DESIGN.md \u{a7}10)\n\
         \x20 --inject <kind>     (replay) adversarial traces instead of flaps:\n\
         \x20                     bursts (beyond-budget) | wobble (capacity) | chaos (both) |\n\
         \x20                     srlg (correlated group bursts; honors --srlg* flags) |\n\
         \x20                     storm (partial-capacity degradation squeezes)\n\
         \x20 --fail-fast         (replay) stop each trace at its first violation\n\
         \x20 --steps <n>         (adversary) adversarial events to pick     (default 4)\n\
         \x20 --srlg <path>       (adversary/replay/serve) SRLG sidecar file (`group e0 e1\n\
         \x20                     ...` lines); default synthesizes groups from the topology\n\
         \x20 --srlg-size <n>     (adversary/replay) links per synthetic group (default 2)\n\
         \x20 --srlg-count <n>    (adversary/replay) synthetic groups          (default 4)\n\
         \x20 --degrade-permille <p> (adversary/replay) partial-capacity level (default 500)\n\
         \x20 --max-down <n>      (adversary) concurrent dead-link budget    (default f+2)\n\
         \x20 --host <ip>         (serve) bind address                     (default 127.0.0.1)\n\
         \x20 --port <n>          (serve) bind port; 0 picks a free one    (default 7474)\n\
         \x20 --max-conns <n>     (serve) concurrent-connection cap; extra clients get\n\
         \x20                     a busy reject; 0 = unlimited             (default 64)\n\
         \x20 --idle-ms <n>       (serve) reap connections idle this long; 0 = never\n\
         \x20                     (default 0)\n\
         \x20 --drive <path>      (serve) run a command script against the server,\n\
         \x20                     then shut down; exit 1 on protocol violations\n\
         \n\
         exit codes: 0 clean (degraded-but-served events included), 1 violations\n\
         found by validate/replay, 2 usage or input errors"
    );
}

fn run(argv: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse(argv, FLAGS, SWITCHES)?;
    if args.command == "audit" {
        // Static analysis needs the source tree, not a topology.
        let cwd = std::env::current_dir()?;
        let root = pcf_audit::find_root(&cwd).ok_or(ArgError(
            "audit: cannot locate the workspace root (run inside the repository)".into(),
        ))?;
        let code = pcf_audit::run(&root, pcf_audit::BaselineMode::Check);
        if code != 0 {
            std::process::exit(code);
        }
        return Ok(());
    }
    let topo = load_topology(&args)?;
    match args.command.as_str() {
        "topology" => {
            describe(&topo);
            Ok(())
        }
        "solve" => {
            let (inst, sol, scheme) = solve(&args, &topo)?;
            report(&topo, &inst, &sol, &scheme);
            if let Some(path) = args.get("json") {
                std::fs::write(path, solve_json(&args, &topo, &inst, &sol, &scheme)?)?;
                println!("  report written to {path}");
            }
            Ok(())
        }
        "validate" => {
            let f = args.get_or("f", 1usize)?;
            let (inst, sol, scheme) = solve(&args, &topo)?;
            report(&topo, &inst, &sol, &scheme);
            let served: Vec<f64> = inst
                .pair_ids()
                .map(|p| sol.z[p.0] * inst.demand(p))
                .collect();
            let fm = FailureModel::links(f);
            let report = validate_all(&inst, &fm, &sol.a, &sol.b, &served, 1e-6);
            println!(
                "validate: {} scenarios ({} distinct states), max utilization {:.4} -> {}",
                report.scenarios,
                report.distinct_states,
                report.max_utilization,
                if report.congestion_free() {
                    "CONGESTION-FREE"
                } else {
                    "VIOLATIONS FOUND"
                }
            );
            for hot in &report.top_arcs {
                let arc = pcf_topology::ArcId(hot.arc as u32);
                println!(
                    "  hotspot arc {} ({} -> {}): peak utilization {:.4}",
                    hot.arc,
                    topo.node_name(topo.arc_src(arc)),
                    topo.node_name(topo.arc_dst(arc)),
                    hot.utilization
                );
            }
            if !report.congestion_free() {
                let s = report.summarize();
                println!(
                    "  {} violation(s): {} disconnected, {} realize, {} overload \
                     (worst residual overload {:.4})",
                    s.total(),
                    s.disconnected,
                    s.realize,
                    s.overload,
                    report.worst_overload()
                );
                std::process::exit(1);
            }
            Ok(())
        }
        "replay" => {
            let f = args.get_or("f", 1usize)?;
            let (inst, sol, scheme) = solve(&args, &topo)?;
            report(&topo, &inst, &sol, &scheme);
            let served: Vec<f64> = inst
                .pair_ids()
                .map(|p| sol.z[p.0] * inst.demand(p))
                .collect();
            let seed = args.get_or("seed", 1u64)?;
            let degrade = match args.get("degrade") {
                None => DegradeMode::Off,
                Some(s) => DegradeMode::from_flag(s).ok_or(ArgError(format!(
                    "--degrade: expected off | rescale | shed, got {s:?}"
                )))?,
            };
            let traces: Vec<EventTrace> = match (args.get("trace"), args.get("inject")) {
                (Some(_), Some(_)) => {
                    return Err(Box::new(ArgError(
                        "--trace and --inject are mutually exclusive".into(),
                    )))
                }
                (Some(path), None) => {
                    // Strict parsing: scripted files must name real links
                    // and describe consistent state changes.
                    let text = std::fs::read_to_string(path)?;
                    vec![EventTrace::parse_strict(path, &text, &topo)?]
                }
                (None, inject) => {
                    if let Some(kind) = inject {
                        if !["bursts", "wobble", "chaos", "srlg", "storm"].contains(&kind) {
                            return Err(Box::new(ArgError(format!(
                                "--inject: expected bursts | wobble | chaos | srlg | storm, \
                                 got {kind:?}"
                            ))));
                        }
                    }
                    let groups = if inject == Some("srlg") {
                        match args.get("srlg") {
                            Some(path) => {
                                let text = std::fs::read_to_string(path)?;
                                pcf_topology::SrlgSet::parse_strict(&text, &topo)?.link_groups()
                            }
                            None => {
                                let size = args.get_or("srlg-size", 2usize)?;
                                let count = args.get_or("srlg-count", 4usize)?;
                                pcf_topology::SrlgSet::synthetic(&topo, size, count, seed)
                                    .link_groups()
                            }
                        }
                    } else {
                        Vec::new()
                    };
                    let min_permille = args.get_or("degrade-permille", 500u32)?;
                    let events = args.get_or("events", 1000usize)?;
                    let n = args.get_or("traces", 1usize)?;
                    (0..n as u64)
                        .map(|i| {
                            let s = seed.wrapping_add(i);
                            match inject {
                                None => EventTrace::flaps(&topo, events, f, s),
                                Some("bursts") => FaultInjector::new(s).beyond_budget_bursts(
                                    &topo,
                                    events.div_ceil(2),
                                    f,
                                ),
                                Some("wobble") => {
                                    FaultInjector::new(s).capacity_wobble(&topo, events, 500)
                                }
                                Some("srlg") => {
                                    EventTrace::srlg_bursts(&groups, events.div_ceil(2), s)
                                }
                                Some("storm") => FaultInjector::new(s).degradation_storm(
                                    &topo,
                                    events,
                                    min_permille,
                                ),
                                _ => FaultInjector::new(s).chaos(&topo, events, f),
                            }
                        })
                        .collect()
                }
            };
            let opts = ReplayOptions {
                cache_capacity: args.get_or("cache", 1024usize)?,
                threads: args.get_or("threads", 0usize)?,
                degrade,
                fail_fast: args.has("fail-fast"),
                ..ReplayOptions::default()
            };
            let t0 = std::time::Instant::now();
            let rep = replay_batch(&inst, &sol.a, &sol.b, &served, &traces, &opts);
            let secs = t0.elapsed().as_secs_f64();
            println!(
                "replay: {} events over {} trace(s): {:.0} events/s, max utilization {:.4} -> {}",
                rep.events,
                traces.len(),
                rep.events as f64 / secs.max(1e-9),
                rep.max_utilization,
                if rep.congestion_free() {
                    "CONGESTION-FREE"
                } else {
                    "VIOLATIONS FOUND"
                }
            );
            println!(
                "  realization latency p50/p99: {}/{} us; cache hits {} misses {} \
                 errors {} evictions {} (hit rate {:.1}%)",
                rep.latency.p50_ns() / 1_000,
                rep.latency.p99_ns() / 1_000,
                rep.cache.hits,
                rep.cache.misses,
                rep.cache.errors,
                rep.cache.evictions,
                100.0 * rep.cache.hit_rate()
            );
            if degrade != DegradeMode::Off || rep.degrade.degraded() > 0 {
                println!(
                    "  degradation ladder ({}): normal {} rescaled {} shed {} failed {}; \
                     total shed {:.4}, worst residual overload {:.4}",
                    degrade.as_flag(),
                    rep.degrade.normal,
                    rep.degrade.rescaled,
                    rep.degrade.shed,
                    rep.degrade.failed,
                    rep.total_shed,
                    rep.worst_overload
                );
            }
            for v in rep.violations.iter().take(5) {
                println!(
                    "  violation: trace {} event {}: {:?}",
                    v.trace, v.event, v.kind
                );
            }
            if let Some(path) = args.get("json") {
                std::fs::write(path, rep.to_json())?;
                println!("  report written to {path}");
            }
            if let Some(path) = args.get("djson") {
                std::fs::write(path, rep.deterministic_json())?;
                println!("  deterministic report written to {path}");
            }
            // Exit policy: degraded-but-served events are absorbed (the
            // ladder did its job); only genuine violations — overloads or
            // events that served nothing — fail the replay.
            if !rep.congestion_free() {
                std::process::exit(1);
            }
            Ok(())
        }
        "serve" => {
            let scheme_flag = args.get("scheme").unwrap_or("pcf-ls");
            let scheme = pcf_serve::SchemeKind::from_flag(scheme_flag).ok_or(ArgError(format!(
                "serve: --scheme must be ffc | pcf-tf | pcf-ls | pcf-cls, got {scheme_flag:?}"
            )))?;
            let degrade = match args.get("degrade") {
                None => DegradeMode::Shed,
                Some(s) => DegradeMode::from_flag(s).ok_or(ArgError(format!(
                    "--degrade: expected off | rescale | shed, got {s:?}"
                )))?,
            };
            let srlgs = match args.get("srlg") {
                Some(path) => {
                    let text = std::fs::read_to_string(path)?;
                    pcf_topology::SrlgSet::parse_strict(&text, &topo)?.link_groups()
                }
                None => Vec::new(),
            };
            let spec = pcf_serve::PlanSpec {
                topo: topo.clone(),
                scheme,
                tunnels: args.get_or("tunnels", 3usize)?,
                f: args.get_or("f", 1usize)?,
                seed: args.get_or("seed", 1u64)?,
                mlu: args.get_or("mlu", 0.6f64)?,
                max_pairs: args.get_or("max-pairs", 200usize)?,
                tol: 1e-6,
                opts: robust_options(&args)?,
                srlgs,
            };
            let opts = pcf_serve::ServeOptions {
                cache_capacity: args.get_or("cache", 1024usize)?,
                degrade,
                max_conns: args.get_or("max-conns", 64usize)?,
                idle_timeout_ms: args.get_or("idle-ms", 0u64)?,
                ..pcf_serve::ServeOptions::default()
            };
            let host = args.get("host").unwrap_or("127.0.0.1");
            let port = args.get_or("port", 7474u16)?;
            let server = pcf_serve::Server::bind(spec, opts, &format!("{host}:{port}"))?;
            let addr = server.local_addr()?;
            println!(
                "pcf serve: {} on {} (f={}), listening on {addr}",
                scheme.as_flag(),
                topo.name(),
                args.get_or("f", 1usize)?
            );
            match args.get("drive") {
                None => server.run()?,
                Some(path) => {
                    let script = std::fs::read_to_string(path)?;
                    let drive = std::thread::scope(|s| {
                        let daemon = s.spawn(|| server.run());
                        let drive = pcf_serve::run_script(&addr.to_string(), &script);
                        server.request_shutdown();
                        let _ = daemon.join();
                        drive
                    })?;
                    let rep = server.report();
                    println!(
                        "  drive: {} command(s), {} violation(s)",
                        drive.commands, drive.violations
                    );
                    if let Some(path) = args.get("json") {
                        std::fs::write(path, rep.to_json())?;
                        println!("  report written to {path}");
                    }
                    if let Some(path) = args.get("djson") {
                        std::fs::write(path, rep.deterministic_json())?;
                        println!("  deterministic report written to {path}");
                    }
                    if !drive.clean() {
                        for (req, resp) in drive.transcript.iter().take(50) {
                            println!("  {req} => {resp}");
                        }
                        std::process::exit(1);
                    }
                }
            }
            Ok(())
        }
        "adversary" => {
            let f = args.get_or("f", 1usize)?;
            let k = args.get_or("tunnels", 3usize)?;
            let tm = load_traffic(&args, &topo)?;
            let fm = FailureModel::links(f);
            let ropts = robust_options(&args)?;
            let groups = match args.get("srlg") {
                Some(path) => {
                    let text = std::fs::read_to_string(path)?;
                    pcf_topology::SrlgSet::parse_strict(&text, &topo)?.link_groups()
                }
                None => {
                    let size = args.get_or("srlg-size", 2usize)?;
                    let count = args.get_or("srlg-count", 4usize)?;
                    let seed = args.get_or("seed", 1u64)?;
                    pcf_topology::SrlgSet::synthetic(&topo, size, count, seed).link_groups()
                }
            };
            let copts = CampaignOptions {
                steps: args.get_or("steps", 4usize)?,
                groups,
                degrade_permille: args.get_or("degrade-permille", 500u32)?,
                max_down: args.get_or("max-down", f + 2)?,
                tol: 1e-6,
            };
            // All three schemes solve against the same traffic and link
            // budget; FFC and PCF-TF share the tunnel-only instance.
            let tunnel_inst = tunnel_instance(&topo, &tm, k);
            let ffc = solve_ffc(&tunnel_inst, &fm, &ropts);
            let tf = solve_pcf_tf(&tunnel_inst, &fm, &ropts);
            let ls_inst = pcf_ls_instance(&topo, &tm, k);
            let ls = solve_pcf_ls(&ls_inst, &fm, &ropts);
            let served_of = |inst: &Instance, sol: &RobustSolution| -> Vec<f64> {
                inst.pair_ids()
                    .map(|p| sol.z[p.0] * inst.demand(p))
                    .collect()
            };
            let ffc_served = served_of(&tunnel_inst, &ffc);
            let tf_served = served_of(&tunnel_inst, &tf);
            let ls_served = served_of(&ls_inst, &ls);
            let plans = [
                CampaignPlan {
                    scheme: "ffc".into(),
                    inst: &tunnel_inst,
                    a: &ffc.a,
                    b: &ffc.b,
                    served: &ffc_served,
                },
                CampaignPlan {
                    scheme: "pcf-tf".into(),
                    inst: &tunnel_inst,
                    a: &tf.a,
                    b: &tf.b,
                    served: &tf_served,
                },
                CampaignPlan {
                    scheme: "pcf-ls".into(),
                    inst: &ls_inst,
                    a: &ls.a,
                    b: &ls.b,
                    served: &ls_served,
                },
            ];
            let rep = run_campaign(&plans, &copts);
            println!(
                "adversary on {} (f={f}, {} srlg groups, {} steps, budget {} dead):",
                topo.name(),
                copts.groups.len(),
                copts.steps,
                copts.max_down
            );
            for c in &rep.curves {
                println!(
                    "  {:7} admitted {:9.4} -> retained {:9.4} ({:5.1}%)",
                    c.scheme,
                    c.admitted,
                    c.retained(),
                    100.0 * c.retained_fraction()
                );
                for s in &c.steps {
                    println!(
                        "    {:16} delivered {:9.4} shed {:9.4} [{}]",
                        s.event,
                        s.delivered,
                        s.shed,
                        s.stage.name()
                    );
                }
            }
            println!("  digest {:016x}", rep.digest());
            if let Some(path) = args.get("json") {
                std::fs::write(path, rep.to_json())?;
                println!("  report written to {path}");
            }
            match rep.separation_ok() {
                Some(true) => {
                    println!("  separation: pcf-ls retained > ffc retained -- OK");
                    Ok(())
                }
                verdict => {
                    println!("  separation VIOLATED ({verdict:?}): pcf-ls did not beat ffc");
                    std::process::exit(1);
                }
            }
        }
        "augment" => {
            let f = args.get_or("f", 1usize)?;
            let target: f64 = args
                .get("target")
                .ok_or(ArgError("augment needs --target".into()))?
                .parse()
                .map_err(|_| ArgError("--target must be a number".into()))?;
            let tm = load_traffic(&args, &topo)?;
            let k = args.get_or("tunnels", 3usize)?;
            let inst = tunnel_instance(&topo, &tm, k);
            let aug = augment_capacity(
                &inst,
                &FailureModel::links(f),
                target,
                |_| 1.0,
                &robust_options(&args)?,
            )
            .map_err(|e| ArgError(format!("augmentation failed: {e}")))?
            .ok_or(ArgError("augmentation did not converge".into()))?;
            println!(
                "target demand scale {target} under {f} failures: add {:.4} capacity units",
                aug.total_cost
            );
            for l in topo.links() {
                if aug.extra[l.index()] > 1e-6 {
                    let link = topo.link(l);
                    println!(
                        "  {} ({} - {}): {:.2} -> {:.2}",
                        l,
                        topo.node_name(link.u),
                        topo.node_name(link.v),
                        link.capacity,
                        link.capacity + aug.extra[l.index()]
                    );
                }
            }
            Ok(())
        }
        other => Err(Box::new(ArgError(format!("unknown command {other:?}")))),
    }
}

fn load_topology(args: &Args) -> Result<Topology, Box<dyn std::error::Error>> {
    match (args.get("gml"), args.get("topology")) {
        (Some(path), _) => {
            let src = std::fs::read_to_string(path)?;
            let raw = pcf_topology::gml::parse_gml(&src)?;
            let (pruned, _) = pcf_topology::transform::prune_degree_one(&raw);
            if pruned.node_count() == 0 {
                return Err(Box::new(ArgError(
                    "topology is a tree: nothing survives degree-1 pruning".into(),
                )));
            }
            Ok(pruned)
        }
        (None, Some(name)) => {
            if !pcf_topology::zoo::names().contains(&name) {
                return Err(Box::new(ArgError(format!(
                    "unknown topology {name:?}; available: {}",
                    pcf_topology::zoo::names().join(", ")
                ))));
            }
            Ok(pcf_topology::zoo::build(name))
        }
        (None, None) => Err(Box::new(ArgError(
            "need --topology <name> or --gml <path>".into(),
        ))),
    }
}

/// Robust-engine options from the command line: `--threads 0` (the
/// default) lets the engine use every available core for separation;
/// `--engine`, `--pricing` and `--refactor-every` tune the master LP's
/// simplex.
fn robust_options(args: &Args) -> Result<RobustOptions, ArgError> {
    let engine = match args.get("engine") {
        None | Some("sparse") => EngineKind::Sparse,
        Some("dense") => EngineKind::Dense,
        Some(other) => {
            return Err(ArgError(format!(
                "--engine: expected sparse | dense, got {other:?}"
            )))
        }
    };
    let pricing = match args.get("pricing") {
        None | Some("devex") => Pricing::Devex,
        Some("dantzig") => Pricing::Dantzig,
        Some(other) => {
            return Err(ArgError(format!(
                "--pricing: expected devex | dantzig, got {other:?}"
            )))
        }
    };
    let defaults = SimplexOptions::default();
    let reinvert_every = args.get_or("refactor-every", defaults.reinvert_every)?;
    if reinvert_every == 0 {
        return Err(ArgError("--refactor-every must be at least 1".into()));
    }
    Ok(RobustOptions {
        threads: args.get_or("threads", 0usize)?,
        lp: SimplexOptions {
            engine,
            pricing,
            reinvert_every,
            ..defaults
        },
        ..RobustOptions::default()
    })
}

/// The `solve --json` report: the headline numbers plus the LP engine
/// configuration that produced them, so archived results are attributable.
fn solve_json(
    args: &Args,
    topo: &Topology,
    inst: &Instance,
    sol: &RobustSolution,
    scheme: &str,
) -> Result<String, ArgError> {
    let opts = robust_options(args)?;
    let engine = match opts.lp.engine {
        EngineKind::Sparse => "sparse",
        EngineKind::Dense => "dense",
    };
    let pricing = match opts.lp.pricing {
        Pricing::Devex => "devex",
        Pricing::Dantzig => "dantzig",
    };
    Ok(format!(
        "{{\n  \"scheme\": \"{scheme}\",\n  \"topology\": \"{}\",\n  \"nodes\": {},\n  \
         \"links\": {},\n  \"pairs\": {},\n  \"tunnels\": {},\n  \"logical_sequences\": {},\n  \
         \"objective\": {:.9},\n  \"rounds\": {},\n  \"cuts\": {},\n  \"warm_rounds\": {},\n  \
         \"engine\": \"{engine}\",\n  \"pricing\": \"{pricing}\",\n  \"refactor_every\": {}\n}}\n",
        topo.name(),
        topo.node_count(),
        topo.link_count(),
        inst.num_pairs(),
        inst.num_tunnels(),
        inst.num_lss(),
        sol.objective,
        sol.rounds,
        sol.cuts,
        sol.warm_rounds,
        opts.lp.reinvert_every,
    ))
}

fn load_traffic(args: &Args, topo: &Topology) -> Result<TrafficMatrix, Box<dyn std::error::Error>> {
    let seed = args.get_or("seed", 1u64)?;
    let mlu = args.get_or("mlu", 0.6f64)?;
    let max_pairs = args.get_or("max-pairs", 200usize)?;
    let mut tm = gravity(topo, seed);
    tm.truncate_to_top_k(max_pairs);
    // `--mlu 0` skips the optimal-routing normalization: the max-concurrent-
    // flow LP it solves costs far more than the robust solve itself on
    // Deltacom/ION-scale topologies, and the guaranteed demand scale is
    // relative to the matrix either way.
    if mlu > 0.0 {
        let (scaled, _) = scale_to_mlu(topo, &tm, mlu);
        tm = scaled;
    }
    Ok(tm)
}

fn solve(
    args: &Args,
    topo: &Topology,
) -> Result<(Instance, RobustSolution, String), Box<dyn std::error::Error>> {
    let f = args.get_or("f", 1usize)?;
    let k = args.get_or("tunnels", 3usize)?;
    let scheme = args.get("scheme").unwrap_or("pcf-ls").to_string();
    let tm = load_traffic(args, topo)?;
    let fm = FailureModel::links(f);
    let opts = robust_options(args)?;
    let (inst, sol) = match scheme.as_str() {
        "ffc" => {
            let inst = tunnel_instance(topo, &tm, k);
            let sol = solve_ffc(&inst, &fm, &opts);
            (inst, sol)
        }
        "pcf-tf" => {
            let inst = tunnel_instance(topo, &tm, k);
            let sol = solve_pcf_tf(&inst, &fm, &opts);
            (inst, sol)
        }
        "pcf-ls" => {
            let inst = pcf_ls_instance(topo, &tm, k);
            let sol = solve_pcf_ls(&inst, &fm, &opts);
            (inst, sol)
        }
        "pcf-cls" => {
            let cls = pcf_cls_pipeline(topo, &tm, k, &fm, &opts);
            (cls.instance, cls.solution)
        }
        "r3" => {
            // R3 has no tunnel/LS plan to validate; report and exit here.
            let r3 = solve_r3(topo, &tm, f);
            println!(
                "R3 on {} (f={f}): guaranteed demand scale {:.4}",
                topo.name(),
                r3.objective
            );
            std::process::exit(0);
        }
        other => {
            return Err(Box::new(ArgError(format!(
                "unknown scheme {other:?} (ffc | pcf-tf | pcf-ls | pcf-cls | r3)"
            ))))
        }
    };
    Ok((inst, sol, scheme))
}

fn report(topo: &Topology, inst: &Instance, sol: &RobustSolution, scheme: &str) {
    println!(
        "{scheme} on {} ({} nodes, {} links): guaranteed demand scale {:.4}",
        topo.name(),
        topo.node_count(),
        topo.link_count(),
        sol.objective
    );
    println!(
        "  {} pairs, {} tunnels, {} logical sequences; {} cutting-plane rounds, {} cuts",
        inst.num_pairs(),
        inst.num_tunnels(),
        inst.num_lss(),
        sol.rounds,
        sol.cuts
    );
    if sol.objective > 1e-9 {
        println!(
            "  max link utilization at guarantee: {:.4}",
            1.0 / sol.objective
        );
    } else {
        println!("  no traffic can be guaranteed under this failure budget");
    }
}

fn describe(topo: &Topology) {
    println!(
        "{}: {} nodes, {} links, total capacity {:.1}",
        topo.name(),
        topo.node_count(),
        topo.link_count(),
        topo.total_capacity()
    );
    println!(
        "  2-edge-connected: {}  bridges: {}",
        topo.is_two_edge_connected(),
        topo.bridges().len()
    );
    let mut degs: Vec<usize> = topo.nodes().map(|n| topo.degree(n)).collect();
    degs.sort_unstable();
    println!(
        "  degree min/median/max: {}/{}/{}",
        degs.first().unwrap_or(&0),
        degs.get(degs.len() / 2).unwrap_or(&0),
        degs.last().unwrap_or(&0)
    );
}
