//! Replay-engine throughput: cached factorizations vs factoring every
//! event from scratch.
//!
//! The scenario is the ISSUE's acceptance setup — Sprint, a PCF-LS plan
//! solved for f=2, and a ≥1000-event flap trace with at most two
//! concurrent failures. The harness benches time one full replay per
//! iteration; in bench mode the file additionally records events/sec for
//! both modes, the speedup, and the cache hit rate to `BENCH_replay.json`
//! (override the path with `PCF_REPLAY_JSON`), after checking that the
//! two modes produced identical violation logs.

use pcf_bench::harness::Harness;
use pcf_core::{
    pcf_ls_instance, scale_to_mlu, solve_pcf_ls, FailureModel, Instance, Objective, RobustOptions,
};
use pcf_replay::{replay_trace, EventTrace, ReplayOptions, ReplayReport};
use pcf_topology::zoo;
use pcf_traffic::gravity;
use std::hint::black_box;

// Sprint under max_down=2 flaps has only C(17,2) + 17 + 1 = 154 distinct
// failure states, so a long trace almost always revisits a cached one —
// the steady-state regime the cache is for. 5000 events keeps warm-up
// (one factorization per distinct state) under 4% of the trace.
const EVENTS: usize = 5000;

fn plan() -> (Instance, Vec<f64>, Vec<f64>, Vec<f64>) {
    let topo = zoo::build("Sprint");
    let (tm, _) = scale_to_mlu(&topo, &gravity(&topo, 5), 0.6);
    let inst = pcf_ls_instance(&topo, &tm, 3);
    // Under f=2 Sprint cannot guarantee a uniform demand scale (some pair's
    // tunnel set is cut by two failures), so maximize total throughput:
    // survivable pairs carry real traffic and the replays are non-trivial.
    let opts = RobustOptions {
        objective: Objective::Throughput,
        ..RobustOptions::default()
    };
    let sol = solve_pcf_ls(&inst, &FailureModel::links(2), &opts);
    assert!(
        sol.objective > 0.0,
        "f=2 throughput plan must carry traffic"
    );
    let served: Vec<f64> = inst
        .pair_ids()
        .map(|p| sol.z[p.0] * inst.demand(p))
        .collect();
    (inst, sol.a, sol.b, served)
}

fn opts(cache_capacity: usize) -> ReplayOptions {
    ReplayOptions {
        cache_capacity,
        ..ReplayOptions::default()
    }
}

/// One replay of `trace`, timed; returns elapsed seconds and the report.
fn run_once(
    inst: &Instance,
    a: &[f64],
    b: &[f64],
    served: &[f64],
    trace: &EventTrace,
    cache_capacity: usize,
) -> (f64, ReplayReport) {
    let t0 = std::time::Instant::now();
    let report = replay_trace(inst, a, b, served, trace, &opts(cache_capacity));
    (t0.elapsed().as_secs_f64().max(1e-9), report)
}

/// Best-of-N events/sec for both modes, with cold/cached runs interleaved
/// so slow drift of the host (shared CPU) hits both modes alike. The
/// minimum is the usual robust floor estimator: noise only ever adds time.
fn acceptance_measurement(
    inst: &Instance,
    a: &[f64],
    b: &[f64],
    served: &[f64],
    trace: &EventTrace,
) -> (f64, ReplayReport, f64, ReplayReport) {
    const ROUNDS: usize = 5;
    run_once(inst, a, b, served, trace, 0); // warmup
    run_once(inst, a, b, served, trace, 1024);
    let (mut cold_best, mut cached_best) = (f64::INFINITY, f64::INFINITY);
    let (mut cold_report, mut cached_report) = (None, None);
    for _ in 0..ROUNDS {
        let (s, r) = run_once(inst, a, b, served, trace, 0);
        if s < cold_best {
            cold_best = s;
        }
        cold_report = Some(r);
        let (s, r) = run_once(inst, a, b, served, trace, 1024);
        if s < cached_best {
            cached_best = s;
        }
        cached_report = Some(r);
    }
    let cold = cold_report.expect("at least one round");
    let cached = cached_report.expect("at least one round");
    let cold_eps = cold.events as f64 / cold_best;
    let cached_eps = cached.events as f64 / cached_best;
    (cold_eps, cold, cached_eps, cached)
}

fn main() {
    let bench_mode = {
        let args: Vec<String> = std::env::args().skip(1).collect();
        args.iter().any(|a| a == "--bench") && !args.iter().any(|a| a == "--test")
    };
    let mut c = Harness::from_args("replay");
    let (inst, a, b, served) = plan();
    let trace = EventTrace::flaps(inst.topo(), EVENTS, 2, 42);

    let mut g = c.benchmark_group("replay");
    g.sample_size(10);
    g.bench_function("cached_5000_events", |bch| {
        bch.iter(|| {
            black_box(replay_trace(&inst, &a, &b, &served, &trace, &opts(1024)).max_utilization)
        })
    });
    g.bench_function("cold_5000_events", |bch| {
        bch.iter(|| {
            black_box(replay_trace(&inst, &a, &b, &served, &trace, &opts(0)).max_utilization)
        })
    });
    g.finish();
    c.finish();

    // The acceptance measurement: interleaved best-of-N per mode, identical
    // outcomes checked, headline JSON written (bench mode only).
    let (cold_eps, cold, cached_eps, cached) =
        acceptance_measurement(&inst, &a, &b, &served, &trace);
    assert_eq!(
        cached.violations, cold.violations,
        "cached and cold replays must agree on violations"
    );
    assert_eq!(cached.event_utilization, cold.event_utilization);
    let speedup = cached_eps / cold_eps;
    println!(
        "replay acceptance: cold {cold_eps:.0} events/s, cached {cached_eps:.0} events/s \
         ({speedup:.2}x), hit rate {:.1}%, violations {}",
        100.0 * cached.cache.hit_rate(),
        cached.violations.len()
    );
    if bench_mode {
        let path = std::env::var("PCF_REPLAY_JSON").unwrap_or_else(|_| "BENCH_replay.json".into());
        let json = format!(
            "{{\n  \"bench\": \"replay\",\n  \"topology\": \"Sprint\",\n  \"scheme\": \"pcf-ls\",\n  \
             \"f\": 2,\n  \"events\": {EVENTS},\n  \"cold_events_per_sec\": {cold_eps:.1},\n  \
             \"cached_events_per_sec\": {cached_eps:.1},\n  \"speedup\": {speedup:.2},\n  \
             \"cache_hit_rate\": {:.4},\n  \"cache_hits\": {},\n  \"cache_misses\": {},\n  \
             \"violations\": {},\n  \"violations_identical_to_cold\": true,\n  \
             \"max_utilization\": {:.6},\n  \"latency_p50_ns\": {},\n  \"latency_p99_ns\": {}\n}}\n",
            cached.cache.hit_rate(),
            cached.cache.hits,
            cached.cache.misses,
            cached.violations.len(),
            cached.max_utilization,
            cached.latency.p50_ns(),
            cached.latency.p99_ns(),
        );
        match std::fs::write(&path, json) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
}
