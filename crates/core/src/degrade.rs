//! Graceful degradation beyond the protected failure set.
//!
//! PCF's congestion-free guarantee (Props. 5/6) covers at most `f`
//! simultaneous failures. When a concrete scenario leaves that set —
//! more failures than the budget, a singular reservation matrix, a
//! disconnected pair — [`realize_routing`] returns a [`RealizeError`]
//! and the plain serving path delivers *nothing*. This module makes the
//! serving path total: [`degrade_routing`] walks a ladder of fallbacks
//! and always hands back a best-effort [`DegradedRouting`] when the
//! requested [`DegradeMode`] permits one.
//!
//! The ladder stages, in order:
//!
//! 1. **Normal** — the exact realization (`M × U = D`); congestion-free
//!    by Props. 5/6 whenever the scenario is inside the protected set.
//! 2. **Rescaled** — the proportional split of [`proportional_routing`]
//!    with the error exits removed: utilizations are clamped to `[0, 1]`
//!    (FFC/R3-style local rescaling), pairs with no live reservation
//!    serve zero instead of erroring. Requires the LS relation to be
//!    topologically sortable. May overload wobbled capacities.
//! 3. **Shed** — per-pair max-min fair demand shedding as a small LP on
//!    the surviving tunnels: maximize the common served fraction `θ`
//!    (plus a tiny residual-throughput tie-break) subject to per-arc
//!    capacities. Respects capacities by construction.
//!
//! Degraded routings are *best-effort*: they deliberately bypass the
//! congestion-free machinery, so they must never be cached or otherwise
//! confused with guaranteed realizations (the replay engine enforces
//! this — see `pcf-replay`).

use crate::instance::{Instance, PairId};
use crate::realize::{
    absolute_tolerance, expand_routing, pairs_of_interest, realize_routing, topological_order,
    FailureState, RealizeError, Routing,
};
use pcf_lp::{LpProblem, Sense, VarId};

/// How far down the ladder the caller allows the realization to fall.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradeMode {
    /// No fallback: beyond-budget scenarios keep returning errors.
    #[default]
    Off,
    /// Allow stage 2 (proportional rescale) only.
    Rescale,
    /// Allow stages 2 and 3 (rescale, then max-min fair shedding).
    Shed,
}

impl DegradeMode {
    /// Parses a CLI-style flag value (`off` / `rescale` / `shed`).
    pub fn from_flag(s: &str) -> Option<DegradeMode> {
        match s {
            "off" => Some(DegradeMode::Off),
            "rescale" => Some(DegradeMode::Rescale),
            "shed" => Some(DegradeMode::Shed),
            _ => None,
        }
    }

    /// The flag spelling accepted by [`DegradeMode::from_flag`].
    pub fn as_flag(self) -> &'static str {
        match self {
            DegradeMode::Off => "off",
            DegradeMode::Rescale => "rescale",
            DegradeMode::Shed => "shed",
        }
    }
}

/// Which rung of the ladder produced a routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LadderStage {
    /// The exact congestion-free realization succeeded.
    Normal,
    /// Proportional rescale of live reservations (stage 2).
    Rescaled,
    /// Max-min fair demand shedding LP (stage 3).
    Shed,
}

impl LadderStage {
    /// Stable short name (reports, JSON).
    pub fn name(self) -> &'static str {
        match self {
            LadderStage::Normal => "normal",
            LadderStage::Rescaled => "rescaled",
            LadderStage::Shed => "shed",
        }
    }

    /// Stable numeric code folded into deterministic digests.
    pub fn code(self) -> u8 {
        match self {
            LadderStage::Normal => 0,
            LadderStage::Rescaled => 1,
            LadderStage::Shed => 2,
        }
    }
}

/// A best-effort routing produced by the degradation ladder.
#[derive(Debug, Clone)]
pub struct DegradedRouting {
    /// The routing actually served (tunnel flows, arc loads).
    pub routing: Routing,
    /// Which ladder rung produced it.
    pub ladder_stage: LadderStage,
    /// Locally delivered fraction of each pair's *own* served demand
    /// (instance pair order; `1.0` for pairs with nothing to serve).
    /// For LS cascades this is the pair-local fraction — end-to-end
    /// delivery along a chain of segments is the product over the chain.
    pub served_fraction_per_pair: Vec<f64>,
    /// Worst residual arc overload: `max(0, load / capacity − 1)` over
    /// all arcs, against the (possibly degraded) capacities in effect.
    pub overload_bound: f64,
    /// Total primary demand not served: `Σ served_p · (1 − fraction_p)`.
    pub shed_demand: f64,
}

/// Peak arc utilization of a routing against explicit per-link
/// capacities (which may differ from the topology's nominal ones, e.g.
/// under injected capacity wobble).
pub fn peak_utilization(inst: &Instance, routing: &Routing, caps: &[f64]) -> f64 {
    let topo = inst.topo();
    topo.arcs()
        .map(|arc| {
            // Capacities are validated positive at trace-parse time; the
            // floor only guards against a degenerate caller.
            let cap = caps[arc.link().index()].max(1e-12);
            routing.arc_loads[arc.index()] / cap
        })
        .fold(0.0, f64::max)
}

/// `max(0, peak − 1)` — the worst relative overload of any arc.
pub fn overload_bound(inst: &Instance, routing: &Routing, caps: &[f64]) -> f64 {
    (peak_utilization(inst, routing, caps) - 1.0).max(0.0)
}

/// Wraps a successful stage-1 realization as a [`DegradedRouting`].
pub fn normal_routing(inst: &Instance, routing: Routing, caps: &[f64]) -> DegradedRouting {
    let overload = overload_bound(inst, &routing, caps);
    DegradedRouting {
        routing,
        ladder_stage: LadderStage::Normal,
        served_fraction_per_pair: vec![1.0; inst.num_pairs()],
        overload_bound: overload,
        shed_demand: 0.0,
    }
}

/// The full ladder: stage 1 (exact realization), then
/// [`degrade_fallback`] on error. With [`DegradeMode::Off`] this is
/// exactly [`realize_routing`] plus the wrapper.
#[allow(clippy::too_many_arguments)]
pub fn degrade_routing(
    inst: &Instance,
    state: &FailureState,
    a: &[f64],
    b: &[f64],
    served: &[f64],
    tol: f64,
    caps: &[f64],
    mode: DegradeMode,
) -> Result<DegradedRouting, RealizeError> {
    match realize_routing(inst, state, a, b, served, tol) {
        Ok(routing) => Ok(normal_routing(inst, routing, caps)),
        Err(err) => degrade_fallback(inst, state, a, b, served, tol, caps, mode, err),
    }
}

/// Stages 2 and 3 of the ladder, entered after stage 1 failed with
/// `stage1_err`. Returns that original error when the mode forbids a
/// workable fallback (so callers keep the precise failure cause).
///
/// In [`DegradeMode::Shed`] the rescale is accepted outright only when
/// it serves everything within capacity; otherwise the shed LP also
/// runs and wins if it removes an overload or serves strictly more
/// demand. If the LP cannot be solved, an imperfect rescale still beats
/// serving nothing and is returned.
#[allow(clippy::too_many_arguments)]
pub fn degrade_fallback(
    inst: &Instance,
    state: &FailureState,
    a: &[f64],
    b: &[f64],
    served: &[f64],
    tol: f64,
    caps: &[f64],
    mode: DegradeMode,
    stage1_err: RealizeError,
) -> Result<DegradedRouting, RealizeError> {
    if mode == DegradeMode::Off {
        return Err(stage1_err);
    }
    let tol_abs = absolute_tolerance(served, tol);
    if let Some(rescaled) = rescale_stage(inst, state, a, b, served, tol, caps) {
        if mode == DegradeMode::Rescale
            || (rescaled.overload_bound <= tol && rescaled.shed_demand <= tol_abs)
        {
            return Ok(rescaled);
        }
        if let Some(shed) = shed_stage(inst, state, served, tol, caps) {
            let prefer_shed = (rescaled.overload_bound > tol && shed.overload_bound <= tol)
                || shed.shed_demand + tol_abs < rescaled.shed_demand;
            if prefer_shed {
                return Ok(shed);
            }
        }
        return Ok(rescaled);
    }
    if mode == DegradeMode::Shed {
        if let Some(shed) = shed_stage(inst, state, served, tol, caps) {
            return Ok(shed);
        }
    }
    Err(stage1_err)
}

/// Stage 2: the proportional split of Proposition 7 made total.
///
/// Identical walk to [`proportional_routing`], but where that function
/// errors this one degrades: a pair whose live reservation vanished
/// serves zero, a pair asked for more than its reservation clamps to
/// `u = 1` and sheds the excess pro rata between its own demand and its
/// LS obligations. `None` when the LS relation is cyclic (no
/// topological order — stage 3 territory).
fn rescale_stage(
    inst: &Instance,
    state: &FailureState,
    a: &[f64],
    b: &[f64],
    served: &[f64],
    tol: f64,
    caps: &[f64],
) -> Option<DegradedRouting> {
    let tol_abs = absolute_tolerance(served, tol);
    let order = topological_order(inst, b)?;
    let pairs = pairs_of_interest(inst, state, served, b, tol_abs);
    let n = inst.num_pairs();
    let in_p = {
        let mut v = vec![false; n];
        for &p in &pairs {
            v[p.0] = true;
        }
        v
    };
    let mut u_all = vec![0.0f64; n];
    let mut fraction = vec![1.0f64; n];
    let mut obligation = vec![0.0f64; n];
    for &p in &order {
        if !in_p[p.0] {
            continue;
        }
        let demand_here = served[p.0] + obligation[p.0];
        if demand_here <= tol_abs {
            continue;
        }
        let denom: f64 = state.live_tunnels(inst, p).map(|l| a[l.0]).sum::<f64>()
            + state.active_lss(inst, p).map(|q| b[q.0]).sum::<f64>();
        if denom <= tol_abs {
            // Nothing live to carry it: shed everything asked of p.
            if served[p.0] > tol_abs {
                fraction[p.0] = 0.0;
            }
            continue;
        }
        let u = (demand_here / denom).min(1.0);
        u_all[p.0] = u;
        if served[p.0] > tol_abs {
            // Delivered u·denom of demand_here, shared pro rata.
            fraction[p.0] = (u * denom / demand_here).min(1.0);
        }
        for q in state.active_lss(inst, p) {
            let flow = u * b[q.0];
            if flow > 0.0 {
                for (x, y) in inst.ls(q).segments() {
                    // audit:allow(no-panic-paths, Instance construction interns a pair for every LS segment) audit:allow(panic-reachability, same invariant: segment pairs are interned at construction)
                    let sp = inst.pair_id(x, y).expect("segment pairs are interned");
                    obligation[sp.0] += flow;
                }
            }
        }
    }
    let u: Vec<f64> = pairs.iter().map(|&p| u_all[p.0]).collect();
    let routing = expand_routing(inst, state, a, &pairs, &u);
    let overload = overload_bound(inst, &routing, caps);
    let shed = shed_total(inst, served, &fraction, tol_abs);
    Some(DegradedRouting {
        routing,
        ladder_stage: LadderStage::Rescaled,
        served_fraction_per_pair: fraction,
        overload_bound: overload,
        shed_demand: shed,
    })
}

/// Stage 3: max-min fair shedding over surviving tunnels.
///
/// One LP: maximize `θ ∈ [0, 1]` such that every connected demand pair
/// delivers at least `θ · served_p` over its live tunnels, no pair
/// delivers more than its demand, and every arc stays within its
/// (possibly degraded) capacity. A tiny secondary weight on total flow
/// lets pairs beyond the bottleneck keep serving above `θ`. LSs are not
/// used here: their recursive obligations are exactly the machinery
/// that just failed, so stage 3 falls back to direct tunnels only —
/// and reservations are ignored, it re-plans from scratch.
/// `None` when the LP does not reach optimality (practically: never —
/// `θ = 0`, all flows zero is always feasible).
fn shed_stage(
    inst: &Instance,
    state: &FailureState,
    served: &[f64],
    tol: f64,
    caps: &[f64],
) -> Option<DegradedRouting> {
    let tol_abs = absolute_tolerance(served, tol);
    let topo = inst.topo();
    let total: f64 = served.iter().sum();
    let mut lp = LpProblem::new(Sense::Maximize);
    // θ first; residual throughput only as a tie-break far below any
    // meaningful θ movement.
    let theta = lp.add_var(0.0, 1.0, 1.0);
    let flow_weight = 1e-7 / (1.0 + total);
    let mut arc_terms: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); topo.arc_count()];
    // (pair, its tunnel-flow vars); deterministic instance order.
    let mut demand_vars: Vec<(PairId, Vec<(VarId, crate::instance::TunnelId)>)> = Vec::new();
    for p in inst.pair_ids() {
        if served[p.0] <= tol_abs {
            continue;
        }
        let mut vars = Vec::new();
        for l in state.live_tunnels(inst, p) {
            let v = lp.add_var(0.0, served[p.0], flow_weight);
            let path = inst.tunnel(l);
            for (hop, &link) in path.links.iter().enumerate() {
                let arc = topo.arc_from(link, path.nodes[hop]);
                arc_terms[arc.index()].push((v, 1.0));
            }
            vars.push((v, l));
        }
        if !vars.is_empty() {
            let coeffs: Vec<(VarId, f64)> = vars.iter().map(|&(v, _)| (v, 1.0)).collect();
            lp.add_le(coeffs.clone(), served[p.0]);
            let mut ge = coeffs;
            ge.push((theta, -served[p.0]));
            lp.add_ge(ge, 0.0);
        }
        demand_vars.push((p, vars));
    }
    let arc_link: Vec<usize> = topo.arcs().map(|arc| arc.link().index()).collect();
    for (arc_idx, terms) in arc_terms.into_iter().enumerate() {
        if terms.is_empty() {
            continue;
        }
        lp.add_le(terms, caps[arc_link[arc_idx]].max(0.0));
    }
    let sol = lp.solve().ok()?;
    if !sol.is_optimal() {
        return None;
    }
    let mut tunnel_flow = vec![0.0f64; inst.num_tunnels()];
    let mut arc_loads = vec![0.0f64; topo.arc_count()];
    let mut fraction = vec![1.0f64; inst.num_pairs()];
    let mut pairs = Vec::with_capacity(demand_vars.len());
    let mut u = Vec::with_capacity(demand_vars.len());
    for (p, vars) in &demand_vars {
        let mut delivered = 0.0f64;
        for &(v, l) in vars {
            let f = sol.value(v).max(0.0);
            if f <= 0.0 {
                continue;
            }
            delivered += f;
            tunnel_flow[l.0] += f;
            let path = inst.tunnel(l);
            for (hop, &link) in path.links.iter().enumerate() {
                let arc = topo.arc_from(link, path.nodes[hop]);
                arc_loads[arc.index()] += f;
            }
        }
        fraction[p.0] = (delivered / served[p.0]).clamp(0.0, 1.0);
        pairs.push(*p);
        u.push(fraction[p.0]);
    }
    let routing = Routing {
        pairs,
        u,
        tunnel_flow,
        arc_loads,
    };
    let overload = overload_bound(inst, &routing, caps);
    let shed = shed_total(inst, served, &fraction, tol_abs);
    Some(DegradedRouting {
        routing,
        ladder_stage: LadderStage::Shed,
        served_fraction_per_pair: fraction,
        overload_bound: overload,
        shed_demand: shed,
    })
}

/// Total primary demand left unserved by the per-pair fractions.
fn shed_total(inst: &Instance, served: &[f64], fraction: &[f64], tol_abs: f64) -> f64 {
    inst.pair_ids()
        .map(|p| {
            if served[p.0] > tol_abs {
                served[p.0] * (1.0 - fraction[p.0]).max(0.0)
            } else {
                0.0
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::FailureModel;
    use crate::instance::{InstanceBuilder, LogicalSequence};
    use crate::robust::{solve_robust, AdversaryKind, RobustOptions};
    use pcf_topology::{NodeId, Topology};

    fn diamond() -> Topology {
        let mut t = Topology::new("diamond");
        let s = t.add_node("s");
        let a = t.add_node("a");
        let b = t.add_node("b");
        let d = t.add_node("t");
        t.add_link(s, a, 1.0);
        t.add_link(a, d, 1.0);
        t.add_link(s, b, 1.0);
        t.add_link(b, d, 1.0);
        t
    }

    fn plan(topo: &Topology) -> (crate::instance::Instance, Vec<f64>, Vec<f64>, Vec<f64>) {
        let inst = InstanceBuilder::with_demands(topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .tunnels_per_pair(2)
            .build();
        let sol = solve_robust(
            &inst,
            &FailureModel::links(1),
            AdversaryKind::LinkBased,
            &RobustOptions::default(),
        );
        let served: Vec<f64> = inst
            .pair_ids()
            .map(|p| sol.z[p.0] * inst.demand(p))
            .collect();
        (inst, sol.a, sol.b, served)
    }

    fn caps(topo: &Topology) -> Vec<f64> {
        topo.links().map(|l| topo.capacity(l)).collect()
    }

    #[test]
    fn within_budget_stays_on_stage_one() {
        let topo = diamond();
        let (inst, a, b, served) = plan(&topo);
        let state = FailureState::new(&inst, &[false; 4]).unwrap();
        let d = degrade_routing(
            &inst,
            &state,
            &a,
            &b,
            &served,
            1e-7,
            &caps(&topo),
            DegradeMode::Shed,
        )
        .unwrap();
        assert_eq!(d.ladder_stage, LadderStage::Normal);
        assert_eq!(d.shed_demand, 0.0);
        assert!(d.served_fraction_per_pair.iter().all(|&f| f == 1.0));
        assert!(d.overload_bound <= 1e-7);
    }

    #[test]
    fn beyond_budget_rescales_and_sheds() {
        // Kill both paths' first hops: the f=1 plan cannot realize, but
        // the ladder must still answer. With everything dead the pair is
        // disconnected: rescale serves zero.
        let topo = diamond();
        let (inst, a, b, served) = plan(&topo);
        let mut dead = vec![false; 4];
        dead[0] = true;
        dead[2] = true;
        let state = FailureState::new(&inst, &dead).unwrap();
        let err = realize_routing(&inst, &state, &a, &b, &served, 1e-7).unwrap_err();
        assert!(matches!(err, RealizeError::Disconnected(_)), "{err:?}");
        let d = degrade_fallback(
            &inst,
            &state,
            &a,
            &b,
            &served,
            1e-7,
            &caps(&topo),
            DegradeMode::Rescale,
            err.clone(),
        )
        .unwrap();
        assert_eq!(d.ladder_stage, LadderStage::Rescaled);
        let p = inst.pair_id(NodeId(0), NodeId(3)).unwrap();
        assert_eq!(d.served_fraction_per_pair[p.0], 0.0);
        assert!((d.shed_demand - served[p.0]).abs() < 1e-9);
        assert!(d.routing.tunnel_flow.iter().all(|&f| f == 0.0));
        // Off mode keeps the original error.
        let off = degrade_fallback(
            &inst,
            &state,
            &a,
            &b,
            &served,
            1e-7,
            &caps(&topo),
            DegradeMode::Off,
            err.clone(),
        );
        assert_eq!(off.unwrap_err(), err);
    }

    #[test]
    fn partial_failure_rescale_keeps_surviving_path_within_caps() {
        // One path dead: a single-failure plan realizes normally, so force
        // the fallback directly — the rescale serves what the surviving
        // tunnels can and never overloads nominal capacities.
        let topo = diamond();
        let (inst, a, b, served) = plan(&topo);
        let mut dead = vec![false; 4];
        dead[0] = true;
        let state = FailureState::new(&inst, &dead).unwrap();
        let d = degrade_fallback(
            &inst,
            &state,
            &a,
            &b,
            &served,
            1e-7,
            &caps(&topo),
            DegradeMode::Rescale,
            RealizeError::SingularMatrix,
        )
        .unwrap();
        assert_eq!(d.ladder_stage, LadderStage::Rescaled);
        assert!(d.overload_bound <= 1e-9, "overload {}", d.overload_bound);
        let delivered: f64 = d.routing.tunnel_flow.iter().sum();
        assert!(delivered > 0.0);
    }

    #[test]
    fn shed_stage_respects_degraded_capacities() {
        // Squeeze every capacity to 30%: rescale (reservation-driven)
        // overloads, so Shed mode must fall to the LP, which serves at
        // most 30% per arc and reports the max-min fraction.
        let topo = diamond();
        let (inst, a, b, served) = plan(&topo);
        let state = FailureState::new(&inst, &[false; 4]).unwrap();
        let squeezed: Vec<f64> = caps(&topo).iter().map(|c| 0.3 * c).collect();
        let d = degrade_fallback(
            &inst,
            &state,
            &a,
            &b,
            &served,
            1e-7,
            &squeezed,
            DegradeMode::Shed,
            RealizeError::SingularMatrix,
        )
        .unwrap();
        assert_eq!(d.ladder_stage, LadderStage::Shed);
        assert!(d.overload_bound <= 1e-6, "overload {}", d.overload_bound);
        let p = inst.pair_id(NodeId(0), NodeId(3)).unwrap();
        // Two disjoint paths at 0.3 capacity each: 0.6 of the demand.
        assert!(
            (d.served_fraction_per_pair[p.0] - 0.6).abs() < 1e-6,
            "fraction {}",
            d.served_fraction_per_pair[p.0]
        );
        assert!((d.shed_demand - 0.4 * served[p.0]).abs() < 1e-6);
        // Same squeeze in Rescale-only mode keeps the overloaded rescale.
        let r = degrade_fallback(
            &inst,
            &state,
            &a,
            &b,
            &served,
            1e-7,
            &squeezed,
            DegradeMode::Rescale,
            RealizeError::SingularMatrix,
        )
        .unwrap();
        assert_eq!(r.ladder_stage, LadderStage::Rescaled);
        assert!(r.overload_bound > 0.1, "overload {}", r.overload_bound);
    }

    #[test]
    fn cyclic_ls_relation_skips_rescale_and_sheds() {
        // Two LSs referencing each other's pair: no topological order, so
        // stage 2 is unavailable; Shed mode reaches the LP, Rescale mode
        // surfaces the original error.
        let topo = diamond();
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .tunnels_per_pair(2)
            .add_ls(LogicalSequence::always(vec![
                NodeId(0),
                NodeId(1),
                NodeId(3),
            ]))
            .add_ls(LogicalSequence::always(vec![
                NodeId(0),
                NodeId(3),
                NodeId(1),
            ]))
            .build();
        let a = vec![1.0; inst.num_tunnels()];
        let b = vec![1.0; inst.num_lss()];
        let served = vec![1.0; inst.num_pairs()];
        let state = FailureState::new(&inst, &[false; 4]).unwrap();
        let c = caps(&topo);
        let shed = degrade_fallback(
            &inst,
            &state,
            &a,
            &b,
            &served,
            1e-7,
            &c,
            DegradeMode::Shed,
            RealizeError::SingularMatrix,
        )
        .unwrap();
        assert_eq!(shed.ladder_stage, LadderStage::Shed);
        let rescale_only = degrade_fallback(
            &inst,
            &state,
            &a,
            &b,
            &served,
            1e-7,
            &c,
            DegradeMode::Rescale,
            RealizeError::SingularMatrix,
        );
        assert_eq!(rescale_only.unwrap_err(), RealizeError::SingularMatrix);
    }

    #[test]
    fn shed_is_max_min_fair_across_pairs() {
        // Two pairs share the bottleneck s→a→t (the only surviving path
        // for both once s→b dies): θ splits it evenly relative to demand.
        let mut t = Topology::new("shared");
        let s = t.add_node("s");
        let a_n = t.add_node("a");
        let b_n = t.add_node("b");
        let d_n = t.add_node("t");
        t.add_link(s, a_n, 1.0);
        t.add_link(a_n, d_n, 1.0);
        t.add_link(s, b_n, 1.0);
        t.add_link(b_n, d_n, 1.0);
        let inst = InstanceBuilder::with_demands(&t, vec![(s, d_n, 1.0), (a_n, d_n, 1.0)])
            .tunnels_per_pair(2)
            .build();
        let mut dead = vec![false; 4];
        dead[2] = true; // kill s→b: both pairs need a→t (capacity 1).
        let state = FailureState::new(&inst, &dead).unwrap();
        let a = vec![0.0; inst.num_tunnels()];
        let served = vec![1.0, 1.0];
        let c = caps(&t);
        let d = degrade_fallback(
            &inst,
            &state,
            &a,
            &[],
            &served,
            1e-7,
            &c,
            DegradeMode::Shed,
            RealizeError::SingularMatrix,
        )
        .unwrap();
        assert_eq!(d.ladder_stage, LadderStage::Shed);
        // a→t (cap 1) carries both pairs' 1+1 demand: θ = 0.5.
        for p in inst.pair_ids() {
            assert!(
                d.served_fraction_per_pair[p.0] >= 0.5 - 1e-6,
                "pair {p:?} fraction {}",
                d.served_fraction_per_pair[p.0]
            );
        }
        assert!(d.overload_bound <= 1e-6);
        assert!((d.shed_demand - 1.0).abs() < 1e-5, "shed {}", d.shed_demand);
    }
}
