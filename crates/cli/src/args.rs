//! Tiny hand-rolled argument parser (no external dependencies).
//!
//! Grammar: `pcf <command> [--flag value | --switch]...`. Flags may
//! appear in any order; unknown flags are an error so typos fail fast.
//! Switches are valueless boolean flags (`--fail-fast`), queried with
//! [`Args::has`].

use std::collections::HashMap;

/// Parsed command line: the subcommand, its `--flag value` pairs, and
/// the valueless switches that were present.
#[derive(Debug, Clone)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

/// Error produced by [`Args::parse`] or typed accessors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses `argv` (without the binary name) against a list of known
    /// value-taking flags and a list of valueless switches.
    pub fn parse(argv: &[String], known: &[&str], switches: &[&str]) -> Result<Args, ArgError> {
        let mut it = argv.iter();
        let command = it
            .next()
            .ok_or_else(|| ArgError("missing command".into()))?
            .clone();
        let mut flags = HashMap::new();
        let mut seen_switches = Vec::new();
        while let Some(tok) = it.next() {
            let Some(name) = tok.strip_prefix("--") else {
                return Err(ArgError(format!("expected --flag, got {tok:?}")));
            };
            if switches.contains(&name) {
                if seen_switches.iter().any(|s| s == name) {
                    return Err(ArgError(format!("--{name} given twice")));
                }
                seen_switches.push(name.to_string());
                continue;
            }
            if !known.contains(&name) {
                return Err(ArgError(format!("unknown flag --{name}")));
            }
            let value = it
                .next()
                .ok_or_else(|| ArgError(format!("--{name} needs a value")))?;
            if flags.insert(name.to_string(), value.clone()).is_some() {
                return Err(ArgError(format!("--{name} given twice")));
            }
        }
        Ok(Args {
            command,
            flags,
            switches: seen_switches,
        })
    }

    /// String flag value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(|s| s.as_str())
    }

    /// True when the valueless switch was present.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// Typed flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{name}: cannot parse {v:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let a = Args::parse(
            &sv(&["solve", "--topology", "Sprint", "--f", "2"]),
            &["topology", "f"],
            &[],
        )
        .unwrap();
        assert_eq!(a.command, "solve");
        assert_eq!(a.get("topology"), Some("Sprint"));
        assert_eq!(a.get_or("f", 1usize).unwrap(), 2);
        assert_eq!(a.get_or("missing", 7usize).unwrap(), 7);
    }

    #[test]
    fn rejects_unknown_and_duplicate_flags() {
        assert!(Args::parse(&sv(&["solve", "--nope", "1"]), &["f"], &[]).is_err());
        assert!(Args::parse(&sv(&["solve", "--f", "1", "--f", "2"]), &["f"], &[]).is_err());
        assert!(Args::parse(&sv(&["solve", "--f"]), &["f"], &[]).is_err());
        assert!(Args::parse(&sv(&["solve", "f"]), &["f"], &[]).is_err());
        assert!(Args::parse(&[], &[], &[]).is_err());
    }

    #[test]
    fn typed_parse_errors_are_reported() {
        let a = Args::parse(&sv(&["solve", "--f", "nope"]), &["f"], &[]).unwrap();
        assert!(a.get_or("f", 1usize).is_err());
    }

    #[test]
    fn switches_take_no_value_and_reject_duplicates() {
        let a = Args::parse(
            &sv(&["replay", "--fail-fast", "--f", "2"]),
            &["f"],
            &["fail-fast"],
        )
        .unwrap();
        assert!(a.has("fail-fast"));
        assert!(!a.has("json"));
        assert_eq!(a.get_or("f", 1usize).unwrap(), 2);
        assert!(Args::parse(
            &sv(&["replay", "--fail-fast", "--fail-fast"]),
            &[],
            &["fail-fast"]
        )
        .is_err());
    }
}
