//! Failure modeling: targeted failure sets, conditions, and enumeration.
//!
//! The paper designs for all scenarios of up to `f` simultaneous link
//! failures (§3.2, Eq. 4), and generalizes to shared-risk link groups and
//! node failures by imposing the budget on *group* indicators instead of
//! individual links (§3.5).

use pcf_topology::{LinkId, NodeId, Topology};

/// One budgeted family of atomic failure units: up to `f` of the `groups`
/// fail simultaneously, and a group's failure kills every link it contains.
/// Several budgets compose conjunctively in [`FailureModel::Structured`]
/// (e.g. "any one node AND any one additional link").
#[derive(Debug, Clone, PartialEq)]
pub struct GroupBudget {
    /// The link groups that fail atomically under this budget.
    pub groups: Vec<Vec<LinkId>>,
    /// Maximum simultaneous group failures drawn from this budget.
    pub f: usize,
}

impl GroupBudget {
    /// A budget of independent single-link failures over the whole topology.
    pub fn links(topo: &Topology, f: usize) -> Self {
        GroupBudget {
            groups: topo.links().map(|l| vec![l]).collect(),
            f,
        }
    }

    /// A budget of whole-node failures: one group per node containing its
    /// incident links (§3.5 node failures).
    pub fn nodes(topo: &Topology, f: usize) -> Self {
        GroupBudget {
            groups: topo
                .nodes()
                .map(|n| topo.incident(n).iter().map(|&(_, l)| l).collect())
                .collect(),
            f,
        }
    }

    /// A budget of regional failures: each region (a set of nodes) is one
    /// group containing every link that touches any node in the set.
    pub fn regions(topo: &Topology, regions: &[Vec<NodeId>], f: usize) -> Self {
        let groups = regions
            .iter()
            .map(|nodes| {
                let mut ls: Vec<LinkId> = topo
                    .links()
                    .filter(|&l| nodes.iter().any(|&n| topo.link(l).touches(n)))
                    .collect();
                ls.sort_unstable_by_key(|l| l.index());
                ls
            })
            .collect();
        GroupBudget { groups, f }
    }
}

/// A partial-capacity-degradation polytope: each link's capacity may drop to
/// anywhere in `[floor_e · c_e, c_e]`, optionally with a global budget `g`
/// bounding the total fractional drop `Σ_e d_e ≤ g` (where the realized
/// capacity is `(1 − d_e) · c_e` and `d_e ∈ [0, 1 − floor_e]`).
#[derive(Debug, Clone, PartialEq)]
pub struct Degradation {
    /// Per-link lower bound `α_e ∈ [0, 1]` on the capacity fraction.
    pub floor: Vec<f64>,
    /// Optional budget on the total fractional drop `Σ_e d_e`.
    pub budget: Option<f64>,
}

impl Degradation {
    /// Uniform floor `alpha` across `link_count` links, unbudgeted.
    pub fn uniform(link_count: usize, alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha));
        Degradation {
            floor: vec![alpha; link_count],
            budget: None,
        }
    }

    /// Adds a budget on the total fractional capacity drop.
    pub fn with_budget(mut self, g: f64) -> Self {
        assert!(g >= 0.0);
        self.budget = Some(g);
        self
    }

    /// Maximum drop `1 − α_e` available on link `e`, clipped to the budget.
    fn max_drop(&self, e: usize) -> f64 {
        let room = (1.0 - self.floor[e]).max(0.0);
        match self.budget {
            Some(g) => room.min(g),
            None => room,
        }
    }

    /// The capacity-scale corner points used for validation: every
    /// single-link worst drop, plus the all-floors corner when the budget
    /// does not bind (covers the whole box). The no-degradation corner
    /// (all ones) is implied and not returned.
    pub fn corners(&self) -> Vec<Vec<f64>> {
        let n = self.floor.len();
        let mut out = Vec::new();
        for e in 0..n {
            let d = self.max_drop(e);
            if d > 0.0 {
                let mut scale = vec![1.0; n];
                scale[e] = 1.0 - d;
                out.push(scale);
            }
        }
        let total_room: f64 = (0..n).map(|e| (1.0 - self.floor[e]).max(0.0)).sum();
        let budget_binds = matches!(self.budget, Some(g) if g < total_room);
        if !budget_binds && total_room > 0.0 && n > 1 {
            out.push(self.floor.iter().map(|&a| a.clamp(0.0, 1.0)).collect());
        }
        out
    }
}

/// A concrete structured scenario: which links are dead, plus the surviving
/// capacity fraction of every link (`1.0` = undegraded).
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Dead-link mask.
    pub dead: Vec<bool>,
    /// Per-link capacity scale in `[0, 1]`.
    pub cap_scale: Vec<f64>,
}

impl Scenario {
    /// A scenario with failures only (no capacity degradation).
    pub fn from_mask(dead: Vec<bool>) -> Self {
        let n = dead.len();
        Scenario {
            dead,
            cap_scale: vec![1.0; n],
        }
    }

    /// True when no link is degraded below full capacity.
    pub fn undegraded(&self) -> bool {
        self.cap_scale.iter().all(|&s| s >= 1.0)
    }
}

/// The set of failure scenarios a design must survive.
#[derive(Debug, Clone, PartialEq)]
pub enum FailureModel {
    /// Up to `f` simultaneous link failures (Eq. 4's `sum x_e <= f`).
    Links {
        /// Maximum simultaneous link failures.
        f: usize,
    },
    /// Up to `f` simultaneous group failures; a group's failure kills all
    /// its links. Models SRLGs (arbitrary groups) and node failures (one
    /// group per node containing its incident links), §3.5.
    Groups {
        /// The link groups that fail atomically.
        groups: Vec<Vec<LinkId>>,
        /// Maximum simultaneous group failures.
        f: usize,
    },
    /// An explicit, enumerated scenario list (each scenario = the set of
    /// links that die together). This is how probabilistically pruned
    /// designs in the style of Teavar/Lancet (discussed in §6) plug in: the
    /// caller enumerates the scenarios whose probability mass matters and
    /// designs for exactly those. The adversary is then *exact* — no
    /// relaxation of `x` — which also makes this the reference point for
    /// measuring the conservatism of the paper's `x ∈ [0,1]` relaxation.
    Explicit {
        /// The scenarios to protect against (the empty scenario is implied).
        scenarios: Vec<Vec<LinkId>>,
    },
    /// A structured uncertainty set: several independent group budgets that
    /// compose conjunctively (e.g. SRLGs + node failures + extra links),
    /// optionally combined with a partial-capacity-degradation polytope.
    /// This is the general form the separation oracle dualizes over; the
    /// other budgeted variants are special cases.
    Structured {
        /// Conjunctive group budgets; each contributes its own `Σ g ≤ f` row.
        budgets: Vec<GroupBudget>,
        /// Optional partial-capacity degradation.
        degradation: Option<Degradation>,
    },
}

impl FailureModel {
    /// Convenience constructor for plain link failures.
    pub fn links(f: usize) -> Self {
        FailureModel::Links { f }
    }

    /// One failure group per node: all links incident to the node die
    /// together (§3.5 node failures).
    pub fn node_failures(topo: &Topology, f: usize) -> Self {
        let groups = topo
            .nodes()
            .map(|n| topo.incident(n).iter().map(|&(_, l)| l).collect())
            .collect();
        FailureModel::Groups { groups, f }
    }

    /// SRLG failures: up to `f` of the given shared-risk groups fail.
    pub fn srlgs(groups: Vec<Vec<LinkId>>, f: usize) -> Self {
        FailureModel::Groups { groups, f }
    }

    /// Regional failures: up to `f` of the given node-set regions fail; a
    /// region's failure kills every link touching any node in the set.
    pub fn regional(topo: &Topology, regions: &[Vec<NodeId>], f: usize) -> Self {
        FailureModel::Structured {
            budgets: vec![GroupBudget::regions(topo, regions, f)],
            degradation: None,
        }
    }

    /// Node failures composed with an independent link budget: up to
    /// `f_nodes` whole-node failures AND up to `f_links` additional link
    /// failures simultaneously.
    pub fn nodes_and_links(topo: &Topology, f_nodes: usize, f_links: usize) -> Self {
        FailureModel::Structured {
            budgets: vec![
                GroupBudget::nodes(topo, f_nodes),
                GroupBudget::links(topo, f_links),
            ],
            degradation: None,
        }
    }

    /// A bare structured model from explicit budgets (no degradation).
    pub fn structured(budgets: Vec<GroupBudget>) -> Self {
        FailureModel::Structured {
            budgets,
            degradation: None,
        }
    }

    /// Attaches a partial-capacity-degradation polytope, converting budgeted
    /// variants to [`FailureModel::Structured`] as needed. Panics on
    /// [`FailureModel::Explicit`], which carries concrete scenarios and has
    /// no polytope to extend.
    pub fn with_degradation(self, topo: &Topology, deg: Degradation) -> Self {
        assert_eq!(deg.floor.len(), topo.link_count());
        let budgets = match self {
            FailureModel::Links { f } => vec![GroupBudget::links(topo, f)],
            FailureModel::Groups { groups, f } => vec![GroupBudget { groups, f }],
            FailureModel::Structured { budgets, .. } => budgets,
            FailureModel::Explicit { .. } => {
                // audit:allow(no-panic-paths, documented precondition: Explicit carries concrete scenarios and has no polytope to extend)
                panic!("explicit scenario lists cannot carry a degradation polytope")
            }
        };
        FailureModel::Structured {
            budgets,
            degradation: Some(deg),
        }
    }

    /// The degradation polytope, if the model carries one.
    pub fn degradation(&self) -> Option<&Degradation> {
        match self {
            FailureModel::Structured { degradation, .. } => degradation.as_ref(),
            _ => None,
        }
    }

    /// The failure budget `f` (for explicit lists: the largest scenario's
    /// cardinality, which is what FFC's `f · p_st` bound consumes; for
    /// structured models: the sum over the conjunctive budgets).
    pub fn budget(&self) -> usize {
        match self {
            FailureModel::Links { f } => *f,
            FailureModel::Groups { f, .. } => *f,
            FailureModel::Explicit { scenarios } => {
                scenarios.iter().map(|s| s.len()).max().unwrap_or(0)
            }
            FailureModel::Structured { budgets, .. } => budgets.iter().map(|b| b.f).sum(),
        }
    }

    /// The failure groups that budgeted models expand over; `None` for
    /// explicit scenario lists, which carry their scenarios directly.
    fn expansion_groups(&self, topo: &Topology) -> Option<Vec<Vec<LinkId>>> {
        match self {
            FailureModel::Links { .. } => Some(topo.links().map(|l| vec![l]).collect()),
            FailureModel::Groups { groups, .. } => Some(groups.clone()),
            FailureModel::Explicit { .. } | FailureModel::Structured { .. } => None,
        }
    }

    /// Builds the explicit scenario list containing every independent-link
    /// failure combination whose probability is at least `min_prob`, given
    /// a per-link failure probability. Scenarios are explored in decreasing
    /// probability; at most `cap` scenarios are returned (a Lancet-style
    /// pruned design set).
    pub fn pruned_by_probability(
        topo: &Topology,
        link_prob: &[f64],
        min_prob: f64,
        cap: usize,
    ) -> Self {
        assert_eq!(link_prob.len(), topo.link_count());
        assert!(link_prob.iter().all(|&p| (0.0..1.0).contains(&p)));
        // Probability of "exactly this set fails" relative to the all-alive
        // scenario: prod p_e / (1 - p_e); rank sets by that ratio.
        let mut ratio: Vec<(usize, f64)> = link_prob
            .iter()
            .enumerate()
            .map(|(i, &p)| (i, p / (1.0 - p)))
            .filter(|&(_, r)| r > 0.0)
            .collect();
        ratio.sort_by(|a, b| b.1.total_cmp(&a.1));
        let base: f64 = link_prob.iter().map(|&p| 1.0 - p).product();

        /// Total order on finite non-negative f64 for the best-first heap.
        #[derive(PartialEq)]
        struct Prob(f64);
        impl Eq for Prob {}
        impl PartialOrd for Prob {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Prob {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&other.0)
            }
        }

        // Best-first search over subsets (by scenario probability).
        let mut heap: std::collections::BinaryHeap<(Prob, Vec<usize>)> =
            std::collections::BinaryHeap::new();
        let mut out: Vec<Vec<LinkId>> = Vec::new();
        for (idx, &(_, r)) in ratio.iter().enumerate() {
            heap.push((Prob(base * r), vec![idx]));
        }
        while let Some((Prob(p), set)) = heap.pop() {
            if p < min_prob || out.len() >= cap {
                break;
            }
            out.push(set.iter().map(|&i| LinkId(ratio[i].0 as u32)).collect());
            // Extend with strictly larger-indexed links to avoid duplicates.
            let Some(&last) = set.last() else {
                continue;
            };
            for (next, &(_, r)) in ratio.iter().enumerate().skip(last + 1) {
                let mut bigger = set.clone();
                bigger.push(next);
                heap.push((Prob(p * r), bigger));
            }
        }
        FailureModel::Explicit { scenarios: out }
    }

    /// Enumerates every concrete worst-cardinality scenario as a dead-link
    /// mask (all subsets of exactly `f` links/groups; failures only remove
    /// capacity, so sub-budget scenarios are dominated for validation and
    /// optimal baselines).
    ///
    /// The number of scenarios is `C(n, f)` — call only when that is small
    /// enough, or use [`FailureModel::sample_scenarios`].
    pub fn enumerate_scenarios(&self, topo: &Topology) -> Vec<Vec<bool>> {
        if let FailureModel::Explicit { scenarios } = self {
            return scenarios
                .iter()
                .map(|dead| {
                    let mut mask = vec![false; topo.link_count()];
                    for l in dead {
                        mask[l.index()] = true;
                    }
                    mask
                })
                .collect();
        }
        if let FailureModel::Structured { budgets, .. } = self {
            // Cartesian product of each budget's worst-cardinality
            // combinations; duplicate masks (overlapping groups across
            // budgets) are collapsed.
            let mut masks: Vec<Vec<bool>> = vec![vec![false; topo.link_count()]];
            for b in budgets {
                let sub = FailureModel::Groups {
                    groups: b.groups.clone(),
                    f: b.f,
                };
                let sub_masks = sub.enumerate_scenarios(topo);
                let mut merged = Vec::with_capacity(masks.len() * sub_masks.len());
                for m in &masks {
                    for s in &sub_masks {
                        merged.push(m.iter().zip(s).map(|(&a, &b)| a || b).collect());
                    }
                }
                masks = merged;
            }
            masks.sort();
            masks.dedup();
            return masks;
        }
        let Some(groups) = self.expansion_groups(topo) else {
            return Vec::new(); // Explicit lists were handled above
        };
        let f = self.budget().min(groups.len());
        let mut out = Vec::new();
        let mut idx: Vec<usize> = (0..f).collect();
        if f == 0 {
            out.push(vec![false; topo.link_count()]);
            return out;
        }
        loop {
            let mut mask = vec![false; topo.link_count()];
            for &g in &idx {
                for l in &groups[g] {
                    mask[l.index()] = true;
                }
            }
            out.push(mask);
            // next combination
            let n = groups.len();
            let mut i = f;
            loop {
                if i == 0 {
                    return out;
                }
                i -= 1;
                if idx[i] + (f - i) < n {
                    idx[i] += 1;
                    for j in (i + 1)..f {
                        idx[j] = idx[j - 1] + 1;
                    }
                    break;
                }
            }
        }
    }

    /// Number of worst-cardinality scenarios without materialising them.
    /// For structured models this is the product over budgets of
    /// `C(n_b, f_b)` — an upper bound, since overlapping groups across
    /// budgets can collapse to the same dead-link mask.
    pub fn scenario_count(&self, topo: &Topology) -> usize {
        let n = match self {
            FailureModel::Links { .. } => topo.link_count(),
            FailureModel::Groups { groups, .. } => groups.len(),
            FailureModel::Explicit { scenarios } => return scenarios.len(),
            FailureModel::Structured { budgets, .. } => {
                return budgets
                    .iter()
                    .map(|b| {
                        FailureModel::Groups {
                            groups: b.groups.clone(),
                            f: b.f,
                        }
                        .scenario_count(topo)
                    })
                    .fold(1usize, |acc, c| acc.saturating_mul(c));
            }
        };
        let f = self.budget().min(n);
        // C(n, f), saturating.
        let mut c: usize = 1;
        for i in 0..f {
            c = c.saturating_mul(n - i) / (i + 1);
        }
        c
    }

    /// A deterministic sample of `count` distinct scenarios (dead-link
    /// masks), used when full enumeration is intractable. Sampling scenarios
    /// yields an *optimistic* (upper) bound when used for worst-case minima;
    /// callers must report that.
    pub fn sample_scenarios(&self, topo: &Topology, count: usize, seed: u64) -> Vec<Vec<bool>> {
        let total = self.scenario_count(topo);
        if total <= count {
            return self.enumerate_scenarios(topo);
        }
        if let FailureModel::Explicit { .. } = self {
            let mut all = self.enumerate_scenarios(topo);
            all.truncate(count);
            return all;
        }
        // Simple deterministic LCG to avoid threading RNG deps here.
        let mut state = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        if let FailureModel::Structured { budgets, .. } = self {
            // Per-budget picks composed into a joint mask; dedup on the mask
            // itself (overlapping groups can collide across budgets).
            let mut seen = std::collections::HashSet::new();
            let mut out = Vec::new();
            let mut guard = 0usize;
            while out.len() < count && guard < 100 * count {
                guard += 1;
                let mut mask = vec![false; topo.link_count()];
                for b in budgets {
                    let n = b.groups.len();
                    let f = b.f.min(n);
                    let mut pick: Vec<usize> = Vec::with_capacity(f);
                    while pick.len() < f {
                        let g = next() % n;
                        if !pick.contains(&g) {
                            pick.push(g);
                        }
                    }
                    for &g in &pick {
                        for l in &b.groups[g] {
                            mask[l.index()] = true;
                        }
                    }
                }
                if seen.insert(mask.clone()) {
                    out.push(mask);
                }
            }
            return out;
        }
        let Some(groups) = self.expansion_groups(topo) else {
            return Vec::new(); // Explicit lists were handled above
        };
        let f = self.budget().min(groups.len());
        let n = groups.len();
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        let mut guard = 0usize;
        while out.len() < count && guard < 100 * count {
            guard += 1;
            let mut pick: Vec<usize> = Vec::with_capacity(f);
            while pick.len() < f {
                let g = next() % n;
                if !pick.contains(&g) {
                    pick.push(g);
                }
            }
            pick.sort_unstable();
            if !seen.insert(pick.clone()) {
                continue;
            }
            let mut mask = vec![false; topo.link_count()];
            for &g in &pick {
                for l in &groups[g] {
                    mask[l.index()] = true;
                }
            }
            out.push(mask);
        }
        out
    }

    /// Enumerates concrete structured scenarios: every worst-cardinality
    /// failure mask composed with every degradation corner point, plus the
    /// undegraded corner. For models without a degradation polytope this is
    /// [`FailureModel::enumerate_scenarios`] lifted into [`Scenario`].
    pub fn enumerate_structured_scenarios(&self, topo: &Topology) -> Vec<Scenario> {
        let masks = self.enumerate_scenarios(topo);
        let corners: Vec<Vec<f64>> = self.degradation().map(|d| d.corners()).unwrap_or_default();
        let mut out = Vec::with_capacity(masks.len() * (1 + corners.len()));
        for mask in masks {
            for c in &corners {
                out.push(Scenario {
                    dead: mask.clone(),
                    cap_scale: c.clone(),
                });
            }
            out.push(Scenario::from_mask(mask));
        }
        out
    }
}

/// Activation condition of a logical sequence or logical flow (§3.4 and the
/// appendix's generalised conditions).
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// Always active.
    Always,
    /// Active exactly when the given link is dead (`h_q = x_e`).
    LinkDead(LinkId),
    /// Active when all links in `alive` are up and all links in `dead` are
    /// down (appendix linearization).
    AliveDead {
        /// Links that must be alive.
        alive: Vec<LinkId>,
        /// Links that must be dead.
        dead: Vec<LinkId>,
    },
}

impl Condition {
    /// Evaluates the condition under a concrete dead-link mask.
    pub fn holds(&self, dead_mask: &[bool]) -> bool {
        match self {
            Condition::Always => true,
            Condition::LinkDead(e) => dead_mask[e.index()],
            Condition::AliveDead { alive, dead } => {
                alive.iter().all(|e| !dead_mask[e.index()])
                    && dead.iter().all(|e| dead_mask[e.index()])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcf_topology::zoo;

    #[test]
    fn enumerate_single_failures_is_one_per_link() {
        let t = zoo::build("Sprint");
        let fm = FailureModel::links(1);
        let sc = fm.enumerate_scenarios(&t);
        assert_eq!(sc.len(), t.link_count());
        for mask in &sc {
            assert_eq!(mask.iter().filter(|&&d| d).count(), 1);
        }
    }

    #[test]
    fn enumerate_double_failures_counts_pairs() {
        let t = zoo::build("Sprint"); // 17 links
        let fm = FailureModel::links(2);
        let sc = fm.enumerate_scenarios(&t);
        assert_eq!(sc.len(), 17 * 16 / 2);
        assert_eq!(fm.scenario_count(&t), 17 * 16 / 2);
    }

    #[test]
    fn zero_budget_is_the_no_failure_scenario() {
        let t = zoo::build("Sprint");
        let fm = FailureModel::links(0);
        let sc = fm.enumerate_scenarios(&t);
        assert_eq!(sc.len(), 1);
        assert!(sc[0].iter().all(|&d| !d));
    }

    #[test]
    fn node_failure_groups_kill_incident_links() {
        let t = zoo::build("Sprint");
        let fm = FailureModel::node_failures(&t, 1);
        let sc = fm.enumerate_scenarios(&t);
        assert_eq!(sc.len(), t.node_count());
        // Scenario k kills exactly node k's incident links.
        for (k, mask) in sc.iter().enumerate() {
            let n = pcf_topology::NodeId(k as u32);
            for l in t.links() {
                let should = t.link(l).touches(n);
                assert_eq!(mask[l.index()], should);
            }
        }
    }

    #[test]
    fn sampling_returns_enumeration_when_small() {
        let t = zoo::build("Sprint");
        let fm = FailureModel::links(1);
        let sc = fm.sample_scenarios(&t, 1000, 42);
        assert_eq!(sc.len(), t.link_count());
    }

    #[test]
    fn sampling_is_deterministic_and_distinct() {
        let t = zoo::build("GEANT"); // 50 links, C(50,3) huge
        let fm = FailureModel::links(3);
        let a = fm.sample_scenarios(&t, 40, 7);
        let b = fm.sample_scenarios(&t, 40, 7);
        assert_eq!(a.len(), 40);
        assert_eq!(a, b);
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 40);
        for mask in &a {
            assert_eq!(mask.iter().filter(|&&d| d).count(), 3);
        }
    }

    #[test]
    fn conditions_evaluate() {
        let t = zoo::build("Sprint");
        let mut mask = vec![false; t.link_count()];
        mask[3] = true;
        assert!(Condition::Always.holds(&mask));
        assert!(Condition::LinkDead(LinkId(3)).holds(&mask));
        assert!(!Condition::LinkDead(LinkId(4)).holds(&mask));
        let c = Condition::AliveDead {
            alive: vec![LinkId(0)],
            dead: vec![LinkId(3)],
        };
        assert!(c.holds(&mask));
        mask[0] = true;
        assert!(!c.holds(&mask));
    }
}

#[cfg(test)]
mod structured_tests {
    use super::*;
    use pcf_topology::zoo;
    use std::collections::BTreeSet;

    #[test]
    fn regional_groups_are_incident_link_unions() {
        let t = zoo::build("Abilene");
        let region = vec![pcf_topology::NodeId(0), pcf_topology::NodeId(3)];
        let b = GroupBudget::regions(&t, &[region.clone()], 1);
        assert_eq!(b.groups.len(), 1);
        for l in t.links() {
            let touches = region.iter().any(|&n| t.link(l).touches(n));
            assert_eq!(b.groups[0].contains(&l), touches);
        }
    }

    #[test]
    fn nodes_and_links_enumeration_is_cartesian_up_to_dedup() {
        let t = zoo::build("Abilene");
        let fm = FailureModel::nodes_and_links(&t, 1, 1);
        let got: BTreeSet<Vec<bool>> = fm.enumerate_scenarios(&t).into_iter().collect();
        let mut expect = BTreeSet::new();
        for n in t.nodes() {
            for l in t.links() {
                let mut mask = vec![false; t.link_count()];
                for &(_, il) in t.incident(n) {
                    mask[il.index()] = true;
                }
                mask[l.index()] = true;
                expect.insert(mask);
            }
        }
        assert_eq!(got, expect);
        // The closed-form count is the product of per-budget counts.
        assert_eq!(fm.scenario_count(&t), t.node_count() * t.link_count());
    }

    #[test]
    fn degradation_corners_cover_the_box() {
        let deg = Degradation::uniform(5, 0.8);
        let cs = deg.corners();
        // One corner per link plus the all-floors corner.
        assert_eq!(cs.len(), 6);
        assert!(cs
            .iter()
            .any(|c| c.iter().all(|&s| (s - 0.8).abs() < 1e-12)));
        // A binding budget clips single-link drops and removes the
        // all-floors corner.
        let tight = Degradation::uniform(5, 0.8).with_budget(0.1);
        let cs2 = tight.corners();
        assert_eq!(cs2.len(), 5);
        assert!(cs2.iter().flatten().all(|&s| s >= 0.9 - 1e-12));
    }

    #[test]
    fn structured_scenarios_compose_masks_and_corners() {
        let t = zoo::build("Abilene");
        let deg = Degradation::uniform(t.link_count(), 0.5);
        let fm = FailureModel::links(1).with_degradation(&t, deg);
        let sc = fm.enumerate_structured_scenarios(&t);
        // masks × (undegraded + per-link corners + all-floors corner)
        assert_eq!(sc.len(), t.link_count() * (1 + t.link_count() + 1));
        assert!(sc.iter().any(|s| s.undegraded()));
        for s in &sc {
            assert_eq!(s.dead.len(), t.link_count());
            assert!(s.cap_scale.iter().all(|&c| (0.0..=1.0).contains(&c)));
        }
    }

    #[test]
    fn structured_sampling_is_deterministic() {
        let t = zoo::build("GEANT");
        let fm = FailureModel::nodes_and_links(&t, 1, 2);
        let a = fm.sample_scenarios(&t, 20, 3);
        let b = fm.sample_scenarios(&t, 20, 3);
        assert_eq!(a.len(), 20);
        assert_eq!(a, b);
        let set: BTreeSet<_> = a.iter().collect();
        assert_eq!(set.len(), 20);
    }
}

#[cfg(test)]
mod explicit_tests {
    use super::*;
    use pcf_topology::zoo;

    #[test]
    fn explicit_enumeration_round_trips() {
        let t = zoo::build("Sprint");
        let fm = FailureModel::Explicit {
            scenarios: vec![vec![LinkId(0)], vec![LinkId(1), LinkId(2)]],
        };
        assert_eq!(fm.budget(), 2);
        assert_eq!(fm.scenario_count(&t), 2);
        let masks = fm.enumerate_scenarios(&t);
        assert_eq!(masks.len(), 2);
        assert!(masks[0][0] && !masks[0][1]);
        assert!(masks[1][1] && masks[1][2]);
    }

    #[test]
    fn pruning_orders_by_probability() {
        let t = zoo::build("Sprint");
        // Link 3 fails often; link 5 moderately; the rest rarely.
        let mut probs = vec![0.001; t.link_count()];
        probs[3] = 0.2;
        probs[5] = 0.05;
        let fm = FailureModel::pruned_by_probability(&t, &probs, 1e-4, 10);
        let FailureModel::Explicit { scenarios } = &fm else {
            panic!("pruning returns an explicit list")
        };
        assert!(!scenarios.is_empty());
        // Most probable scenario first: {link 3} alone.
        assert_eq!(scenarios[0], vec![LinkId(3)]);
        // The pair {3,5} should rank above any {rare} singleton.
        let pos_pair = scenarios.iter().position(|s| s.len() == 2).unwrap();
        assert_eq!(scenarios[pos_pair], vec![LinkId(3), LinkId(5)]);
        assert!(scenarios.len() <= 10);
    }

    #[test]
    fn pruning_respects_cap_and_threshold() {
        let t = zoo::build("Sprint");
        let probs = vec![0.01; t.link_count()];
        let fm = FailureModel::pruned_by_probability(&t, &probs, 0.0, 5);
        assert_eq!(fm.scenario_count(&t), 5);
        let fm2 = FailureModel::pruned_by_probability(&t, &probs, 0.999, 100);
        // No scenario has probability 0.999.
        assert_eq!(fm2.scenario_count(&t), 0);
    }
}
