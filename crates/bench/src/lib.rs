//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (§5).
//!
//! Each `fig*`/`table1` runner reproduces the corresponding artifact's data
//! series and prints it in row/series form (the repository has no plotting
//! dependency; the printed CDF/series data is what the paper's figures
//! plot). The binary `experiments` drives the runners; the benches in
//! `benches/` time the per-figure workloads on the in-tree [`harness`].
//!
//! Scale control: the paper runs Gurobi on all 21 topologies with every
//! node pair. A from-scratch simplex needs smaller masters, so [`Scale`]
//! truncates gravity matrices to the heaviest pairs covering a target
//! demand mass and (below `paper` scale) bounds the topology set. Every
//! truncation is visible in the output and recorded in EXPERIMENTS.md.

use pcf_core::objective::{overhead_reduction_pct, throughput_overhead};
use pcf_core::realize::{greedy_topsort, topological_order};
use pcf_core::{
    optimal_demand_scale, pcf_cls_pipeline, pcf_ls_instance, scale_to_mlu, solve_ffc, solve_pcf_ls,
    solve_pcf_tf, tunnel_instance, FailureModel, Objective, RobustOptions, ScenarioCoverage,
};
use pcf_topology::transform::split_sublinks;
use pcf_topology::{zoo, Topology};
use pcf_traffic::{gravity, TrafficMatrix};
use std::time::Instant;

pub mod harness;

/// Experiment scale knobs.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Keep the heaviest demands covering this fraction of total mass...
    pub mass_fraction: f64,
    /// ...but never more than this many pairs.
    pub max_pairs: usize,
    /// Topologies for the cross-topology figures (11, and the ablations),
    /// by name.
    pub topologies: Vec<&'static str>,
    /// Topologies for the sub-link multi-failure figures (12–14), which
    /// double the link count and design for f = 3; kept smaller so the
    /// sweeps stay tractable.
    pub sublink_topologies: Vec<&'static str>,
    /// The "largest network" used for Figs. 8–10 (the paper uses Deltacom).
    pub big_topology: &'static str,
    /// Number of traffic matrices for Figs. 8 and 10 (paper: 12).
    pub tm_count: usize,
    /// Scenario cap for the optimal baseline (exhaustive when the scenario
    /// space is smaller; sampled otherwise — an upper bound, flagged in the
    /// output).
    pub optimal_cap: usize,
}

impl Scale {
    /// Small and fast: a handful of topologies, Sprint standing in for
    /// Deltacom, 3 traffic matrices. Minutes on one core.
    pub fn quick() -> Self {
        Scale {
            mass_fraction: 0.9,
            max_pairs: 90,
            topologies: vec![
                "Sprint",
                "B4",
                "IBM",
                "Highwinds",
                "CWIX",
                "Quest",
                "Darkstrand",
            ],
            sublink_topologies: vec!["Sprint", "B4", "IBM"],
            big_topology: "Sprint",
            tm_count: 3,
            optimal_cap: 40,
        }
    }

    /// The full configuration: all 21 topologies, Deltacom for Figs. 8–10,
    /// 12 traffic matrices. Hours on one core.
    pub fn paper() -> Self {
        Scale {
            mass_fraction: 0.9,
            max_pairs: 250,
            topologies: zoo::names(),
            sublink_topologies: zoo::names(),
            big_topology: "Deltacom",
            tm_count: 12,
            optimal_cap: 120,
        }
    }

    /// Mid-size default: the topologies up to 50 links, GEANT standing in
    /// for Deltacom, 6 traffic matrices.
    pub fn medium() -> Self {
        Scale {
            mass_fraction: 0.9,
            max_pairs: 160,
            topologies: zoo::TABLE3
                .iter()
                .filter(|&&(_, _, m)| m <= 50)
                .map(|&(n, _, _)| n)
                .collect(),
            sublink_topologies: zoo::TABLE3
                .iter()
                .filter(|&&(_, _, m)| m <= 32)
                .map(|&(n, _, _)| n)
                .collect(),
            big_topology: "GEANT",
            tm_count: 6,
            optimal_cap: 60,
        }
    }

    /// Parses `quick` / `medium` / `paper`.
    pub fn parse(name: &str) -> Option<Scale> {
        match name {
            "quick" => Some(Scale::quick()),
            "medium" => Some(Scale::medium()),
            "paper" => Some(Scale::paper()),
            _ => None,
        }
    }
}

/// A prepared evaluation input: topology + MLU-normalised, truncated
/// traffic matrix.
pub struct Workload {
    /// The topology.
    pub topo: Topology,
    /// The traffic matrix (scaled to optimal MLU 0.6, truncated per scale).
    pub tm: TrafficMatrix,
    /// Pairs kept by truncation.
    pub kept_pairs: usize,
    /// Pairs before truncation.
    pub total_pairs: usize,
}

/// Builds the paper's §5 workload for a topology: gravity traffic at MLU
/// 0.6, truncated to the scale's heaviest-pair budget.
pub fn workload(topo: &Topology, seed: u64, scale: &Scale) -> Workload {
    let tm = gravity(topo, seed);
    let (mut tm, _) = scale_to_mlu(topo, &tm, 0.6);
    let total_pairs = tm.positive_pairs().len();
    let mut kept = tm.truncate_to_mass(scale.mass_fraction);
    if kept > scale.max_pairs {
        kept = tm.truncate_to_top_k(scale.max_pairs);
    }
    Workload {
        topo: topo.clone(),
        tm,
        kept_pairs: kept,
        total_pairs,
    }
}

/// Formats a CDF: sorted values with cumulative fractions.
pub fn cdf(values: &[f64]) -> Vec<(f64, f64)> {
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = v.len() as f64;
    v.into_iter()
        .enumerate()
        .map(|(i, x)| (x, (i + 1) as f64 / n))
        .collect()
}

fn print_cdf(name: &str, values: &[f64]) {
    let c = cdf(values);
    print!("  {name:<10}");
    for (x, f) in &c {
        print!(" {x:.3}@{f:.2}");
    }
    println!();
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Fig. 2: throughput guarantee on the Fig. 1 topology for FFC-3 / FFC-4 /
/// optimal under one and two failures. Returns rows
/// `(label, f=1 value, f=2 value)`.
pub fn fig2() -> Vec<(&'static str, f64, f64)> {
    use pcf_core::figures::{fig1_instance, fig1_topology};
    let opts = RobustOptions::default();
    let (topo, ids) = fig1_topology();
    let mut tm = TrafficMatrix::zeros(topo.node_count());
    tm.set_demand(ids.s, ids.t, 1.0);
    let opt = |f: usize| {
        optimal_demand_scale(
            &topo,
            &tm,
            &FailureModel::links(f),
            ScenarioCoverage::Exhaustive,
        )
        .0
    };
    let ffc =
        |k: usize, f: usize| solve_ffc(&fig1_instance(k), &FailureModel::links(f), &opts).objective;
    let pcf = |k: usize, f: usize| {
        solve_pcf_tf(&fig1_instance(k), &FailureModel::links(f), &opts).objective
    };
    vec![
        ("Optimal", opt(1), opt(2)),
        ("FFC-3", ffc(3, 1), ffc(3, 2)),
        ("FFC-4", ffc(4, 1), ffc(4, 2)),
        ("PCF-TF-4", pcf(4, 1), pcf(4, 2)),
    ]
}

/// Prints Fig. 2.
pub fn run_fig2() {
    println!("== Fig. 2: Fig. 1 topology, throughput guarantee ==");
    println!(
        "  {:<10} {:>6} {:>6}   (paper: Optimal 2/1, FFC-3 1.5/0.5, FFC-4 1/0)",
        "scheme", "f=1", "f=2"
    );
    for (name, f1, f2) in fig2() {
        println!("  {name:<10} {f1:>6.3} {f2:>6.3}");
    }
}

/// Table 1: every scheme on the Fig. 5 topology under two simultaneous
/// failures.
pub fn table1() -> Vec<(&'static str, f64)> {
    use pcf_core::figures::{fig5_instance, fig5_topology, Fig5Variant};
    let opts = RobustOptions::default();
    let fm = FailureModel::links(2);
    let (topo, ids) = fig5_topology();
    let mut tm = TrafficMatrix::zeros(topo.node_count());
    tm.set_demand(ids.s, ids.t, 1.0);
    vec![
        (
            "Optimal",
            optimal_demand_scale(&topo, &tm, &fm, ScenarioCoverage::Exhaustive).0,
        ),
        (
            "FFC",
            solve_ffc(&fig5_instance(Fig5Variant::TunnelsOnly), &fm, &opts).objective,
        ),
        (
            "PCF-TF",
            solve_pcf_tf(&fig5_instance(Fig5Variant::TunnelsOnly), &fm, &opts).objective,
        ),
        (
            "PCF-LS",
            solve_pcf_ls(&fig5_instance(Fig5Variant::UnconditionalLs), &fm, &opts).objective,
        ),
        (
            "PCF-CLS",
            pcf_core::solve_pcf_cls(&fig5_instance(Fig5Variant::ConditionalLs), &fm, &opts)
                .objective,
        ),
        ("R3", pcf_core::solve_r3(&topo, &tm, 2).objective),
    ]
}

/// Prints Table 1.
pub fn run_table1() {
    println!("== Table 1: Fig. 5 topology, 2 simultaneous link failures ==");
    println!("  (paper: Optimal 1, FFC 0, PCF-TF 2/3, PCF-LS 4/5, PCF-CLS 1, R3 0)");
    for (name, v) in table1() {
        println!("  {name:<8} {v:.4}");
    }
}

/// Fig. 8: CDF of demand scale for FFC with 2/3/4 tunnels and the optimal,
/// over `tm_count` gravity matrices on the big topology, f = 1.
pub fn fig8(scale: &Scale) -> Vec<(String, Vec<f64>)> {
    let topo = zoo::build(scale.big_topology);
    let fm = FailureModel::links(1);
    let opts = RobustOptions::default();
    let mut series: Vec<(String, Vec<f64>)> = vec![
        ("FFC(2)".into(), vec![]),
        ("FFC(3)".into(), vec![]),
        ("FFC(4)".into(), vec![]),
        ("Optimal".into(), vec![]),
    ];
    for seed in 0..scale.tm_count as u64 {
        let w = workload(&topo, 100 + seed, scale);
        for (i, k) in [2usize, 3, 4].into_iter().enumerate() {
            let sol = solve_ffc(&tunnel_instance(&w.topo, &w.tm, k), &fm, &opts);
            series[i].1.push(sol.objective);
        }
        let (opt, _, _) = optimal_demand_scale(
            &w.topo,
            &w.tm,
            &fm,
            ScenarioCoverage::Sampled(scale.optimal_cap),
        );
        series[3].1.push(opt);
    }
    series
}

/// Prints Fig. 8.
pub fn run_fig8(scale: &Scale) {
    println!(
        "== Fig. 8: FFC vs tunnel count, {} x{} TMs, f=1 ==",
        scale.big_topology, scale.tm_count
    );
    println!("  (paper: more tunnels hurt FFC; all are below optimal)");
    let series = fig8(scale);
    for (name, values) in &series {
        print_cdf(name, values);
    }
    println!(
        "  means: FFC(2) {:.3}, FFC(3) {:.3}, FFC(4) {:.3}, Optimal {:.3}",
        mean(&series[0].1),
        mean(&series[1].1),
        mean(&series[2].1),
        mean(&series[3].1)
    );
}

/// Fig. 9: demand scale of FFC and PCF-TF at 2/3/4 tunnels, one TM, f = 1.
pub fn fig9(scale: &Scale) -> Vec<(usize, f64, f64)> {
    let topo = zoo::build(scale.big_topology);
    let w = workload(&topo, 100, scale);
    let fm = FailureModel::links(1);
    let opts = RobustOptions::default();
    [2usize, 3, 4]
        .into_iter()
        .map(|k| {
            let inst = tunnel_instance(&w.topo, &w.tm, k);
            let ffc = solve_ffc(&inst, &fm, &opts).objective;
            let tf = solve_pcf_tf(&inst, &fm, &opts).objective;
            (k, ffc, tf)
        })
        .collect()
}

/// Prints Fig. 9.
pub fn run_fig9(scale: &Scale) {
    println!(
        "== Fig. 9: FFC vs PCF-TF as tunnels are added ({}, f=1) ==",
        scale.big_topology
    );
    println!("  (paper: FFC degrades with tunnels, PCF-TF improves)");
    println!("  {:<8} {:>8} {:>8}", "tunnels", "FFC", "PCF-TF");
    for (k, ffc, tf) in fig9(scale) {
        println!("  {k:<8} {ffc:>8.4} {tf:>8.4}");
    }
}

/// One topology/TM evaluation of all schemes for Figs. 10–12.
pub struct SchemeRow {
    /// Topology name.
    pub name: String,
    /// FFC demand scale (the denominator).
    pub ffc: f64,
    /// PCF-TF demand scale.
    pub pcf_tf: f64,
    /// PCF-LS demand scale.
    pub pcf_ls: f64,
    /// PCF-CLS demand scale.
    pub pcf_cls: f64,
    /// Optimal (a sampled upper bound when `optimal_exact` is false).
    pub optimal: f64,
    /// Whether the optimal was exhaustive.
    pub optimal_exact: bool,
}

/// Runs every scheme on one workload. `ffc_tunnels`/`pcf_tunnels` follow
/// the paper (2/3 for single failures, 4/6 for the sub-link experiments).
pub fn scheme_row(
    w: &Workload,
    fm: &FailureModel,
    ffc_tunnels: usize,
    pcf_tunnels: usize,
    optimal_cap: usize,
) -> SchemeRow {
    let opts = RobustOptions::default();
    let ffc = solve_ffc(&tunnel_instance(&w.topo, &w.tm, ffc_tunnels), fm, &opts);
    let tf = solve_pcf_tf(&tunnel_instance(&w.topo, &w.tm, pcf_tunnels), fm, &opts);
    let ls = solve_pcf_ls(&pcf_ls_instance(&w.topo, &w.tm, pcf_tunnels), fm, &opts);
    let cls = pcf_cls_pipeline(&w.topo, &w.tm, pcf_tunnels, fm, &opts);
    let (opt, _, exact) =
        optimal_demand_scale(&w.topo, &w.tm, fm, ScenarioCoverage::Sampled(optimal_cap));
    SchemeRow {
        name: w.topo.name().to_string(),
        ffc: ffc.objective,
        pcf_tf: tf.objective,
        pcf_ls: ls.objective,
        pcf_cls: cls.solution.objective,
        optimal: opt,
        optimal_exact: exact,
    }
}

/// Fig. 10: demand scale relative to FFC across traffic matrices on the big
/// topology, f = 1.
pub fn fig10(scale: &Scale) -> Vec<SchemeRow> {
    let topo = zoo::build(scale.big_topology);
    let fm = FailureModel::links(1);
    (0..scale.tm_count as u64)
        .map(|seed| {
            let w = workload(&topo, 100 + seed, scale);
            scheme_row(&w, &fm, 2, 3, scale.optimal_cap)
        })
        .collect()
}

fn print_relative(rows: &[SchemeRow]) {
    let rel = |f: fn(&SchemeRow) -> f64| -> Vec<f64> {
        rows.iter().map(|r| f(r) / r.ffc.max(1e-12)).collect()
    };
    let tf = rel(|r| r.pcf_tf);
    let ls = rel(|r| r.pcf_ls);
    let cls = rel(|r| r.pcf_cls);
    let opt = rel(|r| r.optimal);
    print_cdf("PCF-TF", &tf);
    print_cdf("PCF-LS", &ls);
    print_cdf("PCF-CLS", &cls);
    print_cdf("Optimal", &opt);
    println!(
        "  means vs FFC: PCF-TF {:.2}x, PCF-LS {:.2}x, PCF-CLS {:.2}x, Optimal {:.2}x",
        mean(&tf),
        mean(&ls),
        mean(&cls),
        mean(&opt)
    );
    let sampled = rows.iter().filter(|r| !r.optimal_exact).count();
    if sampled > 0 {
        println!("  (optimal sampled on {sampled} rows: upper bound)");
    }
}

/// Prints Fig. 10.
pub fn run_fig10(scale: &Scale) {
    println!(
        "== Fig. 10: benefit over FFC across {} TMs on {} (f=1) ==",
        scale.tm_count, scale.big_topology
    );
    println!("  (paper medians: PCF-TF/LS 1.25x, PCF-CLS 1.37x; CLS near optimal)");
    let rows = fig10(scale);
    print_relative(&rows);
}

/// Fig. 11: every scheme across the scale's topology set, f = 1.
pub fn fig11(scale: &Scale) -> Vec<SchemeRow> {
    let fm = FailureModel::links(1);
    scale
        .topologies
        .iter()
        .map(|name| {
            let topo = zoo::build(name);
            let w = workload(&topo, 100, scale);
            scheme_row(&w, &fm, 2, 3, scale.optimal_cap)
        })
        .collect()
}

fn print_rows(rows: &[SchemeRow]) {
    for r in rows {
        println!(
            "  {:<16} FFC {:.3}  TF {:.3}  LS {:.3}  CLS {:.3}  OPT {:.3}{}",
            r.name,
            r.ffc,
            r.pcf_tf,
            r.pcf_ls,
            r.pcf_cls,
            r.optimal,
            if r.optimal_exact { "" } else { "*" }
        );
    }
}

/// Prints Fig. 11.
pub fn run_fig11(scale: &Scale) {
    println!(
        "== Fig. 11: benefit over FFC across {} topologies (f=1) ==",
        scale.topologies.len()
    );
    println!("  (paper means: PCF-TF 1.11x, PCF-LS 1.22x, PCF-CLS 1.44x; max 2.6x)");
    let rows = fig11(scale);
    print_rows(&rows);
    print_relative(&rows);
}

/// Fig. 12: three simultaneous sub-link failures (each link split in two);
/// PCF uses 6 tunnels, FFC 4.
pub fn fig12(scale: &Scale) -> Vec<SchemeRow> {
    let fm = FailureModel::links(3);
    scale
        .sublink_topologies
        .iter()
        .map(|name| {
            let topo = split_sublinks(&zoo::build(name), 2);
            let w = workload(&topo, 100, scale);
            scheme_row(&w, &fm, 4, 6, scale.optimal_cap)
        })
        .collect()
}

/// Prints Fig. 12.
pub fn run_fig12(scale: &Scale) {
    println!(
        "== Fig. 12: 3 simultaneous sub-link failures across {} topologies ==",
        scale.sublink_topologies.len()
    );
    println!("  (paper means: PCF-TF 1.11x, PCF-LS 1.25x, PCF-CLS 1.50x over FFC)");
    let rows = fig12(scale);
    print_rows(&rows);
    print_relative(&rows);
}

/// Fig. 13: % reduction in throughput overhead vs FFC under the f = 3
/// sub-link design. Returns `(name, tf%, ls%, cls%)`.
pub fn fig13(scale: &Scale) -> Vec<(String, f64, f64, f64)> {
    let fm = FailureModel::links(3);
    let opts = RobustOptions {
        objective: Objective::Throughput,
        ..RobustOptions::default()
    };
    scale
        .sublink_topologies
        .iter()
        .map(|name| {
            let topo = split_sublinks(&zoo::build(name), 2);
            let w = workload(&topo, 100, scale);
            let total = w.tm.total();
            let ffc = solve_ffc(&tunnel_instance(&w.topo, &w.tm, 4), &fm, &opts);
            let tf = solve_pcf_tf(&tunnel_instance(&w.topo, &w.tm, 6), &fm, &opts);
            let ls = solve_pcf_ls(&pcf_ls_instance(&w.topo, &w.tm, 6), &fm, &opts);
            let cls = pcf_cls_pipeline(&w.topo, &w.tm, 6, &fm, &opts);
            let base = throughput_overhead(ffc.objective, total);
            (
                w.topo.name().to_string(),
                overhead_reduction_pct(throughput_overhead(tf.objective, total), base),
                overhead_reduction_pct(throughput_overhead(ls.objective, total), base),
                overhead_reduction_pct(throughput_overhead(cls.solution.objective, total), base),
            )
        })
        .collect()
}

/// Prints Fig. 13.
pub fn run_fig13(scale: &Scale) {
    println!("== Fig. 13: reduction in throughput overhead vs FFC (f=3 sub-links) ==");
    println!("  (paper medians: PCF-TF/LS >16%, PCF-CLS 46%)");
    let rows = fig13(scale);
    for (name, tf, ls, cls) in &rows {
        println!("  {name:<16} TF {tf:>6.1}%  LS {ls:>6.1}%  CLS {cls:>6.1}%");
    }
    let col = |f: fn(&(String, f64, f64, f64)) -> f64| -> Vec<f64> { rows.iter().map(f).collect() };
    print_cdf("PCF-TF%", &col(|r| r.1));
    print_cdf("PCF-LS%", &col(|r| r.2));
    print_cdf("PCF-CLS%", &col(|r| r.3));
}

/// Fig. 14: offline solve time against topology size (sub-links, f = 3).
/// Returns `(name, sublinks, t_pcf_tf, t_pcf_cls, t_optimal_estimate)`.
pub fn fig14(scale: &Scale) -> Vec<(String, usize, f64, f64, f64)> {
    let fm = FailureModel::links(3);
    let opts = RobustOptions::default();
    scale
        .sublink_topologies
        .iter()
        .map(|name| {
            let topo = split_sublinks(&zoo::build(name), 2);
            let w = workload(&topo, 100, scale);
            let t0 = Instant::now();
            let _ = solve_pcf_tf(&tunnel_instance(&w.topo, &w.tm, 6), &fm, &opts);
            let t_tf = t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            let _ = pcf_cls_pipeline(&w.topo, &w.tm, 6, &fm, &opts);
            let t_cls = t0.elapsed().as_secs_f64();
            // Optimal: time a handful of scenarios and extrapolate to the
            // full C(sublinks, 3) space (the paper truncates at 1 hour).
            let t0 = Instant::now();
            let probes = 3usize;
            let (_, n_eval, _) =
                optimal_demand_scale(&w.topo, &w.tm, &fm, ScenarioCoverage::Sampled(probes));
            let t_opt_each = t0.elapsed().as_secs_f64() / n_eval.max(1) as f64;
            let total_scenarios = fm.scenario_count(&w.topo) as f64;
            (
                w.topo.name().to_string(),
                topo.link_count(),
                t_tf,
                t_cls,
                t_opt_each * total_scenarios,
            )
        })
        .collect()
}

/// Prints Fig. 14.
pub fn run_fig14(scale: &Scale) {
    println!("== Fig. 14: offline solving time vs topology size (f=3 sub-links) ==");
    println!("  (paper: PCF seconds-to-minutes; optimal hours-to-days)");
    println!(
        "  {:<16} {:>9} {:>10} {:>10} {:>14}",
        "topology", "sublinks", "PCF-TF(s)", "PCF-CLS(s)", "optimal est(s)"
    );
    for (name, m, tf, cls, opt) in fig14(scale) {
        println!("  {name:<16} {m:>9} {tf:>10.2} {cls:>10.2} {opt:>14.1}");
    }
}

/// §5.2: PCF-CLS-TopSort — fraction of LSs pruned to restore topological
/// sortability, and the demand-scale cost of pruning. Returns
/// `(name, total_lss, pruned, cls_scale, topsort_scale)`.
pub fn topsort(scale: &Scale) -> Vec<(String, usize, usize, f64, f64)> {
    let fm = FailureModel::links(1);
    let opts = RobustOptions::default();
    scale
        .topologies
        .iter()
        .map(|name| {
            let topo = zoo::build(name);
            let w = workload(&topo, 100, scale);
            let cls = pcf_cls_pipeline(&w.topo, &w.tm, 3, &fm, &opts);
            let all: Vec<_> = cls
                .instance
                .ls_ids()
                .map(|q| cls.instance.ls(q).clone())
                .collect();
            let sorted_already =
                topological_order(&cls.instance, &vec![1.0; cls.instance.num_lss()]).is_some();
            let (kept, pruned) = greedy_topsort(&all);
            let ts_scale = if sorted_already {
                cls.solution.objective
            } else {
                let mut b =
                    pcf_core::instance::InstanceBuilder::new(&w.topo, &w.tm).tunnels_per_pair(3);
                for ls in &kept {
                    b = b.add_ls(ls.clone());
                }
                let inst = b.build();
                solve_pcf_ls(&inst, &fm, &opts).objective
            };
            (
                w.topo.name().to_string(),
                all.len(),
                pruned,
                cls.solution.objective,
                ts_scale,
            )
        })
        .collect()
}

/// Prints the §5.2 experiment.
pub fn run_topsort(scale: &Scale) {
    println!("== §5.2: PCF-CLS-TopSort (f=1) ==");
    println!("  (paper: <=0.59% of LSs pruned; demand scale mostly unchanged)");
    for (name, total, pruned, cls, ts) in topsort(scale) {
        println!(
            "  {name:<16} LSs {total:>4}, pruned {pruned:>3} ({:>5.2}%), CLS {cls:.3} -> TopSort {ts:.3}",
            100.0 * pruned as f64 / total.max(1) as f64
        );
    }
}

// ---------------------------------------------------------------------------
// Ablations and extensions beyond the paper's figures.
// ---------------------------------------------------------------------------

/// Ablation: the cost of the paper's `x ∈ [0,1]` relaxation (§3.2). For
/// small scenario spaces the exact integral design (explicit enumeration of
/// every f-subset) is tractable; the relaxed design is never better, and
/// the gap measures the relaxation's conservatism. Returns
/// `(name, relaxed, exact, gap_pct)` per topology.
pub fn relaxation_gap(scale: &Scale, f: usize) -> Vec<(String, f64, f64, f64)> {
    let opts = RobustOptions::default();
    scale
        .topologies
        .iter()
        .filter(|name| {
            // Keep the enumeration tractable.
            let m = zoo::build(name).link_count();
            (f == 1 && m <= 60) || (f == 2 && m <= 32)
        })
        .map(|name| {
            let topo = zoo::build(name);
            let w = workload(&topo, 100, scale);
            let inst = tunnel_instance(&w.topo, &w.tm, 3);
            let relaxed = solve_pcf_tf(&inst, &FailureModel::links(f), &opts).objective;
            // Exact: enumerate all f-subsets as explicit scenarios.
            let scenarios: Vec<Vec<pcf_topology::LinkId>> = FailureModel::links(f)
                .enumerate_scenarios(&topo)
                .into_iter()
                .map(|mask| topo.links().filter(|l| mask[l.index()]).collect())
                .collect();
            let exact = solve_pcf_tf(&inst, &FailureModel::Explicit { scenarios }, &opts).objective;
            let gap = if exact > 0.0 {
                100.0 * (1.0 - relaxed / exact)
            } else {
                0.0
            };
            (w.topo.name().to_string(), relaxed, exact, gap)
        })
        .collect()
}

/// Prints the relaxation-gap ablation.
pub fn run_relaxation_gap(scale: &Scale) {
    println!("== Ablation: x ∈ [0,1] relaxation vs exact enumeration (PCF-TF, f=1) ==");
    println!("  (the relaxation is safe — never above exact — and usually tight)");
    for (name, relaxed, exact, gap) in relaxation_gap(scale, 1) {
        println!("  {name:<16} relaxed {relaxed:.4}  exact {exact:.4}  conservatism {gap:.1}%");
    }
}

/// Extension: SRLGs and node failures (§3.5). For each topology, compares
/// PCF-TF's guarantee under (a) single link failures, (b) single SRLG
/// failures where each SRLG couples a node's two highest-capacity links,
/// and (c) single node failures restricted to transit nodes. Returns
/// `(name, links, srlg, node)`.
pub fn srlg_and_node(scale: &Scale) -> Vec<(String, f64, f64, f64)> {
    let opts = RobustOptions::default();
    scale
        .topologies
        .iter()
        .map(|name| {
            let topo = zoo::build(name);
            let w = workload(&topo, 100, scale);
            let inst = tunnel_instance(&w.topo, &w.tm, 3);
            let links = solve_pcf_tf(&inst, &FailureModel::links(1), &opts).objective;
            // SRLGs: each node's two fattest incident links share fate
            // (e.g. a shared conduit), plus singleton groups for the rest.
            let mut groups: Vec<Vec<pcf_topology::LinkId>> = Vec::new();
            let mut grouped = vec![false; topo.link_count()];
            for n in topo.nodes() {
                let mut inc: Vec<pcf_topology::LinkId> =
                    topo.incident(n).iter().map(|&(_, l)| l).collect();
                inc.sort_by(|&a, &b| topo.capacity(b).partial_cmp(&topo.capacity(a)).unwrap());
                if inc.len() >= 2 && !grouped[inc[0].index()] && !grouped[inc[1].index()] {
                    grouped[inc[0].index()] = true;
                    grouped[inc[1].index()] = true;
                    groups.push(vec![inc[0], inc[1]]);
                }
            }
            for l in topo.links() {
                if !grouped[l.index()] {
                    groups.push(vec![l]);
                }
            }
            let srlg = solve_pcf_tf(&inst, &FailureModel::Groups { groups, f: 1 }, &opts).objective;
            // Node failures: traffic to/from a failed node is necessarily
            // lost, so guard only transit (non-endpoint) nodes — here, the
            // nodes that carry no demand after truncation.
            let endpoints: std::collections::HashSet<u32> =
                w.tm.positive_pairs()
                    .into_iter()
                    .flat_map(|(s, t, _)| [s.0, t.0])
                    .collect();
            let node_groups: Vec<Vec<pcf_topology::LinkId>> = topo
                .nodes()
                .filter(|n| !endpoints.contains(&n.0))
                .map(|n| topo.incident(n).iter().map(|&(_, l)| l).collect())
                .collect();
            let node = if node_groups.is_empty() {
                f64::NAN
            } else {
                solve_pcf_tf(
                    &inst,
                    &FailureModel::Groups {
                        groups: node_groups,
                        f: 1,
                    },
                    &opts,
                )
                .objective
            };
            (w.topo.name().to_string(), links, srlg, node)
        })
        .collect()
}

/// Prints the SRLG / node-failure extension.
pub fn run_srlg(scale: &Scale) {
    println!("== Extension: SRLG and node failures (§3.5), PCF-TF f=1 ==");
    println!("  (correlated failures can only lower the guarantee)");
    for (name, links, srlg, node) in srlg_and_node(scale) {
        println!(
            "  {name:<16} links {links:.4}  srlg {srlg:.4}  transit-node {}",
            if node.is_nan() {
                "n/a".into()
            } else {
                format!("{node:.4}")
            }
        );
    }
}

/// Ablation: how many penalized bypass paths the CLS flow support uses
/// (DESIGN.md's tractability restriction). Returns `(paths, objective,
/// seconds)` on the scale's first topology.
pub fn bypass_path_ablation(scale: &Scale) -> Vec<(usize, f64, f64)> {
    use pcf_core::logical_flow::{bypass_flows, decompose_flows, solve_logical_flow};
    let topo = zoo::build(scale.topologies[0]);
    let w = workload(&topo, 100, scale);
    let fm = FailureModel::links(1);
    let opts = RobustOptions::default();
    [1usize, 2, 3]
        .into_iter()
        .map(|paths| {
            let t0 = Instant::now();
            // Replicates pcf_cls_pipeline with a configurable path count.
            let mut always = Vec::new();
            for (s, t, _) in w.tm.positive_pairs() {
                if let Some(path) = pcf_paths::shortest_path(&w.topo, s, t) {
                    if path.nodes.len() >= 3 {
                        always.push(pcf_core::LogicalSequence::always(path.nodes));
                    }
                }
            }
            let flows = bypass_flows(&w.topo, paths);
            let mut b1 =
                pcf_core::instance::InstanceBuilder::new(&w.topo, &w.tm).tunnels_per_pair(3);
            for ls in &always {
                b1 = b1.add_ls(ls.clone());
            }
            for fw in &flows {
                b1 = b1.add_pair(fw.src, fw.dst);
                for &(u, v) in &fw.support {
                    b1 = b1.add_pair(u, v);
                }
            }
            let inst1 = b1.build();
            let flow_opts = RobustOptions {
                max_rounds: 8,
                tol: 1e-4,
                ..opts.clone()
            };
            // audit:allow(no-panic-paths, experiment driver; a flow-stage failure should abort the ablation run)
            let fsol = solve_logical_flow(&inst1, &flows, &fm, &flow_opts)
                .expect("bypass ablation flow stage");
            let conditional = decompose_flows(&w.topo, &flows, &fsol, 1e-7);
            let mut b2 =
                pcf_core::instance::InstanceBuilder::new(&w.topo, &w.tm).tunnels_per_pair(3);
            for ls in always.iter().chain(conditional.iter()) {
                b2 = b2.add_ls(ls.clone());
            }
            let inst2 = b2.build();
            let obj = pcf_core::solve_pcf_cls(&inst2, &fm, &opts).objective;
            (paths, obj, t0.elapsed().as_secs_f64())
        })
        .collect()
}

/// Prints the bypass-path ablation.
pub fn run_bypass_ablation(scale: &Scale) {
    println!(
        "== Ablation: CLS bypass support width on {} (f=1) ==",
        scale.topologies[0]
    );
    for (paths, obj, secs) in bypass_path_ablation(scale) {
        println!("  {paths} bypass path(s): demand scale {obj:.4} in {secs:.1}s");
    }
}

/// Ablation: the paper's dualized LP (appendix D2) vs this repo's
/// cutting-plane solver — values must agree; times differ. Returns
/// `(name, cut_value, dual_value, cut_secs, dual_secs)`.
pub fn dual_vs_cuts(scale: &Scale) -> Vec<(String, f64, f64, f64, f64)> {
    let opts = RobustOptions::default();
    let fm = FailureModel::links(1);
    scale
        .topologies
        .iter()
        .filter(|n| zoo::build(n).link_count() <= 32)
        .map(|name| {
            let topo = zoo::build(name);
            let w = workload(&topo, 100, scale);
            let inst = tunnel_instance(&w.topo, &w.tm, 3);
            let t0 = Instant::now();
            let cut = solve_pcf_tf(&inst, &fm, &opts).objective;
            let t_cut = t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            let dual = pcf_core::dualized::solve_pcf_tf_dual(
                &inst,
                &fm,
                pcf_core::Objective::DemandScale,
                &Default::default(),
            )
            .expect("dual PCF-TF LP solves on zoo instances");
            let t_dual = t0.elapsed().as_secs_f64();
            (w.topo.name().to_string(), cut, dual, t_cut, t_dual)
        })
        .collect()
}

/// Prints the dualized-vs-cutting-plane ablation.
pub fn run_dual_vs_cuts(scale: &Scale) {
    println!("== Ablation: appendix dualization vs cutting planes (PCF-TF, f=1) ==");
    println!("  (same robust optimum by construction; times differ)");
    for (name, cut, dual, t_cut, t_dual) in dual_vs_cuts(scale) {
        println!(
            "  {name:<16} cuts {cut:.4} ({t_cut:.1}s)  dual {dual:.4} ({t_dual:.1}s)  |Δ| {:.1e}",
            (cut - dual).abs()
        );
    }
}

/// Extension: R3 and Generalized-R3 against PCF across topologies
/// (Table 1's comparison widened to the zoo). Returns
/// `(name, r3, generalized_r3, pcf_tf)`.
pub fn r3_comparison(scale: &Scale) -> Vec<(String, f64, f64, f64)> {
    let opts = RobustOptions::default();
    let fm = FailureModel::links(1);
    scale
        .topologies
        .iter()
        .filter(|n| zoo::build(n).link_count() <= 24)
        .map(|name| {
            let topo = zoo::build(name);
            let w = workload(&topo, 100, scale);
            let r3 = pcf_core::solve_r3(&w.topo, &w.tm, 1).objective;
            let gr3 = pcf_core::solve_generalized_r3(&w.topo, &w.tm, 1, &opts).objective;
            let tf = solve_pcf_tf(&tunnel_instance(&w.topo, &w.tm, 3), &fm, &opts).objective;
            (w.topo.name().to_string(), r3, gr3, tf)
        })
        .collect()
}

/// Prints the R3 comparison.
pub fn run_r3_comparison(scale: &Scale) {
    println!("== Extension: R3 vs Generalized-R3 (Prop. 4) vs PCF-TF, f=1 ==");
    for (name, r3, gr3, tf) in r3_comparison(scale) {
        println!("  {name:<16} R3 {r3:.4}  GenR3 {gr3:.4}  PCF-TF {tf:.4}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_is_sorted_and_normalised() {
        let c = cdf(&[3.0, 1.0, 2.0]);
        assert_eq!(c.len(), 3);
        assert_eq!(c[0].0, 1.0);
        assert!((c[2].1 - 1.0).abs() < 1e-12);
        assert!(c.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
    }

    #[test]
    fn workload_truncation_reports_counts() {
        let topo = zoo::build("Sprint");
        let scale = Scale::quick();
        let w = workload(&topo, 1, &scale);
        assert!(w.kept_pairs <= w.total_pairs);
        assert!(w.kept_pairs <= scale.max_pairs);
        assert!(w.tm.total() > 0.0);
    }

    #[test]
    fn scale_parse() {
        assert!(Scale::parse("quick").is_some());
        assert!(Scale::parse("medium").is_some());
        assert!(Scale::parse("paper").is_some());
        assert!(Scale::parse("bogus").is_none());
    }

    #[test]
    fn fig2_matches_paper() {
        let rows = fig2();
        let get = |n: &str| rows.iter().find(|r| r.0 == n).unwrap();
        assert!((get("Optimal").1 - 2.0).abs() < 1e-5);
        assert!((get("FFC-3").1 - 1.5).abs() < 1e-5);
        assert!((get("FFC-4").1 - 1.0).abs() < 1e-5);
        assert!((get("FFC-4").2 - 0.0).abs() < 1e-6);
    }
}
