//! A self-contained linear programming toolkit for the PCF reproduction.
//!
//! The PCF paper solves all of its traffic engineering models with Gurobi;
//! no such solver is available here, so this crate provides the substrate:
//!
//! * [`model`] — an [`LpProblem`] builder with range rows and variable
//!   bounds, the interface all PCF/FFC/R3/optimal models are built against;
//! * [`simplex`] — a bounded-variable revised primal simplex method;
//! * [`incremental`] — an [`IncrementalLp`] wrapper that appends rows to a
//!   solved problem and re-solves warm-starting from the previous basis,
//!   the engine under PCF's cutting-plane loop;
//! * [`linsys`] — dense Gaussian elimination and Gauss–Seidel iteration for
//!   the M-matrix linear systems of PCF's online response (Props. 5–6);
//! * [`float`] — the workspace's approved float-comparison helpers (the
//!   only module the `float-discipline` audit lint exempts).

pub mod float;
pub mod incremental;
pub mod linsys;
pub mod model;
pub mod presolve;
pub mod simplex;
pub mod slu;
pub mod sparse;
pub mod write;

pub use float::{approx_eq, approx_zero, is_zero, nonzero};
pub use incremental::{IncrementalLp, IncrementalStats};
pub use linsys::{lu_factor, solve_dense, solve_gauss_seidel, DenseMatrix, LinSysError, LuFactors};
pub use model::{LpProblem, RowId, Sense, Solution, SolveError, Status, VarId};
pub use simplex::{EngineKind, Pricing, SimplexOptions};
pub use slu::{BasisEngine, SparseLu};
pub use sparse::CscMatrix;
pub use write::to_lp_format;
