//! Capacity planning with congestion-free guarantees.
//!
//! The paper notes (§6) that PCF's tractable failure models "can aid in
//! network design tasks such as provisioning networks with sufficient
//! capacity to protect against failures." This example does exactly that:
//!
//! 1. sweep the failure budget `f` and report the guaranteed demand scale;
//! 2. for the single-failure design, find the one link whose capacity
//!    doubling buys the largest guarantee improvement (a what-if sweep).
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use pcf_core::{solve_pcf_tf, tunnel_instance, FailureModel, RobustOptions};
use pcf_topology::{zoo, Topology};
use pcf_traffic::gravity;

fn solve_scale(topo: &Topology, tm: &pcf_traffic::TrafficMatrix, f: usize) -> f64 {
    let inst = tunnel_instance(topo, tm, 3);
    solve_pcf_tf(&inst, &FailureModel::links(f), &RobustOptions::default()).objective
}

fn main() {
    let topo = zoo::build("IBM");
    let tm = gravity(&topo, 13);
    println!(
        "topology {} ({} nodes / {} links), PCF-TF with 3 tunnels\n",
        topo.name(),
        topo.node_count(),
        topo.link_count()
    );

    // 1. Failure-budget sweep.
    println!("failure budget sweep:");
    let mut base_f1 = 0.0;
    for f in 0..=2 {
        let scale = solve_scale(&topo, &tm, f);
        if f == 1 {
            base_f1 = scale;
        }
        println!(
            "  f = {f}: guaranteed demand scale {scale:.4}  (max link utilization {:.3})",
            1.0 / scale
        );
    }

    // 2. What-if: double each link's capacity, re-solve for f = 1, rank the
    //    three most valuable upgrades.
    println!("\nupgrade analysis (double one link's capacity, f = 1):");
    let mut gains: Vec<(pcf_topology::LinkId, f64)> = Vec::new();
    for l in topo.links() {
        let mut upgraded = topo.clone();
        // Rebuild with the single link doubled.
        let mut t2 = Topology::new(upgraded.name().to_string());
        for n in upgraded.nodes() {
            t2.add_node(upgraded.node_name(n).to_string());
        }
        for l2 in upgraded.links() {
            let link = upgraded.link(l2);
            let cap = if l2 == l {
                link.capacity * 2.0
            } else {
                link.capacity
            };
            t2.add_link(link.u, link.v, cap);
        }
        upgraded = t2;
        let scale = solve_scale(&upgraded, &tm, 1);
        gains.push((l, scale - base_f1));
    }
    gains.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (l, gain) in gains.iter().take(3) {
        let link = topo.link(*l);
        println!(
            "  upgrade {} ({} - {}, cap {:.1} -> {:.1}): guarantee {:+.4} ({:+.1}%)",
            l,
            topo.node_name(link.u),
            topo.node_name(link.v),
            link.capacity,
            link.capacity * 2.0,
            gain,
            100.0 * gain / base_f1
        );
    }
    println!(
        "  (worst upgrade gains {:+.4} — capacity in the wrong place buys nothing)",
        gains.last().map(|g| g.1).unwrap_or(0.0)
    );
}
