//! Logical flows and the PCF-CLS heuristic (paper §3.5, §5).
//!
//! A *logical flow* `w` generalizes a logical sequence: its reservation
//! `b_w` is routed over logical segments by flow-balance variables
//! `p_w(i,j)` (Eq. 8) instead of a fixed hop sequence, optionally gated by a
//! condition `h_w`. The paper's PCF-CLS scheme solves a restricted logical
//! flow model — one always-active LS per demand pair plus one conditional
//! flow per link, activated when that link dies — and then *decomposes* each
//! flow into a logical sequence along its widest path.
//!
//! Tractability restriction (documented in DESIGN.md): the paper lets
//! `p_w(i,j)` range over every node pair; a from-scratch simplex cannot
//! carry `O(|V|^2)` variables per flow, so each flow's segment support is
//! restricted to the directed arcs on a small set of short bypass paths
//! between its endpoints (avoiding the protected link). The decomposition
//! step — a single widest path per flow — is unaffected.

use crate::adversary::{worst_case_link_with_extras, ExtraTerm, WorstCase};
use crate::failure::{Condition, FailureModel};
use crate::instance::{Instance, InstanceBuilder, LogicalSequence, PairId};
use crate::objective::Objective;
use crate::robust::{RobustError, RobustOptions};
use pcf_lp::{nonzero, LpProblem, Sense, Status, VarId};
use pcf_topology::{LinkId, NodeId, Topology};
use pcf_traffic::TrafficMatrix;
use std::collections::HashMap;

/// A logical flow to be optimized: endpoints, activation condition, and the
/// directed segment support over which `p_w` may route.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Flow source.
    pub src: NodeId,
    /// Flow destination.
    pub dst: NodeId,
    /// Activation condition (`h_w`).
    pub condition: Condition,
    /// Directed segments `(i, j)` the flow may use.
    pub support: Vec<(NodeId, NodeId)>,
}

/// Result of [`solve_logical_flow`].
#[derive(Debug, Clone)]
pub struct FlowSolution {
    /// Optimal metric value.
    pub objective: f64,
    /// Served fraction per pair.
    pub z: Vec<f64>,
    /// Tunnel reservations.
    pub a: Vec<f64>,
    /// LS reservations (for LSs already in the instance).
    pub b: Vec<f64>,
    /// Flow reservations `b_w`.
    pub flow_b: Vec<f64>,
    /// Per-flow segment routing `p_w(i,j)` (same order as the spec's
    /// support).
    pub flow_p: Vec<Vec<f64>>,
    /// Cutting-plane rounds used.
    pub rounds: usize,
}

/// Builds the bypass flows of the PCF-CLS heuristic: for each link
/// `⟨i, j⟩` and each direction, a flow activated when the link dies,
/// supported by the arcs of up to `paths` short bypass paths that avoid the
/// link.
pub fn bypass_flows(topo: &Topology, paths: usize) -> Vec<FlowSpec> {
    let mut out = Vec::new();
    for l in topo.links() {
        let link = topo.link(l);
        for (src, dst) in [(link.u, link.v), (link.v, link.u)] {
            let support = bypass_support(topo, l, src, dst, paths);
            if support.is_empty() {
                continue; // link is a bridge: no bypass exists
            }
            out.push(FlowSpec {
                src,
                dst,
                condition: Condition::LinkDead(l),
                support,
            });
        }
    }
    out
}

/// Directed segments of up to `paths` short, diversity-penalized paths from
/// `src` to `dst` avoiding link `avoid`.
fn bypass_support(
    topo: &Topology,
    avoid: LinkId,
    src: NodeId,
    dst: NodeId,
    paths: usize,
) -> Vec<(NodeId, NodeId)> {
    let mut dead = vec![false; topo.link_count()];
    dead[avoid.index()] = true;
    let mut penalty: Vec<f64> = vec![1.0; topo.link_count()];
    let mut segments: Vec<(NodeId, NodeId)> = Vec::new();
    for _ in 0..paths {
        let Some(path) =
            pcf_paths::shortest_path_weighted(topo, src, dst, |l| penalty[l.index()], Some(&dead))
        else {
            break;
        };
        for (hop, &l) in path.links.iter().enumerate() {
            penalty[l.index()] += 8.0; // steer later paths elsewhere
            let seg = (path.nodes[hop], path.nodes[hop + 1]);
            if !segments.contains(&seg) {
                segments.push(seg);
            }
        }
    }
    segments
}

/// One scenario cut in the flow master.
struct FlowCut {
    pair: PairId,
    wc: WorstCase,
    /// `h` per flow with endpoints == pair (reservation side).
    h_res: Vec<(usize, f64)>,
    /// `h` per (flow, support index) with that segment == pair (obligation).
    h_obl: Vec<(usize, usize, f64)>,
}

fn no_failure_h(cond: &Condition) -> f64 {
    match cond {
        Condition::Always => 1.0,
        Condition::LinkDead(_) => 0.0,
        Condition::AliveDead { dead, .. } => {
            if dead.is_empty() {
                1.0
            } else {
                0.0
            }
        }
    }
}

/// Solves the logical-flow model on `inst` extended with `flows`,
/// by the same cutting-plane scheme as [`crate::robust::solve_robust`].
///
/// The instance must already contain a pair for every flow endpoint pair
/// and every supported segment (see
/// [`crate::instance::InstanceBuilder::add_pair`]); a missing pair is
/// reported as [`RobustError::FlowPairMissing`].
pub fn solve_logical_flow(
    inst: &Instance,
    flows: &[FlowSpec],
    fm: &FailureModel,
    opts: &RobustOptions,
) -> Result<FlowSolution, RobustError> {
    // Pair resolution tables.
    let flow_pair: Vec<PairId> = flows
        .iter()
        .map(|w| {
            inst.pair_id(w.src, w.dst)
                .ok_or(RobustError::FlowPairMissing("flow endpoint pair"))
        })
        .collect::<Result<_, _>>()?;
    let seg_pair: Vec<Vec<PairId>> = flows
        .iter()
        .map(|w| {
            w.support
                .iter()
                .map(|&(u, v)| {
                    inst.pair_id(u, v)
                        .ok_or(RobustError::FlowPairMissing("flow segment pair"))
                })
                .collect::<Result<_, _>>()
        })
        .collect::<Result<_, _>>()?;
    // Reverse index: pair -> (flow, role).
    let mut res_of_pair: HashMap<PairId, Vec<usize>> = HashMap::new();
    for (w, &p) in flow_pair.iter().enumerate() {
        res_of_pair.entry(p).or_default().push(w);
    }
    let mut obl_of_pair: HashMap<PairId, Vec<(usize, usize)>> = HashMap::new();
    for (w, segs) in seg_pair.iter().enumerate() {
        for (si, &p) in segs.iter().enumerate() {
            obl_of_pair.entry(p).or_default().push((w, si));
        }
    }

    // Initial cuts: no-failure scenario for every pair.
    let mut cuts: Vec<FlowCut> = inst
        .pair_ids()
        .map(|p| FlowCut {
            pair: p,
            wc: WorstCase {
                available: 0.0,
                y: vec![0.0; inst.tunnels_of(p).len()],
                h_l: inst
                    .lss_of(p)
                    .iter()
                    .map(|&q| no_failure_h(&inst.ls(q).condition))
                    .collect(),
                h_q: inst
                    .segments_of(p)
                    .iter()
                    .map(|&q| no_failure_h(&inst.ls(q).condition))
                    .collect(),
            },
            h_res: res_of_pair
                .get(&p)
                .map(|ws| {
                    ws.iter()
                        .map(|&w| (w, no_failure_h(&flows[w].condition)))
                        .collect()
                })
                .unwrap_or_default(),
            h_obl: obl_of_pair
                .get(&p)
                .map(|ws| {
                    ws.iter()
                        .map(|&(w, si)| (w, si, no_failure_h(&flows[w].condition)))
                        .collect()
                })
                .unwrap_or_default(),
        })
        .collect();

    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let (a, b, fb, fp, z, objective) = solve_flow_master(inst, flows, &cuts, opts, rounds)?;

        if rounds > opts.max_rounds {
            return Ok(FlowSolution {
                objective,
                z,
                a,
                b,
                flow_b: fb,
                flow_p: fp,
                rounds: rounds - 1,
            });
        }

        let scale = 1.0 + inst.total_demand();
        let mut violated = 0usize;
        for p in inst.pair_ids() {
            // Extras: flow reservations (negative loss coef) then
            // obligations (positive).
            let res: Vec<usize> = res_of_pair.get(&p).cloned().unwrap_or_default();
            let obl: Vec<(usize, usize)> = obl_of_pair.get(&p).cloned().unwrap_or_default();
            let mut extras: Vec<ExtraTerm> = Vec::with_capacity(res.len() + obl.len());
            for &w in &res {
                extras.push(ExtraTerm {
                    coef: -fb[w],
                    condition: flows[w].condition.clone(),
                });
            }
            for &(w, si) in &obl {
                extras.push(ExtraTerm {
                    coef: fp[w][si],
                    condition: flows[w].condition.clone(),
                });
            }
            let (wc, h_extra) = worst_case_link_with_extras(inst, p, fm, &a, &b, &extras)
                .map_err(RobustError::Adversary)?;
            let required = z[p.0] * inst.demand(p);
            if wc.available < required - opts.tol * scale {
                let h_res = res
                    .iter()
                    .enumerate()
                    .map(|(i, &w)| (w, h_extra[i]))
                    .collect();
                let h_obl = obl
                    .iter()
                    .enumerate()
                    .map(|(i, &(w, si))| (w, si, h_extra[res.len() + i]))
                    .collect();
                cuts.push(FlowCut {
                    pair: p,
                    wc,
                    h_res,
                    h_obl,
                });
                violated += 1;
            }
        }
        if violated == 0 {
            return Ok(FlowSolution {
                objective,
                z,
                a,
                b,
                flow_b: fb,
                flow_p: fp,
                rounds,
            });
        }
    }
}

#[allow(clippy::type_complexity)]
type FlowMasterOut = (Vec<f64>, Vec<f64>, Vec<f64>, Vec<Vec<f64>>, Vec<f64>, f64);

fn solve_flow_master(
    inst: &Instance,
    flows: &[FlowSpec],
    cuts: &[FlowCut],
    opts: &RobustOptions,
    round: usize,
) -> Result<FlowMasterOut, RobustError> {
    let topo = inst.topo();
    let mut lp = LpProblem::new(Sense::Maximize);
    lp.set_options(opts.lp.clone());

    let a_vars: Vec<VarId> = inst.tunnel_ids().map(|_| lp.add_nonneg(0.0)).collect();
    let b_vars: Vec<VarId> = inst.ls_ids().map(|_| lp.add_nonneg(0.0)).collect();
    let fb_vars: Vec<VarId> = flows.iter().map(|_| lp.add_nonneg(0.0)).collect();
    let fp_vars: Vec<Vec<VarId>> = flows
        .iter()
        .map(|w| w.support.iter().map(|_| lp.add_nonneg(0.0)).collect())
        .collect();

    enum ZVars {
        Shared(VarId),
        PerPair(Vec<Option<VarId>>),
    }
    let z_vars = match opts.objective {
        Objective::DemandScale => ZVars::Shared(lp.add_nonneg(1.0)),
        Objective::Throughput => ZVars::PerPair(
            inst.pair_ids()
                .map(|p| {
                    let d = inst.demand(p);
                    (d > 0.0).then(|| lp.add_var(0.0, 1.0, d))
                })
                .collect(),
        ),
    };

    // Capacity per arc (tunnels only; p variables are logical).
    let mut arc_usage: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); topo.arc_count()];
    for l in inst.tunnel_ids() {
        let path = inst.tunnel(l);
        for (i, &link) in path.links.iter().enumerate() {
            let arc = topo.arc_from(link, path.nodes[i]);
            arc_usage[arc.index()].push((a_vars[l.0], 1.0));
        }
    }
    for arc in topo.arcs() {
        let usage = &arc_usage[arc.index()];
        if !usage.is_empty() {
            lp.add_le(usage.iter().copied(), topo.capacity(arc.link()));
        }
    }

    // Flow balance (Eq. 8) on each flow's support subgraph.
    for (w, spec) in flows.iter().enumerate() {
        let mut touched: Vec<NodeId> = Vec::new();
        for &(u, v) in &spec.support {
            if !touched.contains(&u) {
                touched.push(u);
            }
            if !touched.contains(&v) {
                touched.push(v);
            }
        }
        for &node in &touched {
            let mut row: Vec<(VarId, f64)> = Vec::new();
            for (si, &(u, v)) in spec.support.iter().enumerate() {
                if u == node {
                    row.push((fp_vars[w][si], 1.0));
                }
                if v == node {
                    row.push((fp_vars[w][si], -1.0));
                }
            }
            if node == spec.src {
                row.push((fb_vars[w], -1.0));
            } else if node == spec.dst {
                row.push((fb_vars[w], 1.0));
            }
            lp.add_eq(row, 0.0);
        }
    }

    // Scenario cuts.
    for cut in cuts {
        let p = cut.pair;
        let mut row: Vec<(VarId, f64)> = Vec::new();
        for (i, &l) in inst.tunnels_of(p).iter().enumerate() {
            let coef = 1.0 - cut.wc.y[i];
            if nonzero(coef) {
                row.push((a_vars[l.0], coef));
            }
        }
        for (i, &q) in inst.lss_of(p).iter().enumerate() {
            if nonzero(cut.wc.h_l[i]) {
                row.push((b_vars[q.0], cut.wc.h_l[i]));
            }
        }
        for (i, &q) in inst.segments_of(p).iter().enumerate() {
            if nonzero(cut.wc.h_q[i]) {
                row.push((b_vars[q.0], -cut.wc.h_q[i]));
            }
        }
        for &(w, h) in &cut.h_res {
            if nonzero(h) {
                row.push((fb_vars[w], h));
            }
        }
        for &(w, si, h) in &cut.h_obl {
            if nonzero(h) {
                row.push((fp_vars[w][si], -h));
            }
        }
        let d = inst.demand(p);
        if d > 0.0 {
            let zv = match &z_vars {
                ZVars::Shared(v) => Some(*v),
                ZVars::PerPair(vs) => vs[p.0],
            };
            if let Some(zv) = zv {
                row.push((zv, -d));
            }
        }
        lp.add_ge(row, 0.0);
    }

    let sol = lp.solve().map_err(RobustError::MasterLp)?;
    if sol.status != Status::Optimal {
        return Err(RobustError::MasterNotOptimal {
            status: sol.status,
            round,
        });
    }
    let a: Vec<f64> = a_vars.iter().map(|&v| sol.value(v).max(0.0)).collect();
    let b: Vec<f64> = b_vars.iter().map(|&v| sol.value(v).max(0.0)).collect();
    let fb: Vec<f64> = fb_vars.iter().map(|&v| sol.value(v).max(0.0)).collect();
    let fp: Vec<Vec<f64>> = fp_vars
        .iter()
        .map(|vs| vs.iter().map(|&v| sol.value(v).max(0.0)).collect())
        .collect();
    let z: Vec<f64> = inst
        .pair_ids()
        .map(|p| match &z_vars {
            ZVars::Shared(v) => sol.value(*v),
            ZVars::PerPair(vs) => vs[p.0].map_or(0.0, |v| sol.value(v)),
        })
        .collect();
    Ok((a, b, fb, fp, z, sol.objective))
}

/// Decomposes solved flows into logical sequences (§3.5): for each flow
/// with meaningful reservation, take the widest path through its positive
/// segments as an LS carrying the flow's condition. Flows whose widest path
/// is a single segment are dropped (a 2-hop LS is vacuous).
pub fn decompose_flows(
    topo: &Topology,
    flows: &[FlowSpec],
    sol: &FlowSolution,
    min_reservation: f64,
) -> Vec<LogicalSequence> {
    let n = topo.node_count();
    let mut out = Vec::new();
    for (w, spec) in flows.iter().enumerate() {
        if sol.flow_b[w] <= min_reservation {
            continue;
        }
        let edges: Vec<(usize, usize, f64)> = spec
            .support
            .iter()
            .enumerate()
            .filter(|&(si, _)| sol.flow_p[w][si] > min_reservation)
            .map(|(si, &(u, v))| (u.index(), v.index(), sol.flow_p[w][si]))
            .collect();
        let Some((nodes, _)) =
            pcf_paths::widest_path(n, &edges, spec.src.index(), spec.dst.index())
        else {
            continue;
        };
        if nodes.len() < 3 {
            continue;
        }
        out.push(LogicalSequence {
            hops: nodes.into_iter().map(|i| NodeId(i as u32)).collect(),
            condition: spec.condition.clone(),
        });
    }
    out
}

/// Output of the full PCF-CLS pipeline.
#[derive(Debug)]
pub struct ClsResult {
    /// The final instance (tunnels + always LSs + conditional LSs).
    pub instance: Instance,
    /// The P2/CLS solution on that instance.
    pub solution: crate::robust::RobustSolution,
    /// Number of conditional LSs obtained by decomposition.
    pub conditional_lss: usize,
    /// Rounds used by the flow model.
    pub flow_rounds: usize,
}

/// The PCF-CLS scheme as evaluated in §5: always-active shortest-path LSs
/// per demand pair, plus per-link conditional LSs obtained by decomposing
/// the restricted logical-flow model.
pub fn pcf_cls_pipeline(
    topo: &Topology,
    tm: &TrafficMatrix,
    tunnels_per_pair: usize,
    fm: &FailureModel,
    opts: &RobustOptions,
) -> ClsResult {
    // Always-active LSs along shortest paths (same as PCF-LS).
    let mut always: Vec<LogicalSequence> = Vec::new();
    for (s, t, _) in tm.positive_pairs() {
        if let Some(path) = pcf_paths::shortest_path(topo, s, t) {
            if path.nodes.len() >= 3 {
                always.push(LogicalSequence::always(path.nodes));
            }
        }
    }
    let flows = bypass_flows(topo, 2);

    // Stage 1: flow model instance (needs pairs for all flow segments).
    // The flow model only shapes the conditional LSs (its p-values feed the
    // widest-path decomposition); the authoritative objective comes from
    // the stage-2 CLS solve. Reduced fidelity here cuts the dominant cost
    // of the pipeline without affecting guarantees.
    let flow_opts = RobustOptions {
        max_rounds: opts.max_rounds.min(8),
        tol: opts.tol.max(1e-4),
        ..opts.clone()
    };
    let mut b1 = InstanceBuilder::new(topo, tm).tunnels_per_pair(tunnels_per_pair);
    for ls in &always {
        b1 = b1.add_ls(ls.clone());
    }
    for w in &flows {
        b1 = b1.add_pair(w.src, w.dst);
        for &(u, v) in &w.support {
            b1 = b1.add_pair(u, v);
        }
    }
    let inst1 = b1.build();
    let fsol = match solve_logical_flow(&inst1, &flows, fm, &flow_opts) {
        Ok(s) => s,
        // audit:allow(no-panic-paths, compatibility wrapper; fallible path is solve_logical_flow) audit:allow(panic-reachability, same wrapper contract as solve_robust)
        Err(e) => panic!("logical-flow stage failed: {e}"),
    };
    let conditional = decompose_flows(topo, &flows, &fsol, 1e-7);

    // Stage 2: the CLS model proper.
    let mut b2 = InstanceBuilder::new(topo, tm).tunnels_per_pair(tunnels_per_pair);
    for ls in always.iter().chain(conditional.iter()) {
        b2 = b2.add_ls(ls.clone());
    }
    let instance = b2.build();
    let solution = crate::schemes::solve_pcf_cls(&instance, fm, opts);
    ClsResult {
        instance,
        solution,
        conditional_lss: conditional.len(),
        flow_rounds: fsol.rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::robust::RobustOptions;

    #[test]
    fn bypass_flows_cover_both_directions() {
        let topo = pcf_topology::zoo::build("Sprint");
        let flows = bypass_flows(&topo, 2);
        assert_eq!(flows.len(), 2 * topo.link_count());
        for w in &flows {
            assert!(!w.support.is_empty());
            // Support arcs must not traverse the protected link.
            let Condition::LinkDead(e) = w.condition else {
                panic!("bypass flows are link-conditioned")
            };
            let link = topo.link(e);
            for &(u, v) in &w.support {
                // The only way to traverse e is the segment (u,v) or (v,u)
                // of e's endpoints... a parallel link would be legal, so
                // just check the direct segment is allowed only if a second
                // link joins the endpoints.
                if (u, v) == (link.u, link.v) || (u, v) == (link.v, link.u) {
                    let parallel = topo
                        .links()
                        .filter(|&l2| {
                            topo.link(l2).touches(link.u) && topo.link(l2).touches(link.v)
                        })
                        .count();
                    assert!(parallel >= 2, "direct segment without parallel link");
                }
            }
        }
    }

    #[test]
    fn flow_model_beats_or_matches_ls_on_sprint() {
        let topo = pcf_topology::zoo::build("Sprint");
        let tm = pcf_traffic::gravity(&topo, 3);
        let fm = FailureModel::links(1);
        let opts = RobustOptions::default();
        let ls_inst = crate::schemes::pcf_ls_instance(&topo, &tm, 3);
        let ls = crate::schemes::solve_pcf_ls(&ls_inst, &fm, &opts);
        let cls = pcf_cls_pipeline(&topo, &tm, 3, &fm, &opts);
        assert!(
            cls.solution.objective >= ls.objective - 1e-4,
            "CLS {} vs LS {}",
            cls.solution.objective,
            ls.objective
        );
        assert!(cls.conditional_lss > 0);
    }

    #[test]
    fn decomposition_skips_tiny_flows() {
        let topo = pcf_topology::zoo::build("Sprint");
        let flows = bypass_flows(&topo, 2);
        let sol = FlowSolution {
            objective: 0.0,
            z: vec![],
            a: vec![],
            b: vec![],
            flow_b: vec![0.0; flows.len()],
            flow_p: flows.iter().map(|w| vec![0.0; w.support.len()]).collect(),
            rounds: 0,
        };
        assert!(decompose_flows(&topo, &flows, &sol, 1e-7).is_empty());
    }
}

#[cfg(test)]
mod flow_model_tests {
    use super::*;
    use crate::robust::RobustOptions;
    use pcf_topology::{NodeId, Topology};

    fn diamond() -> Topology {
        let mut t = Topology::new("diamond");
        let s = t.add_node("s");
        let a = t.add_node("a");
        let b = t.add_node("b");
        let d = t.add_node("t");
        t.add_link(s, a, 1.0);
        t.add_link(a, d, 1.0);
        t.add_link(s, b, 1.0);
        t.add_link(b, d, 1.0);
        t
    }

    #[test]
    fn flow_balance_is_respected() {
        // One always-active flow from s to t over the diamond's arcs; its
        // p-values must form a flow of value b_w.
        let topo = diamond();
        let mut tm = pcf_traffic::TrafficMatrix::zeros(4);
        tm.set_demand(NodeId(0), NodeId(3), 1.0);
        let arcs: Vec<(NodeId, NodeId)> = topo
            .arcs()
            .map(|a| (topo.arc_src(a), topo.arc_dst(a)))
            .collect();
        let flows = vec![FlowSpec {
            src: NodeId(0),
            dst: NodeId(3),
            condition: Condition::Always,
            support: arcs.clone(),
        }];
        let mut b = InstanceBuilder::new(&topo, &tm).tunnels_per_pair(2);
        for w in &flows {
            b = b.add_pair(w.src, w.dst);
            for &(u, v) in &w.support {
                b = b.add_pair(u, v);
            }
        }
        let inst = b.build();
        let sol = solve_logical_flow(
            &inst,
            &flows,
            &FailureModel::links(0),
            &RobustOptions::default(),
        )
        .unwrap();
        // Net outflow at the source equals b_w.
        let mut net = 0.0;
        for (si, &(u, v)) in flows[0].support.iter().enumerate() {
            if u == NodeId(0) {
                net += sol.flow_p[0][si];
            }
            if v == NodeId(0) {
                net -= sol.flow_p[0][si];
            }
        }
        assert!(
            (net - sol.flow_b[0]).abs() < 1e-6,
            "net {net} vs b {}",
            sol.flow_b[0]
        );
    }

    #[test]
    fn conditional_flow_helps_under_its_condition_only() {
        // A bypass flow for link e0 contributes capacity to pair (s,a) only
        // when e0 is dead; designing for f=1 on a pair with a single tunnel
        // through e0, the bypass is what keeps the guarantee above zero.
        let topo = diamond();
        let mut tm = pcf_traffic::TrafficMatrix::zeros(4);
        tm.set_demand(NodeId(0), NodeId(1), 1.0); // s -> a
        let flows = bypass_flows(&topo, 2);
        let mut b = InstanceBuilder::new(&topo, &tm).tunnels_per_pair(1); // only s-a
        for w in &flows {
            b = b.add_pair(w.src, w.dst);
            for &(u, v) in &w.support {
                b = b.add_pair(u, v);
            }
        }
        let inst = b.build();
        let with_flows = solve_logical_flow(
            &inst,
            &flows,
            &FailureModel::links(1),
            &RobustOptions::default(),
        )
        .unwrap();
        let without = solve_logical_flow(
            &inst,
            &[],
            &FailureModel::links(1),
            &RobustOptions::default(),
        )
        .unwrap();
        assert!(
            with_flows.objective > without.objective + 0.3,
            "bypass {} vs none {}",
            with_flows.objective,
            without.objective
        );
    }

    #[test]
    fn decomposition_extracts_widest_sequence() {
        let topo = diamond();
        let flows = vec![FlowSpec {
            src: NodeId(0),
            dst: NodeId(3),
            condition: Condition::LinkDead(pcf_topology::LinkId(0)),
            support: vec![
                (NodeId(0), NodeId(2)),
                (NodeId(2), NodeId(3)),
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(3)),
            ],
        }];
        let sol = FlowSolution {
            objective: 0.0,
            z: vec![],
            a: vec![],
            b: vec![],
            flow_b: vec![0.8],
            // Wider via node 2.
            flow_p: vec![vec![0.6, 0.6, 0.2, 0.2]],
            rounds: 1,
        };
        let lss = decompose_flows(&topo, &flows, &sol, 1e-7);
        assert_eq!(lss.len(), 1);
        assert_eq!(lss[0].hops, vec![NodeId(0), NodeId(2), NodeId(3)]);
        assert_eq!(
            lss[0].condition,
            Condition::LinkDead(pcf_topology::LinkId(0))
        );
    }

    #[test]
    fn bridge_links_get_no_bypass() {
        let mut t = Topology::new("bridged");
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        let d = t.add_node("d");
        // Triangle a-b-c plus a bridge c-d.
        t.add_link(a, b, 1.0);
        t.add_link(b, c, 1.0);
        t.add_link(c, a, 1.0);
        let bridge = t.add_link(c, d, 1.0);
        let flows = bypass_flows(&t, 2);
        assert!(flows
            .iter()
            .all(|w| w.condition != Condition::LinkDead(bridge)));
        // Non-bridge links all have bypasses in both directions.
        assert_eq!(flows.len(), 6);
    }
}
