//! The serving daemon: a std-only TCP server over the line protocol.
//!
//! Concurrency layout (all safe Rust, all scoped threads):
//!
//! * **Connection threads** (one per client) own a private
//!   [`ReplayEngine`] borrowing the current [`PlanEpoch`]. Before every
//!   command they replay any [`EventLog`] entries they have not applied
//!   yet — the only shared state on the event path is the lock-free log
//!   and the epoch's [`SharedFactorCache`](pcf_replay::SharedFactorCache).
//! * **The solver thread** drains `update` commands from a channel,
//!   re-solves the plan at the requested scale/seed, and publishes the
//!   new epoch through [`PlanCell::swap`]. Readers notice the generation
//!   bump (one `Acquire` load) at their next command and rebuild their
//!   engine against the new epoch; in-flight queries finish against the
//!   old one.
//! * **Shutdown** is a flag plus a self-connect poke so the blocking
//!   `accept` wakes up; connection reads use a short timeout so every
//!   thread observes the flag promptly and the scope joins.
//!
//! Responses are one JSON line per request, in request order — see
//! [`crate::protocol`] for the full verb table.

use crate::log::{EventLog, LogEvent};
use crate::plan::{PlanCell, PlanEpoch, PlanSpec};
use crate::protocol::{error_response, parse_request, Request};
use crate::telemetry::{ServeReport, Stopwatch, Telemetry};
use crate::{json::Json, ServeError};
use pcf_core::{
    absolute_tolerance, admit, peak_utilization, AdmitOutcome, DegradeMode, RealizeError,
};
use pcf_replay::{EventKind, LinkEvent, ReplayEngine};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

/// Server tunables (everything except the plan itself).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Capacity of each epoch's shared factor cache (entries).
    pub cache_capacity: usize,
    /// Degradation ladder allowance for `realize`/`util`.
    pub degrade: DegradeMode,
    /// Fixed capacity of the failure-event log.
    pub event_log_capacity: usize,
    /// Scenario-enumeration budget for exact admission checks.
    pub max_admit_evals: usize,
    /// Connection read timeout — bounds how long shutdown waits on an
    /// idle connection.
    pub read_timeout_ms: u64,
    /// Concurrent-connection cap; further clients get a one-line
    /// `{"ok":false,...,"busy":true}` reject and a close. `0` = unlimited.
    pub max_conns: usize,
    /// Reap a connection after this long without a complete request
    /// (`{"ok":false,"error":"idle timeout..."}` then close). `0` = never.
    pub idle_timeout_ms: u64,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            cache_capacity: 1024,
            degrade: DegradeMode::Shed,
            event_log_capacity: 65_536,
            max_admit_evals: 200_000,
            read_timeout_ms: 25,
            max_conns: 64,
            idle_timeout_ms: 0,
        }
    }
}

/// An `update`/`rebase` command in flight to the solver thread.
struct UpdateCmd {
    scale: Option<f64>,
    seed: Option<u64>,
    /// Permanent capacity rebase: link index and the new nominal capacity
    /// in permille of the current nominal.
    rebase: Option<(u32, u32)>,
}

enum Action {
    Respond(String),
    RespondAndClose(String),
}

/// A bound, solved, ready-to-run serving daemon.
pub struct Server {
    listener: TcpListener,
    spec: PlanSpec,
    opts: ServeOptions,
    cell: PlanCell,
    log: EventLog,
    telemetry: Telemetry,
    shutdown: AtomicBool,
    /// Live connection count, maintained by the acceptor (up) and the
    /// connection threads (down); only the acceptor reads it for the cap
    /// check, so the cap is never exceeded.
    active: AtomicUsize,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and solves the initial plan at
    /// generation 1. Returns before accepting — call [`Server::run`].
    pub fn bind(spec: PlanSpec, opts: ServeOptions, addr: &str) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(addr)?;
        let epoch = spec.solve_epoch(1, 1.0, spec.seed, opts.cache_capacity)?;
        let log = EventLog::new(opts.event_log_capacity);
        Ok(Server {
            listener,
            spec,
            opts,
            cell: PlanCell::new(Arc::new(epoch)),
            log,
            telemetry: Telemetry::default(),
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A telemetry snapshot against the currently published epoch.
    pub fn report(&self) -> ServeReport {
        let epoch = self.cell.current();
        self.telemetry
            .snapshot(epoch.gen, epoch.plan_digest, epoch.cache.stats())
    }

    /// Serves until a `shutdown` command arrives. Blocks; every
    /// connection and the background solver run as scoped threads, so
    /// returning means all of them have joined.
    pub fn run(&self) -> io::Result<()> {
        let (tx, rx) = mpsc::channel::<UpdateCmd>();
        thread::scope(|s| {
            s.spawn(|| self.solver_loop(rx));
            loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        if self.shutdown.load(Ordering::Acquire) {
                            break;
                        }
                        let active = self.active.load(Ordering::Acquire);
                        if self.opts.max_conns > 0 && active >= self.opts.max_conns {
                            // Graceful reject: one JSON line, then close —
                            // the client can back off and retry rather
                            // than hang on an unaccepted socket.
                            Telemetry::bump(&self.telemetry.busy_rejects);
                            let mut w = BufWriter::new(stream);
                            let _ = w.write_all(
                                format!(
                                    "{{\"ok\":false,\"error\":\"busy: {active} connections \
                                     active (max {})\",\"busy\":true}}\n",
                                    self.opts.max_conns
                                )
                                .as_bytes(),
                            );
                            continue;
                        }
                        self.active.fetch_add(1, Ordering::AcqRel);
                        Telemetry::bump(&self.telemetry.connections);
                        let tx = tx.clone();
                        s.spawn(move || {
                            // A dropped/reset connection is that client's
                            // problem, not the server's.
                            let _ = self.handle_conn(stream, tx);
                            self.active.fetch_sub(1, Ordering::AcqRel);
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
                if self.shutdown.load(Ordering::Acquire) {
                    break;
                }
            }
            // Drop our sender so the solver's recv loop can observe
            // disconnection; it also polls the shutdown flag.
            drop(tx);
        });
        Ok(())
    }

    /// Requests shutdown from outside the protocol (tests, signal glue).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.poke_acceptor();
    }

    fn solver_loop(&self, rx: mpsc::Receiver<UpdateCmd>) {
        // The previous epoch's cut pool, carried across re-solves so each
        // epoch's master starts from the scenarios that bound the last one.
        let mut pool: Option<pcf_core::CutPool> = None;
        // The solver's view of the topology: `rebase` commands mutate it
        // permanently, and every later re-solve (rebase or not) builds
        // against the accumulated capacities.
        let mut spec = self.spec.clone();
        loop {
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(cmd) => {
                    let current = self.cell.current();
                    let gen = current.gen + 1;
                    let scale = cmd.scale.unwrap_or(current.scale);
                    let seed = cmd.seed.unwrap_or(current.seed);
                    if let Some((link, permille)) = cmd.rebase {
                        let l = pcf_topology::LinkId(link);
                        let cap = spec.topo.capacity(l) * f64::from(permille) / 1000.0;
                        spec.topo.set_capacity(l, cap);
                    }
                    match spec.solve_epoch_seeded(
                        gen,
                        scale,
                        seed,
                        self.opts.cache_capacity,
                        pool.as_ref(),
                    ) {
                        Ok((epoch, next_pool)) => {
                            if epoch.warm_cuts > 0 {
                                Telemetry::bump(&self.telemetry.warm_epochs);
                            } else {
                                Telemetry::bump(&self.telemetry.cold_epochs);
                            }
                            pool = next_pool;
                            self.cell.swap(Arc::new(epoch));
                            Telemetry::bump(&self.telemetry.swaps);
                        }
                        Err(_) => {
                            // Keep serving the old epoch; the failure is
                            // visible in telemetry.
                            Telemetry::bump(&self.telemetry.solve_failures);
                        }
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => return,
            }
        }
    }

    /// Wakes a blocking `accept` after the shutdown flag is set.
    fn poke_acceptor(&self) {
        if let Ok(addr) = self.listener.local_addr() {
            let target = if addr.ip().is_unspecified() {
                SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), addr.port())
            } else {
                addr
            };
            let _ = TcpStream::connect_timeout(&target, Duration::from_millis(100));
        }
    }

    fn handle_conn(&self, stream: TcpStream, tx: mpsc::Sender<UpdateCmd>) -> io::Result<()> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_millis(
            self.opts.read_timeout_ms.max(1),
        )))?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = BufWriter::new(stream);
        let mut pending: Option<String> = None;
        // Outer loop: one iteration per plan epoch this connection serves.
        // The engine borrows the epoch `Arc` held by this frame, so a swap
        // elsewhere never invalidates it; we re-enter on a generation bump.
        'epoch: loop {
            let epoch = self.cell.current();
            let mut engine = ReplayEngine::with_shared_cache(
                &epoch.inst,
                &epoch.a,
                &epoch.b,
                &epoch.served,
                epoch.tol,
                &epoch.cache,
            );
            engine.set_degrade(self.opts.degrade);
            let mut applied = 0usize;
            let mut line = String::new();
            loop {
                let request = match pending.take() {
                    Some(stashed) => stashed,
                    None => {
                        line.clear();
                        // Pipelining-aware flush: while more requests sit
                        // in the read buffer, responses coalesce in the
                        // BufWriter (which drains itself at capacity);
                        // deliver them only when about to wait on the
                        // socket. This is what lets deep request batches
                        // amortize write syscalls.
                        if reader.buffer().is_empty() {
                            writer.flush()?;
                        }
                        match read_line_shutdown_aware(
                            &mut reader,
                            &mut line,
                            &self.shutdown,
                            self.opts.idle_timeout_ms,
                        )? {
                            ReadOutcome::Closed => return Ok(()),
                            ReadOutcome::Idle => {
                                Telemetry::bump(&self.telemetry.idle_reaps);
                                let _ = writer.write_all(
                                    format!(
                                        "{{\"ok\":false,\"error\":\"idle timeout \
                                         ({} ms), closing\"}}\n",
                                        self.opts.idle_timeout_ms
                                    )
                                    .as_bytes(),
                                );
                                let _ = writer.flush();
                                return Ok(());
                            }
                            ReadOutcome::Line => line.clone(),
                        }
                    }
                };
                let trimmed = request.trim();
                if trimmed.is_empty() {
                    continue;
                }
                if self.cell.generation() != epoch.gen {
                    // A new plan was published: rebuild the engine against
                    // it, replaying the request we already read.
                    pending = Some(request);
                    continue 'epoch;
                }
                match self.handle_request(trimmed, &epoch, &mut engine, &mut applied, &tx) {
                    Action::Respond(resp) => {
                        writer.write_all(resp.as_bytes())?;
                        writer.write_all(b"\n")?;
                    }
                    Action::RespondAndClose(resp) => {
                        writer.write_all(resp.as_bytes())?;
                        writer.write_all(b"\n")?;
                        writer.flush()?;
                        return Ok(());
                    }
                }
            }
        }
    }

    fn handle_request(
        &self,
        line: &str,
        epoch: &PlanEpoch,
        engine: &mut ReplayEngine<'_>,
        applied: &mut usize,
        tx: &mpsc::Sender<UpdateCmd>,
    ) -> Action {
        let request = match parse_request(line) {
            Ok(r) => r,
            Err(msg) => {
                Telemetry::bump(&self.telemetry.protocol_errors);
                return Action::Respond(error_response(&msg));
            }
        };
        match request {
            Request::Ping => Action::Respond(
                Json::Obj(vec![
                    ("ok".into(), Json::Bool(true)),
                    ("pong".into(), Json::Bool(true)),
                    ("gen".into(), Json::Num(epoch.gen as f64)),
                ])
                .render(),
            ),
            Request::Down { link } => self.handle_event(epoch, engine, applied, link, |link| {
                LogEvent::Link(LinkEvent {
                    link,
                    kind: EventKind::Down,
                })
            }),
            Request::Up { link } => self.handle_event(epoch, engine, applied, link, |link| {
                LogEvent::Link(LinkEvent {
                    link,
                    kind: EventKind::Up,
                })
            }),
            Request::Wobble { link, permille } => {
                self.handle_event(epoch, engine, applied, link, move |link| {
                    LogEvent::Link(LinkEvent {
                        link,
                        kind: EventKind::Wobble { permille },
                    })
                })
            }
            Request::Degrade { link, permille } => {
                self.handle_event(epoch, engine, applied, link, move |link| {
                    LogEvent::Link(LinkEvent {
                        link,
                        kind: EventKind::Degrade { permille },
                    })
                })
            }
            Request::Srlg { group } => {
                let Some(members) = self.spec.srlgs.get(group as usize) else {
                    Telemetry::bump(&self.telemetry.protocol_errors);
                    return Action::Respond(error_response(&format!(
                        "unknown srlg group {group} (table has {} groups)",
                        self.spec.srlgs.len()
                    )));
                };
                self.handle_burst(epoch, engine, applied, members.clone())
            }
            Request::Node { node } => {
                let topo = epoch.inst.topo();
                if (node as usize) >= topo.node_count() {
                    Telemetry::bump(&self.telemetry.protocol_errors);
                    return Action::Respond(error_response(&format!(
                        "node {node} out of range (topology has {} nodes)",
                        topo.node_count()
                    )));
                }
                let n = pcf_topology::NodeId(node);
                let members: Vec<pcf_topology::LinkId> =
                    topo.links().filter(|&l| topo.link(l).touches(n)).collect();
                self.handle_burst(epoch, engine, applied, members)
            }
            Request::Rebase { link, permille } => {
                let topo = epoch.inst.topo();
                if (link as usize) >= topo.link_count() {
                    Telemetry::bump(&self.telemetry.protocol_errors);
                    return Action::Respond(error_response(&format!(
                        "link {link} out of range (topology has {} links)",
                        topo.link_count()
                    )));
                }
                match tx.send(UpdateCmd {
                    scale: None,
                    seed: None,
                    rebase: Some((link, permille)),
                }) {
                    Ok(()) => Action::Respond(
                        Json::Obj(vec![
                            ("ok".into(), Json::Bool(true)),
                            ("gen".into(), Json::Num(epoch.gen as f64)),
                        ])
                        .render(),
                    ),
                    Err(_) => Action::Respond(error_response("solver unavailable")),
                }
            }
            Request::Reset => self.handle_event(epoch, engine, applied, 0, |_| LogEvent::Reset),
            Request::Realize => self.handle_realize(epoch, engine, applied, 0, false),
            Request::Util { limit } => self.handle_realize(epoch, engine, applied, limit, true),
            Request::Plan => self.handle_plan(epoch),
            Request::Admit { src, dst, demand } => self.handle_admit(epoch, &src, &dst, demand),
            Request::Stats => {
                let report =
                    self.telemetry
                        .snapshot(epoch.gen, epoch.plan_digest, epoch.cache.stats());
                Action::Respond(format!(
                    "{{\"ok\":true,\"report\":{},\"deterministic\":{}}}",
                    report.to_json(),
                    report.deterministic_json()
                ))
            }
            Request::Update { scale, seed } => match tx.send(UpdateCmd {
                scale,
                seed,
                rebase: None,
            }) {
                Ok(()) => Action::Respond(
                    Json::Obj(vec![
                        ("ok".into(), Json::Bool(true)),
                        ("gen".into(), Json::Num(epoch.gen as f64)),
                    ])
                    .render(),
                ),
                Err(_) => Action::Respond(error_response("solver unavailable")),
            },
            Request::Wait { gen, timeout_ms } => {
                let sw = Stopwatch::start();
                loop {
                    let now = self.cell.generation();
                    if now >= gen {
                        return Action::Respond(
                            Json::Obj(vec![
                                ("ok".into(), Json::Bool(true)),
                                ("gen".into(), Json::Num(now as f64)),
                            ])
                            .render(),
                        );
                    }
                    if sw.elapsed_ms() >= timeout_ms {
                        return Action::Respond(
                            Json::Obj(vec![
                                ("ok".into(), Json::Bool(false)),
                                (
                                    "error".into(),
                                    Json::str(format!("timeout waiting for generation {gen}")),
                                ),
                                ("gen".into(), Json::Num(now as f64)),
                            ])
                            .render(),
                        );
                    }
                    thread::sleep(Duration::from_millis(2));
                }
            }
            Request::Shutdown => {
                self.shutdown.store(true, Ordering::Release);
                self.poke_acceptor();
                Action::RespondAndClose(Json::Obj(vec![("ok".into(), Json::Bool(true))]).render())
            }
        }
    }

    fn handle_event(
        &self,
        epoch: &PlanEpoch,
        engine: &mut ReplayEngine<'_>,
        applied: &mut usize,
        link: u32,
        build: impl FnOnce(pcf_topology::LinkId) -> LogEvent,
    ) -> Action {
        let sw = Stopwatch::start();
        let topo = epoch.inst.topo();
        if (link as usize) >= topo.link_count() {
            Telemetry::bump(&self.telemetry.protocol_errors);
            return Action::Respond(error_response(&format!(
                "link {link} out of range (topology has {} links)",
                topo.link_count()
            )));
        }
        let event = build(pcf_topology::LinkId(link));
        if let Err(e) = self.log.push(event) {
            return Action::Respond(error_response(&e.to_string()));
        }
        if let Err(e) = sync_engine(epoch, engine, &self.log, applied) {
            return Action::Respond(error_response(&format!("event replay failed: {e}")));
        }
        Telemetry::bump(&self.telemetry.events);
        self.telemetry.event_latency.record(sw.elapsed_ns());
        Action::Respond(
            Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("gen".into(), Json::Num(epoch.gen as f64)),
                ("dead_links".into(), Json::Num(engine.dead_links() as f64)),
            ])
            .render(),
        )
    }

    /// Applies a correlated burst (SRLG group or node failure): one Down
    /// log entry per member link, appended in member order. Redundant
    /// downs of already-dead links are no-ops in every reader's engine,
    /// so concurrent bursts over overlapping groups compose cleanly.
    fn handle_burst(
        &self,
        epoch: &PlanEpoch,
        engine: &mut ReplayEngine<'_>,
        applied: &mut usize,
        members: Vec<pcf_topology::LinkId>,
    ) -> Action {
        let sw = Stopwatch::start();
        for &l in &members {
            if let Err(e) = self.log.push(LogEvent::Link(LinkEvent {
                link: l,
                kind: EventKind::Down,
            })) {
                return Action::Respond(error_response(&e.to_string()));
            }
            Telemetry::bump(&self.telemetry.events);
        }
        if let Err(e) = sync_engine(epoch, engine, &self.log, applied) {
            return Action::Respond(error_response(&format!("event replay failed: {e}")));
        }
        self.telemetry.event_latency.record(sw.elapsed_ns());
        Action::Respond(
            Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("gen".into(), Json::Num(epoch.gen as f64)),
                ("dead_links".into(), Json::Num(engine.dead_links() as f64)),
                ("downed".into(), Json::Num(members.len() as f64)),
            ])
            .render(),
        )
    }

    fn handle_realize(
        &self,
        epoch: &PlanEpoch,
        engine: &mut ReplayEngine<'_>,
        applied: &mut usize,
        limit: usize,
        with_arcs: bool,
    ) -> Action {
        let sw = Stopwatch::start();
        if let Err(e) = sync_engine(epoch, engine, &self.log, applied) {
            return Action::Respond(error_response(&format!("event replay failed: {e}")));
        }
        let result = engine.realize_degraded();
        Telemetry::bump(&self.telemetry.queries);
        self.telemetry.query_latency.record(sw.elapsed_ns());
        match result {
            Ok(d) => {
                self.telemetry.record_stage(d.ladder_stage.code());
                let max_util = peak_utilization(&epoch.inst, &d.routing, engine.capacities());
                let mut fields = vec![
                    ("ok".into(), Json::Bool(true)),
                    ("gen".into(), Json::Num(epoch.gen as f64)),
                    ("stage".into(), Json::str(d.ladder_stage.name())),
                    ("max_utilization".into(), Json::Num(max_util)),
                    ("shed".into(), Json::Num(d.shed_demand)),
                    ("dead_links".into(), Json::Num(engine.dead_links() as f64)),
                ];
                if with_arcs {
                    fields.push((
                        "hot_arcs".into(),
                        hot_arcs(epoch, engine, &d.routing, limit),
                    ));
                }
                Action::Respond(Json::Obj(fields).render())
            }
            Err(e) => {
                self.telemetry.record_stage(3);
                Action::Respond(error_response(&format!("realization failed: {e}")))
            }
        }
    }

    fn handle_plan(&self, epoch: &PlanEpoch) -> Action {
        Action::Respond(
            Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("gen".into(), Json::Num(epoch.gen as f64)),
                ("topology".into(), Json::str(epoch.inst.topo().name())),
                ("scheme".into(), Json::str(self.spec.scheme.as_flag())),
                ("f".into(), Json::Num(self.spec.f as f64)),
                ("pairs".into(), Json::Num(epoch.inst.num_pairs() as f64)),
                ("objective".into(), Json::Num(epoch.objective)),
                ("scale".into(), Json::Num(epoch.scale)),
                ("seed".into(), Json::Num(epoch.seed as f64)),
                (
                    "plan_digest".into(),
                    Json::str(format!("{:016x}", epoch.plan_digest)),
                ),
            ])
            .render(),
        )
    }

    fn handle_admit(&self, epoch: &PlanEpoch, src: &str, dst: &str, demand: f64) -> Action {
        let sw = Stopwatch::start();
        let topo = epoch.inst.topo();
        let Some(s) = topo.node_by_name(src) else {
            Telemetry::bump(&self.telemetry.protocol_errors);
            return Action::Respond(error_response(&format!("unknown node {src:?}")));
        };
        let Some(t) = topo.node_by_name(dst) else {
            Telemetry::bump(&self.telemetry.protocol_errors);
            return Action::Respond(error_response(&format!("unknown node {dst:?}")));
        };
        let Some(p) = epoch.inst.pair_id(s, t) else {
            return Action::Respond(error_response(&format!(
                "no demand pair {src} -> {dst} in the served plan"
            )));
        };
        let tol_abs = absolute_tolerance(&epoch.served, epoch.tol);
        let outcome = admit(
            &epoch.inst,
            p,
            &epoch.fm,
            &epoch.a,
            &epoch.b,
            epoch.served[p.0],
            epoch.worst_available[p.0],
            demand,
            tol_abs,
            self.opts.max_admit_evals,
        );
        Telemetry::bump(&self.telemetry.queries);
        self.telemetry.query_latency.record(sw.elapsed_ns());
        match outcome {
            AdmitOutcome::Admitted { headroom, relaxed } => {
                Telemetry::bump(&self.telemetry.admitted);
                Action::Respond(
                    Json::Obj(vec![
                        ("ok".into(), Json::Bool(true)),
                        ("admitted".into(), Json::Bool(true)),
                        ("headroom".into(), Json::Num(headroom)),
                        ("relaxed".into(), Json::Bool(relaxed)),
                        ("gen".into(), Json::Num(epoch.gen as f64)),
                    ])
                    .render(),
                )
            }
            AdmitOutcome::Rejected {
                worst_available,
                witness,
            } => {
                Telemetry::bump(&self.telemetry.rejected);
                let witness_json = match witness {
                    Some(links) => {
                        Json::Arr(links.iter().map(|l| Json::Num(f64::from(l.0))).collect())
                    }
                    None => Json::Null,
                };
                Action::Respond(
                    Json::Obj(vec![
                        ("ok".into(), Json::Bool(true)),
                        ("admitted".into(), Json::Bool(false)),
                        ("worst_available".into(), Json::Num(worst_available)),
                        ("witness".into(), witness_json),
                        ("gen".into(), Json::Num(epoch.gen as f64)),
                    ])
                    .render(),
                )
            }
        }
    }
}

/// The hottest arcs of a routing, by utilization against the capacities
/// currently in effect.
fn hot_arcs(
    epoch: &PlanEpoch,
    engine: &ReplayEngine<'_>,
    routing: &pcf_core::Routing,
    limit: usize,
) -> Json {
    let topo = epoch.inst.topo();
    let mut arcs: Vec<(usize, f64)> = topo
        .arcs()
        .map(|arc| {
            let cap = engine.capacity(arc.link());
            let load = routing.arc_loads[arc.index()];
            let util = if cap > 0.0 {
                load / cap
            } else if load > 0.0 {
                f64::INFINITY
            } else {
                0.0
            };
            (arc.index(), util)
        })
        .collect();
    arcs.sort_by(|x, y| y.1.total_cmp(&x.1).then(x.0.cmp(&y.0)));
    Json::Arr(
        arcs.into_iter()
            .take(limit)
            .map(|(idx, util)| {
                Json::Obj(vec![
                    ("arc".into(), Json::Num(idx as f64)),
                    ("utilization".into(), Json::Num(util)),
                ])
            })
            .collect(),
    )
}

/// Replays log entries `[*applied, tail)` into this connection's engine.
fn sync_engine(
    epoch: &PlanEpoch,
    engine: &mut ReplayEngine<'_>,
    log: &EventLog,
    applied: &mut usize,
) -> Result<(), RealizeError> {
    let tail = log.tail();
    while *applied < tail {
        match log.get(*applied) {
            LogEvent::Link(ev) => engine.apply(&ev)?,
            LogEvent::Reset => reset_engine(epoch, engine)?,
        }
        *applied += 1;
    }
    Ok(())
}

/// Applies a reset as ordinary events: revive every dead link, clear
/// every partial degradation, restore every wobbled capacity to nominal.
/// Expressing reset in the engine's own event vocabulary keeps replay
/// append-only. Degradations restore before the wobble check so the
/// remaining capacity deficit (if any) is attributable to wobble alone.
fn reset_engine(epoch: &PlanEpoch, engine: &mut ReplayEngine<'_>) -> Result<(), RealizeError> {
    let topo = epoch.inst.topo();
    let state = engine.state();
    for l in topo.links() {
        if state.dead[l.index()] {
            engine.apply(&LinkEvent {
                link: l,
                kind: EventKind::Up,
            })?;
        }
        // cap_scale is exactly permille/1000, so a degraded link sits
        // strictly below 1.0 — no epsilon needed.
        if state.cap_scale[l.index()] < 1.0 {
            engine.apply(&LinkEvent {
                link: l,
                kind: EventKind::Degrade { permille: 1000 },
            })?;
        }
        if engine.capacity(l) != topo.capacity(l) {
            engine.apply(&LinkEvent {
                link: l,
                kind: EventKind::Wobble { permille: 1000 },
            })?;
        }
    }
    Ok(())
}

enum ReadOutcome {
    Line,
    Closed,
    /// No complete request arrived within the idle budget.
    Idle,
}

/// `read_line` with shutdown polling: timeouts loop (partial bytes stay
/// appended in `line`, so a line split across timeouts reassembles), a
/// set shutdown flag reads as a clean close, and — when `idle_timeout_ms`
/// is nonzero — a connection that produces no complete request within the
/// budget reads as [`ReadOutcome::Idle`] so the caller can reap it.
fn read_line_shutdown_aware(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
    shutdown: &AtomicBool,
    idle_timeout_ms: u64,
) -> io::Result<ReadOutcome> {
    let sw = Stopwatch::start();
    loop {
        match reader.read_line(line) {
            Ok(0) => return Ok(ReadOutcome::Closed),
            Ok(_) => return Ok(ReadOutcome::Line),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shutdown.load(Ordering::Acquire) {
                    return Ok(ReadOutcome::Closed);
                }
                if idle_timeout_ms > 0 && sw.elapsed_ms() >= idle_timeout_ms {
                    return Ok(ReadOutcome::Idle);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}
