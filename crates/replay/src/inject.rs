//! Deterministic fault injection: adversarial traces for the degradation
//! ladder.
//!
//! The generators in [`crate::trace`] stay *within* a failure budget so a
//! correct plan replays violation-free. [`FaultInjector`] does the
//! opposite: it manufactures scenarios the plan was never solved for —
//! simultaneous failures beyond `f`, capacity wobble, and corrupt trace
//! text — to prove the serving path is total (every event answers with a
//! routing and a ladder stage, never a panic or a blank entry).
//!
//! All generators are seeded through [`pcf_rng`], so a given injector
//! seed reproduces the same chaos bit-for-bit on every platform; each
//! method derives an independent stream from the injector seed and a
//! method tag, so traces from one injector don't correlate.

use pcf_rng::{Pcg32, SplitMix64};
use pcf_topology::{LinkId, Topology};

use crate::trace::{EventKind, EventTrace, LinkEvent};

/// Factory for adversarial, deterministically seeded event traces.
#[derive(Debug, Clone, Copy)]
pub struct FaultInjector {
    seed: u64,
}

impl FaultInjector {
    /// Creates an injector; the seed fixes every trace it will produce.
    pub fn new(seed: u64) -> Self {
        FaultInjector { seed }
    }

    /// Derives an independent generator for one method (`tag`) so the
    /// injector's streams don't overlap.
    fn stream(&self, tag: u64) -> Pcg32 {
        let mut sm = SplitMix64::new(self.seed ^ tag.wrapping_mul(0x9e3779b97f4a7c15));
        Pcg32::new(sm.next_u64(), sm.next_u64())
    }

    /// Beyond-budget bursts: each burst fails `f + 1` or `f + 2` links
    /// *simultaneously* — strictly more than a plan solved for `f`
    /// tolerates — holds the failure, then repairs everything before the
    /// next burst. Replaying one of these against an `f`-resilient plan
    /// must push the engine off stage 1.
    pub fn beyond_budget_bursts(&self, topo: &Topology, bursts: usize, f: usize) -> EventTrace {
        let mut rng = self.stream(0xb0b5);
        let n = topo.link_count();
        let mut links: Vec<LinkId> = topo.links().collect();
        let mut events = Vec::new();
        for _ in 0..bursts {
            let k = (f + 1 + rng.range_usize(0, 2)).min(n);
            rng.shuffle(&mut links);
            for &l in &links[..k] {
                events.push(LinkEvent {
                    link: l,
                    kind: EventKind::Down,
                });
            }
            for &l in &links[..k] {
                events.push(LinkEvent {
                    link: l,
                    kind: EventKind::Up,
                });
            }
        }
        EventTrace::new(
            format!(
                "beyond_budget_bursts(bursts={bursts},f={f},seed={})",
                self.seed
            ),
            events,
        )
    }

    /// Capacity wobble: random links sag to a capacity in
    /// `[min_permille, 999]` permille of nominal, then recover to 1000,
    /// in squeeze/restore pairs. Liveness never changes, so the
    /// realization is untouched — only the overload checks move.
    /// `min_permille` is clamped to `1..=999`.
    pub fn capacity_wobble(&self, topo: &Topology, count: usize, min_permille: u32) -> EventTrace {
        let mut rng = self.stream(0x30bb1e);
        let min_permille = min_permille.clamp(1, 999);
        let links: Vec<LinkId> = topo.links().collect();
        let mut events = Vec::with_capacity(count);
        if !links.is_empty() {
            while events.len() < count {
                let link = *rng.pick(&links);
                let permille = rng.range_usize(min_permille as usize, 1000) as u32;
                events.push(LinkEvent {
                    link,
                    kind: EventKind::Wobble { permille },
                });
                events.push(LinkEvent {
                    link,
                    kind: EventKind::Wobble { permille: 1000 },
                });
            }
            events.truncate(count);
        }
        EventTrace::new(
            format!(
                "capacity_wobble(n={count},min={min_permille},seed={})",
                self.seed
            ),
            events,
        )
    }

    /// Everything at once: interleaved failures (up to `f + 2` links dead
    /// concurrently — beyond budget), repairs, and capacity wobbles in
    /// `[300, 1500]` permille. The stress diet for the ladder: some
    /// events stay on stage 1, some rescale, some shed.
    pub fn chaos(&self, topo: &Topology, count: usize, f: usize) -> EventTrace {
        let mut rng = self.stream(0xc4405);
        let n = topo.link_count();
        let max_down = (f + 2).min(n);
        let mut alive: Vec<LinkId> = topo.links().collect();
        let mut dead: Vec<LinkId> = Vec::new();
        let mut events = Vec::with_capacity(count);
        if n > 0 {
            while events.len() < count {
                if rng.chance(0.25) {
                    // Wobble any link, dead or alive (wobbling a dead
                    // link is legal: capacity applies once it recovers).
                    let link = LinkId(rng.range_usize(0, n) as u32);
                    let permille = rng.range_usize(300, 1501) as u32;
                    events.push(LinkEvent {
                        link,
                        kind: EventKind::Wobble { permille },
                    });
                    continue;
                }
                let go_down = if dead.is_empty() {
                    true
                } else if dead.len() == max_down || alive.is_empty() {
                    false
                } else {
                    rng.chance(0.55)
                };
                let (from, to) = if go_down {
                    (&mut alive, &mut dead)
                } else {
                    (&mut dead, &mut alive)
                };
                let i = rng.range_usize(0, from.len());
                let link = from.swap_remove(i);
                to.push(link);
                events.push(LinkEvent {
                    link,
                    kind: if go_down {
                        EventKind::Down
                    } else {
                        EventKind::Up
                    },
                });
            }
        }
        EventTrace::new(format!("chaos(n={count},f={f},seed={})", self.seed), events)
    }

    /// Partial-capacity degradation storm: random links degrade to a
    /// surviving capacity in `[min_permille, 999]` permille of nominal,
    /// then restore to 1000, in squeeze/restore pairs. Unlike
    /// [`FaultInjector::capacity_wobble`] these events are
    /// realization-visible — the engine rescales the reservations riding
    /// each degraded link. `min_permille` is clamped to `1..=999`.
    pub fn degradation_storm(
        &self,
        topo: &Topology,
        count: usize,
        min_permille: u32,
    ) -> EventTrace {
        let mut rng = self.stream(0xd364ade);
        let min_permille = min_permille.clamp(1, 999);
        let links: Vec<LinkId> = topo.links().collect();
        let mut events = Vec::with_capacity(count);
        if !links.is_empty() {
            while events.len() < count {
                let link = *rng.pick(&links);
                let permille = rng.range_usize(min_permille as usize, 1000) as u32;
                events.push(LinkEvent {
                    link,
                    kind: EventKind::Degrade { permille },
                });
                events.push(LinkEvent {
                    link,
                    kind: EventKind::Degrade { permille: 1000 },
                });
            }
            events.truncate(count);
        }
        EventTrace::new(
            format!(
                "degradation_storm(n={count},min={min_permille},seed={})",
                self.seed
            ),
            events,
        )
    }

    /// Corrupt scripted-trace text for parser fuzzing: a mix of valid
    /// lines, comments, and malformed entries (unknown verbs, missing or
    /// trailing arguments, unparsable indices, out-of-range numbers). At
    /// least one line is guaranteed malformed whenever `lines > 0`, so
    /// [`EventTrace::parse`] must reject the text — with a line number
    /// pointing inside it — rather than panic.
    pub fn malformed_trace(&self, lines: usize) -> String {
        let mut rng = self.stream(0xbad);
        let mut out = String::new();
        let poison_at = if lines == 0 {
            0
        } else {
            rng.range_usize(0, lines)
        };
        for i in 0..lines {
            let line = if i == poison_at || rng.chance(0.4) {
                // Malformed shapes, one per corpus entry.
                match rng.range_usize(0, 7) {
                    0 => format!("explode {}", rng.range_usize(0, 50)),
                    1 => "down".to_string(),
                    2 => format!("down x{}", rng.range_usize(0, 50)),
                    3 => format!("up {} {}", rng.range_usize(0, 50), rng.range_usize(0, 50)),
                    4 => format!("wobble {}", rng.range_usize(0, 50)),
                    5 => format!("wobble {} not-a-number", rng.range_usize(0, 50)),
                    _ => format!("down {}", u64::from(u32::MAX) + 1),
                }
            } else {
                // Well-formed filler (possibly idempotent — the lenient
                // parser doesn't care).
                match rng.range_usize(0, 4) {
                    0 => format!("down {}", rng.range_usize(0, 20)),
                    1 => format!("up e{}", rng.range_usize(0, 20)),
                    2 => format!(
                        "wobble {} {}",
                        rng.range_usize(0, 20),
                        rng.range_usize(1, 2001)
                    ),
                    _ => "# comment".to_string(),
                }
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcf_topology::zoo;

    #[test]
    fn bursts_exceed_the_budget_and_repair_fully() {
        let topo = zoo::build("Sprint");
        for f in 0..3 {
            let t = FaultInjector::new(11).beyond_budget_bursts(&topo, 5, f);
            assert!(
                t.max_concurrent_down() > f,
                "f={f}: peak {} should exceed the budget",
                t.max_concurrent_down()
            );
            // Every down is matched by an up, so the trace ends all-alive.
            let mut down = vec![0i32; topo.link_count()];
            for e in &t.events {
                match e.kind {
                    EventKind::Down => down[e.link.index()] += 1,
                    EventKind::Up => down[e.link.index()] -= 1,
                    EventKind::Wobble { .. } | EventKind::Degrade { .. } => {}
                }
            }
            assert!(down.iter().all(|&d| d == 0));
        }
    }

    #[test]
    fn injector_traces_are_deterministic_per_seed() {
        let topo = zoo::build("Sprint");
        let a = FaultInjector::new(9);
        let b = FaultInjector::new(9);
        assert_eq!(
            a.beyond_budget_bursts(&topo, 4, 1),
            b.beyond_budget_bursts(&topo, 4, 1)
        );
        assert_eq!(a.chaos(&topo, 50, 1), b.chaos(&topo, 50, 1));
        assert_eq!(a.malformed_trace(30), b.malformed_trace(30));
        assert_ne!(
            a.chaos(&topo, 50, 1).events,
            FaultInjector::new(10).chaos(&topo, 50, 1).events
        );
    }

    #[test]
    fn wobble_trace_passes_strict_validation() {
        let topo = zoo::build("Sprint");
        let t = FaultInjector::new(3).capacity_wobble(&topo, 40, 500);
        assert_eq!(t.len(), 40);
        assert_eq!(t.max_concurrent_down(), 0);
        let strict = EventTrace::parse_strict("w", &t.to_text(), &topo);
        assert!(strict.is_ok(), "{strict:?}");
        for e in &t.events {
            match e.kind {
                EventKind::Wobble { permille } => assert!((500..=1000).contains(&permille)),
                _ => panic!("wobble trace emitted a liveness event"),
            }
        }
    }

    #[test]
    fn chaos_stays_state_changing_and_in_range() {
        let topo = zoo::build("Sprint");
        let t = FaultInjector::new(21).chaos(&topo, 200, 1);
        assert_eq!(t.len(), 200);
        assert!(t.max_concurrent_down() <= 3); // f + 2
        let mut dead = vec![false; topo.link_count()];
        for e in &t.events {
            assert!(e.link.index() < topo.link_count());
            match e.kind {
                EventKind::Down => {
                    assert!(!dead[e.link.index()], "idempotent down");
                    dead[e.link.index()] = true;
                }
                EventKind::Up => {
                    assert!(dead[e.link.index()], "spurious up");
                    dead[e.link.index()] = false;
                }
                EventKind::Wobble { permille } => assert!((300..=1500).contains(&permille)),
                EventKind::Degrade { .. } => panic!("chaos does not emit degrades"),
            }
        }
    }

    #[test]
    fn degradation_storm_passes_strict_validation() {
        let topo = zoo::build("Sprint");
        let inj = FaultInjector::new(5);
        let t = inj.degradation_storm(&topo, 40, 400);
        assert_eq!(t.len(), 40);
        assert_eq!(t.max_concurrent_down(), 0);
        assert_eq!(t, FaultInjector::new(5).degradation_storm(&topo, 40, 400));
        let strict = EventTrace::parse_strict("d", &t.to_text(), &topo);
        assert!(strict.is_ok(), "{strict:?}");
        for e in &t.events {
            match e.kind {
                EventKind::Degrade { permille } => {
                    assert!((400..=1000).contains(&permille))
                }
                _ => panic!("degradation storm emitted a non-degrade event"),
            }
        }
    }

    #[test]
    fn malformed_traces_fail_to_parse_with_a_line_number() {
        for seed in 0..20 {
            let text = FaultInjector::new(seed).malformed_trace(25);
            let err = EventTrace::parse("fuzz", &text).expect_err("guaranteed poison line");
            assert!(
                err.line >= 1 && err.line <= 25,
                "line {} out of range",
                err.line
            );
        }
    }
}
