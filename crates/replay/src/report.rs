//! Replaying traces and aggregating the outcome.
//!
//! [`replay_trace`] drives a [`ReplayEngine`] through one
//! [`EventTrace`], realizing the routing after every event and checking
//! it the same way the offline validator does (utilization range, arc
//! capacities). [`replay_batch`] replays many traces concurrently —
//! one engine (and one cache) per trace, traces distributed over scoped
//! threads exactly like the robust engine's separation workers — and
//! merges the per-trace reports. Results are deterministic regardless of
//! thread count: every trace is independent and reports merge in trace
//! order.

use crate::engine::{CacheStats, DegradeStats, ReplayEngine};
use crate::trace::EventTrace;
use pcf_core::{DegradeMode, Instance, LadderStage, ViolationKind};
// audit:allow(no-wallclock-in-solver, the latency histogram is measurement output and never feeds routing decisions)
use std::time::Instant;

/// Options for [`replay_trace`] / [`replay_batch`].
#[derive(Debug, Clone)]
pub struct ReplayOptions {
    /// Relative feasibility tolerance (same meaning as `realize_routing`).
    pub tol: f64,
    /// Retained factorizations per engine; `0` disables the cache (cold
    /// baseline).
    pub cache_capacity: usize,
    /// Worker threads for [`replay_batch`]. `0` means "use
    /// [`std::thread::available_parallelism`]"; `1` replays inline.
    pub threads: usize,
    /// How far down the degradation ladder beyond-budget events may fall
    /// (default [`DegradeMode::Off`]: they stay realize violations).
    pub degrade: DegradeMode,
    /// Stop each trace at its first violation (in a batch, every trace
    /// stops independently — merged reports stay thread-count invariant).
    pub fail_fast: bool,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            tol: 1e-6,
            cache_capacity: 1024,
            threads: 0,
            degrade: DegradeMode::Off,
            fail_fast: false,
        }
    }
}

/// How one replayed event was served — the per-event view of the
/// degradation ladder ([`LadderStage`] plus the "nothing served" case).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventStage {
    /// Normal congestion-free realization.
    Normal,
    /// Proportional rescale (ladder stage 2).
    Rescaled,
    /// Max-min fair shedding LP (ladder stage 3).
    Shed,
    /// Realization failed and no fallback applied: the event served
    /// nothing (only possible with [`DegradeMode::Off`] or an apply
    /// error).
    Failed,
}

impl EventStage {
    /// Stable short name (reports, JSON).
    pub fn name(self) -> &'static str {
        match self {
            EventStage::Normal => "normal",
            EventStage::Rescaled => "rescaled",
            EventStage::Shed => "shed",
            EventStage::Failed => "failed",
        }
    }

    /// Stable numeric code folded into deterministic digests.
    pub fn code(self) -> u8 {
        match self {
            EventStage::Normal => 0,
            EventStage::Rescaled => 1,
            EventStage::Shed => 2,
            EventStage::Failed => 3,
        }
    }
}

impl From<LadderStage> for EventStage {
    fn from(s: LadderStage) -> Self {
        match s {
            LadderStage::Normal => EventStage::Normal,
            LadderStage::Rescaled => EventStage::Rescaled,
            LadderStage::Shed => EventStage::Shed,
        }
    }
}

/// One failed event during replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayViolation {
    /// Index of the trace within the batch (0 for single-trace replays).
    pub trace: usize,
    /// Index of the offending event within its trace.
    pub event: usize,
    /// What went wrong (shared with the offline validator).
    pub kind: ViolationKind,
}

/// Realization-latency distribution over the replayed events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    samples_ns: Vec<u64>,
}

impl LatencyHistogram {
    /// Records one realization latency.
    pub fn record(&mut self, ns: u64) {
        self.samples_ns.push(ns);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples_ns.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_ns.is_empty()
    }

    /// The q-th percentile (nearest-rank) in nanoseconds; 0 when empty.
    /// `q` is clamped to `[0, 100]`.
    pub fn percentile_ns(&self, q: f64) -> u64 {
        if self.samples_ns.is_empty() {
            return 0;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_unstable();
        let q = q.clamp(0.0, 100.0) / 100.0;
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
        sorted[rank.min(sorted.len() - 1)]
    }

    /// Median latency in nanoseconds.
    pub fn p50_ns(&self) -> u64 {
        self.percentile_ns(50.0)
    }

    /// 99th-percentile latency in nanoseconds.
    pub fn p99_ns(&self) -> u64 {
        self.percentile_ns(99.0)
    }

    /// Mean latency in nanoseconds; 0 when empty.
    pub fn mean_ns(&self) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        self.samples_ns.iter().map(|&n| n as f64).sum::<f64>() / self.samples_ns.len() as f64
    }

    /// Merges another histogram's samples into this one.
    pub fn absorb(&mut self, other: &LatencyHistogram) {
        self.samples_ns.extend_from_slice(&other.samples_ns);
    }
}

/// Outcome of replaying one trace (or, merged, a whole batch).
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// Events replayed.
    pub events: usize,
    /// Per-event maximum arc utilization, in event order (batches
    /// concatenate in trace order).
    pub event_utilization: Vec<f64>,
    /// Highest arc utilization over the whole replay.
    pub max_utilization: f64,
    /// Events whose realization failed or violated a capacity.
    pub violations: Vec<ReplayViolation>,
    /// Realization latencies.
    pub latency: LatencyHistogram,
    /// Factorization-cache counters (batches sum per-engine counters).
    pub cache: CacheStats,
    /// Which ladder stage served each event, in event order (parallel to
    /// `event_utilization`).
    pub event_stage: Vec<EventStage>,
    /// Demand shed at each event (0 for normal events; the whole served
    /// demand for failed ones).
    pub event_shed: Vec<f64>,
    /// Sum of `event_shed`.
    pub total_shed: f64,
    /// Worst residual arc overload over all events:
    /// `max(0, load / capacity − 1)` against the capacities in effect.
    pub worst_overload: f64,
    /// Ladder-stage counters (batches sum per-engine counters).
    pub degrade: DegradeStats,
}

impl ReplayReport {
    /// True when every event realized a feasible, congestion-free routing.
    pub fn congestion_free(&self) -> bool {
        self.violations.is_empty()
    }

    /// Merges per-trace reports (in the given order) into one.
    pub fn merge(reports: &[ReplayReport]) -> ReplayReport {
        let mut out = ReplayReport {
            events: 0,
            event_utilization: Vec::new(),
            max_utilization: 0.0,
            violations: Vec::new(),
            latency: LatencyHistogram::default(),
            cache: CacheStats::default(),
            event_stage: Vec::new(),
            event_shed: Vec::new(),
            total_shed: 0.0,
            worst_overload: 0.0,
            degrade: DegradeStats::default(),
        };
        for r in reports {
            out.events += r.events;
            out.event_utilization
                .extend_from_slice(&r.event_utilization);
            out.max_utilization = out.max_utilization.max(r.max_utilization);
            out.violations.extend_from_slice(&r.violations);
            out.latency.absorb(&r.latency);
            out.cache.absorb(&r.cache);
            out.event_stage.extend_from_slice(&r.event_stage);
            out.event_shed.extend_from_slice(&r.event_shed);
            out.total_shed += r.total_shed;
            out.worst_overload = out.worst_overload.max(r.worst_overload);
            out.degrade.absorb(&r.degrade);
        }
        out
    }

    /// Renders the replay outcome as JSON containing *only* fields that
    /// are a pure function of the inputs: event counts, utilizations, the
    /// violation list, cache counters, and an FNV-1a digest over the
    /// per-event utilization bit patterns. Latency statistics are
    /// deliberately excluded — they vary run to run — so the output is
    /// byte-identical across repeated runs and across thread counts
    /// (asserted by `deterministic_json_is_byte_identical`).
    pub fn deterministic_json(&self) -> String {
        // FNV-1a over the exact f64 bit patterns: any nondeterminism in
        // the realization path shows up as a digest mismatch even when
        // the rounded summary fields happen to agree.
        let fnv = |bytes: &mut dyn Iterator<Item = u8>| -> u64 {
            let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in bytes {
                digest ^= u64::from(byte);
                digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
            }
            digest
        };
        let digest = fnv(&mut self
            .event_utilization
            .iter()
            .flat_map(|u| u.to_bits().to_le_bytes()));
        // The per-event ladder stages and shed amounts get their own
        // digest so degraded replays are held to the same byte-identity
        // bar as utilizations.
        let degrade_digest = fnv(&mut self.event_stage.iter().map(|s| s.code()).chain(
            self.event_shed
                .iter()
                .flat_map(|s| s.to_bits().to_le_bytes()),
        ));
        let mut violations = String::new();
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                violations.push_str(", ");
            }
            violations.push_str(&format!(
                "{{ \"trace\": {}, \"event\": {} }}",
                v.trace, v.event
            ));
        }
        format!(
            "{{\n  \"events\": {},\n  \"max_utilization\": \"{:x}\",\n  \
             \"utilization_digest\": \"{:016x}\",\n  \"violations\": [{}],\n  \
             \"cache\": {{ \"hits\": {}, \"misses\": {}, \"evictions\": {}, \"errors\": {} }},\n  \
             \"degrade\": {{ \"normal\": {}, \"rescaled\": {}, \"shed\": {}, \"failed\": {} }},\n  \
             \"total_shed\": \"{:x}\",\n  \"worst_overload\": \"{:x}\",\n  \
             \"degrade_digest\": \"{:016x}\"\n}}\n",
            self.events,
            self.max_utilization.to_bits(),
            digest,
            violations,
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            self.cache.errors,
            self.degrade.normal,
            self.degrade.rescaled,
            self.degrade.shed,
            self.degrade.failed,
            self.total_shed.to_bits(),
            self.worst_overload.to_bits(),
            degrade_digest,
        )
    }

    /// Renders the report as a small JSON object (counts and summary
    /// statistics, not the raw per-event data).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"events\": {},\n  \"max_utilization\": {:.6},\n  \"violations\": {},\n  \
             \"latency_ns\": {{ \"p50\": {}, \"p99\": {}, \"mean\": {:.1} }},\n  \
             \"cache\": {{ \"hits\": {}, \"misses\": {}, \"evictions\": {}, \"errors\": {}, \"hit_rate\": {:.4} }},\n  \
             \"degrade\": {{ \"normal\": {}, \"rescaled\": {}, \"shed\": {}, \"failed\": {} }},\n  \
             \"total_shed\": {:.6},\n  \"worst_overload\": {:.6}\n}}\n",
            self.events,
            self.max_utilization,
            self.violations.len(),
            self.latency.p50_ns(),
            self.latency.p99_ns(),
            self.latency.mean_ns(),
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            self.cache.errors,
            self.cache.hit_rate(),
            self.degrade.normal,
            self.degrade.rescaled,
            self.degrade.shed,
            self.degrade.failed,
            self.total_shed,
            self.worst_overload,
        )
    }
}

/// Replays one trace on a fresh engine and reports the outcome.
///
/// `served[p] = z_p * d_p`, as everywhere in the realization API.
pub fn replay_trace(
    inst: &Instance,
    a: &[f64],
    b: &[f64],
    served: &[f64],
    trace: &EventTrace,
    opts: &ReplayOptions,
) -> ReplayReport {
    replay_indexed(inst, a, b, served, trace, opts, 0)
}

fn replay_indexed(
    inst: &Instance,
    a: &[f64],
    b: &[f64],
    served: &[f64],
    trace: &EventTrace,
    opts: &ReplayOptions,
    trace_idx: usize,
) -> ReplayReport {
    let topo = inst.topo();
    let mut engine = ReplayEngine::new(inst, a, b, served, opts.tol, opts.cache_capacity);
    engine.set_degrade(opts.degrade);
    let total_served: f64 = served.iter().sum();
    let mut event_utilization = Vec::with_capacity(trace.len());
    let mut event_stage = Vec::with_capacity(trace.len());
    let mut event_shed = Vec::with_capacity(trace.len());
    let mut max_utilization = 0.0f64;
    let mut total_shed = 0.0f64;
    let mut worst_overload = 0.0f64;
    let mut violations = Vec::new();
    let mut latency = LatencyHistogram::default();
    for (i, ev) in trace.events.iter().enumerate() {
        if let Err(e) = engine.apply(ev) {
            violations.push(ReplayViolation {
                trace: trace_idx,
                event: i,
                kind: ViolationKind::Realize(e),
            });
            event_utilization.push(0.0);
            event_stage.push(EventStage::Failed);
            event_shed.push(total_served);
            total_shed += total_served;
            if opts.fail_fast {
                break;
            }
            continue;
        }
        // audit:allow(no-wallclock-in-solver, timing wraps the realization call; the result is unaffected)
        let t0 = Instant::now();
        let realized = engine.realize_degraded();
        latency.record(t0.elapsed().as_nanos() as u64);
        match realized {
            Err(e) => {
                violations.push(ReplayViolation {
                    trace: trace_idx,
                    event: i,
                    kind: ViolationKind::Realize(e),
                });
                event_utilization.push(0.0);
                event_stage.push(EventStage::Failed);
                event_shed.push(total_served);
                total_shed += total_served;
                if opts.fail_fast {
                    break;
                }
            }
            Ok(degraded) => {
                let mut peak = 0.0f64;
                let mut overloaded = false;
                for arc in topo.arcs() {
                    let load = degraded.routing.arc_loads[arc.index()];
                    // Overloads are judged against the capacities in
                    // effect (wobble events rescale them), not nominal.
                    let cap = engine.capacity(arc.link());
                    if load > cap * (1.0 + opts.tol) + opts.tol {
                        overloaded = true;
                        violations.push(ReplayViolation {
                            trace: trace_idx,
                            event: i,
                            kind: ViolationKind::Overload {
                                arc: arc.index(),
                                load,
                                capacity: cap,
                            },
                        });
                    }
                    peak = peak.max(load / cap);
                }
                event_utilization.push(peak);
                max_utilization = max_utilization.max(peak);
                event_stage.push(EventStage::from(degraded.ladder_stage));
                event_shed.push(degraded.shed_demand);
                total_shed += degraded.shed_demand;
                worst_overload = worst_overload.max(degraded.overload_bound);
                if overloaded && opts.fail_fast {
                    break;
                }
            }
        }
    }
    ReplayReport {
        events: event_utilization.len(),
        event_utilization,
        max_utilization,
        violations,
        latency,
        cache: engine.cache_stats(),
        event_stage,
        event_shed,
        total_shed,
        worst_overload,
        degrade: engine.degrade_stats(),
    }
}

/// Replays every trace concurrently (one engine per trace, traces chunked
/// over scoped threads) and merges the reports in trace order.
pub fn replay_batch(
    inst: &Instance,
    a: &[f64],
    b: &[f64],
    served: &[f64],
    traces: &[EventTrace],
    opts: &ReplayOptions,
) -> ReplayReport {
    let threads = if opts.threads > 0 {
        opts.threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    let nt = threads.max(1).min(traces.len().max(1));
    if nt <= 1 {
        let reports: Vec<ReplayReport> = traces
            .iter()
            .enumerate()
            .map(|(i, t)| replay_indexed(inst, a, b, served, t, opts, i))
            .collect();
        return ReplayReport::merge(&reports);
    }
    let mut out: Vec<Option<ReplayReport>> = Vec::new();
    out.resize_with(traces.len(), || None);
    let chunk = traces.len().div_ceil(nt);
    std::thread::scope(|s| {
        for (ci, (ts, slots)) in traces.chunks(chunk).zip(out.chunks_mut(chunk)).enumerate() {
            s.spawn(move || {
                for (j, (slot, t)) in slots.iter_mut().zip(ts).enumerate() {
                    *slot = Some(replay_indexed(inst, a, b, served, t, opts, ci * chunk + j));
                }
            });
        }
    });
    let reports: Vec<ReplayReport> = out
        .into_iter()
        // audit:allow(no-panic-paths, chunks_mut covers every slot and the scope joins before reads)
        .map(|r| r.expect("every trace replayed"))
        .collect();
    ReplayReport::merge(&reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcf_core::{pcf_ls_instance, solve_pcf_ls, FailureModel, RobustOptions};
    use pcf_topology::zoo;
    use pcf_traffic::gravity;

    fn sprint_plan(f: usize) -> (Instance, Vec<f64>, Vec<f64>, Vec<f64>) {
        let topo = zoo::build("Sprint");
        let tm = gravity(&topo, 11);
        let inst = pcf_ls_instance(&topo, &tm, 3);
        let sol = solve_pcf_ls(&inst, &FailureModel::links(f), &RobustOptions::default());
        let served: Vec<f64> = inst
            .pair_ids()
            .map(|p| sol.z[p.0] * inst.demand(p))
            .collect();
        (inst, sol.a, sol.b, served)
    }

    #[test]
    fn solved_plan_replays_violation_free() {
        let (inst, a, b, served) = sprint_plan(1);
        let trace = EventTrace::flaps(inst.topo(), 300, 1, 21);
        let report = replay_trace(&inst, &a, &b, &served, &trace, &ReplayOptions::default());
        assert_eq!(report.events, 300);
        assert_eq!(report.event_utilization.len(), 300);
        assert!(
            report.congestion_free(),
            "violations: {:?}",
            &report.violations[..report.violations.len().min(3)]
        );
        assert!(report.max_utilization <= 1.0 + 1e-6);
        assert!(report.cache.hit_rate() > 0.0);
        assert_eq!(report.latency.len(), 300);
    }

    #[test]
    fn overdriven_plan_reports_violations() {
        let (inst, a, b, mut served) = sprint_plan(1);
        // Demand far beyond what the plan reserved.
        for s in &mut served {
            *s *= 50.0;
        }
        let trace = EventTrace::flaps(inst.topo(), 50, 1, 21);
        let report = replay_trace(&inst, &a, &b, &served, &trace, &ReplayOptions::default());
        assert!(!report.congestion_free());
    }

    #[test]
    fn batch_is_deterministic_across_thread_counts() {
        let (inst, a, b, served) = sprint_plan(1);
        let traces: Vec<EventTrace> = (0..6)
            .map(|s| EventTrace::flaps(inst.topo(), 60, 1, 100 + s))
            .collect();
        let run = |threads: usize| {
            let opts = ReplayOptions {
                threads,
                ..ReplayOptions::default()
            };
            replay_batch(&inst, &a, &b, &served, &traces, &opts)
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.events, 6 * 60);
        assert_eq!(serial.events, parallel.events);
        assert_eq!(serial.event_utilization, parallel.event_utilization);
        assert_eq!(serial.violations, parallel.violations);
        assert_eq!(serial.cache, parallel.cache);
    }

    #[test]
    fn cold_and_cached_replays_agree_on_outcomes() {
        let (inst, a, b, served) = sprint_plan(1);
        let trace = EventTrace::flaps(inst.topo(), 120, 1, 77);
        let cached = replay_trace(&inst, &a, &b, &served, &trace, &ReplayOptions::default());
        let cold_opts = ReplayOptions {
            cache_capacity: 0,
            ..ReplayOptions::default()
        };
        let cold = replay_trace(&inst, &a, &b, &served, &trace, &cold_opts);
        assert_eq!(cached.event_utilization, cold.event_utilization);
        assert_eq!(cached.violations, cold.violations);
        assert_eq!(cold.cache.hits, 0);
        assert_eq!(cold.cache.misses, 120);
    }

    #[test]
    fn histogram_percentiles_are_ordered() {
        let mut h = LatencyHistogram::default();
        for n in [5u64, 1, 9, 3, 7] {
            h.record(n);
        }
        assert_eq!(h.p50_ns(), 5);
        assert_eq!(h.p99_ns(), 9);
        assert_eq!(h.percentile_ns(0.0), 1);
        assert!((h.mean_ns() - 5.0).abs() < 1e-12);
        assert_eq!(LatencyHistogram::default().p99_ns(), 0);
    }

    #[test]
    fn deterministic_json_is_byte_identical() {
        let (inst, a, b, served) = sprint_plan(1);
        let traces: Vec<EventTrace> = (0..6)
            .map(|s| EventTrace::flaps(inst.topo(), 40, 1, 300 + s))
            .collect();
        let run = |threads: usize| {
            let opts = ReplayOptions {
                threads,
                ..ReplayOptions::default()
            };
            replay_batch(&inst, &a, &b, &served, &traces, &opts).deterministic_json()
        };
        // Two runs at the same thread count, and two different thread
        // counts, must all serialize to the same bytes.
        let first = run(4);
        let second = run(4);
        assert_eq!(first, second, "4-thread replays diverged");
        let serial = run(1);
        assert_eq!(first, serial, "1-thread vs 4-thread replays diverged");
        assert!(first.contains("\"utilization_digest\""));
        assert!(
            !first.contains("latency"),
            "wall-clock leaked into deterministic output"
        );
    }

    #[test]
    fn json_summary_contains_the_headline_numbers() {
        let (inst, a, b, served) = sprint_plan(1);
        let trace = EventTrace::flaps(inst.topo(), 20, 1, 5);
        let report = replay_trace(&inst, &a, &b, &served, &trace, &ReplayOptions::default());
        let json = report.to_json();
        assert!(json.contains("\"events\": 20"));
        assert!(json.contains("\"hit_rate\""));
        assert!(json.contains("\"p99\""));
        assert!(json.contains("\"degrade\""));
        assert!(json.contains("\"worst_overload\""));
    }

    /// A trace whose bursts fail far more links than the plan's budget,
    /// so realization errors (disconnections) are guaranteed.
    fn beyond_budget_trace(inst: &Instance, seed: u64) -> EventTrace {
        crate::inject::FaultInjector::new(seed).beyond_budget_bursts(inst.topo(), 4, 9)
    }

    #[test]
    fn beyond_budget_replay_degrades_instead_of_failing() {
        let (inst, a, b, served) = sprint_plan(1);
        let trace = beyond_budget_trace(&inst, 41);
        let off = replay_trace(&inst, &a, &b, &served, &trace, &ReplayOptions::default());
        // Without the ladder the deep bursts surface as realize failures
        // with blank (zero-utilization, full-shed) events.
        assert!(
            off.event_stage.contains(&EventStage::Failed),
            "burst trace never overwhelmed the plan; stages {:?}",
            off.degrade
        );
        assert!(!off.congestion_free());
        // With shedding the serving path is total: every event carries a
        // stage, none of them Failed, and stage 2/3 demonstrably engaged.
        let opts = ReplayOptions {
            degrade: DegradeMode::Shed,
            ..ReplayOptions::default()
        };
        let shed = replay_trace(&inst, &a, &b, &served, &trace, &opts);
        assert_eq!(shed.events, trace.len());
        assert_eq!(shed.event_stage.len(), trace.len());
        assert_eq!(shed.event_shed.len(), trace.len());
        assert!(!shed.event_stage.contains(&EventStage::Failed));
        assert!(shed.degrade.degraded() > 0, "{:?}", shed.degrade);
        assert_eq!(shed.degrade.failed, 0);
        assert_eq!(shed.degrade.total(), trace.len() as u64);
        assert!(shed.total_shed > 0.0);
        // Shed routings are capacity-feasible, so no replay violations.
        assert!(
            shed.congestion_free(),
            "violations: {:?}",
            &shed.violations[..shed.violations.len().min(3)]
        );
    }

    #[test]
    fn fail_fast_stops_at_the_first_violation() {
        let (inst, a, b, mut served) = sprint_plan(1);
        for s in &mut served {
            *s *= 50.0;
        }
        let trace = EventTrace::flaps(inst.topo(), 50, 1, 21);
        let opts = ReplayOptions {
            fail_fast: true,
            ..ReplayOptions::default()
        };
        let report = replay_trace(&inst, &a, &b, &served, &trace, &opts);
        assert!(!report.congestion_free());
        assert!(report.events < trace.len(), "fail-fast replayed everything");
        // The per-event vectors stay aligned with the truncated count.
        assert_eq!(report.event_utilization.len(), report.events);
        assert_eq!(report.event_stage.len(), report.events);
        assert_eq!(report.event_shed.len(), report.events);
    }

    #[test]
    fn degraded_batch_is_deterministic_across_thread_counts() {
        let (inst, a, b, served) = sprint_plan(1);
        let traces: Vec<EventTrace> = (0..6)
            .map(|s| beyond_budget_trace(&inst, 500 + s))
            .collect();
        let run = |threads: usize| {
            let opts = ReplayOptions {
                threads,
                degrade: DegradeMode::Shed,
                ..ReplayOptions::default()
            };
            replay_batch(&inst, &a, &b, &served, &traces, &opts)
        };
        let serial = run(1);
        let parallel = run(4);
        assert!(serial.degrade.degraded() > 0);
        assert_eq!(serial.event_stage, parallel.event_stage);
        assert_eq!(serial.event_shed, parallel.event_shed);
        assert_eq!(serial.degrade, parallel.degrade);
        assert_eq!(
            serial.deterministic_json(),
            parallel.deterministic_json(),
            "degraded replays diverged across thread counts"
        );
        assert!(serial.deterministic_json().contains("\"degrade_digest\""));
    }
}
