//! Presolve / postsolve for one-shot LP solves.
//!
//! [`presolve`] shrinks an [`LpProblem`] before the simplex runs, and the
//! returned [`Reduction`] maps the reduced solution — primal values *and*
//! row duals — back onto the original problem, so downstream consumers
//! (the cutting-plane separation in `pcf-core` prices its cuts against
//! duals) see the model they built. Reductions applied, in order:
//!
//! 1. **Fixed variables** (`lower == upper`): substituted into every row.
//! 2. **Implied slacks**: a zero-cost column whose single row entry makes
//!    it an implicit slack; the column is removed and the row's activity
//!    bounds are relaxed by `a · [l_j, u_j]`. At most one per row.
//!    Postsolve re-derives the variable from the final row activity,
//!    picking the endpoint consistent with the row dual so the KKT
//!    conditions keep holding in the original space.
//! 3. **Empty rows**: feasibility-checked and dropped (dual 0).
//! 4. **Redundant rows**: rows whose activity range (from variable
//!    bounds) cannot leave the row bounds are dropped (dual 0); rows
//!    whose activity range cannot *reach* the bounds prove infeasibility.
//! 5. **Duplicate rows**: rows with exactly proportional coefficient
//!    vectors (bit-level ratio comparison, so only true duplicates merge)
//!    are merged by intersecting their bounds onto the representative;
//!    the dropped copy carries dual 0.
//! 6. **Empty columns**: variables left in no surviving row are fixed at
//!    their cost-optimal bound; an infinite improving direction marks the
//!    whole problem unbounded once the remainder proves feasible.
//!
//! Row-bound tightening happens through substitution and duplicate
//! intersection; *variable*-bound tightening is deliberately not done —
//! a solution binding at an artificially tightened bound would carry a
//! nonzero reduced cost at a bound the original model does not have,
//! corrupting the restored duals.
//!
//! Warm-started solves ([`crate::incremental`]) never pass through here:
//! their retained basis must map 1:1 onto the model's rows and columns.

use crate::float::is_zero;
use crate::model::{LpProblem, Sense, Solution, Status, VarId};
use crate::simplex::SimplexOptions;
use std::collections::BTreeMap;

/// Outcome of [`presolve`].
pub(crate) enum Presolved {
    /// The presolve alone settled the problem (currently: infeasibility).
    Decided(Solution),
    /// A reduced problem remains; solve it and run
    /// [`Reduction::postsolve`].
    Reduced(Box<Reduction>),
}

/// A zero-cost singleton column absorbed into its row's bounds.
struct ImpliedSlack {
    col: usize,
    row: usize,
    a: f64,
}

/// The reduced problem plus everything needed to restore the original
/// variable and dual space.
pub(crate) struct Reduction {
    pub(crate) reduced: LpProblem,
    /// Original column -> reduced column (None if eliminated).
    col_map: Vec<Option<usize>>,
    /// Original row -> reduced row (None if dropped; such rows have dual 0).
    row_map: Vec<Option<usize>>,
    /// Variables with a decided value (fixed bounds or empty columns).
    fixed: Vec<(usize, f64)>,
    implied: Vec<ImpliedSlack>,
    /// An empty column had an infinite improving direction: if the rest is
    /// feasible, the problem is unbounded.
    unbounded_hint: bool,
}

/// A row being transformed: surviving coefficients (sorted by column) and
/// working activity bounds.
struct WorkRow {
    coeffs: Vec<(usize, f64)>,
    lo: f64,
    hi: f64,
    alive: bool,
}

/// Range of `sum a_j x_j` over the variable boxes, with infinities kept
/// apart so mixed `+inf - inf` sums cannot poison the result.
fn activity_range(coeffs: &[(usize, f64)], lo: &[f64], hi: &[f64]) -> (f64, f64) {
    let mut min_sum = 0.0f64;
    let mut max_sum = 0.0f64;
    let mut min_inf = false;
    let mut max_inf = false;
    for &(j, a) in coeffs {
        let c1 = a * lo[j];
        let c2 = a * hi[j];
        let (cmin, cmax) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        if cmin.is_infinite() && cmin < 0.0 {
            min_inf = true;
        } else {
            min_sum += cmin;
        }
        if cmax.is_infinite() && cmax > 0.0 {
            max_inf = true;
        } else {
            max_sum += cmax;
        }
    }
    (
        if min_inf { f64::NEG_INFINITY } else { min_sum },
        if max_inf { f64::INFINITY } else { max_sum },
    )
}

/// Solution reporting presolve-detected infeasibility.
fn infeasible_solution(n: usize, m: usize) -> Solution {
    Solution {
        status: Status::Infeasible,
        objective: f64::NAN,
        x: vec![0.0; n],
        duals: vec![0.0; m],
        iterations: 0,
    }
}

/// Runs the presolve reductions; see module docs.
pub(crate) fn presolve(problem: &LpProblem, opts: &SimplexOptions) -> Presolved {
    let m = problem.rows.len();
    let n = problem.num_vars();
    let tol = opts.tol.max(1e-9);
    let rtol = |b: f64| {
        if b.is_finite() {
            tol * (1.0 + b.abs())
        } else {
            tol
        }
    };

    // ---- 1. Fixed variables. ----
    let mut fixed_val: Vec<Option<f64>> = (0..n)
        .map(|j| (problem.upper[j] - problem.lower[j] <= 0.0).then(|| problem.lower[j]))
        .collect();

    // Working rows with fixed variables substituted into the bounds.
    let mut work: Vec<WorkRow> = problem
        .rows
        .iter()
        .map(|row| {
            let mut shift = 0.0;
            let mut coeffs = Vec::with_capacity(row.coeffs.len());
            for &(j, a) in &row.coeffs {
                match fixed_val[j] {
                    Some(v) => shift += a * v,
                    None => coeffs.push((j, a)),
                }
            }
            coeffs.sort_unstable_by_key(|&(j, _)| j);
            WorkRow {
                coeffs,
                lo: row.lower - shift,
                hi: row.upper - shift,
                alive: true,
            }
        })
        .collect();

    // ---- 2. Implied slacks (zero-cost singleton columns). ----
    let mut count = vec![0usize; n];
    let mut col_row = vec![0usize; n];
    for (i, w) in work.iter().enumerate() {
        for &(j, _) in &w.coeffs {
            count[j] += 1;
            col_row[j] = i;
        }
    }
    let mut implied: Vec<ImpliedSlack> = Vec::new();
    let mut implied_col = vec![false; n];
    let mut row_claimed = vec![false; m];
    for j in 0..n {
        if fixed_val[j].is_some() || count[j] != 1 || !is_zero(problem.obj[j]) {
            continue;
        }
        let i = col_row[j];
        if row_claimed[i] {
            continue; // one implied slack per row keeps postsolve exact
        }
        let Some(&(_, a)) = work[i].coeffs.iter().find(|&&(c, _)| c == j) else {
            continue;
        };
        row_claimed[i] = true;
        implied_col[j] = true;
        // Relax the row bounds by the column's contribution interval.
        let c1 = a * problem.lower[j];
        let c2 = a * problem.upper[j];
        let (cmin, cmax) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        let mut nlo = work[i].lo - cmax;
        let mut nhi = work[i].hi - cmin;
        if nlo.is_nan() {
            nlo = f64::NEG_INFINITY;
        }
        if nhi.is_nan() {
            nhi = f64::INFINITY;
        }
        work[i].lo = nlo;
        work[i].hi = nhi;
        work[i].coeffs.retain(|&(c, _)| c != j);
        implied.push(ImpliedSlack { col: j, row: i, a });
    }

    // ---- 3–5. Row pass: empty, infeasible, redundant, duplicate. ----
    let mut dup_keys: BTreeMap<Vec<(u32, u64)>, usize> = BTreeMap::new();
    for i in 0..m {
        let (lo, hi) = (work[i].lo, work[i].hi);
        if work[i].coeffs.is_empty() {
            if 0.0 < lo - rtol(lo) || 0.0 > hi + rtol(hi) {
                return Presolved::Decided(infeasible_solution(n, m));
            }
            work[i].alive = false;
            continue;
        }
        let (amin, amax) = activity_range(&work[i].coeffs, &problem.lower, &problem.upper);
        if amin > hi + rtol(hi) || amax < lo - rtol(lo) {
            return Presolved::Decided(infeasible_solution(n, m));
        }
        if amin >= lo - rtol(lo) && amax <= hi + rtol(hi) {
            work[i].alive = false; // can never bind
            continue;
        }
        // Duplicate detection: coefficients normalized by the first entry,
        // compared bit-for-bit, so only exactly proportional rows merge.
        let first = work[i].coeffs[0].1;
        let key: Vec<(u32, u64)> = work[i]
            .coeffs
            .iter()
            .map(|&(j, a)| (j as u32, (a / first).to_bits()))
            .collect();
        match dup_keys.get(&key) {
            Some(&rep) => {
                let mu = first / work[rep].coeffs[0].1;
                let (mut blo, mut bhi) = (lo / mu, hi / mu);
                if mu < 0.0 {
                    std::mem::swap(&mut blo, &mut bhi);
                }
                let nlo = work[rep].lo.max(blo);
                let nhi = work[rep].hi.min(bhi);
                if nlo > nhi + rtol(nhi) {
                    return Presolved::Decided(infeasible_solution(n, m));
                }
                work[rep].lo = nlo;
                work[rep].hi = nhi.max(nlo);
                work[i].alive = false;
            }
            None => {
                dup_keys.insert(key, i);
            }
        }
    }

    // ---- 6. Empty columns: fix at the cost-optimal bound. ----
    let mut live_count = vec![0usize; n];
    for w in work.iter().filter(|w| w.alive) {
        for &(j, _) in &w.coeffs {
            live_count[j] += 1;
        }
    }
    let mut unbounded_hint = false;
    let minimize = matches!(problem.sense, Sense::Minimize);
    for j in 0..n {
        if fixed_val[j].is_some() || implied_col[j] || live_count[j] > 0 {
            continue;
        }
        let c = problem.obj[j];
        let (vlo, vhi) = (problem.lower[j], problem.upper[j]);
        let want_lower = if minimize { c > 0.0 } else { c < 0.0 };
        let val = if is_zero(c) {
            if vlo.is_finite() {
                vlo
            } else if vhi.is_finite() {
                vhi
            } else {
                0.0
            }
        } else if want_lower {
            if vlo.is_finite() {
                vlo
            } else {
                unbounded_hint = true;
                0.0
            }
        } else if vhi.is_finite() {
            vhi
        } else {
            unbounded_hint = true;
            0.0
        };
        fixed_val[j] = Some(val);
    }

    // ---- Build the reduced problem. ----
    let mut col_map = vec![None; n];
    let mut reduced = LpProblem::new(problem.sense);
    for j in 0..n {
        if fixed_val[j].is_none() && !implied_col[j] {
            col_map[j] = Some(reduced.num_vars());
            reduced.add_var(problem.lower[j], problem.upper[j], problem.obj[j]);
        }
    }
    let mut row_map = vec![None; m];
    for (i, w) in work.iter().enumerate() {
        if !w.alive {
            continue;
        }
        let coeffs: Vec<(VarId, f64)> = w
            .coeffs
            .iter()
            .filter_map(|&(j, a)| col_map[j].map(|rj| (VarId(rj), a)))
            .collect();
        // Bounds may have crossed by a rounding hair during merges; the
        // infeasibility check above already admitted them, so close the gap.
        let lo = w.lo;
        let hi = if w.hi < lo { lo } else { w.hi };
        row_map[i] = Some(reduced.num_rows());
        reduced.add_row(coeffs, lo, hi);
    }

    let fixed: Vec<(usize, f64)> = fixed_val
        .iter()
        .enumerate()
        .filter_map(|(j, v)| v.map(|v| (j, v)))
        .collect();
    Presolved::Reduced(Box::new(Reduction {
        reduced,
        col_map,
        row_map,
        fixed,
        implied,
        unbounded_hint,
    }))
}

impl Reduction {
    /// Maps the reduced solution back onto the original problem: primal
    /// values for eliminated columns, duals (zero) for dropped rows, and
    /// the objective recomputed in the original space.
    pub(crate) fn postsolve(&self, problem: &LpProblem, red: Solution) -> Solution {
        let n = problem.num_vars();
        let m = problem.rows.len();
        let iterations = red.iterations;
        let tol = 1e-9;
        let status = match red.status {
            Status::Optimal if self.unbounded_hint => Status::Unbounded,
            s => s,
        };
        if status != Status::Optimal {
            return Solution {
                status,
                objective: f64::NAN,
                x: vec![0.0; n],
                duals: vec![0.0; m],
                iterations,
            };
        }
        let mut x = vec![0.0; n];
        for (j, xj) in x.iter_mut().enumerate() {
            if let Some(rj) = self.col_map[j] {
                *xj = red.x[rj];
            }
        }
        for &(j, v) in &self.fixed {
            x[j] = v;
        }
        let mut duals = vec![0.0; m];
        for (i, di) in duals.iter_mut().enumerate() {
            if let Some(ri) = self.row_map[i] {
                *di = red.duals[ri];
            }
        }
        // Implied slacks: re-derive each variable from its row's final
        // activity. The relaxed row bounds were enforced (or proven
        // redundant), so a feasible value always exists; the endpoint
        // follows the row dual to keep the restored point KKT-consistent.
        let sign = match problem.sense {
            Sense::Maximize => -1.0,
            Sense::Minimize => 1.0,
        };
        for s in self.implied.iter().rev() {
            let row = &problem.rows[s.row];
            let mut act_rest = 0.0;
            for &(j, a) in &row.coeffs {
                if j != s.col {
                    act_rest += a * x[j];
                }
            }
            // a * x_col must land in [row.lower - act_rest, row.upper - act_rest].
            let (mut tlo, mut thi) = ((row.lower - act_rest) / s.a, (row.upper - act_rest) / s.a);
            if s.a < 0.0 {
                std::mem::swap(&mut tlo, &mut thi);
            }
            let xlo = tlo.max(problem.lower[s.col]);
            let xhi = thi.min(problem.upper[s.col]);
            // Internal (minimization-sense) reduced cost of the column:
            // d = sign*c - sign*y*a = -sign*a*y since the cost is zero.
            let d = -sign * s.a * duals[s.row];
            let mut v = if d > tol {
                xlo
            } else if d < -tol {
                xhi
            } else if xlo.is_finite() {
                xlo
            } else if xhi.is_finite() {
                xhi
            } else {
                0.0
            };
            if !v.is_finite() {
                v = if xlo.is_finite() {
                    xlo
                } else if xhi.is_finite() {
                    xhi
                } else {
                    0.0
                };
            }
            if v < problem.lower[s.col] {
                v = problem.lower[s.col];
            }
            if v > problem.upper[s.col] {
                v = problem.upper[s.col];
            }
            x[s.col] = v;
        }
        let objective: f64 = x
            .iter()
            .zip(problem.obj.iter())
            .map(|(xi, ci)| xi * ci)
            .sum();
        Solution {
            status: Status::Optimal,
            objective,
            x,
            duals,
            iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LpProblem, Sense, Status};

    fn assert_close(a: f64, b: f64) {
        assert!(
            (a - b).abs() <= 1e-6 * (1.0 + b.abs()),
            "expected {b}, got {a}"
        );
    }

    /// Solve via the public path (presolve on) and with presolve off; both
    /// must agree.
    fn solve_both_ways(build: impl Fn() -> LpProblem) -> (Solution, Solution) {
        let with = build().solve().unwrap();
        let mut lp = build();
        lp.set_options(SimplexOptions {
            presolve: false,
            ..SimplexOptions::default()
        });
        let without = lp.solve().unwrap();
        (with, without)
    }

    #[test]
    fn fixed_variables_are_substituted() {
        let build = || {
            let mut lp = LpProblem::new(Sense::Maximize);
            let x = lp.add_var(2.0, 2.0, 3.0);
            let y = lp.add_nonneg(1.0);
            lp.add_le(vec![(x, 1.0), (y, 1.0)], 5.0);
            lp
        };
        let (a, b) = solve_both_ways(build);
        assert_eq!(a.status, Status::Optimal);
        assert_close(a.objective, b.objective); // 6 + 3 = 9
        assert_close(a.x[0], 2.0);
        assert_close(a.x[1], 3.0);
    }

    #[test]
    fn redundant_row_is_dropped_with_zero_dual() {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_var(0.0, 1.0, 1.0);
        lp.add_le(vec![(x, 1.0)], 100.0); // can never bind
        lp.add_le(vec![(x, 1.0)], 0.5);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 0.5);
        assert_close(s.duals[0], 0.0);
        assert_close(s.duals[1], 1.0);
    }

    #[test]
    fn duplicate_rows_merge_and_keep_duals_on_representative() {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_nonneg(1.0);
        let y = lp.add_nonneg(1.0);
        lp.add_le(vec![(x, 1.0), (y, 1.0)], 7.0);
        // Exactly -2x the first row: x + y >= 2 in disguise.
        lp.add_ge(vec![(x, -2.0), (y, -2.0)], -8.0); // x + y <= 4
        let s = lp.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.objective, 4.0);
        // The representative (row 0, tightened to 4) carries the dual.
        assert_close(s.duals[0], 1.0);
        assert_close(s.duals[1], 0.0);
    }

    #[test]
    fn infeasible_by_activity_bounds() {
        let mut lp = LpProblem::new(Sense::Minimize);
        let x = lp.add_var(0.0, 1.0, 1.0);
        let y = lp.add_var(0.0, 1.0, 1.0);
        lp.add_ge(vec![(x, 1.0), (y, 1.0)], 3.0);
        let s = lp.solve().unwrap();
        assert_eq!(s.status, Status::Infeasible);
    }

    #[test]
    fn implied_slack_restores_feasible_value_and_duals() {
        // z is an implicit slack of the row; its elimination must not
        // disturb x's dual pricing.
        let build = || {
            let mut lp = LpProblem::new(Sense::Minimize);
            let x = lp.add_var(0.0, 10.0, 2.0);
            let z = lp.add_var(0.0, 3.0, 0.0);
            lp.add_eq(vec![(x, 1.0), (z, -1.0)], 4.0); // x - z = 4 -> x in [4, 7]
            lp
        };
        let (a, b) = solve_both_ways(build);
        assert_eq!(a.status, Status::Optimal);
        assert_close(a.objective, 8.0); // x = 4, z = 0
        assert_close(a.objective, b.objective);
        // Original row must hold exactly.
        assert_close(a.x[0] - a.x[1], 4.0);
    }

    #[test]
    fn empty_column_fixed_at_cost_optimal_bound() {
        let build = || {
            let mut lp = LpProblem::new(Sense::Maximize);
            let _x = lp.add_var(0.0, 2.0, 5.0); // appears in no row
            let y = lp.add_var(0.0, 1.0, 1.0);
            lp.add_le(vec![(y, 1.0)], 1.0);
            lp
        };
        let (a, b) = solve_both_ways(build);
        assert_close(a.objective, 11.0);
        assert_close(a.objective, b.objective);
        assert_close(a.x[0], 2.0);
    }

    #[test]
    fn empty_column_with_open_direction_is_unbounded() {
        let mut lp = LpProblem::new(Sense::Maximize);
        let x = lp.add_nonneg(1.0); // no rows: unbounded above
        let y = lp.add_var(0.0, 1.0, 0.0);
        lp.add_le(vec![(y, 1.0)], 1.0);
        let _ = x;
        let s = lp.solve().unwrap();
        assert_eq!(s.status, Status::Unbounded);
    }

    #[test]
    fn vacuous_rows_do_not_confuse_presolve() {
        let build = || {
            let mut lp = LpProblem::new(Sense::Minimize);
            let x = lp.add_var(1.0, 5.0, 1.0);
            lp.add_row(vec![(x, 1.0)], f64::NEG_INFINITY, f64::INFINITY);
            lp.add_ge(vec![(x, 1.0)], 2.0);
            lp
        };
        let (a, b) = solve_both_ways(build);
        assert_eq!(a.status, Status::Optimal);
        assert_close(a.objective, 2.0);
        assert_close(a.objective, b.objective);
    }
}
