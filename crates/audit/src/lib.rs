//! `pcf-audit` — in-tree static analysis for the PCF workspace.
//!
//! PCF's pitch is *provable* resilience: Propositions 5/6 guarantee that
//! realizing a solved plan under any targeted failure is one linear solve
//! that cannot fail. That guarantee is only as strong as the code on the
//! failure-time path — a stray `unwrap()`, a `HashMap` iteration order
//! leaking into a report, or a NaN panicking a `partial_cmp` sort would
//! all break it at exactly the wrong moment. The workspace is hermetic
//! (no third-party crates), so the analyzer lives in-tree:
//!
//! * [`scanner`] — a comment/string/raw-string-aware token scanner (no
//!   `syn`), with `#[cfg(test)]` region tracking and
//!   `// audit:allow(<lint>, <reason>)` / `// audit:hot` parsing;
//! * [`parse`] — a lightweight item-level parser over the masked lines:
//!   fn/impl/trait items, call expressions, method receivers, typed
//!   locals and struct fields;
//! * [`callgraph`] — the whole-workspace call graph with a
//!   conservative receiver-type resolver (a false edge costs one
//!   reasoned `audit:allow`; a missing edge would hide a panic);
//! * [`lints`] — the lint catalog: per-file token lints plus the
//!   interprocedural `panic-reachability`, `atomics-discipline`,
//!   `hot-path-alloc`, and `lock-discipline` passes;
//! * [`baseline`] — the checked-in `audit.baseline` ratchet: existing
//!   debt is tolerated, new violations fail, fixes shrink the file.
//!
//! Run it as `cargo run -p pcf-audit` (CI does), as `pcf audit` from the
//! CLI, `pcf-audit --json` for the machine-readable report, or
//! `pcf-audit --write-baseline` after paying debt down.

pub mod baseline;
pub mod callgraph;
pub mod lints;
pub mod parse;
pub mod scanner;

pub use baseline::{compare, parse_baseline, render_baseline, Baseline, Comparison};
pub use callgraph::{AnalyzedFile, CallGraph};
pub use lints::{check_file, check_workspace, Finding, Lint, ALL_LINTS, HOT_ENTRIES};
pub use parse::{parse_file, ParsedFile};
pub use scanner::ScannedFile;

use std::path::{Path, PathBuf};

/// One workspace source file: its root-relative path and contents.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (the scope key).
    pub rel: String,
    /// File contents.
    pub text: String,
}

/// Collects every `.rs` file under `<root>/crates`, sorted by path so
/// findings and baselines are stable across platforms.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    walk(&root.join("crates"), &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for p in paths {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        files.push(SourceFile {
            rel,
            text: std::fs::read_to_string(&p)?,
        });
    }
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().map(|n| n.to_string_lossy().to_string());
        if path.is_dir() {
            if matches!(name.as_deref(), Some("target") | Some(".git")) {
                continue;
            }
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans and parses a set of loaded files into analyzer inputs.
pub fn analyze_files(files: &[SourceFile]) -> Vec<AnalyzedFile> {
    files
        .iter()
        .map(|f| {
            let scanned = ScannedFile::scan(&f.text);
            let parsed = parse_file(&scanned);
            AnalyzedFile {
                rel: f.rel.clone(),
                scanned,
                parsed,
            }
        })
        .collect()
}

/// Audits a set of already-loaded files (injectable for tests): the
/// per-file token lints plus the interprocedural workspace passes, with
/// findings sorted by (path, line, lint, message) so reports and
/// baselines are stable across directory-walk order.
pub fn audit_files(files: &[SourceFile]) -> Vec<Finding> {
    let analyzed = analyze_files(files);
    let mut findings = Vec::new();
    for f in &analyzed {
        findings.extend(check_file(&f.rel, &f.scanned));
    }
    findings.extend(check_workspace(&analyzed, HOT_ENTRIES));
    sort_findings(&mut findings);
    findings
}

/// The canonical report order: (path, line, lint name, message).
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.lint.name(), a.what.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.lint.name(),
            b.what.as_str(),
        ))
    });
}

/// Renders findings as a JSON report (hermetic hand-rolled writer, same
/// style as the replay/serve reports). Chains are included verbatim so
/// CI artifacts carry the witness paths.
pub fn findings_json(findings: &[Finding]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let chain = f
            .chain
            .iter()
            .map(|c| format!("\"{}\"", esc(c)))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{\"lint\": \"{}\", \"file\": \"{}\", \"line\": {}, \"what\": \"{}\", \"chain\": [{}]}}{}\n",
            f.lint.name(),
            esc(&f.file),
            f.line,
            esc(&f.what),
            chain,
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"total\": {}\n", findings.len()));
    out.push_str("}\n");
    out
}

/// Locates the workspace root from `start`: the nearest ancestor holding
/// both `Cargo.toml` and a `crates/` directory.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir.to_path_buf());
        }
        cur = dir.parent();
    }
    None
}

/// What [`run`] should do with the baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineMode {
    /// Compare findings against `audit.baseline` (the CI gate).
    Check,
    /// Rewrite `audit.baseline` from the current findings (ratchet).
    Write,
}

/// Runs the full audit over the workspace at `root`. Returns the process
/// exit code (0 = clean or ratchetable, 1 = regressions, 2 = setup
/// error) and prints a human-readable report to stdout/stderr.
pub fn run(root: &Path, mode: BaselineMode) -> i32 {
    run_with(root, mode, false)
}

/// [`run`] with output control: `json = true` writes the machine-readable
/// findings report to stdout (the human summary moves to stderr), so
/// `pcf-audit --json > audit_report.json` produces a clean artifact.
pub fn run_with(root: &Path, mode: BaselineMode, json: bool) -> i32 {
    let files = match scan_workspace(root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("pcf-audit: cannot scan {}: {e}", root.display());
            return 2;
        }
    };
    let findings = audit_files(&files);
    if json {
        print!("{}", findings_json(&findings));
    }
    let baseline_path = root.join("audit.baseline");
    if mode == BaselineMode::Write {
        let text = render_baseline(&findings);
        if let Err(e) = std::fs::write(&baseline_path, &text) {
            eprintln!("pcf-audit: cannot write {}: {e}", baseline_path.display());
            return 2;
        }
        println!(
            "pcf-audit: wrote {} ({} tolerated findings across {} files)",
            baseline_path.display(),
            findings.iter().filter(|f| f.lint != Lint::BadAllow).count(),
            files.len()
        );
        // Bad allows still fail a --write-baseline run: they cannot be
        // recorded as debt.
        let bad: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.lint == Lint::BadAllow)
            .collect();
        if !bad.is_empty() {
            for f in bad {
                eprintln!("  {f}");
            }
            return 1;
        }
        return 0;
    }
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match parse_baseline(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("pcf-audit: {e}");
                return 2;
            }
        },
        Err(_) => Baseline::new(),
    };
    let cmp = compare(&findings, &baseline);
    report(&cmp, files.len(), json);
    if cmp.pass() {
        0
    } else {
        1
    }
}

/// Prints the comparison outcome. With `to_stderr` the summary lines
/// move off stdout so a `--json` redirect stays a pure JSON document.
fn report(cmp: &Comparison, files: usize, to_stderr: bool) {
    macro_rules! say {
        ($($arg:tt)*) => {
            if to_stderr {
                eprintln!($($arg)*);
            } else {
                println!($($arg)*);
            }
        };
    }
    say!(
        "pcf-audit: {} findings over {} files ({} tolerated by audit.baseline)",
        cmp.total_findings,
        files,
        cmp.total_tolerated
    );
    for (lint, file, found, tolerated) in &cmp.improvements {
        say!("  improved: {lint} in {file}: {found} < baseline {tolerated} (run `pcf-audit --write-baseline` to ratchet)");
    }
    if cmp.pass() {
        say!("pcf-audit: PASS (no findings beyond the baseline)");
        return;
    }
    for r in &cmp.regressions {
        eprintln!(
            "pcf-audit: FAIL [{}] {}: {} findings > {} tolerated:",
            r.lint, r.file, r.found, r.tolerated
        );
        for f in &r.findings {
            eprintln!("    {f}");
        }
    }
    eprintln!(
        "pcf-audit: fix the new findings, or annotate a justified site with \
         `// audit:allow(<lint>, <reason>)`"
    );
}
