//! Capacity augmentation: network design with congestion-free guarantees.
//!
//! The paper (§6) observes that "PCF's formulations can be naturally used
//! to augment capacities so as to meet a desired performance metric by
//! simply making capacities variable." This module does that: given a
//! target demand scale `z*`, it finds the cheapest per-link capacity
//! additions such that the PCF allocation guarantees `z*` under the failure
//! model.
//!
//! The model is the same robust LP as [`crate::robust`] with
//! * `z` fixed to the target,
//! * a non-negative `extra_e` variable relaxing every arc capacity, and
//! * objective `min Σ_e w_e · extra_e` (per-link weights, default 1).
//!
//! Solved by the same cutting-plane loop; monotonicity makes it behave just
//! like the allocation problem.

use crate::adversary::{worst_case_link, WorstCase};
use crate::failure::FailureModel;
use crate::instance::{Instance, PairId};
use crate::robust::{RobustError, RobustOptions};
use pcf_lp::{nonzero, LpProblem, Sense, Status, VarId};
use pcf_topology::LinkId;

/// Result of [`augment_capacity`].
#[derive(Debug, Clone)]
pub struct Augmentation {
    /// Capacity added per link (applies to both directions).
    pub extra: Vec<f64>,
    /// Weighted total of the additions (the objective).
    pub total_cost: f64,
    /// Tunnel reservations realizing the target on the augmented network.
    pub a: Vec<f64>,
    /// LS reservations.
    pub b: Vec<f64>,
    /// Cutting-plane rounds used.
    pub rounds: usize,
}

/// Finds the cheapest capacity augmentation such that the instance can
/// guarantee demand scale `z_target` under `fm` (PCF link-based model).
///
/// `weight(l)` is the per-unit cost of adding capacity to link `l` (e.g.
/// fiber distance); both directions of the link are upgraded together.
///
/// Returns `Ok(None)` if the cutting-plane loop fails to converge within
/// `opts.max_rounds` (the problem itself is always feasible: enough added
/// capacity can satisfy any target), and `Err` if a master or separation
/// LP fails structurally.
pub fn augment_capacity(
    inst: &Instance,
    fm: &FailureModel,
    z_target: f64,
    weight: impl Fn(LinkId) -> f64,
    opts: &RobustOptions,
) -> Result<Option<Augmentation>, RobustError> {
    assert!(z_target >= 0.0 && z_target.is_finite());
    struct Cut {
        pair: PairId,
        wc: WorstCase,
    }
    // Seed with the no-failure cut per pair.
    let mut cuts: Vec<Cut> = inst
        .pair_ids()
        .map(|p| Cut {
            pair: p,
            wc: WorstCase {
                available: 0.0,
                y: vec![0.0; inst.tunnels_of(p).len()],
                h_l: inst
                    .lss_of(p)
                    .iter()
                    .map(|&q| match inst.ls(q).condition {
                        crate::failure::Condition::Always => 1.0,
                        _ => 0.0,
                    })
                    .collect(),
                h_q: inst
                    .segments_of(p)
                    .iter()
                    .map(|&q| match inst.ls(q).condition {
                        crate::failure::Condition::Always => 1.0,
                        _ => 0.0,
                    })
                    .collect(),
            },
        })
        .collect();

    let topo = inst.topo();
    for round in 1..=opts.max_rounds {
        // Master: min Σ w extra  s.t. capacity + cuts at fixed z_target.
        let mut lp = LpProblem::new(Sense::Minimize);
        lp.set_options(opts.lp.clone());
        let a_vars: Vec<VarId> = inst.tunnel_ids().map(|_| lp.add_nonneg(0.0)).collect();
        let b_vars: Vec<VarId> = inst.ls_ids().map(|_| lp.add_nonneg(0.0)).collect();
        let extra_vars: Vec<VarId> = topo
            .links()
            .map(|l| lp.add_var(0.0, f64::INFINITY, weight(l).max(0.0)))
            .collect();

        // Arc capacities with the extra relief.
        let mut arc_usage: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); topo.arc_count()];
        for l in inst.tunnel_ids() {
            let path = inst.tunnel(l);
            for (i, &link) in path.links.iter().enumerate() {
                let arc = topo.arc_from(link, path.nodes[i]);
                arc_usage[arc.index()].push((a_vars[l.0], 1.0));
            }
        }
        for arc in topo.arcs() {
            let usage = &arc_usage[arc.index()];
            if usage.is_empty() {
                continue;
            }
            let mut row = usage.clone();
            row.push((extra_vars[arc.link().index()], -1.0));
            lp.add_le(row, topo.capacity(arc.link()));
        }

        for cut in &cuts {
            let p = cut.pair;
            let mut row: Vec<(VarId, f64)> = Vec::new();
            for (i, &l) in inst.tunnels_of(p).iter().enumerate() {
                let coef = 1.0 - cut.wc.y[i];
                if nonzero(coef) {
                    row.push((a_vars[l.0], coef));
                }
            }
            for (i, &q) in inst.lss_of(p).iter().enumerate() {
                if nonzero(cut.wc.h_l[i]) {
                    row.push((b_vars[q.0], cut.wc.h_l[i]));
                }
            }
            for (i, &q) in inst.segments_of(p).iter().enumerate() {
                if nonzero(cut.wc.h_q[i]) {
                    row.push((b_vars[q.0], -cut.wc.h_q[i]));
                }
            }
            lp.add_ge(row, z_target * inst.demand(p));
        }

        let sol = lp.solve().map_err(RobustError::MasterLp)?;
        if sol.status != Status::Optimal {
            // Always feasible (enough extra capacity satisfies any target),
            // so a non-optimal finish is an engine failure worth reporting.
            return Err(RobustError::MasterNotOptimal {
                status: sol.status,
                round,
            });
        }
        let a: Vec<f64> = a_vars.iter().map(|&v| sol.value(v).max(0.0)).collect();
        let b: Vec<f64> = b_vars.iter().map(|&v| sol.value(v).max(0.0)).collect();
        let extra: Vec<f64> = extra_vars.iter().map(|&v| sol.value(v).max(0.0)).collect();

        // Separation.
        let scale_ref = 1.0 + inst.total_demand() * z_target.max(1.0);
        let mut violated = 0usize;
        for p in inst.pair_ids() {
            let wc = worst_case_link(inst, p, fm, &a, &b).map_err(RobustError::Adversary)?;
            if wc.available < z_target * inst.demand(p) - opts.tol * scale_ref {
                cuts.push(Cut { pair: p, wc });
                violated += 1;
            }
        }
        if violated == 0 {
            return Ok(Some(Augmentation {
                extra,
                total_cost: sol.objective,
                a,
                b,
                rounds: round,
            }));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use crate::robust::{solve_robust, AdversaryKind};
    use pcf_topology::{NodeId, Topology};

    fn diamond() -> Topology {
        let mut t = Topology::new("diamond");
        let s = t.add_node("s");
        let a = t.add_node("a");
        let b = t.add_node("b");
        let d = t.add_node("t");
        t.add_link(s, a, 1.0);
        t.add_link(a, d, 1.0);
        t.add_link(s, b, 1.0);
        t.add_link(b, d, 1.0);
        t
    }

    #[test]
    fn no_augmentation_needed_when_target_is_met() {
        let topo = diamond();
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .tunnels_per_pair(2)
            .build();
        let fm = FailureModel::links(1);
        // Diamond already guarantees 1.0.
        let aug = augment_capacity(&inst, &fm, 1.0, |_| 1.0, &RobustOptions::default())
            .unwrap()
            .unwrap();
        assert!(aug.total_cost < 1e-6, "cost {}", aug.total_cost);
    }

    #[test]
    fn augmentation_buys_the_target() {
        let topo = diamond();
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .tunnels_per_pair(2)
            .build();
        let fm = FailureModel::links(1);
        // Target 2.0 under single failures: each surviving path must carry
        // 2.0 alone -> each of the 4 links needs capacity 2 -> add 1 per
        // link -> total 4.
        let aug = augment_capacity(&inst, &fm, 2.0, |_| 1.0, &RobustOptions::default())
            .unwrap()
            .unwrap();
        assert!(
            (aug.total_cost - 4.0).abs() < 1e-4,
            "cost {}",
            aug.total_cost
        );
        // Verify on the augmented topology: build it and re-solve.
        let mut upgraded = Topology::new("upgraded");
        for n in topo.nodes() {
            upgraded.add_node(topo.node_name(n).to_string());
        }
        for l in topo.links() {
            let link = topo.link(l);
            upgraded.add_link(link.u, link.v, link.capacity + aug.extra[l.index()]);
        }
        let inst2 = InstanceBuilder::with_demands(&upgraded, vec![(NodeId(0), NodeId(3), 1.0)])
            .tunnels_per_pair(2)
            .build();
        let sol = solve_robust(
            &inst2,
            &fm,
            AdversaryKind::LinkBased,
            &RobustOptions::default(),
        );
        assert!(sol.objective >= 2.0 - 1e-5, "got {}", sol.objective);
    }

    #[test]
    fn weights_steer_the_upgrade() {
        let topo = diamond();
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .tunnels_per_pair(2)
            .build();
        let fm = FailureModel::links(0);
        // Target 3 with no failures: total s->t capacity must reach 3.
        // Path via 'a' is expensive (weight 10), via 'b' cheap (weight 1):
        // the upgrade should land on the cheap path.
        let aug = augment_capacity(
            &inst,
            &fm,
            3.0,
            |l| if l.index() <= 1 { 10.0 } else { 1.0 },
            &RobustOptions::default(),
        )
        .unwrap()
        .unwrap();
        assert!(
            aug.extra[0] < 1e-6 && aug.extra[1] < 1e-6,
            "{:?}",
            aug.extra
        );
        assert!((aug.extra[2] - 1.0).abs() < 1e-5 && (aug.extra[3] - 1.0).abs() < 1e-5);
    }
}
