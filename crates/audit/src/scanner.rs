//! A hand-rolled, comment/string/raw-string-aware Rust token scanner.
//!
//! The workspace is hermetic (no `syn`, no `proc-macro2`), so the audit
//! pass cannot parse Rust properly. It does not need to: every lint it
//! enforces is a *token* property (`.unwrap()`, `HashMap`, `Instant`, a
//! float literal next to `==`), and the only real parsing hazards are
//! tokens hiding inside comments, string literals, raw strings, or
//! `#[cfg(test)]` regions. This module neutralizes exactly those hazards:
//!
//! * [`mask_source`] replaces the *contents* of line comments, (nested)
//!   block comments, string/char/byte literals, and raw strings with
//!   spaces, preserving line structure so findings keep real line numbers;
//! * comment text is captured per line so `// audit:allow(lint, reason)`
//!   escapes can be parsed without ever confusing them with code;
//! * [`ScannedFile::line_in_test`] marks lines inside `#[cfg(test)]` /
//!   `#[test]`-attributed items (brace-balanced over the masked text), so
//!   test code is exempt from library lints.

/// One `// audit:allow(<lint>, <reason>)` escape hatch found in a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// 1-based line the comment starts on. The allow suppresses findings
    /// on this line and the next one (so it can sit above the code it
    /// excuses or trail it on the same line).
    pub line: usize,
    /// The lint being waived.
    pub lint: String,
    /// The mandatory justification.
    pub reason: String,
}

/// A malformed allow directive (missing reason, unclosed parenthesis...).
/// These are reported as findings of their own so a bare
/// `audit:allow(lint)` cannot silently waive anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadAllow {
    /// 1-based line of the malformed directive.
    pub line: usize,
    /// What is wrong with it.
    pub problem: String,
}

/// The scanner's view of one source file.
#[derive(Debug, Clone)]
pub struct ScannedFile {
    /// Source lines with comment/string contents blanked out.
    pub masked_lines: Vec<String>,
    /// Per-line flag: true when the line sits inside a `#[cfg(test)]` or
    /// `#[test]` item body.
    pub in_test: Vec<bool>,
    /// Well-formed allow escapes.
    pub allows: Vec<Allow>,
    /// Malformed allow escapes.
    pub bad_allows: Vec<BadAllow>,
    /// 1-based lines of `// audit:hot` markers. Each marks the next `fn`
    /// item at or below it as hot-path code (see the `hot-path-alloc`
    /// and `panic-reachability` lints).
    pub hot_marks: Vec<usize>,
}

impl ScannedFile {
    /// Scans `text` into masked lines, test-region flags, and allows.
    pub fn scan(text: &str) -> ScannedFile {
        let (masked, comments) = mask_source(text);
        let masked_lines: Vec<String> = masked.lines().map(|l| l.to_string()).collect();
        let in_test = test_lines(&masked_lines);
        let mut allows = Vec::new();
        let mut bad_allows = Vec::new();
        let mut hot_marks = Vec::new();
        for (line, comment) in comments {
            parse_allows(line, &comment, &mut allows, &mut bad_allows);
            for (offset, comment_line) in comment.lines().enumerate() {
                let body = comment_line.trim_start_matches(['/', '*', '!', ' ', '\t']);
                if body.trim_end() == "audit:hot" {
                    hot_marks.push(line + offset);
                }
            }
        }
        ScannedFile {
            masked_lines,
            in_test,
            allows,
            bad_allows,
            hot_marks,
        }
    }

    /// True when findings of `lint` on 1-based `line` are waived: an
    /// allow trailing code covers its own line only; an allow on a
    /// comment-only line covers the next line.
    pub fn allowed(&self, lint: &str, line: usize) -> bool {
        self.allows.iter().any(|a| {
            if a.lint != lint {
                return false;
            }
            let own_line_has_code = self
                .masked_lines
                .get(a.line.saturating_sub(1))
                .is_some_and(|l| !l.trim().is_empty());
            if own_line_has_code {
                a.line == line
            } else {
                a.line + 1 == line
            }
        })
    }

    /// True when 1-based `line` is inside a test-only region.
    pub fn line_in_test(&self, line: usize) -> bool {
        self.in_test
            .get(line.saturating_sub(1))
            .copied()
            .unwrap_or(false)
    }
}

/// Masks comments and literals out of `text`.
///
/// Returns the masked text (same length in lines, literal/comment interiors
/// replaced by spaces) plus the captured comment text per 1-based starting
/// line, for allow-directive parsing.
pub fn mask_source(text: &str) -> (String, Vec<(usize, String)>) {
    let chars: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let mut comments: Vec<(usize, String)> = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Pushes a masked char, preserving newlines so line numbers survive.
    fn blank(out: &mut String, c: char, line: &mut usize) {
        if c == '\n' {
            out.push('\n');
            *line += 1;
        } else {
            out.push(' ');
        }
    }

    while i < chars.len() {
        let c = chars[i];
        // Line comment.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start_line = line;
            let mut captured = String::new();
            while i < chars.len() && chars[i] != '\n' {
                captured.push(chars[i]);
                out.push(' ');
                i += 1;
            }
            comments.push((start_line, captured));
            continue;
        }
        // Block comment, possibly nested.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start_line = line;
            let mut captured = String::new();
            let mut depth = 0usize;
            while i < chars.len() {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    captured.push_str("/*");
                    blank(&mut out, chars[i], &mut line);
                    blank(&mut out, chars[i + 1], &mut line);
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    captured.push_str("*/");
                    blank(&mut out, chars[i], &mut line);
                    blank(&mut out, chars[i + 1], &mut line);
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    captured.push(chars[i]);
                    blank(&mut out, chars[i], &mut line);
                    i += 1;
                }
            }
            comments.push((start_line, captured));
            continue;
        }
        // Raw (byte) string: r"...", r#"..."#, br#"..."# etc.
        if c == 'r' || (c == 'b' && chars.get(i + 1) == Some(&'r')) {
            let prev_is_ident = i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
            if !prev_is_ident {
                let r_at = if c == 'b' { i + 1 } else { i };
                let mut j = r_at + 1;
                let mut hashes = 0usize;
                while chars.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                if chars.get(j) == Some(&'"') {
                    // Copy the opening delimiter as-is (it is code-ish),
                    // blank the contents, find `"` + hashes `#`s.
                    for &d in &chars[i..=j] {
                        blank(&mut out, d, &mut line);
                    }
                    let mut k = j + 1;
                    'raw: while k < chars.len() {
                        if chars[k] == '"' {
                            let mut h = 0usize;
                            while h < hashes && chars.get(k + 1 + h) == Some(&'#') {
                                h += 1;
                            }
                            if h == hashes {
                                for &d in &chars[k..=k + hashes] {
                                    blank(&mut out, d, &mut line);
                                }
                                k += hashes + 1;
                                break 'raw;
                            }
                        }
                        blank(&mut out, chars[k], &mut line);
                        k += 1;
                    }
                    i = k;
                    continue;
                }
            }
        }
        // Plain (byte) string.
        if c == '"' || (c == 'b' && chars.get(i + 1) == Some(&'"')) {
            if c == 'b' {
                blank(&mut out, 'b', &mut line);
                i += 1;
            }
            blank(&mut out, '"', &mut line);
            i += 1;
            while i < chars.len() {
                if chars[i] == '\\' && i + 1 < chars.len() {
                    blank(&mut out, chars[i], &mut line);
                    blank(&mut out, chars[i + 1], &mut line);
                    i += 2;
                    continue;
                }
                let done = chars[i] == '"';
                blank(&mut out, chars[i], &mut line);
                i += 1;
                if done {
                    break;
                }
            }
            continue;
        }
        // Char literal vs lifetime. `'\n'`, `'a'`, `'"'` are literals;
        // `'static` / `'a` (no closing quote right after) are lifetimes.
        if c == '\'' {
            let is_escape = chars.get(i + 1) == Some(&'\\');
            let is_simple = chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\'');
            if is_escape {
                blank(&mut out, '\'', &mut line);
                i += 1;
                // \x7f, \u{...}, \n, \' ... scan to closing quote.
                while i < chars.len() {
                    if chars[i] == '\\' && i + 1 < chars.len() {
                        blank(&mut out, chars[i], &mut line);
                        blank(&mut out, chars[i + 1], &mut line);
                        i += 2;
                        continue;
                    }
                    let done = chars[i] == '\'';
                    blank(&mut out, chars[i], &mut line);
                    i += 1;
                    if done {
                        break;
                    }
                }
                continue;
            }
            if is_simple {
                blank(&mut out, '\'', &mut line);
                blank(&mut out, chars[i + 1], &mut line);
                blank(&mut out, '\'', &mut line);
                i += 3;
                continue;
            }
            // Lifetime: keep the tick, fall through as code.
        }
        if c == '\n' {
            line += 1;
        }
        out.push(c);
        i += 1;
    }
    (out, comments)
}

/// Parses `audit:allow(...)` directives out of one comment's text.
///
/// A directive must be the comment's entire content (after the `//`,
/// `///`, `/*`, `*` decoration): prose *mentioning* the syntax mid-
/// sentence — like this module's own documentation — is not a directive.
fn parse_allows(line: usize, comment: &str, allows: &mut Vec<Allow>, bad: &mut Vec<BadAllow>) {
    for (offset_lines, comment_line) in comment.lines().enumerate() {
        let mut body = comment_line.trim_start_matches(['/', '*', '!', ' ', '\t']);
        let at_line = line + offset_lines;
        // A comment line may carry several directives back to back
        // (`audit:allow(a, ...) audit:allow(b, ...)`) so one site can be
        // excused for more than one lint.
        while body.starts_with("audit:allow") {
            let after = &body["audit:allow".len()..];
            let Some(body2) = after.strip_prefix('(') else {
                bad.push(BadAllow {
                    line: at_line,
                    problem: "audit:allow must be followed by (<lint>, <reason>)".into(),
                });
                break;
            };
            // Balanced scan: the reason text may itself contain parens.
            let mut depth = 0usize;
            let close = body2.char_indices().find_map(|(i, c)| match c {
                '(' => {
                    depth += 1;
                    None
                }
                ')' if depth > 0 => {
                    depth -= 1;
                    None
                }
                ')' => Some(i),
                _ => None,
            });
            let Some(close) = close else {
                bad.push(BadAllow {
                    line: at_line,
                    problem: "audit:allow(...) is missing its closing parenthesis".into(),
                });
                break;
            };
            let inner = &body2[..close];
            match inner.split_once(',') {
                Some((lint, reason)) if !reason.trim().is_empty() => {
                    allows.push(Allow {
                        line: at_line,
                        lint: lint.trim().to_string(),
                        reason: reason.trim().trim_matches('"').to_string(),
                    });
                }
                _ => {
                    bad.push(BadAllow {
                        line: at_line,
                        problem: format!(
                            "audit:allow({}) needs a reason: audit:allow(<lint>, <reason>)",
                            inner.trim()
                        ),
                    });
                }
            }
            body = body2[close + 1..].trim_start();
        }
    }
}

/// Computes, per masked line, whether it sits inside a test-only item:
/// an item annotated `#[cfg(test)]` or `#[test]`, tracked by brace depth.
fn test_lines(masked_lines: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; masked_lines.len()];
    let mut depth = 0usize;
    // Brace depths at which a test item body was entered.
    let mut test_entries: Vec<usize> = Vec::new();
    // A test attribute was seen and its item's body not yet entered.
    let mut pending = false;
    for (idx, raw) in masked_lines.iter().enumerate() {
        if !test_entries.is_empty() {
            in_test[idx] = true;
        }
        let line = raw.as_str();
        if line.contains("#[cfg(test)]")
            || line.contains("#[cfg(all(test")
            || line.contains("#[cfg(any(test")
            || line.contains("#[test]")
        {
            pending = true;
            // An attribute line marks the item's first line too.
            in_test[idx] = true;
        }
        for c in line.chars() {
            match c {
                '{' => {
                    if pending {
                        test_entries.push(depth);
                        pending = false;
                        in_test[idx] = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if test_entries.last() == Some(&depth) {
                        test_entries.pop();
                    }
                }
                // `#[cfg(test)] use foo;` — item without a body.
                ';' if pending => {
                    pending = false;
                    in_test[idx] = true;
                }
                _ => {}
            }
        }
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_and_nested_block_comments() {
        let src = "let a = 1; // x.unwrap()\n/* outer /* inner.unwrap() */ still */ let b = 2;\n";
        let (masked, comments) = mask_source(src);
        assert!(!masked.contains("unwrap"));
        assert!(masked.contains("let a = 1;"));
        assert!(masked.contains("let b = 2;"));
        assert_eq!(comments.len(), 2);
        assert!(comments[1].1.contains("inner.unwrap()"));
    }

    #[test]
    fn masks_strings_raw_strings_and_chars() {
        let src = r####"let s = "a.unwrap()"; let r = r#"panic!("x")"#; let c = '"'; let t = "esc \" x.unwrap()";"####;
        let (masked, _) = mask_source(src);
        assert!(!masked.contains("unwrap"));
        assert!(!masked.contains("panic"));
        assert!(masked.contains("let s ="));
        assert!(masked.contains("let t ="));
    }

    #[test]
    fn lifetimes_do_not_start_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } let u = y.unwrap();";
        let (masked, _) = mask_source(src);
        assert!(masked.contains("unwrap"), "code after lifetimes survives");
    }

    #[test]
    fn cfg_test_modules_are_marked() {
        let src = "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn lib2() {}\n";
        let f = ScannedFile::scan(src);
        assert!(!f.line_in_test(1));
        assert!(f.line_in_test(2));
        assert!(f.line_in_test(4));
        assert!(!f.line_in_test(6));
    }

    #[test]
    fn allow_parsing_same_and_next_line() {
        let src = "// audit:allow(no-panic-paths, interned invariant)\nx.unwrap();\ny.unwrap(); // audit:allow(float-discipline, trailing)\n";
        let f = ScannedFile::scan(src);
        assert_eq!(f.allows.len(), 2);
        assert!(f.allowed("no-panic-paths", 2));
        assert!(f.allowed("float-discipline", 3));
        assert!(!f.allowed("no-panic-paths", 3));
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        let src =
            "// audit:allow(no-panic-paths)\nx.unwrap();\n// audit:allow(no-panic-paths,   )\n";
        let f = ScannedFile::scan(src);
        assert!(f.allows.is_empty());
        assert_eq!(f.bad_allows.len(), 2);
        assert!(!f.allowed("no-panic-paths", 2));
    }
}
