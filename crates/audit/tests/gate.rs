//! The audit gate, exercised the way CI runs it: real workspace scan,
//! real `audit.baseline`, plus fault injection proving the gate actually
//! fails when a forbidden construct lands in a library crate.

use pcf_audit::{
    audit_files, compare, find_root, parse_baseline, scan_workspace, Baseline, Lint, SourceFile,
};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    find_root(&PathBuf::from(env!("CARGO_MANIFEST_DIR")))
        .expect("audit crate lives in the workspace")
}

fn checked_in_baseline(root: &Path) -> Baseline {
    let text = std::fs::read_to_string(root.join("audit.baseline"))
        .expect("audit.baseline is checked in at the workspace root");
    parse_baseline(&text).expect("checked-in baseline parses")
}

/// The PR gate itself: the tree as committed must carry no findings
/// beyond the checked-in baseline.
#[test]
fn workspace_is_clean_against_the_checked_in_baseline() {
    let root = workspace_root();
    let files = scan_workspace(&root).expect("workspace scans");
    let findings = audit_files(&files);
    let cmp = compare(&findings, &checked_in_baseline(&root));
    assert!(
        cmp.pass(),
        "new findings beyond audit.baseline: {:#?}",
        cmp.regressions
    );
}

/// Fault injection: an `unwrap()` added to pcf-core must fail the gate
/// even with the shipped baseline in place — the baseline tolerates the
/// file's *existing* debt count, not one more.
#[test]
fn injected_unwrap_in_pcf_core_fails_the_gate() {
    let root = workspace_root();
    let mut files = scan_workspace(&root).expect("workspace scans");
    files.push(SourceFile {
        rel: "crates/core/src/injected.rs".to_string(),
        text: "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n".to_string(),
    });
    let cmp = compare(&audit_files(&files), &checked_in_baseline(&root));
    assert!(!cmp.pass(), "gate let an injected unwrap() through");
    assert!(
        cmp.regressions.iter().any(|r| {
            r.lint == Lint::NoPanicPaths.name() && r.file == "crates/core/src/injected.rs"
        }),
        "regressions do not name the injected file: {:#?}",
        cmp.regressions
    );
}

/// Same injection into a file that already has baselined debt: the count
/// goes one over its tolerance, so the bucket regresses.
#[test]
fn injected_unwrap_on_top_of_existing_debt_fails_the_gate() {
    let root = workspace_root();
    let baseline = checked_in_baseline(&root);
    let Some(((_, rel), _)) = baseline
        .iter()
        .find(|((lint, _), count)| lint == Lint::NoPanicPaths.name() && **count > 0)
    else {
        return; // all debt paid off: nothing to piggyback on
    };
    let mut files = scan_workspace(&root).expect("workspace scans");
    let f = files
        .iter_mut()
        .find(|f| &f.rel == rel)
        .expect("baselined file exists");
    f.text
        .push_str("\npub fn audit_injected(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n");
    let cmp = compare(&audit_files(&files), &baseline);
    assert!(!cmp.pass(), "gate missed one-over-baseline in {rel}");
}

/// The analyzer holds itself to its own rules: zero findings (not merely
/// baselined ones) in `crates/audit/src`.
#[test]
fn audit_crate_audits_itself_clean() {
    let root = workspace_root();
    let files: Vec<SourceFile> = scan_workspace(&root)
        .expect("workspace scans")
        .into_iter()
        .filter(|f| f.rel.starts_with("crates/audit/src/"))
        .collect();
    assert!(!files.is_empty());
    let findings = audit_files(&files);
    assert!(findings.is_empty(), "pcf-audit flags itself: {findings:#?}");
}

/// Scanner fixtures that combine the hazards: raw strings holding fake
/// code, nested block comments, a cfg(test) module, and allow escapes —
/// none of which may produce findings in a library path.
#[test]
fn hostile_fixture_produces_no_false_positives() {
    let fixture = r####"
//! Module docs mentioning unwrap() and HashMap in prose.

/* outer /* nested comment with x.unwrap() */ still commented
   panic!("not real") */
pub fn quoted() -> &'static str {
    let _lifetime: &'static str = "x.unwrap() inside a string";
    let _raw = r#"panic!("raw string"); y.expect("msg")"#;
    let _hash = r##"HashMap::new() == 0.0"##;
    let _byte = br"std::thread::spawn";
    let _ch = '"';
    "done"
}

// audit:allow(no-panic-paths, fixture demonstrates a justified escape)
pub fn allowed_line(x: Option<u32>) -> u32 { x.unwrap() }

#[cfg(test)]
mod tests {
    #[test]
    fn test_only_code_is_exempt() {
        let v: Option<u32> = None;
        assert!(v.unwrap_or(1) == 1u32.min(2));
        Some(3).unwrap();
    }
}
"####;
    let files = [SourceFile {
        rel: "crates/core/src/fixture.rs".to_string(),
        text: fixture.to_string(),
    }];
    let findings = audit_files(&files);
    assert!(findings.is_empty(), "false positives: {findings:#?}");
}

/// And the inverse fixture: the same hazards, but with one real violation
/// after them, which must still be caught at the right line.
#[test]
fn hostile_fixture_still_catches_the_real_violation() {
    let fixture = "let _s = r#\"panic!(\"decoy\")\"#; /* x.unwrap() */\nreal.unwrap();\n";
    let files = [SourceFile {
        rel: "crates/core/src/fixture.rs".to_string(),
        text: fixture.to_string(),
    }];
    let findings = audit_files(&files);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].line, 2);
    assert_eq!(findings[0].lint, Lint::NoPanicPaths);
}
