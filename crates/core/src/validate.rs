//! End-to-end validation: is an allocation *actually* congestion-free?
//!
//! The offline models prove congestion-freedom over a relaxed scenario set;
//! this module checks the real thing by enumerating (or sampling) concrete
//! failure scenarios, realizing the routing for each (paper §4), and
//! verifying that
//!
//! 1. every utilization fraction is in `[0, 1]`,
//! 2. no directed arc carries more than its capacity, and
//! 3. every pair's admitted demand is delivered.
//!
//! Distinct dead-link masks frequently collapse to the same routing: the
//! realization reads the mask only through tunnel liveness and LS
//! activation, so masks with equal [`FailureState::liveness_signature`]s
//! are realized once and the solution shared (common on sparse topologies
//! where many links carry no tunnel of interest).
//!
//! Used heavily by the integration and property tests; also useful as an
//! operator-facing audit tool.

use crate::failure::{FailureModel, Scenario};
use crate::instance::Instance;
use crate::realize::{
    degraded_reservations, realize_routing_with, FailureState, RealizeError, RealizeKernel,
};
use std::collections::BTreeMap;

/// How many hotspot arcs a [`ValidationReport`] retains.
const TOP_ARCS: usize = 5;

/// Outcome of validating one allocation over a scenario set.
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// Scenarios checked.
    pub scenarios: usize,
    /// Distinct liveness signatures actually realized; the remaining
    /// `scenarios - distinct_states` masks reused a previous solution.
    pub distinct_states: usize,
    /// Highest arc utilization observed across all scenarios.
    pub max_utilization: f64,
    /// The most-utilized arcs across all scenarios, highest first (up to 5
    /// entries; each arc's utilization is its worst over the scenario set).
    pub top_arcs: Vec<ArcHotspot>,
    /// Scenarios where realization failed or a constraint was violated,
    /// with the dead-link mask attached.
    pub violations: Vec<Violation>,
}

/// One arc's worst-case utilization over a validated scenario set.
#[derive(Debug, Clone, PartialEq)]
pub struct ArcHotspot {
    /// Directed arc index.
    pub arc: usize,
    /// Peak load / capacity over all scenarios.
    pub utilization: f64,
}

/// One failed scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The dead-link mask of the offending scenario.
    pub dead: Vec<bool>,
    /// Per-link capacity scales of the offending scenario; empty when the
    /// scenario carried no partial degradation.
    pub cap_scale: Vec<f64>,
    /// What went wrong.
    pub kind: ViolationKind,
}

/// Failure modes the validator distinguishes.
#[derive(Debug, Clone, PartialEq)]
pub enum ViolationKind {
    /// The routing could not be realized at all.
    Realize(RealizeError),
    /// An arc exceeded its capacity (arc index, load, capacity).
    Overload {
        /// Directed arc index.
        arc: usize,
        /// Traffic on the arc.
        load: f64,
        /// Arc capacity.
        capacity: f64,
    },
}

/// Violation counts by class — the shape of a failed validation, used by
/// the CLI to explain *how* an allocation failed (and whether the
/// degradation ladder would have absorbed it: disconnections are exactly
/// the scenarios stage 2/3 of `crate::degrade` serve best-effort).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ViolationSummary {
    /// Scenarios where some pair had no surviving tunnel or LS at all.
    pub disconnected: usize,
    /// Other realization failures (singular matrix, zero reservations on
    /// a still-connected pair, bad input).
    pub realize: usize,
    /// Arc capacity violations.
    pub overload: usize,
}

impl ViolationSummary {
    /// Total violations summarized.
    pub fn total(&self) -> usize {
        self.disconnected + self.realize + self.overload
    }
}

impl ValidationReport {
    /// True when every scenario realized a feasible, congestion-free
    /// routing.
    pub fn congestion_free(&self) -> bool {
        self.violations.is_empty()
    }

    /// Classifies the violation list by failure mode.
    pub fn summarize(&self) -> ViolationSummary {
        let mut s = ViolationSummary::default();
        for v in &self.violations {
            match &v.kind {
                ViolationKind::Realize(RealizeError::Disconnected(_)) => s.disconnected += 1,
                ViolationKind::Realize(_) => s.realize += 1,
                ViolationKind::Overload { .. } => s.overload += 1,
            }
        }
        s
    }

    /// A deterministic 64-bit fingerprint of the report, for comparing
    /// validation outcomes across solver engines or runs (the benchmark
    /// harness asserts the sparse and dense LP engines validate
    /// identically).
    ///
    /// FNV-1a over the scenario counts, utilizations quantized to a 1e-6
    /// grid (so last-ulp arithmetic noise does not flip the digest), the
    /// hotspot list, and every violation including its dead-link mask.
    pub fn digest(&self) -> u64 {
        fn eat(h: &mut u64, bytes: &[u8]) {
            const PRIME: u64 = 0x0000_0100_0000_01b3;
            for &b in bytes {
                *h = (*h ^ u64::from(b)).wrapping_mul(PRIME);
            }
        }
        fn quantize(u: f64) -> i64 {
            if u.is_finite() {
                (u * 1e6).round() as i64
            } else if u > 0.0 {
                i64::MAX
            } else {
                i64::MIN
            }
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        eat(&mut h, &(self.scenarios as u64).to_le_bytes());
        eat(&mut h, &(self.distinct_states as u64).to_le_bytes());
        eat(&mut h, &quantize(self.max_utilization).to_le_bytes());
        for hot in &self.top_arcs {
            eat(&mut h, &(hot.arc as u64).to_le_bytes());
            eat(&mut h, &quantize(hot.utilization).to_le_bytes());
        }
        for v in &self.violations {
            for chunk in v.dead.chunks(8) {
                let mut byte = 0u8;
                for (i, &bit) in chunk.iter().enumerate() {
                    if bit {
                        byte |= 1 << i;
                    }
                }
                eat(&mut h, &[byte]);
            }
            // Empty for undegraded scenarios, so link-failure-only digests
            // are unchanged by the structured extension.
            for &s in &v.cap_scale {
                eat(&mut h, &quantize(s).to_le_bytes());
            }
            match &v.kind {
                ViolationKind::Realize(e) => {
                    eat(&mut h, &[0u8]);
                    eat(&mut h, format!("{e:?}").as_bytes());
                }
                ViolationKind::Overload {
                    arc,
                    load,
                    capacity,
                } => {
                    eat(&mut h, &[1u8]);
                    eat(&mut h, &(*arc as u64).to_le_bytes());
                    eat(&mut h, &quantize(*load).to_le_bytes());
                    eat(&mut h, &quantize(*capacity).to_le_bytes());
                }
            }
        }
        h
    }

    /// Worst residual overload over the violation list:
    /// `max(load/capacity - 1)` across `Overload` entries, `0.0` when none
    /// (same convention as `crate::degrade::overload_bound`).
    pub fn worst_overload(&self) -> f64 {
        let mut worst = 0.0f64;
        for v in &self.violations {
            if let ViolationKind::Overload { load, capacity, .. } = v.kind {
                worst = worst.max(load / capacity.max(1e-12) - 1.0);
            }
        }
        worst
    }
}

/// Validates an allocation `(a, b, served)` over every scenario in `masks`.
///
/// `served[p] = z_p * d_p`; `tol` is the relative feasibility tolerance.
/// Masks with identical liveness signatures are realized once and share
/// the solution; every mask still gets its own violation entries.
pub fn validate_scenarios(
    inst: &Instance,
    a: &[f64],
    b: &[f64],
    served: &[f64],
    masks: &[Vec<bool>],
    tol: f64,
) -> ValidationReport {
    validate_scenarios_with(inst, a, b, served, masks, tol, RealizeKernel::Dense)
}

/// [`validate_scenarios`] with an explicit realization kernel. The dense
/// and sparse kernels produce byte-identical reports (see
/// [`RealizeKernel`]); the kernel knob exists so that identity can be
/// checked end-to-end.
#[allow(clippy::too_many_arguments)]
pub fn validate_scenarios_with(
    inst: &Instance,
    a: &[f64],
    b: &[f64],
    served: &[f64],
    masks: &[Vec<bool>],
    tol: f64,
    kernel: RealizeKernel,
) -> ValidationReport {
    let topo = inst.topo();
    let mut arc_peak = vec![0.0f64; topo.arc_count()];
    let mut violations = Vec::new();
    // Realized (or failed) routings keyed by liveness signature.
    let mut by_signature: BTreeMap<Vec<u64>, usize> = BTreeMap::new();
    let mut solved: Vec<Result<Vec<f64>, RealizeError>> = Vec::new();
    for mask in masks {
        let state = match FailureState::new(inst, mask) {
            Ok(s) => s,
            Err(e) => {
                violations.push(Violation {
                    dead: mask.clone(),
                    cap_scale: Vec::new(),
                    kind: ViolationKind::Realize(e),
                });
                continue;
            }
        };
        let idx = *by_signature
            .entry(state.liveness_signature())
            .or_insert_with(|| {
                solved.push(
                    realize_routing_with(inst, &state, a, b, served, tol, kernel)
                        .map(|r| r.arc_loads),
                );
                solved.len() - 1
            });
        match &solved[idx] {
            Err(e) => violations.push(Violation {
                dead: mask.clone(),
                cap_scale: Vec::new(),
                kind: ViolationKind::Realize(e.clone()),
            }),
            Ok(arc_loads) => {
                for arc in topo.arcs() {
                    let load = arc_loads[arc.index()];
                    let cap = topo.capacity(arc.link());
                    if load > cap * (1.0 + tol) + tol {
                        violations.push(Violation {
                            dead: mask.clone(),
                            cap_scale: Vec::new(),
                            kind: ViolationKind::Overload {
                                arc: arc.index(),
                                load,
                                capacity: cap,
                            },
                        });
                    }
                    arc_peak[arc.index()] = arc_peak[arc.index()].max(load / cap);
                }
            }
        }
    }
    ValidationReport {
        scenarios: masks.len(),
        distinct_states: solved.len(),
        max_utilization: arc_peak.iter().fold(0.0, |m, &u| m.max(u)),
        top_arcs: top_hotspots(&arc_peak, TOP_ARCS),
        violations,
    }
}

/// The `k` busiest arcs by peak utilization, highest first (arcs that never
/// carried traffic are skipped; ties break toward the lower arc index).
fn top_hotspots(arc_peak: &[f64], k: usize) -> Vec<ArcHotspot> {
    let mut hot: Vec<ArcHotspot> = arc_peak
        .iter()
        .enumerate()
        .filter(|&(_, &u)| u > 0.0)
        .map(|(arc, &utilization)| ArcHotspot { arc, utilization })
        .collect();
    hot.sort_by(|x, y| {
        y.utilization
            .total_cmp(&x.utilization)
            .then(x.arc.cmp(&y.arc))
    });
    hot.truncate(k);
    hot
}

/// Validates over every worst-cardinality scenario of the failure model.
pub fn validate_all(
    inst: &Instance,
    fm: &FailureModel,
    a: &[f64],
    b: &[f64],
    served: &[f64],
    tol: f64,
) -> ValidationReport {
    validate_all_with(inst, fm, a, b, served, tol, RealizeKernel::Dense)
}

/// [`validate_all`] with an explicit realization kernel.
pub fn validate_all_with(
    inst: &Instance,
    fm: &FailureModel,
    a: &[f64],
    b: &[f64],
    served: &[f64],
    tol: f64,
    kernel: RealizeKernel,
) -> ValidationReport {
    let masks = fm.enumerate_scenarios(inst.topo());
    validate_scenarios_with(inst, a, b, served, &masks, tol, kernel)
}

/// Validates over every *structured* scenario of the failure model: all
/// worst-cardinality failure masks composed with the degradation corner
/// points. Degraded scenarios realize with rescaled reservations
/// ([`degraded_reservations`]) and check loads against the degraded
/// capacities; a plan solved without degradation awareness typically fails
/// these with utilization-out-of-range realizations (it promised traffic the
/// sagging links can no longer carry).
pub fn validate_structured(
    inst: &Instance,
    fm: &FailureModel,
    a: &[f64],
    b: &[f64],
    served: &[f64],
    tol: f64,
) -> ValidationReport {
    validate_structured_with(inst, fm, a, b, served, tol, RealizeKernel::Dense)
}

/// [`validate_structured`] with an explicit realization kernel.
pub fn validate_structured_with(
    inst: &Instance,
    fm: &FailureModel,
    a: &[f64],
    b: &[f64],
    served: &[f64],
    tol: f64,
    kernel: RealizeKernel,
) -> ValidationReport {
    let scenarios = fm.enumerate_structured_scenarios(inst.topo());
    validate_structured_scenarios_with(inst, a, b, served, &scenarios, tol, kernel)
}

/// Validates an allocation over an explicit structured scenario list.
/// Scenarios with identical liveness signatures *and* capacity scales are
/// realized once and share the solution.
#[allow(clippy::too_many_arguments)]
pub fn validate_structured_scenarios_with(
    inst: &Instance,
    a: &[f64],
    b: &[f64],
    served: &[f64],
    scenarios: &[Scenario],
    tol: f64,
    kernel: RealizeKernel,
) -> ValidationReport {
    let topo = inst.topo();
    let mut arc_peak = vec![0.0f64; topo.arc_count()];
    let mut violations = Vec::new();
    // Realized (or failed) routings keyed by (liveness signature, quantized
    // capacity scales — empty when undegraded).
    let mut by_key: BTreeMap<(Vec<u64>, Vec<i64>), usize> = BTreeMap::new();
    let mut solved: Vec<Result<Vec<f64>, RealizeError>> = Vec::new();
    for sc in scenarios {
        let state = match FailureState::with_cap_scale(inst, &sc.dead, &sc.cap_scale) {
            Ok(s) => s,
            Err(e) => {
                violations.push(Violation {
                    dead: sc.dead.clone(),
                    cap_scale: sc.cap_scale.clone(),
                    kind: ViolationKind::Realize(e),
                });
                continue;
            }
        };
        let degraded = !state.undegraded();
        let scale_key: Vec<i64> = if degraded {
            sc.cap_scale
                .iter()
                .map(|&s| (s * 1e9).round() as i64)
                .collect()
        } else {
            Vec::new()
        };
        let viol_scale = if degraded {
            sc.cap_scale.clone()
        } else {
            Vec::new()
        };
        let idx = *by_key
            .entry((state.liveness_signature(), scale_key))
            .or_insert_with(|| {
                let eff_a = degraded_reservations(inst, &state, a);
                solved.push(
                    realize_routing_with(inst, &state, &eff_a, b, served, tol, kernel)
                        .map(|r| r.arc_loads),
                );
                solved.len() - 1
            });
        match &solved[idx] {
            Err(e) => violations.push(Violation {
                dead: sc.dead.clone(),
                cap_scale: viol_scale,
                kind: ViolationKind::Realize(e.clone()),
            }),
            Ok(arc_loads) => {
                for arc in topo.arcs() {
                    let load = arc_loads[arc.index()];
                    let scale = sc.cap_scale[arc.link().index()].clamp(0.0, 1.0);
                    let cap = topo.capacity(arc.link()) * scale;
                    if load > cap * (1.0 + tol) + tol {
                        violations.push(Violation {
                            dead: sc.dead.clone(),
                            cap_scale: viol_scale.clone(),
                            kind: ViolationKind::Overload {
                                arc: arc.index(),
                                load,
                                capacity: cap,
                            },
                        });
                    }
                    arc_peak[arc.index()] = arc_peak[arc.index()].max(load / cap.max(1e-12));
                }
            }
        }
    }
    ValidationReport {
        scenarios: scenarios.len(),
        distinct_states: solved.len(),
        max_utilization: arc_peak.iter().fold(0.0, |m, &u| m.max(u)),
        top_arcs: top_hotspots(&arc_peak, TOP_ARCS),
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use crate::robust::{solve_robust, AdversaryKind, RobustOptions};
    use pcf_topology::{NodeId, Topology};

    fn diamond() -> Topology {
        let mut t = Topology::new("diamond");
        let s = t.add_node("s");
        let a = t.add_node("a");
        let b = t.add_node("b");
        let d = t.add_node("t");
        t.add_link(s, a, 1.0);
        t.add_link(a, d, 1.0);
        t.add_link(s, b, 1.0);
        t.add_link(b, d, 1.0);
        t
    }

    #[test]
    fn solved_allocation_validates() {
        let topo = diamond();
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .tunnels_per_pair(2)
            .build();
        let fm = FailureModel::links(1);
        let sol = solve_robust(
            &inst,
            &fm,
            AdversaryKind::LinkBased,
            &RobustOptions::default(),
        );
        let served: Vec<f64> = inst
            .pair_ids()
            .map(|p| sol.z[p.0] * inst.demand(p))
            .collect();
        let report = validate_all(&inst, &fm, &sol.a, &sol.b, &served, 1e-6);
        assert!(
            report.congestion_free(),
            "violations: {:?}",
            report.violations
        );
        assert!(report.max_utilization <= 1.0 + 1e-6);
        assert_eq!(report.scenarios, 4);
    }

    #[test]
    fn equivalent_masks_collapse_to_one_solve() {
        let topo = diamond();
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .tunnels_per_pair(2)
            .build();
        let fm = FailureModel::links(1);
        let sol = solve_robust(
            &inst,
            &fm,
            AdversaryKind::LinkBased,
            &RobustOptions::default(),
        );
        let served: Vec<f64> = inst
            .pair_ids()
            .map(|p| sol.z[p.0] * inst.demand(p))
            .collect();
        let report = validate_all(&inst, &fm, &sol.a, &sol.b, &served, 1e-6);
        assert_eq!(report.scenarios, 4);
        // Each 2-hop tunnel dies with either of its two links, so the four
        // single-link masks collapse to two distinct liveness states.
        assert_eq!(report.distinct_states, 2);
    }

    #[test]
    fn hotspots_are_ranked_and_consistent() {
        let topo = diamond();
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .tunnels_per_pair(2)
            .build();
        let fm = FailureModel::links(1);
        let sol = solve_robust(
            &inst,
            &fm,
            AdversaryKind::LinkBased,
            &RobustOptions::default(),
        );
        let served: Vec<f64> = inst
            .pair_ids()
            .map(|p| sol.z[p.0] * inst.demand(p))
            .collect();
        let report = validate_all(&inst, &fm, &sol.a, &sol.b, &served, 1e-6);
        assert!(!report.top_arcs.is_empty());
        assert!(report.top_arcs.len() <= 5);
        assert_eq!(report.top_arcs[0].utilization, report.max_utilization);
        for w in report.top_arcs.windows(2) {
            assert!(w[0].utilization >= w[1].utilization, "hotspots unsorted");
        }
    }

    #[test]
    fn digest_is_deterministic_and_sensitive() {
        let topo = diamond();
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .tunnels_per_pair(2)
            .build();
        let fm = FailureModel::links(1);
        let sol = solve_robust(
            &inst,
            &fm,
            AdversaryKind::LinkBased,
            &RobustOptions::default(),
        );
        let served: Vec<f64> = inst
            .pair_ids()
            .map(|p| sol.z[p.0] * inst.demand(p))
            .collect();
        let r1 = validate_all(&inst, &fm, &sol.a, &sol.b, &served, 1e-6);
        let r2 = validate_all(&inst, &fm, &sol.a, &sol.b, &served, 1e-6);
        assert_eq!(r1.digest(), r2.digest(), "same validation, same digest");
        let mut tweaked = r1.clone();
        tweaked.max_utilization += 0.01;
        assert_ne!(r1.digest(), tweaked.digest(), "digest ignores utilization");
        // Sub-grid noise must not flip the digest.
        let mut noisy = r1.clone();
        noisy.max_utilization += 1e-9;
        assert_eq!(r1.digest(), noisy.digest(), "digest unstable under noise");
    }

    #[test]
    fn dense_and_sparse_realize_kernels_digest_identically() {
        // The sparse kernel mirrors the dense pivot order bit-for-bit, so
        // validating the same plan through either kernel must yield
        // byte-identical reports — utilizations included, not just the
        // digest quantization grid.
        let topo = diamond();
        let inst = InstanceBuilder::with_demands(
            &topo,
            vec![(NodeId(0), NodeId(3), 1.0), (NodeId(1), NodeId(2), 0.5)],
        )
        .tunnels_per_pair(2)
        .build();
        let fm = FailureModel::links(1);
        let sol = solve_robust(
            &inst,
            &fm,
            AdversaryKind::LinkBased,
            &RobustOptions::default(),
        );
        let served: Vec<f64> = inst
            .pair_ids()
            .map(|p| sol.z[p.0] * inst.demand(p))
            .collect();
        let dense = validate_all_with(
            &inst,
            &fm,
            &sol.a,
            &sol.b,
            &served,
            1e-6,
            RealizeKernel::Dense,
        );
        let sparse = validate_all_with(
            &inst,
            &fm,
            &sol.a,
            &sol.b,
            &served,
            1e-6,
            RealizeKernel::Sparse,
        );
        assert_eq!(dense.digest(), sparse.digest(), "kernel digests diverge");
        assert_eq!(
            dense.max_utilization.to_bits(),
            sparse.max_utilization.to_bits(),
            "kernels disagree beyond the digest grid"
        );
    }

    #[test]
    fn overcommitted_allocation_is_caught() {
        let topo = diamond();
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .tunnels_per_pair(2)
            .build();
        // Pretend we can deliver 2.0 under single failures — impossible: the
        // realization must either overload or fail.
        let a = vec![1.0; inst.num_tunnels()];
        let served = vec![2.0];
        let report = validate_all(&inst, &FailureModel::links(1), &a, &[], &served, 1e-6);
        assert!(!report.congestion_free());
        let summary = report.summarize();
        assert_eq!(summary.total(), report.violations.len());
        // Overcommitment either overloads arcs or breaks realization, but
        // never disconnects: every single-failure scenario leaves a path.
        assert_eq!(summary.disconnected, 0);
        assert!(summary.overload + summary.realize > 0);
        if summary.overload > 0 {
            assert!(report.worst_overload() > 0.0);
        }
    }

    #[test]
    fn beyond_budget_scenarios_classify_as_disconnected() {
        let topo = diamond();
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .tunnels_per_pair(2)
            .build();
        let a = vec![0.5; inst.num_tunnels()];
        let served = vec![1.0];
        // Validate a 1-failure plan against 2-failure scenarios: masks
        // killing both of a side's links disconnect the pair.
        let report = validate_all(&inst, &FailureModel::links(2), &a, &[], &served, 1e-6);
        let summary = report.summarize();
        assert!(summary.disconnected > 0, "{summary:?}");
        assert_eq!(summary.total(), report.violations.len());
    }
}
