//! Generates `BENCH_lp.json` — the sparse-engine acceptance report.
//!
//! Usage: `cargo run --release -p pcf-bench --bin lp_report [out.json]`
//! (default output path `BENCH_lp.json` in the current directory).
//!
//! Three sections, matching the sparse-LP acceptance criteria:
//!
//! * `warm_vs_cold` — per-cut warm re-solve through [`IncrementalLp`]
//!   against rebuilding and re-solving from scratch, on a transportation
//!   LP sized like the Sprint robust master (the largest instance the
//!   dense engine handled), plus the Sprint pcf-tf robust solve timed
//!   warm and cold on one thread;
//! * `engine_agreement` — pcf-tf at f=1 on Abilene and Sprint under the
//!   sparse (devex + presolve) and dense (Dantzig, no presolve) engines:
//!   objectives must match to 1e-6, and each engine's plan must produce
//!   byte-identical `ValidationReport` digests when realized through the
//!   dense and sparse linear-algebra kernels (the simplex engines may
//!   legitimately land on different optimal vertices — alternate optima —
//!   so plan-level digests are compared across *kernels*, not engines);
//! * `large_topologies` — Deltacom and ION pcf-tf at f=1 with the sparse
//!   engine, wall-clock and validation, instances the dense engine did
//!   not reach.
//!
//! The binary exits non-zero if any acceptance bound is violated, so CI
//! can run it as a gate.

use pcf_core::{
    scale_to_mlu, solve_pcf_tf, tunnel_instance, validate_all, validate_all_with, FailureModel,
    Instance, RealizeKernel, RobustOptions, RobustSolution,
};
use pcf_lp::{EngineKind, IncrementalLp, LpProblem, Pricing, Sense, SimplexOptions, Status, VarId};
use pcf_topology::zoo;
use pcf_traffic::gravity;
use std::time::Instant;

/// Transportation problem `n x n`; returns the variable grid for cuts.
fn transportation_lp(n: usize, opts: &SimplexOptions) -> (LpProblem, Vec<VarId>) {
    let mut lp = LpProblem::new(Sense::Minimize);
    lp.set_options(opts.clone());
    let mut v = Vec::new();
    for i in 0..n {
        for j in 0..n {
            v.push(lp.add_nonneg(((i * 7 + j * 3) % 10 + 1) as f64));
        }
    }
    for i in 0..n {
        lp.add_eq((0..n).map(|j| (v[i * n + j], 1.0)), 1.0);
    }
    for j in 0..n {
        lp.add_eq((0..n).map(|i| (v[i * n + j], 1.0)), 1.0);
    }
    (lp, v)
}

fn cut_row(v: &[VarId], n: usize, k: usize) -> Vec<(VarId, f64)> {
    (0..n).step_by(2).map(|j| (v[k * n + j], 1.0)).collect()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

/// Warm re-solve time per appended cut vs. rebuilding from scratch.
///
/// Warm: one `IncrementalLp` absorbs `cuts` rows one at a time, timing only
/// the re-solves. Cold: for each prefix length, rebuild the whole problem
/// and solve from scratch — what every cutting-plane round cost before the
/// incremental engine. Returns `(warm_ns, cold_ns, speedup)` medians.
fn warm_vs_cold_lp(n: usize, cuts: usize, reps: usize) -> (f64, f64, f64) {
    let opts = SimplexOptions::default();
    let mut warm_ns = Vec::new();
    let mut cold_ns = Vec::new();
    for _ in 0..reps {
        let (lp, v) = transportation_lp(n, &opts);
        let mut inc = IncrementalLp::new(lp);
        inc.solve().expect("base transportation LP solves");
        for k in 0..cuts {
            inc.add_le(cut_row(&v, n, k), 0.6);
            let t = Instant::now();
            let sol = inc.solve().expect("warm re-solve succeeds");
            warm_ns.push(t.elapsed().as_nanos() as f64);
            assert_eq!(sol.status, Status::Optimal);
        }
        for upto in 1..=cuts {
            let (mut lp, v) = transportation_lp(n, &opts);
            for k in 0..upto {
                lp.add_le(cut_row(&v, n, k), 0.6);
            }
            let t = Instant::now();
            let sol = lp.solve().expect("cold re-solve succeeds");
            cold_ns.push(t.elapsed().as_nanos() as f64);
            assert_eq!(sol.status, Status::Optimal);
        }
    }
    let w = median(warm_ns);
    let c = median(cold_ns);
    (w, c, c / w)
}

/// The instance the CLI's `solve` command builds for a named topology.
/// `mlu = None` matches `--mlu 0`: no optimal-routing normalization (the
/// MCF LP it solves dwarfs the robust solve on Deltacom/ION-scale inputs).
fn cli_instance(
    name: &str,
    tunnels: usize,
    f: usize,
    mlu: Option<f64>,
) -> (Instance, FailureModel) {
    let topo = zoo::build(name);
    let mut tm = gravity(&topo, 1);
    tm.truncate_to_top_k(200);
    if let Some(target) = mlu {
        let (scaled, _) = scale_to_mlu(&topo, &tm, target);
        tm = scaled;
    }
    let inst = tunnel_instance(&topo, &tm, tunnels);
    (inst, FailureModel::links(f))
}

fn robust_opts(engine: EngineKind) -> RobustOptions {
    let lp = match engine {
        EngineKind::Sparse => SimplexOptions::default(),
        EngineKind::Dense => SimplexOptions {
            engine: EngineKind::Dense,
            pricing: Pricing::Dantzig,
            presolve: false,
            ..SimplexOptions::default()
        },
    };
    RobustOptions {
        lp,
        threads: 1,
        ..RobustOptions::default()
    }
}

/// Digests of the same plan realized through both linear-algebra kernels;
/// `factor_dense_compat` makes these byte-identical by construction.
fn kernel_digests(inst: &Instance, fm: &FailureModel, sol: &RobustSolution) -> (u64, u64) {
    let served: Vec<f64> = inst
        .pair_ids()
        .map(|p| sol.z[p.0] * inst.demand(p))
        .collect();
    let d = validate_all_with(
        inst,
        fm,
        &sol.a,
        &sol.b,
        &served,
        1e-6,
        RealizeKernel::Dense,
    );
    let s = validate_all_with(
        inst,
        fm,
        &sol.a,
        &sol.b,
        &served,
        1e-6,
        RealizeKernel::Sparse,
    );
    (d.digest(), s.digest())
}

struct Agreement {
    topo: &'static str,
    obj_sparse: f64,
    obj_dense: f64,
    /// (dense-kernel digest, sparse-kernel digest) of the sparse engine's plan.
    sparse_plan: (u64, u64),
    /// Same pair for the dense engine's plan.
    dense_plan: (u64, u64),
    sparse_secs: f64,
    dense_secs: f64,
}

fn engine_agreement(topo: &'static str) -> Agreement {
    let (inst, fm) = cli_instance(topo, 3, 1, Some(0.6));
    let t = Instant::now();
    let sparse = solve_pcf_tf(&inst, &fm, &robust_opts(EngineKind::Sparse));
    let sparse_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let dense = solve_pcf_tf(&inst, &fm, &robust_opts(EngineKind::Dense));
    let dense_secs = t.elapsed().as_secs_f64();
    Agreement {
        topo,
        obj_sparse: sparse.objective,
        obj_dense: dense.objective,
        sparse_plan: kernel_digests(&inst, &fm, &sparse),
        dense_plan: kernel_digests(&inst, &fm, &dense),
        sparse_secs,
        dense_secs,
    }
}

struct LargeSolve {
    topo: &'static str,
    nodes: usize,
    links: usize,
    objective: f64,
    solve_secs: f64,
    validate_secs: f64,
    congestion_free: bool,
}

fn large_solve(topo_name: &'static str) -> LargeSolve {
    let topo = zoo::build(topo_name);
    let (nodes, links) = (topo.node_count(), topo.link_count());
    let (inst, fm) = cli_instance(topo_name, 3, 1, None);
    let t = Instant::now();
    let sol = solve_pcf_tf(&inst, &fm, &RobustOptions::default());
    let solve_secs = t.elapsed().as_secs_f64();
    let served: Vec<f64> = inst
        .pair_ids()
        .map(|p| sol.z[p.0] * inst.demand(p))
        .collect();
    let t = Instant::now();
    let report = validate_all(&inst, &fm, &sol.a, &sol.b, &served, 1e-6);
    let validate_secs = t.elapsed().as_secs_f64();
    LargeSolve {
        topo: topo_name,
        nodes,
        links,
        objective: sol.objective,
        solve_secs,
        validate_secs,
        congestion_free: report.congestion_free(),
    }
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_lp.json".to_string());
    let mut failures = Vec::new();

    println!("warm vs cold (transportation 24x24, 10 cuts, 5 reps)...");
    let (warm_ns, cold_ns, speedup) = warm_vs_cold_lp(24, 10, 5);
    println!(
        "  warm {:.3} ms, cold {:.3} ms, speedup {:.1}x",
        warm_ns / 1e6,
        cold_ns / 1e6,
        speedup
    );
    if speedup < 5.0 {
        failures.push(format!("warm-solve speedup {speedup:.2}x < 5x"));
    }

    let mut agreements = Vec::new();
    for topo in ["Abilene", "Sprint"] {
        println!("engine agreement on {topo} (pcf-tf, f=1)...");
        let a = engine_agreement(topo);
        println!(
            "  sparse {:.9} ({:.2}s, kernel digests {:016x}/{:016x}) vs \
             dense {:.9} ({:.2}s, kernel digests {:016x}/{:016x})",
            a.obj_sparse,
            a.sparse_secs,
            a.sparse_plan.0,
            a.sparse_plan.1,
            a.obj_dense,
            a.dense_secs,
            a.dense_plan.0,
            a.dense_plan.1,
        );
        let tol = 1e-6 * (1.0 + a.obj_dense.abs());
        if (a.obj_sparse - a.obj_dense).abs() > tol {
            failures.push(format!(
                "{topo}: objective mismatch {} vs {}",
                a.obj_sparse, a.obj_dense
            ));
        }
        if a.sparse_plan.0 != a.sparse_plan.1 {
            failures.push(format!(
                "{topo}: sparse-engine plan digests diverge across kernels: \
                 {:016x} vs {:016x}",
                a.sparse_plan.0, a.sparse_plan.1
            ));
        }
        if a.dense_plan.0 != a.dense_plan.1 {
            failures.push(format!(
                "{topo}: dense-engine plan digests diverge across kernels: \
                 {:016x} vs {:016x}",
                a.dense_plan.0, a.dense_plan.1
            ));
        }
        agreements.push(a);
    }

    let mut larges = Vec::new();
    for topo in ["Deltacom", "ION"] {
        println!("large solve on {topo} (pcf-tf, f=1, sparse engine)...");
        let l = large_solve(topo);
        println!(
            "  objective {:.6}, solve {:.1}s, validate {:.1}s, congestion-free: {}",
            l.objective, l.solve_secs, l.validate_secs, l.congestion_free
        );
        if !l.congestion_free {
            failures.push(format!("{topo}: plan not congestion-free"));
        }
        larges.push(l);
    }

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"lp_sparse\",\n");
    json.push_str(&format!(
        "  \"warm_vs_cold\": {{\"instance\": \"transportation_24x24_10cuts\", \
         \"warm_resolve_ns\": {warm_ns:.1}, \"cold_resolve_ns\": {cold_ns:.1}, \
         \"speedup\": {speedup:.2}}},\n"
    ));
    json.push_str("  \"engine_agreement\": [\n");
    for (i, a) in agreements.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"topology\": \"{}\", \"objective_sparse\": {:.9}, \
             \"objective_dense\": {:.9}, \
             \"sparse_plan_digest_dense_kernel\": \"{:016x}\", \
             \"sparse_plan_digest_sparse_kernel\": \"{:016x}\", \
             \"dense_plan_digest_dense_kernel\": \"{:016x}\", \
             \"dense_plan_digest_sparse_kernel\": \"{:016x}\", \
             \"sparse_secs\": {:.3}, \"dense_secs\": {:.3}}}{}\n",
            a.topo,
            a.obj_sparse,
            a.obj_dense,
            a.sparse_plan.0,
            a.sparse_plan.1,
            a.dense_plan.0,
            a.dense_plan.1,
            a.sparse_secs,
            a.dense_secs,
            if i + 1 == agreements.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n  \"large_topologies\": [\n");
    for (i, l) in larges.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"topology\": \"{}\", \"nodes\": {}, \"links\": {}, \
             \"objective\": {:.9}, \"solve_secs\": {:.3}, \"validate_secs\": {:.3}, \
             \"congestion_free\": {}}}{}\n",
            l.topo,
            l.nodes,
            l.links,
            l.objective,
            l.solve_secs,
            l.validate_secs,
            l.congestion_free,
            if i + 1 == larges.len() { "" } else { "," },
        ));
    }
    json.push_str(&format!("  ],\n  \"pass\": {}\n}}\n", failures.is_empty()));
    std::fs::write(&out, &json).expect("write report");
    println!("wrote {out}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("all acceptance bounds met");
}
