//! Traffic matrix generation for the PCF reproduction.
//!
//! The paper (§5) uses the gravity model \[40\] to generate traffic matrices,
//! scaled so that the utilization of the most congested link (MLU) lands in
//! `[0.6, 0.63]`, and twelve matrices per topology "to model a traffic
//! matrix every 2 hours".
//!
//! This crate provides the gravity model and diurnal multi-matrix sets; the
//! MLU normalisation itself needs an optimal concurrent-flow solve and
//! therefore lives in `pcf-core::scale`.

use pcf_rng::Pcg32;
use pcf_topology::{NodeId, Topology};

/// A dense traffic matrix: demand per ordered node pair.
#[derive(Debug, Clone)]
pub struct TrafficMatrix {
    n: usize,
    demand: Vec<f64>, // n x n row-major, diagonal zero
}

impl TrafficMatrix {
    /// Creates an all-zero matrix over `n` nodes.
    pub fn zeros(n: usize) -> Self {
        TrafficMatrix {
            n,
            demand: vec![0.0; n * n],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Demand from `s` to `t` (zero on the diagonal).
    #[inline]
    pub fn demand(&self, s: NodeId, t: NodeId) -> f64 {
        self.demand[s.index() * self.n + t.index()]
    }

    /// Sets the demand from `s` to `t`.
    ///
    /// # Panics
    /// Panics on the diagonal, negative, or non-finite demand.
    pub fn set_demand(&mut self, s: NodeId, t: NodeId, d: f64) {
        assert!(s != t, "diagonal demand is meaningless");
        assert!(d.is_finite() && d >= 0.0, "demand must be non-negative");
        self.demand[s.index() * self.n + t.index()] = d;
    }

    /// Total demand over all pairs.
    pub fn total(&self) -> f64 {
        self.demand.iter().sum()
    }

    /// Multiplies every demand by `factor`.
    pub fn scale(&mut self, factor: f64) {
        assert!(factor.is_finite() && factor >= 0.0);
        for d in &mut self.demand {
            *d *= factor;
        }
    }

    /// A copy scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> TrafficMatrix {
        let mut tm = self.clone();
        tm.scale(factor);
        tm
    }

    /// All ordered pairs with strictly positive demand.
    pub fn positive_pairs(&self) -> Vec<(NodeId, NodeId, f64)> {
        let mut out = Vec::new();
        for s in 0..self.n {
            for t in 0..self.n {
                let d = self.demand[s * self.n + t];
                if d > 0.0 {
                    out.push((NodeId(s as u32), NodeId(t as u32), d));
                }
            }
        }
        out
    }

    /// Keeps only the largest demands covering at least `fraction` of the
    /// total demand mass, zeroing the rest. Returns the number of pairs kept.
    ///
    /// Used to keep LP sizes tractable on the largest topologies; the
    /// truncation is reported by the experiment harness.
    pub fn truncate_to_mass(&mut self, fraction: f64) -> usize {
        assert!((0.0..=1.0).contains(&fraction));
        let mut pairs = self.positive_pairs();
        pairs.sort_by(|a, b| b.2.total_cmp(&a.2));
        let total = self.total();
        let mut kept_mass = 0.0;
        let mut kept = 0usize;
        let mut keep = vec![false; self.n * self.n];
        for (s, t, d) in &pairs {
            if kept_mass >= fraction * total && kept > 0 {
                break;
            }
            keep[s.index() * self.n + t.index()] = true;
            kept_mass += d;
            kept += 1;
        }
        for s in 0..self.n {
            for t in 0..self.n {
                if !keep[s * self.n + t] {
                    self.demand[s * self.n + t] = 0.0;
                }
            }
        }
        kept
    }

    /// Keeps only the `k` largest demands, zeroing the rest.
    pub fn truncate_to_top_k(&mut self, k: usize) -> usize {
        let mut pairs = self.positive_pairs();
        pairs.sort_by(|a, b| b.2.total_cmp(&a.2));
        pairs.truncate(k);
        let mut keep = vec![false; self.n * self.n];
        for (s, t, _) in &pairs {
            keep[s.index() * self.n + t.index()] = true;
        }
        for (d, k) in self.demand.iter_mut().zip(&keep) {
            if !k {
                *d = 0.0;
            }
        }
        pairs.len()
    }
}

/// Gravity-model traffic: node masses are proportional to total incident
/// capacity perturbed by a lognormal-ish factor, and
/// `d(s,t) ∝ mass(s) * mass(t)`.
///
/// The matrix is normalised so total demand equals the topology's total
/// capacity; use `pcf-core::scale` to renormalise to a target MLU as the
/// paper does. Deterministic in `seed`.
pub fn gravity(topo: &Topology, seed: u64) -> TrafficMatrix {
    let n = topo.node_count();
    let mut rng = Pcg32::seed_from_u64(seed);
    let mut mass = vec![0.0f64; n];
    for u in topo.nodes() {
        let cap: f64 = topo
            .incident(u)
            .iter()
            .map(|&(_, l)| topo.capacity(l))
            .sum();
        // Multiplicative noise keeps masses positive and skewed, like city
        // populations in the original gravity formulation.
        let noise = rng.normal();
        mass[u.index()] = cap * (0.25 * noise).exp();
    }
    let mass_sum: f64 = mass.iter().sum();
    let mut tm = TrafficMatrix::zeros(n);
    for s in topo.nodes() {
        for t in topo.nodes() {
            if s != t {
                let d = mass[s.index()] * mass[t.index()] / (mass_sum * mass_sum);
                tm.set_demand(s, t, d);
            }
        }
    }
    // Normalise: total demand = total capacity (MLU scaling comes later).
    let total = tm.total();
    if total > 0.0 {
        tm.scale(topo.total_capacity() / total);
    }
    tm
}

/// A family of `count` gravity matrices with a diurnal amplitude pattern, as
/// the paper's "12 different demands ... to model a traffic matrix every 2
/// hours".
pub fn diurnal_set(topo: &Topology, seed: u64, count: usize) -> Vec<TrafficMatrix> {
    (0..count)
        .map(|i| {
            let mut tm = gravity(topo, seed.wrapping_add(i as u64));
            // Sinusoidal day shape: troughs near 40% of peak.
            let phase = 2.0 * std::f64::consts::PI * (i as f64) / (count.max(1) as f64);
            let amp = 0.7 + 0.3 * phase.sin();
            tm.scale(amp);
            tm
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcf_topology::zoo;

    #[test]
    fn gravity_is_deterministic_and_positive() {
        let t = zoo::build("Sprint");
        let a = gravity(&t, 7);
        let b = gravity(&t, 7);
        for (s, tt) in t.node_pairs() {
            assert_eq!(a.demand(s, tt), b.demand(s, tt));
            assert!(a.demand(s, tt) > 0.0);
        }
    }

    #[test]
    fn gravity_seeds_differ() {
        let t = zoo::build("Sprint");
        let a = gravity(&t, 1);
        let b = gravity(&t, 2);
        let any_diff = t
            .node_pairs()
            .any(|(s, tt)| (a.demand(s, tt) - b.demand(s, tt)).abs() > 1e-12);
        assert!(any_diff);
    }

    #[test]
    fn gravity_total_matches_capacity() {
        let t = zoo::build("Sprint");
        let tm = gravity(&t, 3);
        assert!((tm.total() - t.total_capacity()).abs() < 1e-6 * t.total_capacity());
    }

    #[test]
    fn diagonal_is_zero() {
        let t = zoo::build("Sprint");
        let tm = gravity(&t, 3);
        for u in t.nodes() {
            assert_eq!(tm.demand(u, u), 0.0);
        }
    }

    #[test]
    fn diurnal_set_has_count_and_variation() {
        let t = zoo::build("Sprint");
        let set = diurnal_set(&t, 11, 12);
        assert_eq!(set.len(), 12);
        let totals: Vec<f64> = set.iter().map(|tm| tm.total()).collect();
        let min = totals.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = totals.iter().cloned().fold(0.0f64, f64::max);
        assert!(max > min * 1.2, "diurnal amplitude should vary: {totals:?}");
    }

    #[test]
    fn scale_multiplies_all_entries() {
        let t = zoo::build("Sprint");
        let tm = gravity(&t, 5);
        let tm2 = tm.scaled(2.0);
        for (s, tt) in t.node_pairs() {
            assert!((tm2.demand(s, tt) - 2.0 * tm.demand(s, tt)).abs() < 1e-12);
        }
    }

    #[test]
    fn truncate_to_mass_keeps_heaviest() {
        let t = zoo::build("Sprint");
        let mut tm = gravity(&t, 5);
        let before = tm.total();
        let kept = tm.truncate_to_mass(0.9);
        assert!(kept > 0);
        assert!(tm.total() >= 0.9 * before - 1e-9);
        assert!(kept < t.node_count() * (t.node_count() - 1));
    }

    #[test]
    fn truncate_top_k() {
        let t = zoo::build("Sprint");
        let mut tm = gravity(&t, 5);
        let kept = tm.truncate_to_top_k(10);
        assert_eq!(kept, 10);
        assert_eq!(tm.positive_pairs().len(), 10);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn diagonal_set_panics() {
        let mut tm = TrafficMatrix::zeros(3);
        tm.set_demand(NodeId(0), NodeId(0), 1.0);
    }
}
