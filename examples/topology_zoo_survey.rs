//! Survey PCF's benefit over FFC across the evaluation topologies — a
//! command-line miniature of the paper's Fig. 11.
//!
//! ```text
//! cargo run --release --example topology_zoo_survey [max_links]
//! ```
//!
//! `max_links` (default 40) bounds the topology size so the survey finishes
//! quickly; raise it to cover more of the 21 networks.

use pcf_core::{
    pcf_ls_instance, scale_to_mlu, solve_ffc, solve_pcf_ls, solve_pcf_tf, tunnel_instance,
    FailureModel, RobustOptions,
};
use pcf_topology::zoo;
use pcf_traffic::gravity;

fn main() {
    let max_links: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    let fm = FailureModel::links(1);
    let opts = RobustOptions::default();

    println!(
        "{:<16} {:>5} {:>5} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "topology", "|V|", "|E|", "FFC", "PCF-TF", "PCF-LS", "TF/FFC", "LS/FFC"
    );
    let mut ratios_tf = Vec::new();
    let mut ratios_ls = Vec::new();
    for topo in zoo::build_all() {
        if topo.link_count() > max_links {
            continue;
        }
        let (tm, _) = scale_to_mlu(&topo, &gravity(&topo, 1), 0.6);
        let ffc = solve_ffc(&tunnel_instance(&topo, &tm, 2), &fm, &opts);
        let tf = solve_pcf_tf(&tunnel_instance(&topo, &tm, 3), &fm, &opts);
        let ls = solve_pcf_ls(&pcf_ls_instance(&topo, &tm, 3), &fm, &opts);
        let rt = tf.objective / ffc.objective;
        let rl = ls.objective / ffc.objective;
        ratios_tf.push(rt);
        ratios_ls.push(rl);
        println!(
            "{:<16} {:>5} {:>5} {:>8.4} {:>8.4} {:>8.4} {:>7.2}x {:>7.2}x",
            topo.name(),
            topo.node_count(),
            topo.link_count(),
            ffc.objective,
            tf.objective,
            ls.objective,
            rt,
            rl
        );
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\nmean improvement over FFC: PCF-TF {:.2}x, PCF-LS {:.2}x (paper: 1.11x / 1.22x across all 21)",
        mean(&ratios_tf),
        mean(&ratios_ls)
    );
}
