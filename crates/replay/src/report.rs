//! Replaying traces and aggregating the outcome.
//!
//! [`replay_trace`] drives a [`ReplayEngine`] through one
//! [`EventTrace`], realizing the routing after every event and checking
//! it the same way the offline validator does (utilization range, arc
//! capacities). [`replay_batch`] replays many traces concurrently —
//! one engine (and one cache) per trace, traces distributed over scoped
//! threads exactly like the robust engine's separation workers — and
//! merges the per-trace reports. Results are deterministic regardless of
//! thread count: every trace is independent and reports merge in trace
//! order.

use crate::engine::{CacheStats, ReplayEngine};
use crate::trace::EventTrace;
use pcf_core::{Instance, ViolationKind};
// audit:allow(no-wallclock-in-solver, the latency histogram is measurement output and never feeds routing decisions)
use std::time::Instant;

/// Options for [`replay_trace`] / [`replay_batch`].
#[derive(Debug, Clone)]
pub struct ReplayOptions {
    /// Relative feasibility tolerance (same meaning as `realize_routing`).
    pub tol: f64,
    /// Retained factorizations per engine; `0` disables the cache (cold
    /// baseline).
    pub cache_capacity: usize,
    /// Worker threads for [`replay_batch`]. `0` means "use
    /// [`std::thread::available_parallelism`]"; `1` replays inline.
    pub threads: usize,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            tol: 1e-6,
            cache_capacity: 1024,
            threads: 0,
        }
    }
}

/// One failed event during replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayViolation {
    /// Index of the trace within the batch (0 for single-trace replays).
    pub trace: usize,
    /// Index of the offending event within its trace.
    pub event: usize,
    /// What went wrong (shared with the offline validator).
    pub kind: ViolationKind,
}

/// Realization-latency distribution over the replayed events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    samples_ns: Vec<u64>,
}

impl LatencyHistogram {
    /// Records one realization latency.
    pub fn record(&mut self, ns: u64) {
        self.samples_ns.push(ns);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples_ns.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_ns.is_empty()
    }

    /// The q-th percentile (nearest-rank) in nanoseconds; 0 when empty.
    /// `q` is clamped to `[0, 100]`.
    pub fn percentile_ns(&self, q: f64) -> u64 {
        if self.samples_ns.is_empty() {
            return 0;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_unstable();
        let q = q.clamp(0.0, 100.0) / 100.0;
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
        sorted[rank.min(sorted.len() - 1)]
    }

    /// Median latency in nanoseconds.
    pub fn p50_ns(&self) -> u64 {
        self.percentile_ns(50.0)
    }

    /// 99th-percentile latency in nanoseconds.
    pub fn p99_ns(&self) -> u64 {
        self.percentile_ns(99.0)
    }

    /// Mean latency in nanoseconds; 0 when empty.
    pub fn mean_ns(&self) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        self.samples_ns.iter().map(|&n| n as f64).sum::<f64>() / self.samples_ns.len() as f64
    }

    /// Merges another histogram's samples into this one.
    pub fn absorb(&mut self, other: &LatencyHistogram) {
        self.samples_ns.extend_from_slice(&other.samples_ns);
    }
}

/// Outcome of replaying one trace (or, merged, a whole batch).
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// Events replayed.
    pub events: usize,
    /// Per-event maximum arc utilization, in event order (batches
    /// concatenate in trace order).
    pub event_utilization: Vec<f64>,
    /// Highest arc utilization over the whole replay.
    pub max_utilization: f64,
    /// Events whose realization failed or violated a capacity.
    pub violations: Vec<ReplayViolation>,
    /// Realization latencies.
    pub latency: LatencyHistogram,
    /// Factorization-cache counters (batches sum per-engine counters).
    pub cache: CacheStats,
}

impl ReplayReport {
    /// True when every event realized a feasible, congestion-free routing.
    pub fn congestion_free(&self) -> bool {
        self.violations.is_empty()
    }

    /// Merges per-trace reports (in the given order) into one.
    pub fn merge(reports: &[ReplayReport]) -> ReplayReport {
        let mut out = ReplayReport {
            events: 0,
            event_utilization: Vec::new(),
            max_utilization: 0.0,
            violations: Vec::new(),
            latency: LatencyHistogram::default(),
            cache: CacheStats::default(),
        };
        for r in reports {
            out.events += r.events;
            out.event_utilization
                .extend_from_slice(&r.event_utilization);
            out.max_utilization = out.max_utilization.max(r.max_utilization);
            out.violations.extend_from_slice(&r.violations);
            out.latency.absorb(&r.latency);
            out.cache.absorb(&r.cache);
        }
        out
    }

    /// Renders the replay outcome as JSON containing *only* fields that
    /// are a pure function of the inputs: event counts, utilizations, the
    /// violation list, cache counters, and an FNV-1a digest over the
    /// per-event utilization bit patterns. Latency statistics are
    /// deliberately excluded — they vary run to run — so the output is
    /// byte-identical across repeated runs and across thread counts
    /// (asserted by `deterministic_json_is_byte_identical`).
    pub fn deterministic_json(&self) -> String {
        // FNV-1a over the exact f64 bit patterns: any nondeterminism in
        // the realization path shows up as a digest mismatch even when
        // the rounded summary fields happen to agree.
        let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
        for &u in &self.event_utilization {
            for byte in u.to_bits().to_le_bytes() {
                digest ^= u64::from(byte);
                digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        let mut violations = String::new();
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                violations.push_str(", ");
            }
            violations.push_str(&format!(
                "{{ \"trace\": {}, \"event\": {} }}",
                v.trace, v.event
            ));
        }
        format!(
            "{{\n  \"events\": {},\n  \"max_utilization\": \"{:x}\",\n  \
             \"utilization_digest\": \"{:016x}\",\n  \"violations\": [{}],\n  \
             \"cache\": {{ \"hits\": {}, \"misses\": {}, \"evictions\": {} }}\n}}\n",
            self.events,
            self.max_utilization.to_bits(),
            digest,
            violations,
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
        )
    }

    /// Renders the report as a small JSON object (counts and summary
    /// statistics, not the raw per-event data).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"events\": {},\n  \"max_utilization\": {:.6},\n  \"violations\": {},\n  \
             \"latency_ns\": {{ \"p50\": {}, \"p99\": {}, \"mean\": {:.1} }},\n  \
             \"cache\": {{ \"hits\": {}, \"misses\": {}, \"evictions\": {}, \"hit_rate\": {:.4} }}\n}}\n",
            self.events,
            self.max_utilization,
            self.violations.len(),
            self.latency.p50_ns(),
            self.latency.p99_ns(),
            self.latency.mean_ns(),
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            self.cache.hit_rate(),
        )
    }
}

/// Replays one trace on a fresh engine and reports the outcome.
///
/// `served[p] = z_p * d_p`, as everywhere in the realization API.
pub fn replay_trace(
    inst: &Instance,
    a: &[f64],
    b: &[f64],
    served: &[f64],
    trace: &EventTrace,
    opts: &ReplayOptions,
) -> ReplayReport {
    replay_indexed(inst, a, b, served, trace, opts, 0)
}

fn replay_indexed(
    inst: &Instance,
    a: &[f64],
    b: &[f64],
    served: &[f64],
    trace: &EventTrace,
    opts: &ReplayOptions,
    trace_idx: usize,
) -> ReplayReport {
    let topo = inst.topo();
    let mut engine = ReplayEngine::new(inst, a, b, served, opts.tol, opts.cache_capacity);
    let mut event_utilization = Vec::with_capacity(trace.len());
    let mut max_utilization = 0.0f64;
    let mut violations = Vec::new();
    let mut latency = LatencyHistogram::default();
    for (i, ev) in trace.events.iter().enumerate() {
        if let Err(e) = engine.apply(ev) {
            violations.push(ReplayViolation {
                trace: trace_idx,
                event: i,
                kind: ViolationKind::Realize(e),
            });
            event_utilization.push(0.0);
            continue;
        }
        // audit:allow(no-wallclock-in-solver, timing wraps the realization call; the result is unaffected)
        let t0 = Instant::now();
        let realized = engine.realize();
        latency.record(t0.elapsed().as_nanos() as u64);
        match realized {
            Err(e) => {
                violations.push(ReplayViolation {
                    trace: trace_idx,
                    event: i,
                    kind: ViolationKind::Realize(e),
                });
                event_utilization.push(0.0);
            }
            Ok(routing) => {
                let mut peak = 0.0f64;
                for arc in topo.arcs() {
                    let load = routing.arc_loads[arc.index()];
                    let cap = topo.capacity(arc.link());
                    if load > cap * (1.0 + opts.tol) + opts.tol {
                        violations.push(ReplayViolation {
                            trace: trace_idx,
                            event: i,
                            kind: ViolationKind::Overload {
                                arc: arc.index(),
                                load,
                                capacity: cap,
                            },
                        });
                    }
                    peak = peak.max(load / cap);
                }
                event_utilization.push(peak);
                max_utilization = max_utilization.max(peak);
            }
        }
    }
    ReplayReport {
        events: trace.len(),
        event_utilization,
        max_utilization,
        violations,
        latency,
        cache: engine.cache_stats(),
    }
}

/// Replays every trace concurrently (one engine per trace, traces chunked
/// over scoped threads) and merges the reports in trace order.
pub fn replay_batch(
    inst: &Instance,
    a: &[f64],
    b: &[f64],
    served: &[f64],
    traces: &[EventTrace],
    opts: &ReplayOptions,
) -> ReplayReport {
    let threads = if opts.threads > 0 {
        opts.threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    let nt = threads.max(1).min(traces.len().max(1));
    if nt <= 1 {
        let reports: Vec<ReplayReport> = traces
            .iter()
            .enumerate()
            .map(|(i, t)| replay_indexed(inst, a, b, served, t, opts, i))
            .collect();
        return ReplayReport::merge(&reports);
    }
    let mut out: Vec<Option<ReplayReport>> = Vec::new();
    out.resize_with(traces.len(), || None);
    let chunk = traces.len().div_ceil(nt);
    std::thread::scope(|s| {
        for (ci, (ts, slots)) in traces.chunks(chunk).zip(out.chunks_mut(chunk)).enumerate() {
            s.spawn(move || {
                for (j, (slot, t)) in slots.iter_mut().zip(ts).enumerate() {
                    *slot = Some(replay_indexed(inst, a, b, served, t, opts, ci * chunk + j));
                }
            });
        }
    });
    let reports: Vec<ReplayReport> = out
        .into_iter()
        // audit:allow(no-panic-paths, chunks_mut covers every slot and the scope joins before reads)
        .map(|r| r.expect("every trace replayed"))
        .collect();
    ReplayReport::merge(&reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcf_core::{pcf_ls_instance, solve_pcf_ls, FailureModel, RobustOptions};
    use pcf_topology::zoo;
    use pcf_traffic::gravity;

    fn sprint_plan(f: usize) -> (Instance, Vec<f64>, Vec<f64>, Vec<f64>) {
        let topo = zoo::build("Sprint");
        let tm = gravity(&topo, 11);
        let inst = pcf_ls_instance(&topo, &tm, 3);
        let sol = solve_pcf_ls(&inst, &FailureModel::links(f), &RobustOptions::default());
        let served: Vec<f64> = inst
            .pair_ids()
            .map(|p| sol.z[p.0] * inst.demand(p))
            .collect();
        (inst, sol.a, sol.b, served)
    }

    #[test]
    fn solved_plan_replays_violation_free() {
        let (inst, a, b, served) = sprint_plan(1);
        let trace = EventTrace::flaps(inst.topo(), 300, 1, 21);
        let report = replay_trace(&inst, &a, &b, &served, &trace, &ReplayOptions::default());
        assert_eq!(report.events, 300);
        assert_eq!(report.event_utilization.len(), 300);
        assert!(
            report.congestion_free(),
            "violations: {:?}",
            &report.violations[..report.violations.len().min(3)]
        );
        assert!(report.max_utilization <= 1.0 + 1e-6);
        assert!(report.cache.hit_rate() > 0.0);
        assert_eq!(report.latency.len(), 300);
    }

    #[test]
    fn overdriven_plan_reports_violations() {
        let (inst, a, b, mut served) = sprint_plan(1);
        // Demand far beyond what the plan reserved.
        for s in &mut served {
            *s *= 50.0;
        }
        let trace = EventTrace::flaps(inst.topo(), 50, 1, 21);
        let report = replay_trace(&inst, &a, &b, &served, &trace, &ReplayOptions::default());
        assert!(!report.congestion_free());
    }

    #[test]
    fn batch_is_deterministic_across_thread_counts() {
        let (inst, a, b, served) = sprint_plan(1);
        let traces: Vec<EventTrace> = (0..6)
            .map(|s| EventTrace::flaps(inst.topo(), 60, 1, 100 + s))
            .collect();
        let run = |threads: usize| {
            let opts = ReplayOptions {
                threads,
                ..ReplayOptions::default()
            };
            replay_batch(&inst, &a, &b, &served, &traces, &opts)
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.events, 6 * 60);
        assert_eq!(serial.events, parallel.events);
        assert_eq!(serial.event_utilization, parallel.event_utilization);
        assert_eq!(serial.violations, parallel.violations);
        assert_eq!(serial.cache, parallel.cache);
    }

    #[test]
    fn cold_and_cached_replays_agree_on_outcomes() {
        let (inst, a, b, served) = sprint_plan(1);
        let trace = EventTrace::flaps(inst.topo(), 120, 1, 77);
        let cached = replay_trace(&inst, &a, &b, &served, &trace, &ReplayOptions::default());
        let cold_opts = ReplayOptions {
            cache_capacity: 0,
            ..ReplayOptions::default()
        };
        let cold = replay_trace(&inst, &a, &b, &served, &trace, &cold_opts);
        assert_eq!(cached.event_utilization, cold.event_utilization);
        assert_eq!(cached.violations, cold.violations);
        assert_eq!(cold.cache.hits, 0);
        assert_eq!(cold.cache.misses, 120);
    }

    #[test]
    fn histogram_percentiles_are_ordered() {
        let mut h = LatencyHistogram::default();
        for n in [5u64, 1, 9, 3, 7] {
            h.record(n);
        }
        assert_eq!(h.p50_ns(), 5);
        assert_eq!(h.p99_ns(), 9);
        assert_eq!(h.percentile_ns(0.0), 1);
        assert!((h.mean_ns() - 5.0).abs() < 1e-12);
        assert_eq!(LatencyHistogram::default().p99_ns(), 0);
    }

    #[test]
    fn deterministic_json_is_byte_identical() {
        let (inst, a, b, served) = sprint_plan(1);
        let traces: Vec<EventTrace> = (0..6)
            .map(|s| EventTrace::flaps(inst.topo(), 40, 1, 300 + s))
            .collect();
        let run = |threads: usize| {
            let opts = ReplayOptions {
                threads,
                ..ReplayOptions::default()
            };
            replay_batch(&inst, &a, &b, &served, &traces, &opts).deterministic_json()
        };
        // Two runs at the same thread count, and two different thread
        // counts, must all serialize to the same bytes.
        let first = run(4);
        let second = run(4);
        assert_eq!(first, second, "4-thread replays diverged");
        let serial = run(1);
        assert_eq!(first, serial, "1-thread vs 4-thread replays diverged");
        assert!(first.contains("\"utilization_digest\""));
        assert!(
            !first.contains("latency"),
            "wall-clock leaked into deterministic output"
        );
    }

    #[test]
    fn json_summary_contains_the_headline_numbers() {
        let (inst, a, b, served) = sprint_plan(1);
        let trace = EventTrace::flaps(inst.topo(), 20, 1, 5);
        let report = replay_trace(&inst, &a, &b, &served, &trace, &ReplayOptions::default());
        let json = report.to_json();
        assert!(json.contains("\"events\": 20"));
        assert!(json.contains("\"hit_rate\""));
        assert!(json.contains("\"p99\""));
    }
}
