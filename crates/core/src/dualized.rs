//! The paper's dualized (polynomial-size) formulations, built verbatim.
//!
//! The appendix derives model (D2): the inner worst case of constraint (1)
//! is replaced by its LP dual so the whole model is one polynomial-size LP.
//! The production path in this crate uses cutting planes
//! ([`crate::robust`]), which optimizes over the same relaxed failure
//! polytope; this module exists to cross-validate the two (they must agree
//! to LP tolerance) and as a faithful rendition of the paper's appendix.
//!
//! Supports the pure-tunnel models (FFC, PCF-TF) with the demand-scale and
//! throughput metrics; link-failure budgets only.

use crate::failure::FailureModel;
use crate::instance::Instance;
use crate::objective::Objective;
use pcf_lp::{is_zero, LpProblem, Sense, SimplexOptions, Status, VarId};
use std::fmt;

/// Structured failure from the dualized formulations.
#[derive(Debug, Clone, PartialEq)]
pub enum DualizedError {
    /// The instance has logical sequences, but the dualized models cover
    /// only the pure tunnel schemes (FFC, PCF-TF).
    NotPureTunnels {
        /// Logical sequences the instance carries.
        lss: usize,
    },
    /// The failure model is not a plain `FailureModel::Links` budget — the
    /// only uncertainty set the appendix dualizes.
    UnsupportedFailureModel,
    /// The LP layer rejected the dual program structurally.
    Lp(pcf_lp::SolveError),
    /// The dual LP terminated without optimality (it is bounded and
    /// feasible by construction, so this signals a numerical breakdown).
    NotOptimal(Status),
}

impl fmt::Display for DualizedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DualizedError::NotPureTunnels { lss } => {
                write!(
                    f,
                    "dualized models need a pure tunnel instance ({lss} LSs present)"
                )
            }
            DualizedError::UnsupportedFailureModel => {
                write!(f, "dualized models support plain link budgets only")
            }
            DualizedError::Lp(e) => write!(f, "dual LP rejected: {e}"),
            DualizedError::NotOptimal(s) => write!(f, "dual LP ended {s}"),
        }
    }
}

impl std::error::Error for DualizedError {}

/// Solves the dualized FFC model: for each pair, the worst case over
/// `Σ_l y_l <= f p_st, 0 <= y <= 1` is dualized with multipliers
/// `λ_st` (budget) and `φ_l` (box):
///
/// ```text
/// Σ_l a_l − (f·p_st·λ_st + Σ_l φ_l) >= z_st d_st
/// λ_st + φ_l >= a_l
/// ```
pub fn solve_ffc_dual(
    inst: &Instance,
    fm: &FailureModel,
    objective: Objective,
    lp_opts: &SimplexOptions,
) -> Result<f64, DualizedError> {
    if inst.num_lss() != 0 {
        return Err(DualizedError::NotPureTunnels {
            lss: inst.num_lss(),
        });
    }
    let FailureModel::Links { f } = fm else {
        return Err(DualizedError::UnsupportedFailureModel);
    };
    let topo = inst.topo();
    let mut lp = LpProblem::new(Sense::Maximize);
    lp.set_options(lp_opts.clone());

    let a: Vec<VarId> = inst.tunnel_ids().map(|_| lp.add_nonneg(0.0)).collect();
    // Capacity (per directed arc).
    let mut arc_rows: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); topo.arc_count()];
    for l in inst.tunnel_ids() {
        let path = inst.tunnel(l);
        for (i, &link) in path.links.iter().enumerate() {
            arc_rows[topo.arc_from(link, path.nodes[i]).index()].push((a[l.0], 1.0));
        }
    }
    for arc in topo.arcs() {
        if !arc_rows[arc.index()].is_empty() {
            lp.add_le(arc_rows[arc.index()].clone(), topo.capacity(arc.link()));
        }
    }

    let zshared = matches!(objective, Objective::DemandScale).then(|| lp.add_nonneg(1.0));
    for p in inst.pair_ids() {
        let tunnels = inst.tunnels_of(p);
        if tunnels.is_empty() && is_zero(inst.demand(p)) {
            continue;
        }
        let lam = lp.add_nonneg(0.0);
        let phis: Vec<VarId> = tunnels.iter().map(|_| lp.add_nonneg(0.0)).collect();
        for (i, &l) in tunnels.iter().enumerate() {
            lp.add_ge(vec![(lam, 1.0), (phis[i], 1.0), (a[l.0], -1.0)], 0.0);
        }
        let mut row: Vec<(VarId, f64)> = tunnels.iter().map(|&l| (a[l.0], 1.0)).collect();
        row.push((lam, -((f * inst.p_st(p)) as f64)));
        for &phi in &phis {
            row.push((phi, -1.0));
        }
        let d = inst.demand(p);
        if d > 0.0 {
            let zv = match (objective, zshared) {
                (Objective::DemandScale, Some(z)) => z,
                _ => lp.add_var(0.0, 1.0, d),
            };
            row.push((zv, -d));
        }
        lp.add_ge(row, 0.0);
    }
    let sol = lp.solve().map_err(DualizedError::Lp)?;
    if sol.status != Status::Optimal {
        return Err(DualizedError::NotOptimal(sol.status));
    }
    Ok(sol.objective)
}

/// Solves the dualized PCF-TF model — appendix (D2) verbatim:
///
/// ```text
/// Σ_l a_l − (f λ_st + Σ_e σ_est + Σ_l φ_l) >= z_st d_st
/// π_l + φ_l >= a_l                       ∀ l ∈ T(s,t)
/// −Σ_{l: e∈τ_l} π_l + λ_st + σ_est >= 0  ∀ e
/// ```
pub fn solve_pcf_tf_dual(
    inst: &Instance,
    fm: &FailureModel,
    objective: Objective,
    lp_opts: &SimplexOptions,
) -> Result<f64, DualizedError> {
    if inst.num_lss() != 0 {
        return Err(DualizedError::NotPureTunnels {
            lss: inst.num_lss(),
        });
    }
    let FailureModel::Links { f } = fm else {
        return Err(DualizedError::UnsupportedFailureModel);
    };
    let topo = inst.topo();
    let mut lp = LpProblem::new(Sense::Maximize);
    lp.set_options(lp_opts.clone());

    let a: Vec<VarId> = inst.tunnel_ids().map(|_| lp.add_nonneg(0.0)).collect();
    let mut arc_rows: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); topo.arc_count()];
    for l in inst.tunnel_ids() {
        let path = inst.tunnel(l);
        for (i, &link) in path.links.iter().enumerate() {
            arc_rows[topo.arc_from(link, path.nodes[i]).index()].push((a[l.0], 1.0));
        }
    }
    for arc in topo.arcs() {
        if !arc_rows[arc.index()].is_empty() {
            lp.add_le(arc_rows[arc.index()].clone(), topo.capacity(arc.link()));
        }
    }

    let zshared = matches!(objective, Objective::DemandScale).then(|| lp.add_nonneg(1.0));
    for p in inst.pair_ids() {
        let tunnels = inst.tunnels_of(p);
        if tunnels.is_empty() && is_zero(inst.demand(p)) {
            continue;
        }
        let lam = lp.add_nonneg(0.0);
        let pis: Vec<VarId> = tunnels.iter().map(|_| lp.add_nonneg(0.0)).collect();
        let phis: Vec<VarId> = tunnels.iter().map(|_| lp.add_nonneg(0.0)).collect();
        // Only links that appear in some tunnel of the pair need σ; for the
        // others the x-constraint reduces to λ + σ >= 0 which is free.
        let mut used_links: Vec<pcf_topology::LinkId> = Vec::new();
        for &l in tunnels {
            for &e in &inst.tunnel(l).links {
                if !used_links.contains(&e) {
                    used_links.push(e);
                }
            }
        }
        let sigmas: Vec<VarId> = used_links.iter().map(|_| lp.add_nonneg(0.0)).collect();
        // π_l + φ_l >= a_l
        for (i, &l) in tunnels.iter().enumerate() {
            lp.add_ge(vec![(pis[i], 1.0), (phis[i], 1.0), (a[l.0], -1.0)], 0.0);
        }
        // -Σ_{l: e in τ_l} π_l + λ + σ_e >= 0
        for (ei, &e) in used_links.iter().enumerate() {
            let mut row: Vec<(VarId, f64)> = vec![(lam, 1.0), (sigmas[ei], 1.0)];
            for (i, &l) in tunnels.iter().enumerate() {
                if inst.tunnel(l).links.contains(&e) {
                    row.push((pis[i], -1.0));
                }
            }
            lp.add_ge(row, 0.0);
        }
        // Σ a_l − (f λ + Σ σ + Σ φ) >= z d
        let mut row: Vec<(VarId, f64)> = tunnels.iter().map(|&l| (a[l.0], 1.0)).collect();
        row.push((lam, -(*f as f64)));
        for &s in &sigmas {
            row.push((s, -1.0));
        }
        for &phi in &phis {
            row.push((phi, -1.0));
        }
        let d = inst.demand(p);
        if d > 0.0 {
            let zv = match (objective, zshared) {
                (Objective::DemandScale, Some(z)) => z,
                _ => lp.add_var(0.0, 1.0, d),
            };
            row.push((zv, -d));
        }
        lp.add_ge(row, 0.0);
    }
    let sol = lp.solve().map_err(DualizedError::Lp)?;
    if sol.status != Status::Optimal {
        return Err(DualizedError::NotOptimal(sol.status));
    }
    Ok(sol.objective)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{fig1_instance, fig3_instance, fig5_instance, Fig5Variant};
    use crate::robust::{solve_robust, AdversaryKind, RobustOptions};

    fn cp(inst: &Instance, fm: &FailureModel, kind: AdversaryKind) -> f64 {
        solve_robust(inst, fm, kind, &RobustOptions::default()).objective
    }

    #[test]
    fn ffc_dual_matches_cutting_plane_on_fig1() {
        for k in [3, 4] {
            for f in [1, 2] {
                let inst = fig1_instance(k);
                let fm = FailureModel::links(f);
                let dual = solve_ffc_dual(&inst, &fm, Objective::DemandScale, &Default::default())
                    .unwrap();
                let cut = cp(&inst, &fm, AdversaryKind::FfcTunnelCount);
                assert!(
                    (dual - cut).abs() < 1e-5,
                    "k={k} f={f}: dual {dual} vs cuts {cut}"
                );
            }
        }
    }

    #[test]
    fn pcf_tf_dual_matches_cutting_plane_on_fig1_fig3_fig5() {
        let cases: Vec<(Instance, usize)> = vec![
            (fig1_instance(4), 1),
            (fig1_instance(4), 2),
            (fig3_instance(), 1),
            (fig5_instance(Fig5Variant::TunnelsOnly), 2),
        ];
        for (inst, f) in cases {
            let fm = FailureModel::links(f);
            let dual =
                solve_pcf_tf_dual(&inst, &fm, Objective::DemandScale, &Default::default()).unwrap();
            let cut = cp(&inst, &fm, AdversaryKind::LinkBased);
            assert!(
                (dual - cut).abs() < 1e-5,
                "f={f}: dual {dual} vs cuts {cut}"
            );
        }
    }

    #[test]
    fn unsupported_inputs_are_structured_errors() {
        let inst = fig1_instance(3);
        // A group budget is outside the dualized models' scope.
        let srlg = FailureModel::Groups {
            groups: vec![vec![pcf_topology::LinkId(0)]],
            f: 1,
        };
        for res in [
            solve_ffc_dual(&inst, &srlg, Objective::DemandScale, &Default::default()),
            solve_pcf_tf_dual(&inst, &srlg, Objective::DemandScale, &Default::default()),
        ] {
            assert_eq!(res.unwrap_err(), DualizedError::UnsupportedFailureModel);
        }
        // An instance with logical sequences is rejected, not asserted on.
        let ls_inst = crate::figures::fig4_ls_instance(3, 2, 3);
        let err = solve_pcf_tf_dual(
            &ls_inst,
            &FailureModel::links(1),
            Objective::DemandScale,
            &Default::default(),
        )
        .unwrap_err();
        assert!(matches!(err, DualizedError::NotPureTunnels { lss } if lss > 0));
        assert!(err.to_string().contains("pure tunnel"));
    }

    #[test]
    fn duals_match_on_zoo_gravity() {
        let topo = pcf_topology::zoo::build("Sprint");
        let tm = pcf_traffic::gravity(&topo, 9);
        let inst = crate::schemes::tunnel_instance(&topo, &tm, 3);
        let fm = FailureModel::links(1);
        let dual =
            solve_pcf_tf_dual(&inst, &fm, Objective::DemandScale, &Default::default()).unwrap();
        let cut = cp(&inst, &fm, AdversaryKind::LinkBased);
        assert!(
            (dual - cut).abs() < 1e-4 * (1.0 + cut),
            "dual {dual} vs cuts {cut}"
        );
        let fdual =
            solve_ffc_dual(&inst, &fm, Objective::DemandScale, &Default::default()).unwrap();
        let fcut = cp(&inst, &fm, AdversaryKind::FfcTunnelCount);
        assert!(
            (fdual - fcut).abs() < 1e-4 * (1.0 + fcut),
            "dual {fdual} vs cuts {fcut}"
        );
    }
}
