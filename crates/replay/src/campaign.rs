//! Adversarial-churn campaigns: greedy worst-case event sequences against
//! live replay engines, one per scheme.
//!
//! A campaign asks the DRFE-R question operationally: *if an adversary
//! watches the network and always picks the next most damaging event,
//! how much admitted throughput does each scheme retain?* The search is
//! greedy and plan-guided: every candidate event (an SRLG burst, a node
//! failure, a single link cut, a partial-capacity degradation) is scored
//! by the plan's own protection certificate — [`availability_under`]
//! evaluates the dual-form expression `Σ a_l·alive_l + Σ b_q·h_q` whose
//! coefficients the robust solve produced, so no LP is re-solved per
//! candidate — and the minimizer is then *applied to the live engine*,
//! whose shedding realization is the ground truth the curve records.
//!
//! Running the same campaign against FFC, PCF-TF, and PCF-LS plans over
//! one topology and traffic matrix produces comparable
//! throughput-retention curves (the adversary adapts to each plan
//! separately, so every scheme faces its own worst sequence). The report
//! serializes deterministically — values quantized to 1e-6, an FNV-1a
//! digest over the quantized curve — so CI can gate on byte identity and
//! on the paper's separation: PCF-LS must retain strictly more absolute
//! throughput than FFC.

use crate::engine::ReplayEngine;
use crate::report::EventStage;
use crate::trace::{EventKind, LinkEvent};
use pcf_core::{availability_under, degraded_reservations, DegradeMode, FailureState, Instance};
use pcf_topology::LinkId;

/// One solved scheme entering a campaign.
pub struct CampaignPlan<'a> {
    /// Scheme label (`"ffc"`, `"pcf-tf"`, `"pcf-ls"`, ...).
    pub scheme: String,
    /// The instance the plan was solved on.
    pub inst: &'a Instance,
    /// Tunnel reservations.
    pub a: &'a [f64],
    /// Logical-sequence reservations.
    pub b: &'a [f64],
    /// Admitted demand per pair (`z_p · d_p`).
    pub served: &'a [f64],
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Adversarial events to pick (curve length).
    pub steps: usize,
    /// SRLG groups the adversary may fire as correlated bursts.
    pub groups: Vec<Vec<LinkId>>,
    /// Degradation level for partial-capacity candidates (permille of
    /// nominal surviving; clamped to `1..=999`).
    pub degrade_permille: u32,
    /// Concurrent-dead-link budget for the adversary; candidates that
    /// would exceed it are skipped (degradations are not counted — the
    /// links stay alive).
    pub max_down: usize,
    /// Relative feasibility tolerance for realization.
    pub tol: f64,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            steps: 4,
            groups: Vec::new(),
            degrade_permille: 500,
            max_down: 2,
            tol: 1e-6,
        }
    }
}

/// One adversarial event on one scheme's curve.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignStep {
    /// The chosen event, rendered in the trace language (`"srlg 2"`,
    /// `"node 4"`, `"down 7"`, `"degrade 3 500"`).
    pub event: String,
    /// The plan-certificate prediction of post-event delivered
    /// throughput that selected this event.
    pub predicted: f64,
    /// Throughput the live engine actually delivered after the event.
    pub delivered: f64,
    /// Demand shed at this step.
    pub shed: f64,
    /// Which ladder stage served the event.
    pub stage: EventStage,
}

/// One scheme's throughput-retention curve.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCurve {
    /// Scheme label.
    pub scheme: String,
    /// Admitted throughput before any event (`Σ served`).
    pub admitted: f64,
    /// The adversarial sequence, in the order it was applied.
    pub steps: Vec<CampaignStep>,
}

impl CampaignCurve {
    /// Throughput delivered after the final adversarial event (the
    /// admitted throughput if no event was applied).
    pub fn retained(&self) -> f64 {
        self.steps.last().map_or(self.admitted, |s| s.delivered)
    }

    /// Fraction of admitted throughput retained at the end (1 when
    /// nothing was admitted).
    pub fn retained_fraction(&self) -> f64 {
        if self.admitted <= 0.0 {
            1.0
        } else {
            self.retained() / self.admitted
        }
    }
}

/// The campaign outcome: one curve per scheme, deterministic serialization.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Topology name the campaign ran on.
    pub topology: String,
    /// Per-scheme curves, in input order.
    pub curves: Vec<CampaignCurve>,
}

/// Quantizes to 1e-6 for digesting and printing: campaign numbers are
/// sums of LP outputs, so byte-exact f64 comparison across toolchains is
/// too brittle a CI bar, but 1e-6 is far below any real throughput gap.
fn quantize(x: f64) -> i64 {
    (x * 1e6).round() as i64
}

impl CampaignReport {
    /// The curve for `scheme`, if it ran.
    pub fn curve(&self, scheme: &str) -> Option<&CampaignCurve> {
        self.curves.iter().find(|c| c.scheme == scheme)
    }

    /// The paper's separation, judged on this campaign: PCF-LS retains
    /// strictly more absolute throughput than FFC. `None` when either
    /// scheme is missing.
    pub fn separation_ok(&self) -> Option<bool> {
        let ffc = self.curve("ffc")?;
        let ls = self.curve("pcf-ls")?;
        Some(quantize(ls.retained()) > quantize(ffc.retained()))
    }

    /// FNV-1a digest over the quantized curves (schemes, events,
    /// predictions, deliveries, sheds, stages). Stable across runs,
    /// thread counts, and platforms.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |bytes: &[u8]| {
            for &byte in bytes {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        eat(self.topology.as_bytes());
        for c in &self.curves {
            eat(c.scheme.as_bytes());
            eat(&quantize(c.admitted).to_le_bytes());
            for s in &c.steps {
                eat(s.event.as_bytes());
                eat(&quantize(s.predicted).to_le_bytes());
                eat(&quantize(s.delivered).to_le_bytes());
                eat(&quantize(s.shed).to_le_bytes());
                eat(&[s.stage.code()]);
            }
        }
        h
    }

    /// Deterministic JSON: quantized values, the separation verdict, and
    /// the digest. Byte-identical across repeated runs.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"topology\": \"{}\",\n  \"curves\": [\n",
            self.topology
        ));
        for (i, c) in self.curves.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"scheme\": \"{}\", \"admitted\": {:.6}, \"retained\": {:.6}, \
                 \"retained_fraction\": {:.6}, \"steps\": [",
                c.scheme,
                quantize(c.admitted) as f64 / 1e6,
                quantize(c.retained()) as f64 / 1e6,
                quantize(c.retained_fraction()) as f64 / 1e6,
            ));
            for (j, s) in c.steps.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{ \"event\": \"{}\", \"delivered\": {:.6}, \"shed\": {:.6}, \
                     \"stage\": \"{}\" }}",
                    s.event,
                    quantize(s.delivered) as f64 / 1e6,
                    quantize(s.shed) as f64 / 1e6,
                    s.stage.name(),
                ));
            }
            out.push_str("] }");
            if i + 1 < self.curves.len() {
                out.push(',');
            }
            out.push('\n');
        }
        let separation = match self.separation_ok() {
            Some(true) => "\"pcf-ls > ffc\"",
            Some(false) => "\"VIOLATED\"",
            None => "null",
        };
        out.push_str(&format!(
            "  ],\n  \"separation\": {separation},\n  \"digest\": \"{:016x}\"\n}}\n",
            self.digest()
        ));
        out
    }
}

/// One candidate adversarial event: a label in the trace language plus
/// the link events it expands to.
struct Candidate {
    label: String,
    events: Vec<LinkEvent>,
}

/// Enumerates the adversary's move set in a fixed deterministic order:
/// SRLG bursts, node failures, single link cuts, then single-link
/// degradations.
fn candidates(inst: &Instance, opts: &CampaignOptions) -> Vec<Candidate> {
    let topo = inst.topo();
    let permille = opts.degrade_permille.clamp(1, 999);
    let mut out = Vec::new();
    for (gi, group) in opts.groups.iter().enumerate() {
        out.push(Candidate {
            label: format!("srlg {gi}"),
            events: group
                .iter()
                .filter(|l| l.index() < topo.link_count())
                .map(|&l| LinkEvent {
                    link: l,
                    kind: EventKind::Down,
                })
                .collect(),
        });
    }
    for n in topo.nodes() {
        out.push(Candidate {
            label: format!("node {}", n.0),
            events: topo
                .links()
                .filter(|&l| topo.link(l).touches(n))
                .map(|l| LinkEvent {
                    link: l,
                    kind: EventKind::Down,
                })
                .collect(),
        });
    }
    for l in topo.links() {
        out.push(Candidate {
            label: format!("down {}", l.index()),
            events: vec![LinkEvent {
                link: l,
                kind: EventKind::Down,
            }],
        });
    }
    for l in topo.links() {
        out.push(Candidate {
            label: format!("degrade {} {permille}", l.index()),
            events: vec![LinkEvent {
                link: l,
                kind: EventKind::Degrade { permille },
            }],
        });
    }
    out
}

/// Plan-certificate prediction of delivered throughput under a tentative
/// failure state: each pair delivers at most its admitted demand and at
/// most its protected availability (reservations rescaled for any
/// partial-capacity degradation).
fn predicted_delivered(
    inst: &Instance,
    a: &[f64],
    b: &[f64],
    served: &[f64],
    state: &FailureState,
) -> f64 {
    let a_eff = degraded_reservations(inst, state, a);
    inst.pair_ids()
        .map(|p| served[p.0].min(availability_under(inst, p, &a_eff, b, &state.dead).max(0.0)))
        .sum()
}

/// Runs the greedy adversarial campaign against every plan.
///
/// Each scheme gets its own fresh engine (shedding enabled) and its own
/// adaptive adversary; curves are directly comparable because the move
/// set, budget, and step count are shared. Fully deterministic: the
/// candidate order is fixed and ties break toward the earlier candidate.
pub fn run_campaign(plans: &[CampaignPlan<'_>], opts: &CampaignOptions) -> CampaignReport {
    let topology = plans
        .first()
        .map(|p| p.inst.topo().name().to_string())
        .unwrap_or_default();
    let curves = plans.iter().map(|plan| run_one(plan, opts)).collect();
    CampaignReport { topology, curves }
}

fn run_one(plan: &CampaignPlan<'_>, opts: &CampaignOptions) -> CampaignCurve {
    let (inst, a, b, served) = (plan.inst, plan.a, plan.b, plan.served);
    let admitted: f64 = served.iter().sum();
    let moves = candidates(inst, opts);
    let mut engine = ReplayEngine::new(inst, a, b, served, opts.tol, 64);
    engine.set_degrade(DegradeMode::Shed);
    let mut steps = Vec::with_capacity(opts.steps);
    let mut degraded = vec![false; inst.topo().link_count()];
    for _ in 0..opts.steps {
        let fs = engine.state();
        let dead_now = fs.dead.iter().filter(|&&d| d).count();
        // Score every admissible candidate against the plan's own
        // protection certificate; keep the most damaging one.
        let mut best: Option<(usize, f64)> = None;
        for (ci, cand) in moves.iter().enumerate() {
            let mut dead = fs.dead.clone();
            let mut cap_scale = fs.cap_scale.clone();
            let mut changed = false;
            for ev in &cand.events {
                match ev.kind {
                    EventKind::Down => {
                        if !dead[ev.link.index()] {
                            dead[ev.link.index()] = true;
                            changed = true;
                        }
                    }
                    EventKind::Degrade { permille } => {
                        if !dead[ev.link.index()] && !degraded[ev.link.index()] {
                            cap_scale[ev.link.index()] = f64::from(permille) / 1000.0;
                            changed = true;
                        }
                    }
                    EventKind::Up | EventKind::Wobble { .. } => {}
                }
            }
            if !changed {
                continue; // pure no-op against the current state
            }
            let new_dead = dead.iter().filter(|&&d| d).count();
            if new_dead > opts.max_down.max(dead_now) {
                continue; // over the adversary's concurrency budget
            }
            let Ok(state) = FailureState::with_cap_scale(inst, &dead, &cap_scale) else {
                continue;
            };
            let score = predicted_delivered(inst, a, b, served, &state);
            if best.is_none_or(|(_, s)| score < s) {
                best = Some((ci, score));
            }
        }
        let Some((ci, predicted)) = best else {
            break; // move set exhausted
        };
        let cand = &moves[ci];
        for ev in &cand.events {
            // Candidate links were filtered against the topology, so
            // apply cannot fail; a failure would only skip the event.
            let _ = engine.apply(ev);
            if let EventKind::Degrade { .. } = ev.kind {
                degraded[ev.link.index()] = true;
            }
        }
        let (delivered, shed, stage) = match engine.realize_degraded() {
            Ok(d) => (
                (admitted - d.shed_demand).max(0.0),
                d.shed_demand,
                EventStage::from(d.ladder_stage),
            ),
            Err(_) => (0.0, admitted, EventStage::Failed),
        };
        steps.push(CampaignStep {
            event: cand.label.clone(),
            predicted,
            delivered,
            shed,
            stage,
        });
    }
    CampaignCurve {
        scheme: plan.scheme.clone(),
        admitted,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcf_core::{
        pcf_ls_instance, solve_ffc, solve_pcf_ls, tunnel_instance, FailureModel, RobustOptions,
    };
    use pcf_topology::zoo;
    use pcf_traffic::gravity;

    fn served_of(inst: &Instance, sol: &pcf_core::RobustSolution) -> Vec<f64> {
        inst.pair_ids()
            .map(|p| sol.z[p.0] * inst.demand(p))
            .collect()
    }

    #[test]
    fn campaign_is_deterministic_and_monotone_in_damage() {
        let topo = zoo::build("Abilene");
        let tm = gravity(&topo, 11);
        let inst = pcf_ls_instance(&topo, &tm, 3);
        let sol = solve_pcf_ls(&inst, &FailureModel::links(1), &RobustOptions::default());
        let served = served_of(&inst, &sol);
        let opts = CampaignOptions {
            steps: 3,
            groups: vec![vec![pcf_topology::LinkId(0), pcf_topology::LinkId(1)]],
            ..CampaignOptions::default()
        };
        let plan = CampaignPlan {
            scheme: "pcf-ls".into(),
            inst: &inst,
            a: &sol.a,
            b: &sol.b,
            served: &served,
        };
        let r1 = run_campaign(std::slice::from_ref(&plan), &opts);
        let r2 = run_campaign(std::slice::from_ref(&plan), &opts);
        assert_eq!(r1, r2);
        assert_eq!(r1.to_json(), r2.to_json());
        assert_eq!(r1.digest(), r2.digest());
        let curve = &r1.curves[0];
        assert_eq!(curve.steps.len(), 3);
        // Damage never helps: delivered throughput is non-increasing.
        let mut last = curve.admitted;
        for s in &curve.steps {
            assert!(
                s.delivered <= last + 1e-9,
                "event {} increased delivery {last} -> {}",
                s.event,
                s.delivered
            );
            assert!((s.delivered + s.shed - curve.admitted).abs() < 1e-6);
            last = s.delivered;
        }
        assert!(curve.retained() <= curve.admitted);
        assert!(r1.to_json().contains("\"digest\""));
    }

    #[test]
    fn pcf_ls_retains_more_than_ffc_under_the_same_adversary() {
        let topo = zoo::build("Abilene");
        let tm = gravity(&topo, 11);
        let fm = FailureModel::links(1);
        let ropts = RobustOptions::default();
        let ffc_inst = tunnel_instance(&topo, &tm, 3);
        let ffc_sol = solve_ffc(&ffc_inst, &fm, &ropts);
        let ffc_served = served_of(&ffc_inst, &ffc_sol);
        let ls_inst = pcf_ls_instance(&topo, &tm, 3);
        let ls_sol = solve_pcf_ls(&ls_inst, &fm, &ropts);
        let ls_served = served_of(&ls_inst, &ls_sol);
        let plans = [
            CampaignPlan {
                scheme: "ffc".into(),
                inst: &ffc_inst,
                a: &ffc_sol.a,
                b: &ffc_sol.b,
                served: &ffc_served,
            },
            CampaignPlan {
                scheme: "pcf-ls".into(),
                inst: &ls_inst,
                a: &ls_sol.a,
                b: &ls_sol.b,
                served: &ls_served,
            },
        ];
        let opts = CampaignOptions {
            steps: 4,
            groups: pcf_topology::SrlgSet::synthetic(&topo, 2, 4, 7).link_groups(),
            max_down: 3,
            ..CampaignOptions::default()
        };
        let report = run_campaign(&plans, &opts);
        let ffc = report.curve("ffc").unwrap();
        let ls = report.curve("pcf-ls").unwrap();
        assert!(
            report.separation_ok() == Some(true),
            "separation violated: ffc retained {} vs pcf-ls retained {}\n{}",
            ffc.retained(),
            ls.retained(),
            report.to_json()
        );
    }
}
