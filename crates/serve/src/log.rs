//! The global failure-event log: lock-free ingestion, replayable reads.
//!
//! Every connection that ingests a failure event appends it here; every
//! reader replays the log into its private [`ReplayEngine`]
//! (`pcf_replay`) before answering a query. The log is the *only* shared
//! mutable state on the event path, and it is entirely atomic:
//!
//! * writers claim a slot with one `fetch_add` on the tail and publish
//!   the encoded event with one `Release` store — no lock, no allocation;
//! * readers `Acquire`-load the tail and replay any events they have not
//!   applied yet (O(new events), usually zero or one per query).
//!
//! A slot claimed but not yet published is bridged by a written-bit spin:
//! the two writer instructions are nanoseconds apart, so readers
//! effectively never wait. The log is append-only and bounded; `reset`
//! is itself an event (all links up, nominal capacities) rather than a
//! truncation, so readers never need to coordinate around state erasure.
//! When the log fills, further events are rejected with a structured
//! error — the operator resets or restarts rather than silently losing
//! history.

use pcf_replay::{EventKind, LinkEvent};
use pcf_topology::LinkId;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One decoded log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogEvent {
    /// A link liveness/capacity event, as the replay engine consumes it.
    Link(LinkEvent),
    /// Clear all failures and wobbles: back to the all-alive network.
    Reset,
}

/// Error returned when the log's fixed capacity is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogFull {
    /// The capacity that was exceeded.
    pub capacity: usize,
}

impl std::fmt::Display for LogFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "event log full ({} events)", self.capacity)
    }
}

impl std::error::Error for LogFull {}

// Slot encoding: bit 63 = published; bits 62..32 = permille
// (wobble/degrade); bits 31..3 = link index; bits 2..0 = kind.
const PUBLISHED: u64 = 1 << 63;
const KIND_DOWN: u64 = 0;
const KIND_UP: u64 = 1;
const KIND_WOBBLE: u64 = 2;
const KIND_RESET: u64 = 3;
const KIND_DEGRADE: u64 = 4;

/// Append-only bounded event log over preallocated atomic slots.
pub struct EventLog {
    slots: Vec<AtomicU64>,
    tail: AtomicUsize,
}

impl EventLog {
    /// Preallocates a log of `capacity` slots.
    pub fn new(capacity: usize) -> EventLog {
        EventLog {
            slots: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            tail: AtomicUsize::new(0),
        }
    }

    /// Number of published (or in-flight) events, clamped to capacity.
    pub fn tail(&self) -> usize {
        self.tail.load(Ordering::Acquire).min(self.slots.len())
    }

    /// The log's fixed capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Appends one event; returns its index. Lock-free: a `fetch_add`
    /// claims the slot, a `Release` store publishes it.
    // audit:hot
    pub fn push(&self, event: LogEvent) -> Result<usize, LogFull> {
        let encoded = match event {
            LogEvent::Reset => KIND_RESET,
            LogEvent::Link(ev) => {
                let link = u64::from(ev.link.0) << 3;
                match ev.kind {
                    EventKind::Down => KIND_DOWN | link,
                    EventKind::Up => KIND_UP | link,
                    EventKind::Wobble { permille } => {
                        KIND_WOBBLE | link | (u64::from(permille) << 32)
                    }
                    EventKind::Degrade { permille } => {
                        KIND_DEGRADE | link | (u64::from(permille) << 32)
                    }
                }
            }
        };
        let idx = self.tail.fetch_add(1, Ordering::AcqRel);
        // Overshot claims fail structurally: the tail keeps growing but
        // `tail()` clamps, so readers never chase phantom slots.
        let Some(slot) = self.slots.get(idx) else {
            return Err(LogFull {
                capacity: self.slots.len(),
            });
        };
        slot.store(encoded | PUBLISHED, Ordering::Release);
        Ok(idx)
    }

    /// Reads the event at `idx` (< [`EventLog::tail`]). If the slot is
    /// claimed but not yet published, spins briefly — the writer's store
    /// follows its claim by two instructions. The in-range contract is
    /// enforced where indices are produced: every caller iterates
    /// `0..tail()`, and `tail()` clamps to capacity.
    // audit:hot
    pub fn get(&self, idx: usize) -> LogEvent {
        // audit:allow(panic-reachability, callers iterate 0..tail() which is clamped to capacity)
        let mut encoded = self.slots[idx].load(Ordering::Acquire);
        while encoded & PUBLISHED == 0 {
            std::hint::spin_loop();
            // audit:allow(panic-reachability, same in-range index as the load above)
            encoded = self.slots[idx].load(Ordering::Acquire);
        }
        let kind = encoded & 0b111;
        let link = LinkId(((encoded >> 3) & 0x1fff_ffff) as u32);
        let permille = ((encoded >> 32) & 0x7fff_ffff) as u32;
        match kind {
            KIND_RESET => LogEvent::Reset,
            KIND_DOWN => LogEvent::Link(LinkEvent {
                link,
                kind: EventKind::Down,
            }),
            KIND_UP => LogEvent::Link(LinkEvent {
                link,
                kind: EventKind::Up,
            }),
            KIND_DEGRADE => LogEvent::Link(LinkEvent {
                link,
                kind: EventKind::Degrade { permille },
            }),
            _ => LogEvent::Link(LinkEvent {
                link,
                kind: EventKind::Wobble { permille },
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn events_round_trip_through_the_encoding() {
        let log = EventLog::new(8);
        let events = [
            LogEvent::Link(LinkEvent {
                link: LinkId(0),
                kind: EventKind::Down,
            }),
            LogEvent::Link(LinkEvent {
                link: LinkId(12345),
                kind: EventKind::Up,
            }),
            LogEvent::Link(LinkEvent {
                link: LinkId(7),
                kind: EventKind::Wobble { permille: 250 },
            }),
            LogEvent::Link(LinkEvent {
                link: LinkId(9),
                kind: EventKind::Degrade { permille: 600 },
            }),
            LogEvent::Reset,
        ];
        for (i, ev) in events.iter().enumerate() {
            assert_eq!(log.push(*ev).unwrap(), i);
        }
        assert_eq!(log.tail(), 5);
        for (i, ev) in events.iter().enumerate() {
            assert_eq!(log.get(i), *ev);
        }
    }

    #[test]
    fn full_log_rejects_without_corruption() {
        let log = EventLog::new(2);
        log.push(LogEvent::Reset).unwrap();
        log.push(LogEvent::Reset).unwrap();
        assert_eq!(log.push(LogEvent::Reset), Err(LogFull { capacity: 2 }));
        assert_eq!(log.push(LogEvent::Reset), Err(LogFull { capacity: 2 }));
        assert_eq!(log.tail(), 2);
        assert_eq!(log.get(1), LogEvent::Reset);
    }

    #[test]
    fn concurrent_writers_claim_distinct_slots() {
        let log = EventLog::new(1024);
        thread::scope(|s| {
            for t in 0..8u32 {
                let log = &log;
                s.spawn(move || {
                    for i in 0..128u32 {
                        log.push(LogEvent::Link(LinkEvent {
                            link: LinkId(t * 1000 + i),
                            kind: EventKind::Down,
                        }))
                        .unwrap();
                    }
                });
            }
        });
        assert_eq!(log.tail(), 1024);
        // Every pushed link appears exactly once.
        let mut seen: Vec<u32> = (0..log.tail())
            .map(|i| match log.get(i) {
                LogEvent::Link(ev) => ev.link.0,
                LogEvent::Reset => unreachable!("only link events pushed"),
            })
            .collect();
        seen.sort_unstable();
        let mut expect: Vec<u32> = (0..8u32)
            .flat_map(|t| (0..128u32).map(move |i| t * 1000 + i))
            .collect();
        expect.sort_unstable();
        assert_eq!(seen, expect);
    }
}
