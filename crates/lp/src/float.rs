//! Float comparison helpers — the one module allowed to compare floats.
//!
//! The `float-discipline` lint (see `pcf-audit` and DESIGN.md §9) forbids
//! `==`/`!=` against float literals and bare `partial_cmp` everywhere in
//! library code *except* here. Solver code that needs to test a
//! coefficient for zero, compare against a stored value, or order floats
//! goes through these helpers so the intent (exact sparsity test vs
//! tolerance test vs total order) is explicit at the call site and NaN
//! can never panic a sort or silently flip a branch.
//!
//! Two different kinds of comparison live on the solver path:
//!
//! * **Sparsity tests** ([`is_zero`], [`nonzero`]) are *exact* bit tests
//!   against `0.0`. Simplex and LU code uses them to decide whether a
//!   coefficient participates in a pivot column or a nonzero pattern.
//!   These must stay exact: a value like `1e-300` is a real nonzero that
//!   the eta updates must track, and rounding it away corrupts the
//!   factorization. The helpers centralize the comparison so the audit
//!   lint can verify nothing else in the workspace does it ad hoc.
//! * **Tolerance tests** ([`approx_eq`], [`approx_zero`]) compare within
//!   an absolute epsilon, for feasibility/optimality checks where values
//!   carry accumulated rounding error.
//!
//! Ordering goes through [`total_cmp`][f64::total_cmp] (re-exported
//! guidance, not a wrapper): it is a total order, so `sort_by(|a, b|
//! a.total_cmp(b))` cannot panic on NaN the way
//! `partial_cmp(..).unwrap()` can.

/// Exact sparsity test: is `x` (plus or minus) zero?
///
/// This is deliberately an exact comparison, not a tolerance test — see
/// the module docs. `-0.0` counts as zero.
#[inline(always)]
pub fn is_zero(x: f64) -> bool {
    // audit:allow(float-discipline, the epsilon module is the one place exact float tests live)
    x == 0.0
}

/// Exact sparsity test: does `x` participate in a nonzero pattern?
#[inline(always)]
pub fn nonzero(x: f64) -> bool {
    !is_zero(x)
}

/// Tolerance test: `|x| <= eps`.
#[inline(always)]
pub fn approx_zero(x: f64, eps: f64) -> bool {
    x.abs() <= eps
}

/// Tolerance test: `|a - b| <= eps`.
#[inline(always)]
pub fn approx_eq(a: f64, b: f64, eps: f64) -> bool {
    (a - b).abs() <= eps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_zero_tests() {
        assert!(is_zero(0.0));
        assert!(is_zero(-0.0));
        assert!(!is_zero(1e-300));
        assert!(!is_zero(f64::NAN));
        assert!(nonzero(1e-300));
        assert!(!nonzero(0.0));
    }

    #[test]
    fn tolerance_tests() {
        assert!(approx_zero(1e-9, 1e-6));
        assert!(!approx_zero(1e-3, 1e-6));
        assert!(approx_eq(1.0, 1.0 + 1e-9, 1e-6));
        assert!(!approx_eq(1.0, 1.1, 1e-6));
        // NaN is never approximately anything.
        assert!(!approx_zero(f64::NAN, 1e-6));
        assert!(!approx_eq(f64::NAN, f64::NAN, 1e-6));
    }
}
