//! A small parser for Internet Topology Zoo GML files.
//!
//! The evaluation in this repository runs on synthetic stand-ins
//! ([`crate::zoo`]), but real Zoo `.gml` files can be parsed with
//! [`parse_gml`] and used anywhere a [`Topology`] is accepted.
//!
//! The parser understands the subset of GML the Zoo uses:
//!
//! ```text
//! graph [
//!   node [ id 0 label "Seattle" ]
//!   edge [ source 0 target 1 LinkSpeedRaw 1.0E9 ]
//! ]
//! ```
//!
//! Duplicate edges are kept (parallel links are legal), self loops are
//! dropped, and missing capacities default to 1.0. `LinkSpeedRaw` values are
//! normalised to Gbps.

use crate::graph::{NodeId, Topology};
use std::collections::HashMap;
use std::fmt;

/// Error raised by [`parse_gml`].
#[derive(Debug, Clone, PartialEq)]
pub enum GmlError {
    /// The token stream ended inside a structure.
    UnexpectedEof,
    /// A `node` block had no `id`.
    NodeWithoutId,
    /// An `edge` block was missing `source` or `target`.
    EdgeWithoutEndpoints,
    /// An edge referenced a node id never declared.
    UnknownNode(i64),
    /// A numeric field failed to parse.
    BadNumber(String),
}

impl fmt::Display for GmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GmlError::UnexpectedEof => write!(f, "unexpected end of GML input"),
            GmlError::NodeWithoutId => write!(f, "node block without an id"),
            GmlError::EdgeWithoutEndpoints => write!(f, "edge block missing source/target"),
            GmlError::UnknownNode(id) => write!(f, "edge references undeclared node {id}"),
            GmlError::BadNumber(s) => write!(f, "could not parse number {s:?}"),
        }
    }
}

impl std::error::Error for GmlError {}

/// One GML token: a bare word/number or a quoted string.
#[derive(Debug, PartialEq)]
enum Token {
    Word(String),
    Str(String),
    Open,
    Close,
}

fn tokenize(src: &str) -> Vec<Token> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '[' => {
                chars.next();
                out.push(Token::Open);
            }
            ']' => {
                chars.next();
                out.push(Token::Close);
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                for c in chars.by_ref() {
                    if c == '"' {
                        break;
                    }
                    s.push(c);
                }
                out.push(Token::Str(s));
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                // Comment to end of line.
                for c in chars.by_ref() {
                    if c == '\n' {
                        break;
                    }
                }
            }
            _ => {
                let mut w = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_whitespace() || c == '[' || c == ']' {
                        break;
                    }
                    w.push(c);
                    chars.next();
                }
                out.push(Token::Word(w));
            }
        }
    }
    out
}

/// Skips a `[...]` block (already positioned after `[`), handling nesting.
fn skip_block(tokens: &[Token], mut i: usize) -> Result<usize, GmlError> {
    let mut depth = 1usize;
    while depth > 0 {
        match tokens.get(i) {
            Some(Token::Open) => depth += 1,
            Some(Token::Close) => depth -= 1,
            Some(_) => {}
            None => return Err(GmlError::UnexpectedEof),
        }
        i += 1;
    }
    Ok(i)
}

fn parse_number(tok: &Token) -> Result<f64, GmlError> {
    match tok {
        Token::Word(w) => w.parse::<f64>().map_err(|_| GmlError::BadNumber(w.clone())),
        Token::Str(s) => s.parse::<f64>().map_err(|_| GmlError::BadNumber(s.clone())),
        _ => Err(GmlError::BadNumber("[".into())),
    }
}

/// Parses a Topology Zoo GML document into a [`Topology`].
///
/// The topology name is taken from the graph-level `label` (falling back to
/// `Networks/unnamed`). Self loops are dropped. Capacities come from
/// `LinkSpeedRaw` (bits/s, normalised to Gbps) when present, else 1.0.
pub fn parse_gml(src: &str) -> Result<Topology, GmlError> {
    let tokens = tokenize(src);
    let mut name = String::from("unnamed");
    // (gml id, label)
    let mut nodes: Vec<(i64, String)> = Vec::new();
    // (source, target, capacity)
    let mut edges: Vec<(i64, i64, f64)> = Vec::new();

    let mut i = 0usize;
    let mut depth = 0usize;
    while i < tokens.len() {
        match &tokens[i] {
            Token::Open => {
                depth += 1;
                i += 1;
            }
            Token::Close => {
                depth = depth.saturating_sub(1);
                i += 1;
            }
            Token::Word(w) if w == "label" && depth == 1 => {
                if let Some(Token::Str(s)) = tokens.get(i + 1) {
                    name = s.clone();
                    i += 2;
                } else {
                    i += 1;
                }
            }
            Token::Word(w) if w == "node" && depth == 1 => {
                // expect: node [ ... ]
                if tokens.get(i + 1) != Some(&Token::Open) {
                    i += 1;
                    continue;
                }
                let mut j = i + 2;
                let mut id: Option<i64> = None;
                let mut label: Option<String> = None;
                while tokens.get(j) != Some(&Token::Close) {
                    match tokens.get(j) {
                        Some(Token::Word(k)) if k == "id" => {
                            id = Some(parse_number(
                                tokens.get(j + 1).ok_or(GmlError::UnexpectedEof)?,
                            )? as i64);
                            j += 2;
                        }
                        Some(Token::Word(k)) if k == "label" => {
                            if let Some(Token::Str(s)) = tokens.get(j + 1) {
                                label = Some(s.clone());
                            }
                            j += 2;
                        }
                        Some(Token::Open) => j = skip_block(&tokens, j + 1)?,
                        Some(_) => j += 1,
                        None => return Err(GmlError::UnexpectedEof),
                    }
                }
                let id = id.ok_or(GmlError::NodeWithoutId)?;
                nodes.push((id, label.unwrap_or_else(|| format!("node{id}"))));
                i = j + 1;
            }
            Token::Word(w) if w == "edge" && depth == 1 => {
                if tokens.get(i + 1) != Some(&Token::Open) {
                    i += 1;
                    continue;
                }
                let mut j = i + 2;
                let (mut src_id, mut dst_id, mut cap) = (None, None, None);
                while tokens.get(j) != Some(&Token::Close) {
                    match tokens.get(j) {
                        Some(Token::Word(k)) if k == "source" => {
                            src_id = Some(parse_number(
                                tokens.get(j + 1).ok_or(GmlError::UnexpectedEof)?,
                            )? as i64);
                            j += 2;
                        }
                        Some(Token::Word(k)) if k == "target" => {
                            dst_id = Some(parse_number(
                                tokens.get(j + 1).ok_or(GmlError::UnexpectedEof)?,
                            )? as i64);
                            j += 2;
                        }
                        Some(Token::Word(k)) if k == "LinkSpeedRaw" => {
                            // bits/s -> Gbps
                            let raw =
                                parse_number(tokens.get(j + 1).ok_or(GmlError::UnexpectedEof)?)?;
                            cap = Some((raw / 1e9).max(1e-3));
                            j += 2;
                        }
                        Some(Token::Open) => j = skip_block(&tokens, j + 1)?,
                        Some(_) => j += 1,
                        None => return Err(GmlError::UnexpectedEof),
                    }
                }
                let s = src_id.ok_or(GmlError::EdgeWithoutEndpoints)?;
                let t = dst_id.ok_or(GmlError::EdgeWithoutEndpoints)?;
                edges.push((s, t, cap.unwrap_or(1.0)));
                i = j + 1;
            }
            _ => i += 1,
        }
    }

    let mut topo = Topology::new(name);
    let mut id_map: HashMap<i64, NodeId> = HashMap::new();
    for (id, label) in nodes {
        let nid = topo.add_node(label);
        id_map.insert(id, nid);
    }
    for (s, t, c) in edges {
        if s == t {
            continue; // self loops carry no routing meaning
        }
        let su = *id_map.get(&s).ok_or(GmlError::UnknownNode(s))?;
        let tu = *id_map.get(&t).ok_or(GmlError::UnknownNode(t))?;
        topo.add_link(su, tu, c);
    }
    Ok(topo)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
        # Zoo-style sample
        graph [
          label "SampleNet"
          node [ id 0 label "A" Longitude -1.5 ]
          node [ id 1 label "B" ]
          node [ id 2 label "C" ]
          edge [ source 0 target 1 LinkSpeedRaw 10000000000 ]
          edge [ source 1 target 2 ]
          edge [ source 2 target 0 ]
        ]
    "#;

    #[test]
    fn parses_nodes_edges_and_name() {
        let t = parse_gml(SAMPLE).unwrap();
        assert_eq!(t.name(), "SampleNet");
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.link_count(), 3);
        assert_eq!(t.node_name(NodeId(0)), "A");
    }

    #[test]
    fn link_speed_raw_becomes_gbps() {
        let t = parse_gml(SAMPLE).unwrap();
        let l = t
            .links()
            .find(|&l| t.link(l).touches(NodeId(0)) && t.link(l).touches(NodeId(1)))
            .unwrap();
        assert!((t.capacity(l) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn missing_capacity_defaults_to_one() {
        let t = parse_gml(SAMPLE).unwrap();
        let l = t
            .links()
            .find(|&l| t.link(l).touches(NodeId(1)) && t.link(l).touches(NodeId(2)))
            .unwrap();
        assert_eq!(t.capacity(l), 1.0);
    }

    #[test]
    fn self_loops_are_dropped() {
        let src = r#"graph [ node [ id 0 ] node [ id 1 ]
            edge [ source 0 target 0 ] edge [ source 0 target 1 ] ]"#;
        let t = parse_gml(src).unwrap();
        assert_eq!(t.link_count(), 1);
    }

    #[test]
    fn parallel_edges_are_kept() {
        let src = r#"graph [ node [ id 0 ] node [ id 1 ]
            edge [ source 0 target 1 ] edge [ source 0 target 1 ] ]"#;
        let t = parse_gml(src).unwrap();
        assert_eq!(t.link_count(), 2);
    }

    #[test]
    fn unknown_node_is_an_error() {
        let src = r#"graph [ node [ id 0 ] edge [ source 0 target 9 ] ]"#;
        assert_eq!(parse_gml(src).unwrap_err(), GmlError::UnknownNode(9));
    }

    #[test]
    fn edge_without_endpoints_is_an_error() {
        let src = r#"graph [ node [ id 0 ] edge [ source 0 ] ]"#;
        assert_eq!(parse_gml(src).unwrap_err(), GmlError::EdgeWithoutEndpoints);
    }

    #[test]
    fn nested_unknown_blocks_are_skipped() {
        let src = r#"graph [
            node [ id 0 graphics [ x 1 y 2 nested [ a 1 ] ] label "A" ]
            node [ id 1 ]
            edge [ source 0 target 1 ]
        ]"#;
        let t = parse_gml(src).unwrap();
        assert_eq!(t.node_count(), 2);
        assert_eq!(t.node_name(NodeId(0)), "A");
    }
}

/// Serializes a [`Topology`] back to Topology Zoo-style GML.
///
/// Capacities are written as `LinkSpeedRaw` in bits/s (inverse of the
/// parser's normalisation), so `parse_gml(write_gml(t))` round-trips node
/// labels, adjacency, and capacities.
pub fn write_gml(topo: &Topology) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("graph [\n");
    let _ = writeln!(out, "  label \"{}\"", topo.name().replace('"', "'"));
    for n in topo.nodes() {
        let _ = writeln!(
            out,
            "  node [ id {} label \"{}\" ]",
            n.index(),
            topo.node_name(n).replace('"', "'")
        );
    }
    for l in topo.links() {
        let link = topo.link(l);
        let _ = writeln!(
            out,
            "  edge [ source {} target {} LinkSpeedRaw {} ]",
            link.u.index(),
            link.v.index(),
            link.capacity * 1e9
        );
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod write_tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn round_trips_a_zoo_topology() {
        let t = zoo::build("Sprint");
        let gml = write_gml(&t);
        let back = parse_gml(&gml).expect("own output parses");
        assert_eq!(back.name(), t.name());
        assert_eq!(back.node_count(), t.node_count());
        assert_eq!(back.link_count(), t.link_count());
        for l in t.links() {
            let a = t.link(l);
            let b = back.link(l);
            assert_eq!(a.u, b.u);
            assert_eq!(a.v, b.v);
            assert!((a.capacity - b.capacity).abs() < 1e-9 * a.capacity.max(1.0));
        }
        for n in t.nodes() {
            assert_eq!(t.node_name(n), back.node_name(n));
        }
    }

    #[test]
    fn quotes_in_labels_are_sanitised() {
        let mut t = Topology::new("has \"quotes\"");
        let a = t.add_node("n\"1");
        let b = t.add_node("n2");
        t.add_link(a, b, 1.0);
        let gml = write_gml(&t);
        let back = parse_gml(&gml).expect("sanitised output parses");
        assert_eq!(back.node_count(), 2);
        assert_eq!(back.node_name(NodeId(0)), "n'1");
    }
}
