//! R3 (Resilient Routing Reconfiguration, SIGCOMM 2010) — the link-bypass
//! congestion-free baseline the paper compares against (§3.5, Table 1).
//!
//! R3 routes the real demand on a base routing `r` and pre-computes, for
//! every directed arc, a *bypass flow* from the arc's head to its tail that
//! avoids the protected link. Offline, it guarantees that for every virtual
//! rerouting demand `x` in the envelope
//!
//! ```text
//! X = { x : 0 <= x_e <= c_e,  Σ_e x_e / c_e <= f }
//! ```
//!
//! the combined load `r(β) + Σ_e x_e (p_{e→}(β) + p_{e←}(β))` fits every
//! arc `β`. The inner maximum over `X` is dualized per arc, exactly as in
//! the R3 paper.
//!
//! The paper's Table 1 shows R3 admits *zero* traffic on the Fig. 5
//! topology under two simultaneous failures because no viable bypass for
//! links 1-5/5-t exists; this implementation reproduces that.

use pcf_lp::{LpProblem, Sense, Status, VarId};
use pcf_topology::{NodeId, Topology};
use pcf_traffic::TrafficMatrix;

/// Result of an R3 offline computation.
#[derive(Debug, Clone)]
pub struct R3Solution {
    /// Guaranteed demand scale `z`.
    pub objective: f64,
}

/// Solves R3's offline LP for the demand-scale metric under up to `f`
/// simultaneous link failures.
///
/// Base flows are aggregated by destination; one bypass flow exists per
/// directed arc (skipped — treated as unprotectable — when removing its
/// link disconnects its endpoints, in which case R3 cannot guarantee any
/// traffic crossing it and the arc is excluded from base routing).
pub fn solve_r3(topo: &Topology, tm: &TrafficMatrix, f: usize) -> R3Solution {
    let dests: Vec<NodeId> = topo
        .nodes()
        .filter(|&t| topo.nodes().any(|s| s != t && tm.demand(s, t) > 0.0))
        .collect();
    if dests.is_empty() {
        return R3Solution {
            objective: f64::INFINITY,
        };
    }
    let mut lp = LpProblem::new(Sense::Maximize);
    let z = lp.add_nonneg(1.0);

    // Base flows by destination; arcs whose bypass cannot exist are barred
    // from base routing when f >= 1 (their failure would strand traffic).
    let arc_count = topo.arc_count();
    let mut protectable = vec![true; arc_count];
    if f >= 1 {
        for arc in topo.arcs() {
            let mut dead = vec![false; topo.link_count()];
            dead[arc.link().index()] = true;
            let ok = pcf_paths::shortest_path_weighted(
                topo,
                topo.arc_src(arc),
                topo.arc_dst(arc),
                |_| 1.0,
                Some(&dead),
            )
            .is_some();
            protectable[arc.index()] = ok;
        }
    }

    let r_vars: Vec<Vec<VarId>> = dests
        .iter()
        .map(|_| {
            topo.arcs()
                .map(|arc| {
                    let ub = if protectable[arc.index()] {
                        topo.capacity(arc.link())
                    } else {
                        0.0
                    };
                    lp.add_var(0.0, ub, 0.0)
                })
                .collect()
        })
        .collect();
    // Balance: out - in = z * d(v, t).
    for (k, &t) in dests.iter().enumerate() {
        for v in topo.nodes() {
            if v == t {
                continue;
            }
            let mut row: Vec<(VarId, f64)> = Vec::new();
            for arc in topo.out_arcs(v) {
                row.push((r_vars[k][arc.index()], 1.0));
            }
            for arc in topo.in_arcs(v) {
                row.push((r_vars[k][arc.index()], -1.0));
            }
            let d = tm.demand(v, t);
            if d > 0.0 {
                row.push((z, -d));
            }
            lp.add_eq(row, 0.0);
        }
    }

    // Bypass flows: for each protectable arc α, a unit flow src(α)→dst(α)
    // avoiding link(α). p[α][β] is the fraction routed through arc β.
    let p_vars: Vec<Option<Vec<VarId>>> = topo
        .arcs()
        .map(|alpha| {
            if !protectable[alpha.index()] || f == 0 {
                return None;
            }
            let vars: Vec<VarId> = topo
                .arcs()
                .map(|beta| {
                    if beta.link() == alpha.link() {
                        lp.add_var(0.0, 0.0, 0.0) // bypass avoids its own link
                    } else {
                        lp.add_var(0.0, 1.0, 0.0)
                    }
                })
                .collect();
            Some(vars)
        })
        .collect();
    if f >= 1 {
        for alpha in topo.arcs() {
            let Some(p) = &p_vars[alpha.index()] else {
                continue;
            };
            let (src, dst) = (topo.arc_src(alpha), topo.arc_dst(alpha));
            for v in topo.nodes() {
                let mut row: Vec<(VarId, f64)> = Vec::new();
                for arc in topo.out_arcs(v) {
                    row.push((p[arc.index()], 1.0));
                }
                for arc in topo.in_arcs(v) {
                    row.push((p[arc.index()], -1.0));
                }
                let rhs = if v == src {
                    1.0
                } else if v == dst {
                    -1.0
                } else {
                    0.0
                };
                lp.add_eq(row, rhs);
            }
        }
    }

    // Protection constraints per arc β (dualized envelope):
    //   Σ_t r_t(β) + f·λ_β + Σ_e c_e σ_{e,β} <= c_β
    //   λ_β / c_e + σ_{e,β} >= p_{e→}(β) + p_{e←}(β)   ∀ e
    for beta in topo.arcs() {
        // Unprotectable (bridge) arcs carry no base traffic, but bypass
        // flows may still traverse them, so their envelope row is needed
        // too.
        let lam = lp.add_nonneg(0.0);
        let mut cap_row: Vec<(VarId, f64)> =
            r_vars.iter().map(|rv| (rv[beta.index()], 1.0)).collect();
        cap_row.push((lam, f as f64));
        for e in topo.links() {
            let ce = topo.capacity(e);
            let sig = lp.add_nonneg(0.0);
            cap_row.push((sig, ce));
            let mut dual_row: Vec<(VarId, f64)> = vec![(lam, 1.0 / ce), (sig, 1.0)];
            for arc_of_e in [e.forward(), e.backward()] {
                if let Some(p) = &p_vars[arc_of_e.index()] {
                    dual_row.push((p[beta.index()], -1.0));
                }
            }
            lp.add_ge(dual_row, 0.0);
        }
        lp.add_le(cap_row, topo.capacity(beta.link()));
    }

    // audit:allow(no-panic-paths, experiment-only baseline scheme; an LP-layer rejection here is a bug worth halting the experiment)
    let sol = lp.solve().expect("R3 LP is structurally valid");
    let objective = match sol.status {
        Status::Optimal => sol.objective.max(0.0),
        Status::Infeasible => 0.0,
        // audit:allow(no-panic-paths, experiment-only baseline scheme; iteration-limit or unbounded means the benchmark itself is broken)
        s => panic!("R3 LP unexpected status {s}"),
    };
    R3Solution { objective }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::fig5_topology;

    fn diamond() -> (Topology, TrafficMatrix) {
        let mut t = Topology::new("diamond");
        let s = t.add_node("s");
        let a = t.add_node("a");
        let b = t.add_node("b");
        let d = t.add_node("t");
        t.add_link(s, a, 1.0);
        t.add_link(a, d, 1.0);
        t.add_link(s, b, 1.0);
        t.add_link(b, d, 1.0);
        let mut tm = TrafficMatrix::zeros(4);
        tm.set_demand(s, d, 1.0);
        (t, tm)
    }

    #[test]
    fn r3_no_failure_is_plain_mcf() {
        let (t, tm) = diamond();
        let sol = solve_r3(&t, &tm, 0);
        assert!((sol.objective - 2.0).abs() < 1e-5, "got {}", sol.objective);
    }

    #[test]
    fn r3_zero_on_diamond_by_conservatism() {
        // R3's envelope reroutes the failed link's full *capacity*, and the
        // diamond's only bypass path is itself at capacity — so R3 admits
        // nothing, while PCF guarantees 1.0 on the same instance
        // (`robust::tests::single_failure_halves_diamond`). This is the
        // conservatism §3.5 criticizes.
        let (t, tm) = diamond();
        let sol = solve_r3(&t, &tm, 1);
        assert!(sol.objective.abs() < 1e-6, "got {}", sol.objective);
    }

    #[test]
    fn r3_positive_with_parallel_spare_capacity() {
        // Three parallel unit links: any failed link's capacity can be
        // rerouted half-and-half over the other two, leaving 0.5 of base
        // capacity per link -> z * d <= 1.5 with d = 1.
        let mut t = Topology::new("triple");
        let s = t.add_node("s");
        let d = t.add_node("t");
        t.add_link(s, d, 1.0);
        t.add_link(s, d, 1.0);
        t.add_link(s, d, 1.0);
        let mut tm = TrafficMatrix::zeros(2);
        tm.set_demand(s, d, 1.0);
        let sol = solve_r3(&t, &tm, 1);
        assert!((sol.objective - 1.5).abs() < 1e-5, "got {}", sol.objective);
        // And bounded by the intrinsic capability (2.0: lose one of three).
        let (opt, _, _) = crate::optimal::optimal_demand_scale(
            &t,
            &tm,
            &crate::failure::FailureModel::links(1),
            crate::optimal::ScenarioCoverage::Exhaustive,
        );
        assert!(sol.objective <= opt + 1e-6);
    }

    #[test]
    fn table1_r3_zero_on_fig5_two_failures() {
        let (topo, ids) = fig5_topology();
        let mut tm = TrafficMatrix::zeros(topo.node_count());
        tm.set_demand(ids.s, ids.t, 1.0);
        let sol = solve_r3(&topo, &tm, 2);
        assert!(sol.objective.abs() < 1e-5, "got {}", sol.objective);
    }
}

/// Generalized-R3 (Proposition 4): the special case of PCF's logical-flow
/// model that provably dominates R3 — links as tunnels, one always-active
/// flow per demand pair, plus one flow per link direction activated when
/// that link dies.
///
/// Unlike plain R3, this can route around *combinations* of failures from
/// any node (not just the failed link's endpoints), and extends to node
/// failures. The demand flows' segment support is restricted to physical
/// arcs (see `logical_flow` docs); bypass flows avoid their own link.
pub fn solve_generalized_r3(
    topo: &Topology,
    tm: &TrafficMatrix,
    f: usize,
    opts: &crate::robust::RobustOptions,
) -> R3Solution {
    use crate::failure::{Condition, FailureModel};
    use crate::instance::InstanceBuilder;
    use crate::logical_flow::{bypass_flows, solve_logical_flow, FlowSpec};

    // All physical arcs as the shared segment support.
    let arcs: Vec<(NodeId, NodeId)> = topo
        .arcs()
        .map(|a| (topo.arc_src(a), topo.arc_dst(a)))
        .collect();
    let mut flows: Vec<FlowSpec> = tm
        .positive_pairs()
        .into_iter()
        .map(|(s, t, _)| FlowSpec {
            src: s,
            dst: t,
            condition: Condition::Always,
            support: arcs.clone(),
        })
        .collect();
    flows.extend(bypass_flows(topo, 2));

    // Links are tunnels: each adjacent pair gets exactly its direct links.
    let mut b = InstanceBuilder::new(topo, tm).no_auto_tunnels();
    for l in topo.links() {
        let link = topo.link(l);
        for (u, v) in [(link.u, link.v), (link.v, link.u)] {
            b = b.add_tunnel(pcf_paths::Path {
                nodes: vec![u, v],
                links: vec![l],
            });
        }
    }
    for w in &flows {
        b = b.add_pair(w.src, w.dst);
        for &(u, v) in &w.support {
            b = b.add_pair(u, v);
        }
    }
    let inst = b.build();
    let sol = match solve_logical_flow(&inst, &flows, &FailureModel::links(f), opts) {
        Ok(s) => s,
        // audit:allow(no-panic-paths, compatibility wrapper; fallible path is solve_logical_flow)
        Err(e) => panic!("generalized R3 flow solve failed: {e}"),
    };
    R3Solution {
        objective: sol.objective,
    }
}

#[cfg(test)]
mod generalized_tests {
    use super::*;
    use crate::robust::RobustOptions;

    #[test]
    fn generalized_r3_dominates_r3_on_diamond() {
        // R3 admits 0 on the diamond (capacity-based envelope); the
        // generalized model reroutes per-failure and recovers the full 1.0.
        let mut t = Topology::new("diamond");
        let s = t.add_node("s");
        let a = t.add_node("a");
        let b = t.add_node("b");
        let d = t.add_node("t");
        t.add_link(s, a, 1.0);
        t.add_link(a, d, 1.0);
        t.add_link(s, b, 1.0);
        t.add_link(b, d, 1.0);
        let mut tm = TrafficMatrix::zeros(4);
        tm.set_demand(s, d, 1.0);
        let r3 = solve_r3(&t, &tm, 1);
        let gr3 = solve_generalized_r3(&t, &tm, 1, &RobustOptions::default());
        assert!(gr3.objective >= r3.objective - 1e-9);
        assert!(gr3.objective >= 1.0 - 1e-5, "got {}", gr3.objective);
    }

    #[test]
    fn generalized_r3_on_fig5_dominates_r3() {
        // Under two failures any of Fig. 5's degree-2 middle routers can be
        // isolated, and a static base flow must use them — so Generalized-R3
        // is 0 here, like R3 (dominance holds as equality; only PCF's
        // *conditional* response reaches 1.0, which is Table 1's point).
        let (topo, ids) = crate::figures::fig5_topology();
        let mut tm = TrafficMatrix::zeros(topo.node_count());
        tm.set_demand(ids.s, ids.t, 1.0);
        let r3 = solve_r3(&topo, &tm, 2);
        let gr3 = solve_generalized_r3(&topo, &tm, 2, &RobustOptions::default());
        assert!(gr3.objective >= r3.objective - 1e-9);
        assert!(gr3.objective.abs() < 1e-6, "got {}", gr3.objective);
        // Under a single failure the generalized model is strictly positive.
        let gr3_f1 = solve_generalized_r3(&topo, &tm, 1, &RobustOptions::default());
        assert!(gr3_f1.objective > 0.5, "f=1 got {}", gr3_f1.objective);
    }
}
