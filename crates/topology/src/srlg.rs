//! Shared-risk link group (SRLG) sidecar files.
//!
//! Real SRLG data (conduits, fiber spans, amplifier huts) lives next to the
//! topology it annotates. This module parses a small line-oriented sidecar
//! format, one group per line:
//!
//! ```text
//! # Abilene.srlg — conduit groups
//! group e0 e3 e7
//! group e2 e5
//! ```
//!
//! Parsing is *strict*: unknown link ids, duplicate links within a group,
//! empty groups, and unrecognised keywords are all rejected with 1-based
//! line numbers (the same diagnostic shape as trace parsing in
//! `pcf-replay`). [`SrlgSet::to_text`] round-trips exactly.

use crate::graph::{LinkId, Topology};
use std::fmt;
use std::path::{Path, PathBuf};

/// One shared-risk group: the links that fail together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SrlgGroup {
    /// Member links, in file order.
    pub links: Vec<LinkId>,
}

/// An ordered set of shared-risk groups for one topology.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SrlgSet {
    /// The groups, in file order (trace `srlg <i>` events index into this).
    pub groups: Vec<SrlgGroup>,
}

/// Error from parsing an SRLG sidecar file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SrlgParseError {
    /// 1-based line of the offending entry.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for SrlgParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "srlg line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SrlgParseError {}

impl SrlgSet {
    /// Parses sidecar text against a concrete topology.
    ///
    /// Rejects, with the offending 1-based line number:
    /// * tokens that are not `e<index>` link ids,
    /// * link ids outside the topology,
    /// * duplicate links within one group,
    /// * empty groups (`group` with no members),
    /// * lines that do not start with the `group` keyword.
    pub fn parse_strict(text: &str, topo: &Topology) -> Result<Self, SrlgParseError> {
        let mut groups = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let mut tokens = content.split_whitespace();
            let keyword = tokens.next().unwrap_or("");
            if keyword != "group" {
                return Err(SrlgParseError {
                    line,
                    message: format!("expected `group`, found {keyword:?}"),
                });
            }
            let mut links: Vec<LinkId> = Vec::new();
            for tok in tokens {
                let Some(num) = tok.strip_prefix('e') else {
                    return Err(SrlgParseError {
                        line,
                        message: format!("bad link id {tok:?} (expected e<index>)"),
                    });
                };
                let Ok(idx) = num.parse::<u32>() else {
                    return Err(SrlgParseError {
                        line,
                        message: format!("bad link id {tok:?} (expected e<index>)"),
                    });
                };
                if idx as usize >= topo.link_count() {
                    return Err(SrlgParseError {
                        line,
                        message: format!(
                            "unknown link e{idx} (topology has {} links)",
                            topo.link_count()
                        ),
                    });
                }
                let l = LinkId(idx);
                if links.contains(&l) {
                    return Err(SrlgParseError {
                        line,
                        message: format!("duplicate link e{idx} in group"),
                    });
                }
                links.push(l);
            }
            if links.is_empty() {
                return Err(SrlgParseError {
                    line,
                    message: "empty group".to_string(),
                });
            }
            groups.push(SrlgGroup { links });
        }
        Ok(SrlgSet { groups })
    }

    /// Serialises the set back to sidecar text; [`SrlgSet::parse_strict`]
    /// on the output reproduces the set exactly.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for g in &self.groups {
            out.push_str("group");
            for l in &g.links {
                out.push_str(&format!(" e{}", l.index()));
            }
            out.push('\n');
        }
        out
    }

    /// The conventional sidecar path next to a topology file:
    /// `foo.gml` → `foo.srlg`.
    pub fn sidecar_path(topology_path: &Path) -> PathBuf {
        topology_path.with_extension("srlg")
    }

    /// The groups as plain link lists (the shape `FailureModel::Groups`
    /// and `GroupBudget` consume).
    pub fn link_groups(&self) -> Vec<Vec<LinkId>> {
        self.groups.iter().map(|g| g.links.clone()).collect()
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when the set has no groups.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// A deterministic synthetic SRLG set for topologies without sidecar
    /// data: links are shuffled by a seeded LCG and chunked into `count`
    /// groups of `size` (the tail chunk may be shorter; chunks never reuse a
    /// link). Mirrors how conduit sharing clusters geographically adjacent
    /// links without needing real conduit data.
    pub fn synthetic(topo: &Topology, size: usize, count: usize, seed: u64) -> Self {
        assert!(size > 0, "SRLG group size must be positive");
        let mut order: Vec<u32> = (0..topo.link_count() as u32).collect();
        let mut state = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        for i in (1..order.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = ((state >> 33) as usize) % (i + 1);
            order.swap(i, j);
        }
        let groups = order
            .chunks(size)
            .take(count)
            .filter(|c| !c.is_empty())
            .map(|c| {
                let mut links: Vec<LinkId> = c.iter().map(|&i| LinkId(i)).collect();
                links.sort_unstable_by_key(|l| l.index());
                SrlgGroup { links }
            })
            .collect();
        SrlgSet { groups }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn parse_and_round_trip() {
        let t = zoo::build("Abilene");
        let text = "# conduits\ngroup e0 e3 e7\n\ngroup e2 e5 # same duct\n";
        let set = SrlgSet::parse_strict(text, &t).unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.groups[0].links, vec![LinkId(0), LinkId(3), LinkId(7)]);
        assert_eq!(set.groups[1].links, vec![LinkId(2), LinkId(5)]);
        let round = SrlgSet::parse_strict(&set.to_text(), &t).unwrap();
        assert_eq!(round, set);
    }

    #[test]
    fn unknown_link_is_rejected_with_line() {
        let t = zoo::build("Abilene"); // 14 links
        let err = SrlgSet::parse_strict("group e0\ngroup e99\n", &t).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown link e99"), "{}", err.message);
    }

    #[test]
    fn duplicate_link_in_group_is_rejected() {
        let t = zoo::build("Abilene");
        let err = SrlgSet::parse_strict("group e1 e2 e1\n", &t).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("duplicate link e1"), "{}", err.message);
    }

    #[test]
    fn empty_group_is_rejected() {
        let t = zoo::build("Abilene");
        let err = SrlgSet::parse_strict("group e0\ngroup\n", &t).unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.message, "empty group");
    }

    #[test]
    fn bad_tokens_are_rejected() {
        let t = zoo::build("Abilene");
        let err = SrlgSet::parse_strict("srlg e0 e1\n", &t).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("expected `group`"), "{}", err.message);
        let err2 = SrlgSet::parse_strict("group x7\n", &t).unwrap_err();
        assert!(err2.message.contains("bad link id"), "{}", err2.message);
        let err3 = SrlgSet::parse_strict("group e1x\n", &t).unwrap_err();
        assert!(err3.message.contains("bad link id"), "{}", err3.message);
    }

    #[test]
    fn sidecar_path_swaps_extension() {
        let p = SrlgSet::sidecar_path(Path::new("/data/Abilene.gml"));
        assert_eq!(p, PathBuf::from("/data/Abilene.srlg"));
    }

    #[test]
    fn synthetic_is_deterministic_and_disjoint() {
        let t = zoo::build("Sprint"); // 17 links
        let a = SrlgSet::synthetic(&t, 3, 4, 11);
        let b = SrlgSet::synthetic(&t, 3, 4, 11);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        let mut seen = std::collections::HashSet::new();
        for g in &a.groups {
            assert!(!g.links.is_empty() && g.links.len() <= 3);
            for l in &g.links {
                assert!(seen.insert(*l), "link {l:?} reused across groups");
            }
        }
        // Round-trips through the textual format too.
        let round = SrlgSet::parse_strict(&a.to_text(), &t).unwrap();
        assert_eq!(round, a);
    }
}
