//! Admission control from a standing robust plan (no re-solve).
//!
//! A converged [`crate::robust::RobustSolution`] carries, per pair, the
//! inner adversary's optimum over the relaxed failure polytope
//! ([`crate::robust::RobustSolution::worst_available`]). Because the
//! relaxed polytope contains every integral scenario, that value
//! *lower-bounds* the true worst-case availability — so
//!
//! ```text
//! served[p] + d  <=  worst_available[p]
//! ```
//!
//! is a sufficient condition for "demand `d` can be added between the
//! pair's endpoints and every modeled failure scenario still realizes
//! congestion-free" (Proposition 5 turns the per-pair constraint into
//! joint feasibility, and no other pair's constraint mentions `served[p]`).
//! That is the O(1) fast path of [`admit`].
//!
//! When the fast path rejects, the relaxation may simply be conservative.
//! [`integral_worst_case`] settles it exactly: only links that appear in
//! the pair's tunnels or in the activation conditions of its `L(p)`/`Q(p)`
//! sequences can move the pair's availability, so enumerating ≤f-subsets
//! of that *candidate* set visits the true integral minimum — and the
//! minimizing subset is a concrete witnessing scenario for a rejection.

use crate::failure::{Condition, FailureModel};
use crate::instance::{Instance, PairId};
use pcf_topology::LinkId;
use std::collections::BTreeSet;

/// Exact (integral) worst case of one pair's availability, with the
/// scenario that attains it.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioWorstCase {
    /// Minimum availability over the enumerated scenarios.
    pub available: f64,
    /// The links dead in the minimizing scenario (empty = no failure).
    pub witness: Vec<LinkId>,
    /// Scenarios evaluated to find the minimum.
    pub evaluated: usize,
}

/// The decision of [`admit`], with enough context to explain it on a wire
/// protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmitOutcome {
    /// The extra demand survives every modeled scenario.
    Admitted {
        /// Availability slack beyond the pair's current served demand.
        headroom: f64,
        /// True when the O(1) relaxed bound already sufficed; false when
        /// the exact enumeration had to overrule a conservative relaxation.
        relaxed: bool,
    },
    /// Some scenario cannot carry the extra demand.
    Rejected {
        /// The binding worst-case availability (integral when a witness is
        /// present, the relaxed bound otherwise).
        worst_available: f64,
        /// A concrete ≤f scenario that violates the requested demand, when
        /// the enumeration stayed within its evaluation budget.
        witness: Option<Vec<LinkId>>,
    },
}

impl AdmitOutcome {
    /// True for [`AdmitOutcome::Admitted`].
    pub fn admitted(&self) -> bool {
        matches!(self, AdmitOutcome::Admitted { .. })
    }
}

/// The links whose liveness can change this pair's availability: links on
/// its tunnels plus links referenced by the activation conditions of its
/// `L(p)` and `Q(p)` logical sequences. Failures outside this set leave
/// the availability formula untouched.
pub fn candidate_links(inst: &Instance, p: PairId) -> Vec<LinkId> {
    let mut set: BTreeSet<LinkId> = BTreeSet::new();
    for &l in inst.tunnels_of(p) {
        set.extend(inst.tunnel(l).links.iter().copied());
    }
    for &q in inst.lss_of(p).iter().chain(inst.segments_of(p)) {
        match &inst.ls(q).condition {
            Condition::Always => {}
            Condition::LinkDead(e) => {
                set.insert(*e);
            }
            Condition::AliveDead { alive, dead } => {
                set.extend(alive.iter().copied());
                set.extend(dead.iter().copied());
            }
        }
    }
    set.into_iter().collect()
}

/// Availability of pair `p` under a concrete dead-link mask — the left
/// side of scenario constraint (1):
/// `Σ_l a_l·alive_l + Σ_{q∈L(p)} b_q·h_q − Σ_{q'∈Q(p)} b_{q'}·h_{q'}`.
pub fn availability_under(
    inst: &Instance,
    p: PairId,
    a: &[f64],
    b: &[f64],
    dead_mask: &[bool],
) -> f64 {
    let mut avail = 0.0;
    for &l in inst.tunnels_of(p) {
        if inst.tunnel(l).links.iter().all(|e| !dead_mask[e.index()]) {
            avail += a[l.0];
        }
    }
    for &q in inst.lss_of(p) {
        if inst.ls(q).condition.holds(dead_mask) {
            avail += b[q.0];
        }
    }
    for &q in inst.segments_of(p) {
        if inst.ls(q).condition.holds(dead_mask) {
            avail -= b[q.0];
        }
    }
    avail
}

/// Exact integral worst-case availability of pair `p` under `fm`, by
/// enumerating failure subsets of the pair's [`candidate_links`] (sizes
/// `0..=f`; for group models, subsets of the groups that intersect the
/// candidates; for explicit lists, the listed scenarios). Returns `None`
/// when more than `max_evals` scenario evaluations would be needed —
/// callers then fall back to the relaxed bound.
///
/// Sub-budget cardinalities are enumerated too: conditional LSs make
/// availability non-monotone in the failure set (an extra failure can
/// *activate* a protection sequence), so the minimum need not sit at
/// cardinality exactly `f`.
///
/// For [`FailureModel::Structured`] the result is a conservative *lower
/// bound* rather than the exact minimum (per-budget worst losses plus a
/// linearized degradation loss are summed; subadditivity makes that safe),
/// and `None` is returned when the pair has any conditional LS — see the
/// comment in the match arm.
pub fn integral_worst_case(
    inst: &Instance,
    p: PairId,
    fm: &FailureModel,
    a: &[f64],
    b: &[f64],
    max_evals: usize,
) -> Option<ScenarioWorstCase> {
    let links = inst.topo().link_count();
    let mut mask = vec![false; links];
    let mut evaluated = 0usize;
    // Seed with the no-failure scenario (always admissible as a scenario).
    let mut best = ScenarioWorstCase {
        available: availability_under(inst, p, a, b, &mask),
        witness: Vec::new(),
        evaluated: 0,
    };
    // The failure units the budget ranges over: single candidate links, or
    // the groups that can kill at least one candidate link.
    let candidates = candidate_links(inst, p);
    let units: Vec<Vec<LinkId>> = match fm {
        FailureModel::Links { .. } => candidates.iter().map(|&l| vec![l]).collect(),
        FailureModel::Groups { groups, .. } => groups
            .iter()
            .filter(|g| g.iter().any(|l| candidates.binary_search(l).is_ok()))
            .cloned()
            .collect(),
        FailureModel::Explicit { scenarios } => {
            for scenario in scenarios {
                evaluated += 1;
                if evaluated > max_evals {
                    return None;
                }
                for l in scenario {
                    mask[l.index()] = true;
                }
                let avail = availability_under(inst, p, a, b, &mask);
                for l in scenario {
                    mask[l.index()] = false;
                }
                if avail < best.available {
                    best.available = avail;
                    best.witness = scenario.clone();
                }
            }
            best.evaluated = evaluated;
            return Some(best);
        }
        FailureModel::Structured {
            budgets,
            degradation,
        } => {
            // Conditional LSs make availability non-additive across the
            // conjunctive budgets (one budget's failures can activate or
            // deactivate protection another budget's loss was computed
            // against), so summing per-budget worst losses would not be a
            // bound in either direction. Stay conservative: report "cannot
            // enumerate" and let the caller fall back to the relaxed bound
            // (which is a true lower bound by construction).
            let conditional = inst
                .lss_of(p)
                .iter()
                .chain(inst.segments_of(p))
                .any(|&q| !matches!(inst.ls(q).condition, Condition::Always));
            if conditional {
                return None;
            }
            // With Always-only conditions, availability = const + Σ_alive a:
            // the loss of a failure set is a coverage function, hence
            // subadditive, and summing each budget's exact worst loss
            // lower-bounds the joint availability (conservative-safe).
            let base = best.available;
            let mut remaining = max_evals;
            let mut total_loss = 0.0;
            let mut witness: BTreeSet<LinkId> = BTreeSet::new();
            for bgt in budgets {
                let sub = FailureModel::Groups {
                    groups: bgt.groups.clone(),
                    f: bgt.f,
                };
                let wc = integral_worst_case(inst, p, &sub, a, b, remaining)?;
                evaluated += wc.evaluated;
                remaining = remaining.saturating_sub(wc.evaluated);
                total_loss += (base - wc.available).max(0.0);
                witness.extend(wc.witness);
            }
            // Degradation loss: the linearized per-link weights
            // w_e = Σ_{τ_l ∋ e} a_l make Σ_e w_e d_e an upper bound on the
            // realized multiplicative loss; the box+budget LP maximum is
            // attained greedily on the largest weights.
            if let Some(deg) = degradation {
                let mut w = vec![0.0f64; links];
                let mut total_a = 0.0;
                for &l in inst.tunnels_of(p) {
                    total_a += a[l.0].max(0.0);
                    for e in &inst.tunnel(l).links {
                        w[e.index()] += a[l.0].max(0.0);
                    }
                }
                let mut order: Vec<usize> = (0..links).collect();
                order.sort_by(|&i, &j| w[j].total_cmp(&w[i]).then(i.cmp(&j)));
                let mut deg_loss = 0.0;
                let mut budget_left = deg.budget.unwrap_or(f64::INFINITY);
                for e in order {
                    if budget_left <= 0.0 || w[e] <= 0.0 {
                        break;
                    }
                    let d = (1.0 - deg.floor[e]).clamp(0.0, 1.0).min(budget_left);
                    deg_loss += w[e] * d;
                    budget_left -= d;
                }
                total_loss += deg_loss.min(total_a);
            }
            best.available = base - total_loss;
            best.witness = witness.into_iter().collect();
            best.evaluated = evaluated;
            return Some(best);
        }
    };

    let f = fm.budget().min(units.len());
    // Budgeted check before enumerating: Σ_{k<=f} C(n, k).
    let mut total: usize = 1;
    let mut level: usize = 1;
    for k in 1..=f {
        level = level.saturating_mul(units.len() - k + 1) / k;
        total = total.saturating_add(level);
        if total > max_evals {
            return None;
        }
    }

    let mut idx = Vec::new();
    for k in 1..=f {
        idx.clear();
        idx.extend(0..k);
        loop {
            for &i in &idx {
                for l in &units[i] {
                    mask[l.index()] = true;
                }
            }
            evaluated += 1;
            let avail = availability_under(inst, p, a, b, &mask);
            if avail < best.available {
                best.available = avail;
                best.witness = idx
                    .iter()
                    .flat_map(|&i| units[i].iter().copied())
                    .collect::<BTreeSet<LinkId>>()
                    .into_iter()
                    .collect();
            }
            for &i in &idx {
                for l in &units[i] {
                    mask[l.index()] = false;
                }
            }
            if !next_combination(&mut idx, units.len()) {
                break;
            }
        }
    }
    best.evaluated = evaluated;
    Some(best)
}

/// Advances `idx` to the next lexicographic k-combination of `0..n`;
/// returns `false` when `idx` already is the last one.
fn next_combination(idx: &mut [usize], n: usize) -> bool {
    let k = idx.len();
    let mut i = k;
    while i > 0 {
        i -= 1;
        if idx[i] < n - (k - i) {
            idx[i] += 1;
            for j in i + 1..k {
                idx[j] = idx[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

/// Decides whether demand `extra` can be added on pair `p` without
/// violating any modeled scenario, given the pair's currently served
/// demand and the stored relaxed worst-case availability (the dual value
/// [`crate::robust::RobustSolution::worst_available`] carries).
///
/// Fast path: the relaxed bound admits in O(1). Otherwise the exact
/// integral enumeration either overrules the (conservative) relaxation or
/// produces a witnessing scenario for the rejection. `tol_abs` absorbs LP
/// tolerance noise; `max_evals` bounds the enumeration.
#[allow(clippy::too_many_arguments)]
pub fn admit(
    inst: &Instance,
    p: PairId,
    fm: &FailureModel,
    a: &[f64],
    b: &[f64],
    served_p: f64,
    relaxed_available: f64,
    extra: f64,
    tol_abs: f64,
    max_evals: usize,
) -> AdmitOutcome {
    let required = served_p + extra;
    if required <= relaxed_available + tol_abs {
        return AdmitOutcome::Admitted {
            headroom: relaxed_available - served_p,
            relaxed: true,
        };
    }
    match integral_worst_case(inst, p, fm, a, b, max_evals) {
        Some(wc) if required <= wc.available + tol_abs => AdmitOutcome::Admitted {
            headroom: wc.available - served_p,
            relaxed: false,
        },
        Some(wc) => AdmitOutcome::Rejected {
            worst_available: wc.available,
            witness: Some(wc.witness),
        },
        // Enumeration over budget: fall back to the (safe, conservative)
        // relaxed verdict, without a concrete witness.
        None => AdmitOutcome::Rejected {
            worst_available: relaxed_available,
            witness: None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use crate::robust::{solve_robust, AdversaryKind, RobustOptions};
    use crate::validate::validate_scenarios;
    use pcf_topology::{NodeId, Topology};

    fn diamond() -> Topology {
        let mut t = Topology::new("diamond");
        let s = t.add_node("s");
        let a = t.add_node("a");
        let b = t.add_node("b");
        let d = t.add_node("t");
        t.add_link(s, a, 1.0);
        t.add_link(a, d, 1.0);
        t.add_link(s, b, 1.0);
        t.add_link(b, d, 1.0);
        t
    }

    #[test]
    fn integral_worst_case_matches_hand_count() {
        let topo = diamond();
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .tunnels_per_pair(2)
            .build();
        let p = inst.pair_id(NodeId(0), NodeId(3)).unwrap();
        // One unit on each 2-hop tunnel; any single failure kills one
        // tunnel, leaving availability 1.
        let a = vec![1.0; inst.num_tunnels()];
        let wc = integral_worst_case(&inst, p, &FailureModel::links(1), &a, &[], 10_000).unwrap();
        assert!((wc.available - 1.0).abs() < 1e-12, "{wc:?}");
        assert_eq!(wc.witness.len(), 1);
        // f=2 can cut both tunnels.
        let wc2 = integral_worst_case(&inst, p, &FailureModel::links(2), &a, &[], 10_000).unwrap();
        assert!(wc2.available.abs() < 1e-12, "{wc2:?}");
        assert_eq!(wc2.witness.len(), 2);
    }

    #[test]
    fn relaxed_bound_is_conservative() {
        // worst_available (relaxed) <= integral worst case, pair by pair.
        let topo = diamond();
        let inst = InstanceBuilder::with_demands(
            &topo,
            vec![(NodeId(0), NodeId(3), 1.0), (NodeId(1), NodeId(2), 0.5)],
        )
        .tunnels_per_pair(2)
        .build();
        let fm = FailureModel::links(1);
        let sol = solve_robust(
            &inst,
            &fm,
            AdversaryKind::LinkBased,
            &RobustOptions::default(),
        );
        assert_eq!(sol.worst_available.len(), inst.num_pairs());
        for p in inst.pair_ids() {
            let wc = integral_worst_case(&inst, p, &fm, &sol.a, &sol.b, 10_000).unwrap();
            assert!(
                sol.worst_available[p.0] <= wc.available + 1e-9,
                "pair {p:?}: relaxed {} > integral {}",
                sol.worst_available[p.0],
                wc.available
            );
            // And the plan it certifies really serves the demand.
            assert!(sol.worst_available[p.0] >= sol.z[p.0] * inst.demand(p) - 1e-6);
        }
    }

    #[test]
    fn admitted_demand_validates_and_rejection_carries_witness() {
        let topo = diamond();
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .tunnels_per_pair(2)
            .build();
        let fm = FailureModel::links(1);
        let sol = solve_robust(
            &inst,
            &fm,
            AdversaryKind::LinkBased,
            &RobustOptions::default(),
        );
        let p = inst.pair_id(NodeId(0), NodeId(3)).unwrap();
        let served = sol.z[p.0] * inst.demand(p);
        let headroom = sol.worst_available[p.0] - served;

        // Half the headroom must be admitted and validate congestion-free.
        let extra = 0.5 * headroom;
        let out = admit(
            &inst,
            p,
            &fm,
            &sol.a,
            &sol.b,
            served,
            sol.worst_available[p.0],
            extra,
            1e-9,
            10_000,
        );
        assert!(out.admitted(), "{out:?}");
        let bumped = vec![served + extra];
        let masks = fm.enumerate_scenarios(inst.topo());
        let report = validate_scenarios(&inst, &sol.a, &sol.b, &bumped, &masks, 1e-6);
        assert!(report.congestion_free(), "{:?}", report.violations);

        // Far beyond the headroom must be rejected with a witness whose
        // scenario indeed breaks validation.
        let out = admit(
            &inst,
            p,
            &fm,
            &sol.a,
            &sol.b,
            served,
            sol.worst_available[p.0],
            headroom + 0.5,
            1e-9,
            10_000,
        );
        let AdmitOutcome::Rejected {
            witness: Some(witness),
            worst_available,
        } = out
        else {
            panic!("expected witnessed rejection, got {out:?}");
        };
        assert!(served + headroom + 0.5 > worst_available);
        let mut mask = vec![false; inst.topo().link_count()];
        for l in &witness {
            mask[l.index()] = true;
        }
        let overloaded = vec![served + headroom + 0.5];
        let report = validate_scenarios(&inst, &sol.a, &sol.b, &overloaded, &[mask], 1e-6);
        assert!(
            !report.congestion_free(),
            "witness scenario {witness:?} did not violate"
        );
    }

    #[test]
    fn group_model_enumerates_group_subsets() {
        let topo = diamond();
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .tunnels_per_pair(2)
            .build();
        let p = inst.pair_id(NodeId(0), NodeId(3)).unwrap();
        let a = vec![1.0; inst.num_tunnels()];
        // One SRLG holding both first-hop links: a single group failure
        // kills both tunnels.
        let fm = FailureModel::Groups {
            groups: vec![vec![pcf_topology::LinkId(0), pcf_topology::LinkId(2)]],
            f: 1,
        };
        let wc = integral_worst_case(&inst, p, &fm, &a, &[], 10_000).unwrap();
        assert!(wc.available.abs() < 1e-12, "{wc:?}");
        assert_eq!(wc.witness.len(), 2);
    }

    #[test]
    fn evaluation_budget_falls_back_to_none() {
        let topo = pcf_topology::zoo::build("Abilene");
        let tm = pcf_traffic::gravity(&topo, 5);
        let inst = crate::schemes::tunnel_instance(&topo, &tm, 3);
        let p = PairId(0);
        let a = vec![0.1; inst.num_tunnels()];
        assert!(integral_worst_case(&inst, p, &FailureModel::links(3), &a, &[], 2).is_none());
    }
}
