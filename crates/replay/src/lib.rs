//! Online failure replay for PCF plans.
//!
//! The offline validator (`pcf_core::validate`) asks "is this allocation
//! safe over a scenario *set*?"; this crate asks the operational question:
//! "as links fail and recover over time, what does the network actually
//! do, and how fast can the response be computed?"
//!
//! * [`EventTrace`] — scripted or generated sequences of link up/down
//!   events ([`trace`]);
//! * [`ReplayEngine`] — incremental failure-state tracking plus an LU
//!   factorization cache keyed by liveness signature, so repeated failure
//!   states skip the O(n³) factor and pay only an O(n²) solve
//!   ([`engine`]);
//! * [`replay_trace`] / [`replay_batch`] — sequential and multi-threaded
//!   replay drivers producing a [`ReplayReport`] (per-event utilization,
//!   violation log, latency percentiles, cache counters) ([`report`]).
//!
//! Cached and cold replays run the same numerical code and produce
//! bit-identical routings; the property tests in this crate hold the
//! engine to that.

pub mod engine;
pub mod report;
pub mod trace;

pub use engine::{CacheStats, ReplayEngine};
pub use report::{
    replay_batch, replay_trace, LatencyHistogram, ReplayOptions, ReplayReport, ReplayViolation,
};
pub use trace::{EventKind, EventTrace, LinkEvent, TraceParseError};
