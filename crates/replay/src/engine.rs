//! The replay engine: incremental failure tracking plus a factorization
//! cache.
//!
//! [`ReplayEngine`] holds a solved allocation and a mutable link-liveness
//! state. Each [`LinkEvent`](crate::LinkEvent) updates the state
//! *incrementally* — per-tunnel dead-link counters and per-link condition
//! indexes make an event O(tunnels and LSs touching that link) instead of
//! O(instance) — and [`ReplayEngine::realize`] turns the current state
//! into a routing.
//!
//! Realization reads the failure state only through its liveness signature
//! (which tunnels are alive, which LSs are active), so repeated states can
//! share the expensive part of the linear solve: the engine caches the LU
//! factorization of the reservation matrix keyed by
//! [`FailureState::liveness_signature`]. A cache hit replaces the O(n³)
//! factorization with an O(n²) triangular solve; the numerical path is the
//! *same code* [`realize_routing`] runs (factor, solve, range-check,
//! expand), so cached and cold results are bit-identical.

use crate::trace::{EventKind, LinkEvent};
use pcf_core::{
    absolute_tolerance, check_utilizations, degrade_fallback, degraded_reservations,
    expand_routing, live_pairs, normal_routing, realize_routing, reservation_matrix, Condition,
    DegradeMode, DegradedRouting, FailureState, Instance, LadderStage, LsId, PairId, RealizeError,
    Routing, TunnelId,
};
use pcf_lp::{lu_factor, LuFactors, SparseLu};
use std::collections::{BTreeMap, VecDeque};

/// Which factorization backend [`ReplayEngine::realize`] uses for the
/// reservation matrix.
///
/// Both backends produce bit-identical solves (the sparse engine's
/// dense-compat mode replicates the dense pivoting exactly), but their
/// factor objects are different types with different internals — so the
/// cache keys every entry by kind, and an entry factored under one kind
/// is never served to the other.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FactorKind {
    /// Dense Gaussian elimination ([`pcf_lp::lu_factor`]).
    Dense,
    /// Sparse LU in dense-compat mode
    /// ([`pcf_lp::SparseLu::factor_dense_compat`]).
    #[default]
    Sparse,
}

/// Hit/miss/eviction counters of the factorization cache.
///
/// Error-path realizations are counted in [`CacheStats::errors`] — never
/// as hits or misses — so [`CacheStats::hit_rate`] measures what the
/// cache actually accelerates: successful factorizations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Successful realizations served from a cached factorization.
    pub hits: u64,
    /// Successful realizations that had to factor from scratch (cold mode
    /// counts every successful realization here).
    pub misses: u64,
    /// Entries dropped to respect the capacity bound.
    pub evictions: u64,
    /// Realizations that ended in a [`RealizeError`] (fresh or replayed
    /// from a cached error entry) — kept out of the hit/miss counters.
    pub errors: u64,
}

impl CacheStats {
    /// Fraction of successful realizations served from cache (0 when none
    /// ran). Error-path events do not dilute this.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accumulates another engine's counters (batch aggregation).
    pub fn absorb(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.errors += other.errors;
    }
}

/// Per-ladder-stage counters of [`ReplayEngine::realize_degraded`]
/// outcomes (the degradation analogue of [`CacheStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradeStats {
    /// Events served by the normal congestion-free realization (stage 1).
    pub normal: u64,
    /// Events served by the proportional rescale (stage 2).
    pub rescaled: u64,
    /// Events served by the max-min fair shedding LP (stage 3).
    pub shed: u64,
    /// Events no ladder stage could serve (mode off, or no fallback
    /// applied) — the only case that still blanks an event.
    pub failed: u64,
}

impl DegradeStats {
    /// Events that fell past stage 1 but were still served.
    pub fn degraded(&self) -> u64 {
        self.rescaled + self.shed
    }

    /// All realizations counted.
    pub fn total(&self) -> u64 {
        self.normal + self.rescaled + self.shed + self.failed
    }

    /// Accumulates another engine's counters (batch aggregation).
    pub fn absorb(&mut self, other: &DegradeStats) {
        self.normal += other.normal;
        self.rescaled += other.rescaled;
        self.shed += other.shed;
        self.failed += other.failed;
    }
}

/// What a cache entry remembers about one liveness signature: the solved
/// pair order and the LU factors of its reservation matrix (`None` when
/// there are no pairs of interest), or the structural error realization
/// hit.
pub(crate) enum Solved {
    Empty,
    Factored { pairs: Vec<PairId>, lu: Factors },
}

/// A kind-tagged factorization. Solves are bit-identical across variants;
/// the tag exists so cache bookkeeping can never mix backends.
pub(crate) enum Factors {
    Dense(LuFactors),
    Sparse(SparseLu),
}

impl Factors {
    fn solve(&self, rhs: &[f64]) -> Vec<f64> {
        match self {
            Factors::Dense(lu) => lu.solve(rhs),
            Factors::Sparse(lu) => lu.solve(rhs),
        }
    }
}

pub(crate) type CacheEntry = Result<Solved, RealizeError>;

/// The expensive half of a realization: live-pair selection plus the LU
/// factorization of the reservation matrix, as one cacheable value.
///
/// Depends on the failure state only through its liveness signature, so
/// the result can be keyed by `[kind] ++ signature` and shared across any
/// engines holding the same plan — the contract both [`FactorCache`] and
/// [`crate::SharedFactorCache`] rely on.
pub(crate) fn compute_entry(
    inst: &Instance,
    state: &FailureState,
    a: &[f64],
    b: &[f64],
    served: &[f64],
    tol: f64,
    kind: FactorKind,
) -> CacheEntry {
    let tol_abs = absolute_tolerance(served, tol);
    let pairs = live_pairs(inst, state, a, b, served, tol_abs)?;
    if pairs.is_empty() {
        return Ok(Solved::Empty);
    }
    let m = reservation_matrix(inst, state, a, b, &pairs);
    let lu = match kind {
        FactorKind::Dense => lu_factor(&m)
            .map(Factors::Dense)
            .map_err(|_| RealizeError::SingularMatrix)?,
        FactorKind::Sparse => SparseLu::factor_dense_compat(&m)
            .map(Factors::Sparse)
            .map_err(|_| RealizeError::SingularMatrix)?,
    };
    Ok(Solved::Factored { pairs, lu })
}

/// The cheap half of a realization: the O(n²) triangular solve, range
/// check, and routing expansion from a (possibly cached) entry. Together
/// with [`compute_entry`] this is exactly what [`realize_routing`] does,
/// so cached, shared, and cold results are bit-identical.
pub(crate) fn routing_from_entry(
    entry: &CacheEntry,
    inst: &Instance,
    state: &FailureState,
    a: &[f64],
    served: &[f64],
    tol: f64,
) -> Result<Routing, RealizeError> {
    match entry {
        Err(e) => Err(e.clone()),
        Ok(Solved::Empty) => Ok(Routing {
            pairs: Vec::new(),
            u: Vec::new(),
            tunnel_flow: vec![0.0; inst.num_tunnels()],
            arc_loads: vec![0.0; inst.topo().arc_count()],
        }),
        Ok(Solved::Factored { pairs, lu }) => {
            let d: Vec<f64> = pairs.iter().map(|&p| served[p.0]).collect();
            let u = lu.solve(&d);
            let u = check_utilizations(pairs, u, tol)?;
            Ok(expand_routing(inst, state, a, pairs, &u))
        }
    }
}

/// Insertion-order (FIFO) bounded map from liveness signature to solve
/// state.
struct FactorCache {
    capacity: usize,
    entries: BTreeMap<Vec<u64>, CacheEntry>,
    order: VecDeque<Vec<u64>>,
    stats: CacheStats,
}

impl FactorCache {
    fn new(capacity: usize) -> Self {
        FactorCache {
            capacity,
            entries: BTreeMap::new(),
            order: VecDeque::new(),
            stats: CacheStats::default(),
        }
    }

    /// Returns the entry for `sig`, computing and inserting it on a miss
    /// (evicting the oldest signature when full). Error entries are cached
    /// like any other (replaying the same bad state must not re-factor),
    /// but they count as [`CacheStats::errors`], not hits or misses.
    fn lookup_or_insert(
        &mut self,
        sig: Vec<u64>,
        compute: impl FnOnce() -> CacheEntry,
    ) -> &CacheEntry {
        let was_cached = self.entries.contains_key(&sig);
        if !was_cached {
            if self.entries.len() >= self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.entries.remove(&old);
                    self.stats.evictions += 1;
                }
            }
            self.order.push_back(sig.clone());
            self.entries.insert(sig.clone(), compute());
        }
        let entry = &self.entries[&sig];
        match entry {
            Err(_) => self.stats.errors += 1,
            Ok(_) if was_cached => self.stats.hits += 1,
            Ok(_) => self.stats.misses += 1,
        }
        entry
    }
}

/// Where an engine keeps (or doesn't keep) its factorizations.
enum CacheBackend<'a> {
    /// No cache: every realization factors from scratch.
    Cold,
    /// An engine-private FIFO cache (the default).
    Private(FactorCache),
    /// A [`crate::SharedFactorCache`] owned elsewhere and shared with
    /// other engines over the same plan.
    Shared(&'a crate::SharedFactorCache),
}

/// A streaming failure-replay engine over one solved allocation.
///
/// Borrows the instance and the plan (`a`, `b`, `served`); owns the
/// evolving failure state and the factorization cache. Create one per
/// trace — replaying a second trace on a warm engine is legal but its
/// state continues from wherever the first trace left the network.
pub struct ReplayEngine<'a> {
    inst: &'a Instance,
    a: &'a [f64],
    b: &'a [f64],
    served: &'a [f64],
    tol: f64,
    // Incrementally maintained failure state (kept materialized so
    // realization never has to rebuild or clone it).
    fs: FailureState,
    // `fs.liveness_signature()`, maintained bit-by-bit as events flip
    // liveness flags, so a cache lookup never rescans every tunnel/LS.
    sig: Vec<u64>,
    dead_links: usize,
    tunnel_dead_links: Vec<u32>,
    // Link -> affected entities, precomputed once.
    tunnels_on_link: Vec<Vec<TunnelId>>,
    lss_on_link: Vec<Vec<LsId>>,
    cache: CacheBackend<'a>,
    cold_stats: CacheStats,
    // Nominal per-link capacities and the ones currently in effect
    // (wobble and degrade events both scale entries of `caps`).
    nominal_caps: Vec<f64>,
    caps: Vec<f64>,
    // The two capacity-scaling channels, kept separate because only
    // degradation is visible to realization: wobbles move the judging bar,
    // degrades additionally rescale reservations and enter the cache key.
    wobble_p: Vec<u32>,
    degrade_p: Vec<u32>,
    degraded_links: usize,
    // FNV over the (link, permille) degradation pattern; 0 iff undegraded,
    // so undegraded cache keys keep their historical shape.
    degrade_fp: u64,
    degrade: DegradeMode,
    dstats: DegradeStats,
    factor_kind: FactorKind,
    // Fault-injection hook: pretend every factorization is singular.
    force_singular: bool,
}

impl<'a> ReplayEngine<'a> {
    /// Builds an engine over an all-alive network.
    ///
    /// `cache_capacity` bounds the number of retained factorizations;
    /// `0` disables the cache entirely (every realization factors from
    /// scratch — the baseline the cache is measured against).
    pub fn new(
        inst: &'a Instance,
        a: &'a [f64],
        b: &'a [f64],
        served: &'a [f64],
        tol: f64,
        cache_capacity: usize,
    ) -> Self {
        let links = inst.topo().link_count();
        let mut tunnels_on_link: Vec<Vec<TunnelId>> = vec![Vec::new(); links];
        for l in inst.tunnel_ids() {
            for &e in &inst.tunnel(l).links {
                tunnels_on_link[e.index()].push(l);
            }
        }
        let mut lss_on_link: Vec<Vec<LsId>> = vec![Vec::new(); links];
        for q in inst.ls_ids() {
            for e in condition_links(&inst.ls(q).condition) {
                lss_on_link[e].push(q);
            }
        }
        let no_fail = vec![false; links];
        let fs = FailureState {
            tunnel_alive: vec![true; inst.num_tunnels()],
            ls_active: inst
                .ls_ids()
                .map(|q| inst.ls(q).condition.holds(&no_fail))
                .collect(),
            dead: no_fail,
            cap_scale: vec![1.0; links],
        };
        let sig = fs.liveness_signature();
        ReplayEngine {
            inst,
            a,
            b,
            served,
            tol,
            fs,
            sig,
            dead_links: 0,
            tunnel_dead_links: vec![0; inst.num_tunnels()],
            tunnels_on_link,
            lss_on_link,
            cache: if cache_capacity > 0 {
                CacheBackend::Private(FactorCache::new(cache_capacity))
            } else {
                CacheBackend::Cold
            },
            cold_stats: CacheStats::default(),
            nominal_caps: inst
                .topo()
                .links()
                .map(|l| inst.topo().capacity(l))
                .collect(),
            caps: inst
                .topo()
                .links()
                .map(|l| inst.topo().capacity(l))
                .collect(),
            wobble_p: vec![1000; links],
            degrade_p: vec![1000; links],
            degraded_links: 0,
            degrade_fp: 0,
            degrade: DegradeMode::Off,
            dstats: DegradeStats::default(),
            factor_kind: FactorKind::default(),
            force_singular: false,
        }
    }

    /// Builds an engine whose factorizations live in `cache`, a
    /// [`crate::SharedFactorCache`] that other engines over the *same
    /// plan* (same `inst`, `a`, `b`, `served`, `tol`) may share.
    ///
    /// Cache entries are pure functions of the plan, the factor kind, and
    /// the liveness signature, so sharing across plans is unsound —
    /// callers keep one shared cache per plan (the serve layer keys one
    /// per plan epoch). Hit/miss counters live in the shared cache and
    /// aggregate over every engine attached to it.
    pub fn with_shared_cache(
        inst: &'a Instance,
        a: &'a [f64],
        b: &'a [f64],
        served: &'a [f64],
        tol: f64,
        cache: &'a crate::SharedFactorCache,
    ) -> Self {
        let mut engine = ReplayEngine::new(inst, a, b, served, tol, 0);
        engine.cache = CacheBackend::Shared(cache);
        engine
    }

    /// Selects the factorization backend (default: [`FactorKind::Sparse`]).
    ///
    /// Safe to flip mid-trace: cache entries are keyed by kind, so a
    /// factorization computed under the previous backend is never served
    /// to the new one (it ages out by FIFO instead).
    pub fn set_factor_kind(&mut self, kind: FactorKind) {
        self.factor_kind = kind;
    }

    /// Selects how far down the degradation ladder
    /// [`ReplayEngine::realize_degraded`] may fall (default:
    /// [`DegradeMode::Off`]).
    pub fn set_degrade(&mut self, mode: DegradeMode) {
        self.degrade = mode;
    }

    /// Fault-injection hook: while set, every realization behaves as if
    /// `lu_factor` failed ([`RealizeError::SingularMatrix`]). The failure
    /// is synthesized *before* the cache is consulted, so no poisoned
    /// entry is ever stored and cache counters don't move — exactly the
    /// isolation the degradation ladder promises for degraded results.
    pub fn force_singular(&mut self, on: bool) {
        self.force_singular = on;
    }

    /// Applies one link event. Idempotent events (down while down, up while
    /// up) are no-ops; out-of-range links are rejected.
    pub fn apply(&mut self, event: &LinkEvent) -> Result<(), RealizeError> {
        let e = event.link.index();
        if e >= self.fs.dead.len() {
            return Err(RealizeError::MaskLengthMismatch {
                expected: self.fs.dead.len(),
                got: e + 1,
            });
        }
        let goes_down = match event.kind {
            EventKind::Down => {
                if self.fs.dead[e] {
                    return Ok(());
                }
                true
            }
            EventKind::Up => {
                if !self.fs.dead[e] {
                    return Ok(());
                }
                false
            }
            EventKind::Wobble { permille } => {
                // Wobbles don't touch liveness (or the cache signature —
                // realization is wobble-blind); they only move the bar
                // overload checks measure against.
                self.wobble_p[e] = permille;
                self.caps[e] = self.effective_cap(e);
                return Ok(());
            }
            EventKind::Degrade { permille } => {
                // Degradation is realization-visible: it rescales the
                // reservations riding the link and enters the cache key
                // through the degradation fingerprint. Liveness (and the
                // liveness signature) stay untouched — the link is alive.
                let p = permille.clamp(1, 1000);
                let was = self.degrade_p[e] != 1000;
                let now = p != 1000;
                self.degrade_p[e] = p;
                self.fs.cap_scale[e] = p as f64 / 1000.0;
                self.caps[e] = self.effective_cap(e);
                match (was, now) {
                    (false, true) => self.degraded_links += 1,
                    (true, false) => self.degraded_links -= 1,
                    _ => {}
                }
                self.degrade_fp = self.degrade_fingerprint();
                return Ok(());
            }
        };
        self.fs.dead[e] = goes_down;
        if goes_down {
            self.dead_links += 1;
        } else {
            self.dead_links -= 1;
        }
        for &l in &self.tunnels_on_link[e] {
            if goes_down {
                self.tunnel_dead_links[l.0] += 1;
            } else {
                self.tunnel_dead_links[l.0] -= 1;
            }
            let alive = self.tunnel_dead_links[l.0] == 0;
            if alive != self.fs.tunnel_alive[l.0] {
                self.sig[l.0 >> 6] ^= 1 << (l.0 & 63);
            }
            self.fs.tunnel_alive[l.0] = alive;
        }
        let tunnel_bits = self.inst.num_tunnels();
        for &q in &self.lss_on_link[e] {
            let active = self.inst.ls(q).condition.holds(&self.fs.dead);
            if active != self.fs.ls_active[q.0] {
                let bit = tunnel_bits + q.0;
                self.sig[bit >> 6] ^= 1 << (bit & 63);
            }
            self.fs.ls_active[q.0] = active;
        }
        debug_assert_eq!(self.sig, self.fs.liveness_signature());
        Ok(())
    }

    /// The capacity currently in effect on link `e`: nominal scaled by
    /// both the wobble and degrade channels.
    fn effective_cap(&self, e: usize) -> f64 {
        self.nominal_caps[e]
            * (self.wobble_p[e] as f64 / 1000.0)
            * (self.degrade_p[e] as f64 / 1000.0)
    }

    /// FNV-1a over the sorted (link, permille) degradation pattern.
    /// Returns 0 exactly when nothing is degraded; a (vanishingly rare)
    /// hash of 0 is bumped to 1 so a degraded state can never alias an
    /// undegraded cache key.
    fn degrade_fingerprint(&self) -> u64 {
        if self.degraded_links == 0 {
            return 0;
        }
        let mut h: u64 = 0xcbf29ce484222325;
        for (i, &p) in self.degrade_p.iter().enumerate() {
            if p == 1000 {
                continue;
            }
            for byte in (i as u64).to_le_bytes().into_iter().chain(p.to_le_bytes()) {
                h ^= byte as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        h.max(1)
    }

    /// The plan's reservations under the current degradation pattern
    /// (`None` when nothing is degraded and the nominal `a` applies).
    fn effective_a(&self) -> Option<Vec<f64>> {
        if self.degraded_links == 0 {
            None
        } else {
            Some(degraded_reservations(self.inst, &self.fs, self.a))
        }
    }

    /// Number of currently dead links.
    pub fn dead_links(&self) -> usize {
        self.dead_links
    }

    /// Number of links currently running partial-capacity degraded.
    pub fn degraded_links(&self) -> usize {
        self.degraded_links
    }

    /// The current state as a [`FailureState`] (a snapshot — further events
    /// don't affect it). Equal, field for field, to
    /// `FailureState::new(inst, &dead)` for the accumulated mask, except
    /// that `cap_scale` carries any degrade events applied so far.
    pub fn state(&self) -> FailureState {
        self.fs.clone()
    }

    /// Realizes the routing for the current failure state.
    ///
    /// With the cache enabled, a previously seen liveness signature reuses
    /// its stored LU factors (an O(n²) solve); a new signature pays the
    /// full factorization once. Results — including errors — are identical
    /// to calling [`realize_routing`] on [`ReplayEngine::state`].
    ///
    /// Under partial-capacity degradation the reservations are first
    /// rescaled per tunnel ([`degraded_reservations`]) so the realized
    /// loads respect the surviving capacities, and the cache key grows a
    /// degradation fingerprint — undegraded states keep their historical
    /// keys, and a degraded factorization is never served to (or from) an
    /// undegraded one.
    pub fn realize(&mut self) -> Result<Routing, RealizeError> {
        if self.force_singular {
            // Injected failure: reported before the cache is consulted so
            // it can neither store nor serve a poisoned entry.
            return Err(RealizeError::SingularMatrix);
        }
        let a_scaled = self.effective_a();
        let state = &self.fs;
        let (inst, b, served, tol) = (self.inst, self.b, self.served, self.tol);
        let a: &[f64] = a_scaled.as_deref().unwrap_or(self.a);
        let kind = self.factor_kind;
        match &mut self.cache {
            CacheBackend::Cold => {
                let res = realize_routing(inst, state, a, b, served, tol);
                if res.is_err() {
                    self.cold_stats.errors += 1;
                } else {
                    self.cold_stats.misses += 1;
                }
                res
            }
            CacheBackend::Private(cache) => {
                // The cache key leads with the factor kind: a dense-era
                // entry must never answer for the sparse backend (or vice
                // versa), even though their liveness signatures match. A
                // degradation fingerprint (present only when degraded)
                // does the same for capacity patterns.
                let mut key = Vec::with_capacity(self.sig.len() + 2);
                key.push(kind as u64);
                key.extend_from_slice(&self.sig);
                if self.degrade_fp != 0 {
                    key.push(self.degrade_fp);
                }
                let entry = cache
                    .lookup_or_insert(key, || compute_entry(inst, state, a, b, served, tol, kind));
                routing_from_entry(entry, inst, state, a, served, tol)
            }
            CacheBackend::Shared(shared) => {
                let mut key = Vec::with_capacity(self.sig.len() + 2);
                key.push(kind as u64);
                key.extend_from_slice(&self.sig);
                if self.degrade_fp != 0 {
                    key.push(self.degrade_fp);
                }
                let entry = shared
                    .lookup_or_insert(&key, || compute_entry(inst, state, a, b, served, tol, kind));
                routing_from_entry(&entry, inst, state, a, served, tol)
            }
        }
    }

    /// Realizes the current state through the degradation ladder: the
    /// normal (cached) realization first, then — on error and if
    /// [`ReplayEngine::set_degrade`] allows — the rescale and shed
    /// fallbacks of [`pcf_core::degrade`].
    ///
    /// Degraded results are computed outside the factor cache and are
    /// never stored in it: the cache holds only congestion-free
    /// factorizations, so a later identical state realizing normally can
    /// never be served a best-effort routing by mistake.
    pub fn realize_degraded(&mut self) -> Result<DegradedRouting, RealizeError> {
        match self.realize() {
            Ok(routing) => {
                self.dstats.normal += 1;
                Ok(normal_routing(self.inst, routing, &self.caps))
            }
            Err(err) => {
                let a_scaled = self.effective_a();
                let a: &[f64] = a_scaled.as_deref().unwrap_or(self.a);
                let fallback = degrade_fallback(
                    self.inst,
                    &self.fs,
                    a,
                    self.b,
                    self.served,
                    self.tol,
                    &self.caps,
                    self.degrade,
                    err,
                );
                match &fallback {
                    Ok(d) => match d.ladder_stage {
                        LadderStage::Normal => self.dstats.normal += 1,
                        LadderStage::Rescaled => self.dstats.rescaled += 1,
                        LadderStage::Shed => self.dstats.shed += 1,
                    },
                    Err(_) => self.dstats.failed += 1,
                }
                fallback
            }
        }
    }

    /// Ladder-stage counters of [`ReplayEngine::realize_degraded`] so far.
    pub fn degrade_stats(&self) -> DegradeStats {
        self.dstats
    }

    /// The capacity of `link` currently in effect (nominal unless a
    /// wobble or degrade event rescaled it).
    pub fn capacity(&self, link: pcf_topology::LinkId) -> f64 {
        self.caps[link.index()]
    }

    /// All per-link capacities currently in effect.
    pub fn capacities(&self) -> &[f64] {
        &self.caps
    }

    /// Cache counters so far (in cold mode: every successful realization
    /// is a miss; in shared mode: a snapshot of the shared cache's
    /// counters, aggregated over every engine attached to it).
    pub fn cache_stats(&self) -> CacheStats {
        match &self.cache {
            CacheBackend::Private(c) => c.stats,
            CacheBackend::Shared(s) => s.stats(),
            CacheBackend::Cold => self.cold_stats,
        }
    }

    /// Number of factorizations currently retained.
    pub fn cached_entries(&self) -> usize {
        match &self.cache {
            CacheBackend::Private(c) => c.entries.len(),
            CacheBackend::Shared(s) => s.len(),
            CacheBackend::Cold => 0,
        }
    }
}

/// The links a condition's truth value depends on.
fn condition_links(c: &Condition) -> Vec<usize> {
    match c {
        Condition::Always => Vec::new(),
        Condition::LinkDead(e) => vec![e.index()],
        Condition::AliveDead { alive, dead } => {
            alive.iter().chain(dead).map(|e| e.index()).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::EventTrace;
    use pcf_core::{solve_pcf_ls, FailureModel, RobustOptions};
    use pcf_topology::zoo;
    use pcf_traffic::gravity;

    fn sprint_plan() -> (Instance, Vec<f64>, Vec<f64>, Vec<f64>) {
        let topo = zoo::build("Sprint");
        let tm = gravity(&topo, 11);
        let inst = pcf_core::pcf_ls_instance(&topo, &tm, 3);
        let sol = solve_pcf_ls(&inst, &FailureModel::links(1), &RobustOptions::default());
        let served: Vec<f64> = inst
            .pair_ids()
            .map(|p| sol.z[p.0] * inst.demand(p))
            .collect();
        (inst, sol.a, sol.b, served)
    }

    #[test]
    fn incremental_state_matches_from_scratch() {
        let (inst, a, b, served) = sprint_plan();
        let trace = EventTrace::flaps(inst.topo(), 200, 3, 9);
        let mut engine = ReplayEngine::new(&inst, &a, &b, &served, 1e-6, 64);
        let mut mask = vec![false; inst.topo().link_count()];
        for ev in &trace.events {
            engine.apply(ev).unwrap();
            mask[ev.link.index()] = ev.kind == EventKind::Down;
            let expect = FailureState::new(&inst, &mask).unwrap();
            let got = engine.state();
            assert_eq!(got.dead, expect.dead);
            assert_eq!(got.tunnel_alive, expect.tunnel_alive);
            assert_eq!(got.ls_active, expect.ls_active);
        }
    }

    #[test]
    fn cached_realization_is_bit_identical_to_cold() {
        let (inst, a, b, served) = sprint_plan();
        let trace = EventTrace::flaps(inst.topo(), 100, 1, 3);
        let mut engine = ReplayEngine::new(&inst, &a, &b, &served, 1e-6, 64);
        for ev in &trace.events {
            engine.apply(ev).unwrap();
            let cached = engine.realize();
            let cold = realize_routing(&inst, &engine.state(), &a, &b, &served, 1e-6);
            match (cached, cold) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(x.pairs, y.pairs);
                    for (c, f) in x.u.iter().zip(&y.u) {
                        assert_eq!(c.to_bits(), f.to_bits());
                    }
                    for (c, f) in x.arc_loads.iter().zip(&y.arc_loads) {
                        assert_eq!(c.to_bits(), f.to_bits());
                    }
                }
                (Err(x), Err(y)) => assert_eq!(x, y),
                (x, y) => panic!("cached {x:?} disagrees with cold {y:?}"),
            }
        }
        let stats = engine.cache_stats();
        assert!(stats.hits > 0, "repeat states must hit: {stats:?}");
    }

    #[test]
    fn eviction_respects_capacity() {
        let (inst, a, b, served) = sprint_plan();
        // Rolling maintenance visits every link: more signatures than the
        // tiny cache holds.
        let trace = EventTrace::rolling_maintenance(inst.topo(), 120, 5);
        let mut engine = ReplayEngine::new(&inst, &a, &b, &served, 1e-6, 4);
        for ev in &trace.events {
            engine.apply(ev).unwrap();
            engine.realize().unwrap();
        }
        assert!(engine.cached_entries() <= 4);
        let stats = engine.cache_stats();
        assert!(stats.evictions > 0, "{stats:?}");
        assert_eq!(stats.hits + stats.misses, 120);
    }

    #[test]
    fn out_of_range_event_is_rejected() {
        let (inst, a, b, served) = sprint_plan();
        let mut engine = ReplayEngine::new(&inst, &a, &b, &served, 1e-6, 4);
        let bad = LinkEvent {
            link: pcf_topology::LinkId(10_000),
            kind: EventKind::Down,
        };
        assert!(matches!(
            engine.apply(&bad),
            Err(RealizeError::MaskLengthMismatch { .. })
        ));
    }

    #[test]
    fn forced_singular_engages_ladder_without_touching_cache() {
        let (inst, a, b, served) = sprint_plan();
        let mut engine = ReplayEngine::new(&inst, &a, &b, &served, 1e-6, 64);
        engine.set_degrade(DegradeMode::Shed);
        // Warm the cache with one normal realization.
        engine.realize_degraded().unwrap();
        let warm_entries = engine.cached_entries();
        let warm_stats = engine.cache_stats();
        assert_eq!(engine.degrade_stats().normal, 1);

        // Force lu_factor failure: the ladder must serve stage 2, and the
        // cache must be completely untouched (no poisoned entry, no
        // counter movement) — the cache-exclusion invariant.
        engine.force_singular(true);
        for _ in 0..5 {
            let d = engine.realize_degraded().unwrap();
            assert_eq!(d.ladder_stage, pcf_core::LadderStage::Rescaled);
            // No failure at all: the rescale serves the full demand.
            assert!(d.shed_demand <= 1e-6 * (1.0 + served.iter().sum::<f64>()));
        }
        assert_eq!(engine.cached_entries(), warm_entries);
        assert_eq!(engine.cache_stats(), warm_stats);
        assert_eq!(engine.degrade_stats().rescaled, 5);

        // Off mode surfaces the injected error and counts a failure.
        engine.set_degrade(DegradeMode::Off);
        assert_eq!(
            engine.realize_degraded().unwrap_err(),
            RealizeError::SingularMatrix
        );
        assert_eq!(engine.degrade_stats().failed, 1);

        // Releasing the hook restores normal service (cache hit).
        engine.force_singular(false);
        engine.set_degrade(DegradeMode::Shed);
        let d = engine.realize_degraded().unwrap();
        assert_eq!(d.ladder_stage, pcf_core::LadderStage::Normal);
        assert_eq!(engine.cache_stats().hits, warm_stats.hits + 1);
    }

    #[test]
    fn wobble_rescales_capacity_without_touching_liveness() {
        let (inst, a, b, served) = sprint_plan();
        let mut engine = ReplayEngine::new(&inst, &a, &b, &served, 1e-6, 16);
        let link = pcf_topology::LinkId(0);
        let nominal = inst.topo().capacity(link);
        let sig_before = engine.state().liveness_signature();
        engine
            .apply(&LinkEvent {
                link,
                kind: EventKind::Wobble { permille: 250 },
            })
            .unwrap();
        assert!((engine.capacity(link) - 0.25 * nominal).abs() < 1e-12);
        assert_eq!(engine.dead_links(), 0);
        assert_eq!(engine.state().liveness_signature(), sig_before);
        // Restore.
        engine
            .apply(&LinkEvent {
                link,
                kind: EventKind::Wobble { permille: 1000 },
            })
            .unwrap();
        assert!((engine.capacity(link) - nominal).abs() < 1e-12);
        // Out-of-range wobbles are rejected like any other event.
        assert!(engine
            .apply(&LinkEvent {
                link: pcf_topology::LinkId(10_000),
                kind: EventKind::Wobble { permille: 500 },
            })
            .is_err());
    }

    #[test]
    fn error_events_count_as_errors_not_misses() {
        let (inst, a, b, served) = sprint_plan();
        // Served demand but zero reservations: every realization errors.
        let zero_a = vec![0.0; a.len()];
        let zero_b = vec![0.0; b.len()];
        let mut engine = ReplayEngine::new(&inst, &zero_a, &zero_b, &served, 1e-6, 16);
        for _ in 0..3 {
            assert!(engine.realize().is_err());
        }
        let stats = engine.cache_stats();
        assert_eq!(stats.errors, 3, "{stats:?}");
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 0);
        assert_eq!(stats.hit_rate(), 0.0);
        // Cold mode classifies identically.
        let mut cold = ReplayEngine::new(&inst, &zero_a, &zero_b, &served, 1e-6, 0);
        assert!(cold.realize().is_err());
        assert_eq!(cold.cache_stats().errors, 1);
        assert_eq!(cold.cache_stats().misses, 0);
        // absorb carries the error counter.
        let mut merged = CacheStats::default();
        merged.absorb(&stats);
        merged.absorb(&cold.cache_stats());
        assert_eq!(merged.errors, 4);
    }

    #[test]
    fn factor_kinds_never_share_cache_entries() {
        let (inst, a, b, served) = sprint_plan();
        let mut engine = ReplayEngine::new(&inst, &a, &b, &served, 1e-6, 16);
        engine.set_factor_kind(FactorKind::Dense);
        let dense = engine.realize().unwrap();
        assert_eq!(engine.cache_stats().misses, 1);
        assert_eq!(engine.cached_entries(), 1);

        // Same liveness signature, different backend: the dense-era entry
        // must NOT be served — this is a miss, not a hit.
        engine.set_factor_kind(FactorKind::Sparse);
        let sparse = engine.realize().unwrap();
        let stats = engine.cache_stats();
        assert_eq!(stats.hits, 0, "dense entry leaked to sparse: {stats:?}");
        assert_eq!(stats.misses, 2);
        assert_eq!(engine.cached_entries(), 2);

        // Dense-compat factorization is bit-identical to the dense path.
        for (x, y) in dense.u.iter().zip(&sparse.u) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in dense.arc_loads.iter().zip(&sparse.arc_loads) {
            assert_eq!(x.to_bits(), y.to_bits());
        }

        // Each kind now hits its own entry.
        assert!(engine.realize().is_ok());
        engine.set_factor_kind(FactorKind::Dense);
        assert!(engine.realize().is_ok());
        let stats = engine.cache_stats();
        assert_eq!(stats.hits, 2, "{stats:?}");
        assert_eq!(stats.misses, 2);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degrade_rescales_reservations_and_forks_the_cache_key() {
        let (inst, a, b, served) = sprint_plan();
        let mut engine = ReplayEngine::new(&inst, &a, &b, &served, 1e-6, 16);
        let link = pcf_topology::LinkId(0);
        let nominal = inst.topo().capacity(link);

        // Warm the undegraded entry.
        let clean = engine.realize().unwrap();
        assert_eq!(engine.cache_stats().misses, 1);

        // Degrade: capacity halves, liveness is untouched, and the
        // realization matches the from-scratch solve over the rescaled
        // reservations bit for bit.
        let sig_before = engine.state().liveness_signature();
        engine
            .apply(&LinkEvent {
                link,
                kind: EventKind::Degrade { permille: 500 },
            })
            .unwrap();
        assert!((engine.capacity(link) - 0.5 * nominal).abs() < 1e-12);
        assert_eq!(engine.dead_links(), 0);
        assert_eq!(engine.degraded_links(), 1);
        assert_eq!(engine.state().liveness_signature(), sig_before);
        let state = engine.state();
        assert!((state.cap_scale[0] - 0.5).abs() < 1e-12);
        let a_eff = pcf_core::degraded_reservations(&inst, &state, &a);
        let expect = pcf_core::realize_routing(&inst, &state, &a_eff, &b, &served, 1e-6).unwrap();
        let got = engine.realize().unwrap();
        assert_eq!(got.pairs, expect.pairs);
        for (x, y) in got.arc_loads.iter().zip(&expect.arc_loads) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // Same liveness signature, different degradation: a fresh entry,
        // never the undegraded one.
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, 2, "degraded state must not hit: {stats:?}");
        assert_eq!(engine.cached_entries(), 2);

        // Tunnels over the degraded link shrink; the routing differs from
        // the clean one.
        assert!(got
            .arc_loads
            .iter()
            .zip(&clean.arc_loads)
            .any(|(x, y)| (x - y).abs() > 1e-12));

        // Replaying the same degradation hits its own entry; restoring to
        // 1000 returns to the original key and hits too.
        engine.realize().unwrap();
        engine
            .apply(&LinkEvent {
                link,
                kind: EventKind::Degrade { permille: 1000 },
            })
            .unwrap();
        assert_eq!(engine.degraded_links(), 0);
        assert!((engine.capacity(link) - nominal).abs() < 1e-12);
        let restored = engine.realize().unwrap();
        let stats = engine.cache_stats();
        assert_eq!(stats.hits, 2, "{stats:?}");
        assert_eq!(stats.misses, 2);
        for (x, y) in restored.arc_loads.iter().zip(&clean.arc_loads) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn degrade_composes_with_wobble_and_failures() {
        let (inst, a, b, served) = sprint_plan();
        let mut engine = ReplayEngine::new(&inst, &a, &b, &served, 1e-6, 16);
        let link = pcf_topology::LinkId(2);
        let nominal = inst.topo().capacity(link);
        engine
            .apply(&LinkEvent {
                link,
                kind: EventKind::Degrade { permille: 800 },
            })
            .unwrap();
        engine
            .apply(&LinkEvent {
                link,
                kind: EventKind::Wobble { permille: 500 },
            })
            .unwrap();
        // Channels multiply: 0.8 * 0.5 of nominal.
        assert!((engine.capacity(link) - 0.4 * nominal).abs() < 1e-12);
        // But only the degrade channel reaches the failure state.
        assert!((engine.state().cap_scale[2] - 0.8).abs() < 1e-12);
        // A dead degraded link realizes exactly like a dead link: the
        // degradation only matters for surviving tunnels.
        engine
            .apply(&LinkEvent {
                link,
                kind: EventKind::Down,
            })
            .unwrap();
        let got = engine.realize().unwrap();
        let state = engine.state();
        let a_eff = pcf_core::degraded_reservations(&inst, &state, &a);
        let expect = pcf_core::realize_routing(&inst, &state, &a_eff, &b, &served, 1e-6).unwrap();
        for (x, y) in got.arc_loads.iter().zip(&expect.arc_loads) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn idempotent_events_are_noops() {
        let (inst, a, b, served) = sprint_plan();
        let mut engine = ReplayEngine::new(&inst, &a, &b, &served, 1e-6, 4);
        let down = LinkEvent {
            link: pcf_topology::LinkId(0),
            kind: EventKind::Down,
        };
        engine.apply(&down).unwrap();
        engine.apply(&down).unwrap();
        assert_eq!(engine.dead_links(), 1);
        let up = LinkEvent {
            link: pcf_topology::LinkId(0),
            kind: EventKind::Up,
        };
        engine.apply(&up).unwrap();
        engine.apply(&up).unwrap();
        assert_eq!(engine.dead_links(), 0);
    }
}
