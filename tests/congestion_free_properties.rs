//! Property-based tests of the core congestion-freedom invariants.
//!
//! Strategy: generate random 2-edge-connected topologies (ring + random
//! chords), random demand subsets, and random failure budgets; solve each
//! scheme; then *enumerate every concrete failure scenario* and check that
//! the realized routing never overloads a link and always delivers the
//! admitted demand. This is the system-level contract of the paper.

use pcf_rng::{forall, Config, Pcg32};

use pcf_core::realize::{realize_routing, FailureState};
use pcf_core::validate::validate_all;
use pcf_core::{
    pcf_ls_instance, solve_ffc, solve_pcf_ls, solve_pcf_tf, tunnel_instance, FailureModel,
    Instance, RobustOptions, RobustSolution,
};
use pcf_topology::{NodeId, Topology};
use pcf_traffic::TrafficMatrix;

/// Builds a ring + chords topology (always 2-edge-connected).
fn ring_with_chords(n: usize, chords: &[(usize, usize)], caps: &[f64]) -> Topology {
    let mut t = Topology::new("random");
    let nodes: Vec<NodeId> = (0..n).map(|i| t.add_node(format!("n{i}"))).collect();
    let mut ci = 0usize;
    let cap = |ci: &mut usize| {
        let c = caps[*ci % caps.len()];
        *ci += 1;
        c
    };
    for i in 0..n {
        t.add_link(nodes[i], nodes[(i + 1) % n], cap(&mut ci));
    }
    for &(a, b) in chords {
        let (a, b) = (a % n, b % n);
        if a != b {
            // parallel links are fine; keep them for generality
            t.add_link(nodes[a], nodes[b], cap(&mut ci));
        }
    }
    t
}

/// A random system-level test case: topology recipe plus demand subset.
#[derive(Debug, Clone)]
struct Case {
    n: usize,
    chords: Vec<(usize, usize)>,
    caps: Vec<f64>,
    demands: Vec<(usize, usize, f64)>,
    f: usize,
}

impl Case {
    fn topology(&self) -> Topology {
        ring_with_chords(self.n, &self.chords, &self.caps)
    }
}

fn gen_case(rng: &mut Pcg32) -> Case {
    let n = rng.range_usize(5, 8);
    let nchords = rng.range_usize_inclusive(1, 3);
    let chords: Vec<(usize, usize)> = (0..nchords)
        .map(|_| (rng.range_usize(0, n), rng.range_usize(0, n)))
        .collect();
    let tiers = [1.0, 2.0, 4.0];
    let caps: Vec<f64> = (0..4).map(|_| *rng.pick(&tiers)).collect();
    let ndemands = rng.range_usize_inclusive(2, 4);
    let demands: Vec<(usize, usize, f64)> = (0..ndemands)
        .map(|_| {
            (
                rng.range_usize(0, 8),
                rng.range_usize(0, 8),
                rng.range_f64(0.2, 1.5),
            )
        })
        .collect();
    let f = rng.range_usize_inclusive(1, 2);
    Case {
        n,
        chords,
        caps,
        demands,
        f,
    }
}

/// Shrink by dropping demands, then chords — smaller instances make
/// counterexamples much easier to debug.
fn shrink_case(case: &Case) -> Vec<Case> {
    let mut out = Vec::new();
    if case.demands.len() > 1 {
        for i in 0..case.demands.len() {
            let mut c = case.clone();
            c.demands.remove(i);
            out.push(c);
        }
    }
    if case.chords.len() > 1 {
        for i in 0..case.chords.len() {
            let mut c = case.clone();
            c.chords.remove(i);
            out.push(c);
        }
    }
    out
}

fn served(inst: &Instance, sol: &RobustSolution) -> Vec<f64> {
    inst.pair_ids()
        .map(|p| sol.z[p.0] * inst.demand(p))
        .collect()
}

fn tm_from(n: usize, demands: &[(usize, usize, f64)]) -> Option<TrafficMatrix> {
    let mut tm = TrafficMatrix::zeros(n);
    let mut any = false;
    for &(s, t, d) in demands {
        let (s, t) = (s % n, t % n);
        if s != t {
            tm.set_demand(NodeId(s as u32), NodeId(t as u32), d);
            any = true;
        }
    }
    any.then_some(tm)
}

/// FFC, PCF-TF and PCF-LS allocations are congestion-free under every
/// concrete targeted scenario, and each admits no less than the scheme
/// below it in the dominance order.
#[test]
fn schemes_are_congestion_free_and_ordered() {
    forall(
        "schemes_are_congestion_free_and_ordered",
        &Config {
            cases: 24,
            ..Config::default()
        },
        gen_case,
        shrink_case,
        |case| {
            let topo = case.topology();
            let n = topo.node_count();
            let Some(tm) = tm_from(n, &case.demands) else {
                return Ok(());
            };
            let fm = FailureModel::links(case.f);
            let opts = RobustOptions::default();

            let ti = tunnel_instance(&topo, &tm, 3);
            let ffc = solve_ffc(&ti, &fm, &opts);
            let tf = solve_pcf_tf(&ti, &fm, &opts);
            if tf.objective < ffc.objective - 1e-6 * (1.0 + ffc.objective) {
                return Err(format!(
                    "dominance violated: pcf-tf {} < ffc {}",
                    tf.objective, ffc.objective
                ));
            }

            let li = pcf_ls_instance(&topo, &tm, 3);
            let ls = solve_pcf_ls(&li, &fm, &opts);

            for (inst, sol, label) in [
                (&ti, &ffc, "ffc"),
                (&ti, &tf, "pcf-tf"),
                (&li, &ls, "pcf-ls"),
            ] {
                let report = validate_all(inst, &fm, &sol.a, &sol.b, &served(inst, sol), 1e-6);
                if !report.congestion_free() {
                    return Err(format!(
                        "{label} violated: {:?}",
                        report.violations.first().map(|v| &v.kind)
                    ));
                }
            }
            Ok(())
        },
    );
}

/// Checks the Proposition 5 invariants for one instance: utilization within
/// [0, 1] in every enumerated scenario, and dead tunnels carry nothing.
fn check_realization_invariants(
    topo: &Topology,
    demands: &[(usize, usize, f64)],
) -> Result<(), String> {
    let n = topo.node_count();
    let Some(tm) = tm_from(n, demands) else {
        return Ok(());
    };
    let fm = FailureModel::links(1);
    let inst = pcf_ls_instance(topo, &tm, 3);
    let sol = solve_pcf_ls(&inst, &fm, &RobustOptions::default());
    let sv = served(&inst, &sol);
    for mask in fm.enumerate_scenarios(inst.topo()) {
        let state = FailureState::new(&inst, &mask).map_err(|e| format!("{e}"))?;
        let routing = realize_routing(&inst, &state, &sol.a, &sol.b, &sv, 1e-6)
            .map_err(|e| format!("solved allocation must realize: {e:?}"))?;
        for u in &routing.u {
            if !(-1e-9..=1.0 + 1e-9).contains(u) {
                return Err(format!("u = {u}"));
            }
        }
        for l in inst.tunnel_ids() {
            if !state.tunnel_alive[l.0] && routing.tunnel_flow[l.0] != 0.0 {
                return Err(format!(
                    "dead tunnel {} carries {}",
                    l.0, routing.tunnel_flow[l.0]
                ));
            }
        }
    }
    Ok(())
}

/// The utilization vector of the realized routing is always within
/// [0, 1] (Proposition 5), and dead tunnels carry nothing.
#[test]
fn realization_invariants() {
    forall(
        "realization_invariants",
        &Config {
            cases: 24,
            ..Config::default()
        },
        gen_case,
        shrink_case,
        |case| check_realization_invariants(&case.topology(), &case.demands),
    );
}

/// A historical proptest counterexample for `realization_invariants`, kept
/// as a permanent deterministic case: a 5-node ring with a unit-capacity
/// link, two chords, and two demands (the second wrapping around, 5 ≡ 0
/// mod 5) once produced an unrealizable allocation.
#[test]
fn realization_invariants_ring_with_unit_link_regression() {
    let topo = ring_with_chords(5, &[(0, 3), (2, 4)], &[4.0, 2.0, 2.0, 1.0, 4.0, 2.0, 2.0]);
    let demands = [(0, 1, 0.3888991094130128), (2, 5, 1.3511142337043531)];
    check_realization_invariants(&topo, &demands).unwrap();
}

/// Demand scale is monotone: a larger failure budget can never admit
/// more traffic.
#[test]
fn admission_monotone_in_failure_budget() {
    forall(
        "admission_monotone_in_failure_budget",
        &Config {
            cases: 24,
            ..Config::default()
        },
        gen_case,
        shrink_case,
        |case| {
            let topo = case.topology();
            let n = topo.node_count();
            let Some(tm) = tm_from(n, &case.demands) else {
                return Ok(());
            };
            let inst = tunnel_instance(&topo, &tm, 3);
            let opts = RobustOptions::default();
            let mut prev = f64::INFINITY;
            for f in 0..=2 {
                let sol = solve_pcf_tf(&inst, &FailureModel::links(f), &opts);
                if sol.objective > prev + 1e-6 * (1.0 + prev.min(1e9)) {
                    return Err(format!("f={f}: {} > previous {prev}", sol.objective));
                }
                prev = sol.objective;
            }
            Ok(())
        },
    );
}
