//! Cross-validation of the simplex solver against brute-force vertex
//! enumeration on randomly generated small LPs.
//!
//! For a bounded LP, an optimum lies at a vertex of the feasible polytope —
//! a point where at least `n` linearly independent constraints (row bounds
//! or variable bounds) are tight. On tiny instances we can enumerate all
//! candidate tight sets, solve the resulting square systems, filter by
//! feasibility, and take the best vertex. The simplex solver must agree.

use pcf_lp::{solve_dense, DenseMatrix, LpProblem, Sense, Status};
use proptest::prelude::*;

/// A tight-able constraint: coefficients and the activity value it pins.
struct TightCandidate {
    coeffs: Vec<f64>, // dense over n vars
    value: f64,
}

/// Brute-force optimum of a fully bounded LP by vertex enumeration.
/// Returns `None` when no feasible vertex exists (infeasible problem).
fn brute_force(
    n: usize,
    obj: &[f64],
    var_bounds: &[(f64, f64)],
    rows: &[(Vec<f64>, f64, f64)], // (dense coeffs, lower, upper)
) -> Option<f64> {
    let mut cands: Vec<TightCandidate> = Vec::new();
    for (j, &(l, u)) in var_bounds.iter().enumerate() {
        let mut c = vec![0.0; n];
        c[j] = 1.0;
        cands.push(TightCandidate {
            coeffs: c.clone(),
            value: l,
        });
        cands.push(TightCandidate { coeffs: c, value: u });
    }
    for (c, l, u) in rows {
        cands.push(TightCandidate {
            coeffs: c.clone(),
            value: *l,
        });
        cands.push(TightCandidate {
            coeffs: c.clone(),
            value: *u,
        });
    }
    let k = cands.len();
    let mut best: Option<f64> = None;
    // All n-subsets of candidates.
    let mut idx: Vec<usize> = (0..n).collect();
    loop {
        // Try to solve the square system for this tight set.
        let mut m = DenseMatrix::zeros(n);
        let mut b = vec![0.0; n];
        for (r, &ci) in idx.iter().enumerate() {
            for j in 0..n {
                m.set(r, j, cands[ci].coeffs[j]);
            }
            b[r] = cands[ci].value;
        }
        if let Ok(xs) = solve_dense(&m, &[b]) {
            let x = &xs[0];
            // Feasibility check.
            let tol = 1e-7;
            let mut ok = true;
            for (j, &(l, u)) in var_bounds.iter().enumerate() {
                if x[j] < l - tol || x[j] > u + tol {
                    ok = false;
                    break;
                }
            }
            if ok {
                for (c, l, u) in rows {
                    let act: f64 = c.iter().zip(x).map(|(a, b)| a * b).sum();
                    if act < l - tol || act > u + tol {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                let v: f64 = obj.iter().zip(x).map(|(a, b)| a * b).sum();
                best = Some(match best {
                    None => v,
                    Some(bv) => bv.max(v),
                });
            }
        }
        // Next combination.
        let mut i = n;
        loop {
            if i == 0 {
                return best;
            }
            i -= 1;
            if idx[i] + (n - i) < k {
                idx[i] += 1;
                for j in (i + 1)..n {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
        }
    }
}

fn small_lp_strategy() -> impl Strategy<Value = (usize, Vec<f64>, Vec<(f64, f64)>, Vec<(Vec<f64>, f64, f64)>)>
{
    (2usize..=3).prop_flat_map(|n| {
        let obj = prop::collection::vec(-5.0..5.0f64, n);
        let bounds = prop::collection::vec((0.0..2.0f64, 2.5..6.0f64), n);
        let row = (
            prop::collection::vec(-3.0..3.0f64, n),
            -10.0..0.0f64,
            1.0..12.0f64,
        );
        let rows = prop::collection::vec(row, 1..=3);
        (Just(n), obj, bounds, rows)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]
    #[test]
    fn simplex_matches_vertex_enumeration(
        (n, obj, bounds, rows) in small_lp_strategy()
    ) {
        let mut lp = LpProblem::new(Sense::Maximize);
        let vars: Vec<_> = (0..n)
            .map(|j| lp.add_var(bounds[j].0, bounds[j].1, obj[j]))
            .collect();
        for (c, l, u) in &rows {
            lp.add_row(vars.iter().zip(c).map(|(&v, &a)| (v, a)), *l, *u);
        }
        let sol = lp.solve().unwrap();
        let brute = brute_force(n, &obj, &bounds, &rows);
        match brute {
            Some(best) => {
                prop_assert_eq!(sol.status, Status::Optimal);
                prop_assert!(
                    (sol.objective - best).abs() <= 1e-5 * (1.0 + best.abs()),
                    "simplex {} vs brute force {}", sol.objective, best
                );
            }
            None => {
                prop_assert_eq!(sol.status, Status::Infeasible);
            }
        }
    }
}

#[test]
fn dense_random_feasible_lps_are_solved_exactly() {
    // Deterministic seeds across a grid of sizes; checks objective against
    // brute force for n=3 with two rows.
    let cases: &[(Vec<f64>, Vec<(f64, f64)>, Vec<(Vec<f64>, f64, f64)>)] = &[
        (
            vec![1.0, 2.0, -1.0],
            vec![(0.0, 4.0), (0.0, 4.0), (0.0, 4.0)],
            vec![
                (vec![1.0, 1.0, 1.0], -10.0, 6.0),
                (vec![1.0, -1.0, 0.0], -2.0, 2.0),
            ],
        ),
        (
            vec![-1.0, -1.0, 3.0],
            vec![(1.0, 3.0), (0.0, 2.0), (0.0, 5.0)],
            vec![(vec![2.0, 1.0, -1.0], 0.0, 4.0)],
        ),
    ];
    for (obj, bounds, rows) in cases {
        let n = obj.len();
        let mut lp = LpProblem::new(Sense::Maximize);
        let vars: Vec<_> = (0..n)
            .map(|j| lp.add_var(bounds[j].0, bounds[j].1, obj[j]))
            .collect();
        for (c, l, u) in rows {
            lp.add_row(vars.iter().zip(c).map(|(&v, &a)| (v, a)), *l, *u);
        }
        let sol = lp.solve().unwrap();
        let best = brute_force(n, obj, bounds, rows).expect("feasible by construction");
        assert!(
            (sol.objective - best).abs() <= 1e-6 * (1.0 + best.abs()),
            "simplex {} vs brute {}",
            sol.objective,
            best
        );
    }
}
