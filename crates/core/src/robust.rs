//! The robust bandwidth-allocation engine: master LP plus cutting planes.
//!
//! The paper solves its models (P1, P2 and variants) by dualizing the inner
//! worst case so the LP stays polynomial. This crate implements the same
//! robust optimum with an equivalent *constraint generation* scheme that
//! scales better in a from-scratch simplex:
//!
//! 1. solve a master LP containing the capacity constraints and the
//!    scenario cuts generated so far;
//! 2. for every pair, ask the adversary ([`crate::adversary`]) for the
//!    worst scenario under the current reservations;
//! 3. add a cut for every violated pair; repeat until none is violated.
//!
//! Both approaches optimize over the same relaxed failure polytope, so the
//! cutting-plane optimum equals the dualized optimum (cross-checked in
//! tests against [`crate::dualized`]).
//!
//! The engine keeps **one master LP alive** across rounds: new scenario cuts
//! are appended to the solved [`pcf_lp::IncrementalLp`], which re-solves
//! warm-starting from the previous optimal basis instead of re-running
//! phase 1 from scratch (disable with [`RobustOptions::warm_start`]).
//! Separation — the per-pair worst-case oracles — runs on
//! [`RobustOptions::threads`] scoped worker threads; the oracles are pure
//! functions of the shared reservations, so pairs partition cleanly.

use crate::adversary::{worst_case_ffc, worst_case_link, AdversaryError, WorstCase};
use crate::failure::{Condition, FailureModel};
use crate::instance::{Instance, PairId};
use crate::objective::Objective;
use pcf_lp::{nonzero, IncrementalLp, LpProblem, Sense, SimplexOptions, Status, VarId};
use std::fmt;

/// Structured failure from the robust engine's master problem.
///
/// Surfaced by [`try_solve_robust`]; the infallible [`solve_robust`]
/// wrapper panics on these instead. A
/// [`RobustError::MasterNotOptimal`] with [`Status::IterationLimit`] is
/// also how a numerically singular basis in the sparse LP engine reports
/// itself, letting callers fall back (e.g. re-solving with
/// [`pcf_lp::EngineKind::Dense`], or serving the incumbent through the
/// degradation ladder) instead of aborting.
#[derive(Debug, Clone, PartialEq)]
pub enum RobustError {
    /// The LP layer rejected the master problem structurally.
    MasterLp(pcf_lp::SolveError),
    /// A master re-solve ended without optimality (iteration limit,
    /// infeasible after a bad cut, or unbounded) in the given
    /// cutting-plane round.
    MasterNotOptimal {
        /// Terminal status of the failed solve.
        status: Status,
        /// 1-based cutting-plane round that failed.
        round: usize,
    },
    /// A per-pair separation oracle failed.
    Adversary(AdversaryError),
    /// The logical-flow model referenced an endpoint or segment pair that
    /// is absent from the instance (a modeling error in the flow spec).
    FlowPairMissing(&'static str),
}

impl fmt::Display for RobustError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RobustError::MasterLp(e) => write!(f, "master LP rejected: {e}"),
            RobustError::MasterNotOptimal { status, round } => {
                write!(f, "master LP not optimal in round {round}: {status}")
            }
            RobustError::Adversary(e) => write!(f, "separation oracle failed: {e}"),
            RobustError::FlowPairMissing(what) => {
                write!(
                    f,
                    "flow references a pair missing from the instance: {what}"
                )
            }
        }
    }
}

impl std::error::Error for RobustError {}

/// Which failure-set model the scheme plans against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversaryKind {
    /// FFC's tunnel-count model (Eq. 5, driven by `p_st`).
    FfcTunnelCount,
    /// PCF's link-coupled model (Eq. 4), required for any instance with
    /// logical sequences.
    LinkBased,
}

/// Options for [`solve_robust`].
#[derive(Debug, Clone)]
pub struct RobustOptions {
    /// Metric to maximize.
    pub objective: Objective,
    /// Cutting-plane round limit.
    pub max_rounds: usize,
    /// Relative violation tolerance for accepting a solution.
    pub tol: f64,
    /// Simplex settings for the master problem.
    pub lp: SimplexOptions,
    /// Worker threads for the separation oracles. `0` means "use
    /// [`std::thread::available_parallelism`]"; `1` runs separation inline.
    pub threads: usize,
    /// Keep the master LP alive across rounds and warm-start appended cuts
    /// from the previous basis. `false` rebuilds the master from scratch
    /// every round (the pre-incremental behaviour, kept as a baseline).
    pub warm_start: bool,
}

impl Default for RobustOptions {
    fn default() -> Self {
        RobustOptions {
            objective: Objective::DemandScale,
            max_rounds: 200,
            tol: 1e-6,
            lp: SimplexOptions::default(),
            threads: 0,
            warm_start: true,
        }
    }
}

impl RobustOptions {
    /// `threads` with the `0 = available parallelism` default applied.
    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Result of a robust solve.
#[derive(Debug, Clone)]
pub struct RobustSolution {
    /// Optimal metric value (demand scale, or total throughput).
    pub objective: f64,
    /// Served fraction per pair (demand scale: the same value for all).
    pub z: Vec<f64>,
    /// Reservation per tunnel (`a_l`).
    pub a: Vec<f64>,
    /// Reservation per logical sequence (`b_q`).
    pub b: Vec<f64>,
    /// Cutting-plane rounds used.
    pub rounds: usize,
    /// Total scenario cuts generated.
    pub cuts: usize,
    /// Master re-solves answered by warm-starting the retained basis
    /// (always 0 when [`RobustOptions::warm_start`] is off).
    pub warm_rounds: usize,
    /// Cuts injected into the first master from a previous solve's
    /// [`CutPool`] (0 on a cold start or when the offered pool did not
    /// shape-match the instance).
    pub seeded_cuts: usize,
    /// Per-pair worst-case availability of the final reservations over the
    /// relaxed failure polytope — the inner adversary's optimum, i.e. the
    /// value the dualized inner problem certifies. At convergence
    /// `worst_available[p] >= z[p] * demand(p) - tol`, and the slack
    /// `worst_available[p] - z[p] * demand(p)` is the admission headroom:
    /// extra demand a pair can absorb under *every* modeled scenario
    /// without re-solving (the relaxation lower-bounds the integral worst
    /// case, so admitting against it is conservative-safe).
    pub worst_available: Vec<f64>,
}

/// One generated scenario cut for a pair: the fractional failure levels to
/// materialize the constraint
/// `Σ_l a_l (1-y_l) + Σ_{q∈L} b_q h_q - Σ_{q'∈Q} b_{q'} h_{q'} >= z_p d_p`.
struct Cut {
    pair: PairId,
    wc: WorstCase,
}

/// The scenario cuts of a converged solve, exported so the next solve of a
/// same-shape instance can seed its master with them instead of
/// rediscovering the binding scenarios from scratch (an epoch-to-epoch
/// warm start: demand re-scales and traffic re-draws move the optimal
/// reservations, but the adversarial scenarios that bind them are largely
/// stable).
///
/// A pool is only meaningful for an instance with identical pair, tunnel,
/// and LS indexing; [`CutPool::matches`] guards that, and the seeded
/// solvers silently fall back to a cold start on mismatch.
#[derive(Debug, Clone, Default)]
pub struct CutPool {
    pairs: usize,
    tunnels: usize,
    lss: usize,
    cuts: Vec<(PairId, WorstCase)>,
}

impl CutPool {
    /// Number of cuts in the pool.
    pub fn len(&self) -> usize {
        self.cuts.len()
    }

    /// Whether the pool holds no cuts.
    pub fn is_empty(&self) -> bool {
        self.cuts.is_empty()
    }

    /// Whether every cut in the pool index-matches `inst` (same pair,
    /// tunnel, and LS shape). Cuts exported from a differently shaped
    /// instance would bind the wrong variables.
    pub fn matches(&self, inst: &Instance) -> bool {
        self.pairs == inst.num_pairs()
            && self.tunnels == inst.num_tunnels()
            && self.lss == inst.num_lss()
            && self.cuts.iter().all(|(p, wc)| {
                p.0 < self.pairs
                    && wc.y.len() == inst.tunnels_of(*p).len()
                    && wc.h_l.len() == inst.lss_of(*p).len()
                    && wc.h_q.len() == inst.segments_of(*p).len()
            })
    }
}

/// Evaluates the activation level of every condition in the no-failure
/// state (`x = 0`): Always → 1, LinkDead → 0, AliveDead → 1 iff its dead
/// set is empty.
fn no_failure_h(cond: &Condition) -> f64 {
    match cond {
        Condition::Always => 1.0,
        Condition::LinkDead(_) => 0.0,
        Condition::AliveDead { dead, .. } => {
            if dead.is_empty() {
                1.0
            } else {
                0.0
            }
        }
    }
}

/// Solves the robust bandwidth allocation for `inst` against `fm` with the
/// given adversary model.
///
/// Infallible wrapper over [`try_solve_robust`] for the common case where
/// a master failure is a bug worth halting on.
///
/// # Panics
/// Panics if `kind` is [`AdversaryKind::FfcTunnelCount`] and the instance
/// has logical sequences, or on any [`RobustError`].
pub fn solve_robust(
    inst: &Instance,
    fm: &FailureModel,
    kind: AdversaryKind,
    opts: &RobustOptions,
) -> RobustSolution {
    match try_solve_robust(inst, fm, kind, opts) {
        Ok(sol) => sol,
        // audit:allow(no-panic-paths, compatibility wrapper; fallible path is try_solve_robust)
        Err(e) => panic!("robust solve failed: {e}"),
    }
}

/// Fallible variant of [`solve_robust`]: master-LP failures come back as
/// [`RobustError`] values instead of panics.
///
/// # Panics
/// Panics if `kind` is [`AdversaryKind::FfcTunnelCount`] and the instance
/// has logical sequences (a modeling error, not a runtime condition).
pub fn try_solve_robust(
    inst: &Instance,
    fm: &FailureModel,
    kind: AdversaryKind,
    opts: &RobustOptions,
) -> Result<RobustSolution, RobustError> {
    try_solve_robust_seeded(inst, fm, kind, opts, None).map(|(sol, _)| sol)
}

/// [`try_solve_robust`] with an optional [`CutPool`] warm start: cuts from
/// a previous solve of a same-shape instance are injected into the first
/// master, typically collapsing the cutting-plane loop to one or two
/// rounds. Returns the solution together with the pool of cuts generated
/// (seeded plus freshly separated), ready to seed the next solve.
///
/// A pool that does not [`CutPool::matches`] the instance is ignored — the
/// solve falls back to cold and the fact is visible as `seeded_cuts == 0`.
///
/// # Panics
/// Panics if `kind` is [`AdversaryKind::FfcTunnelCount`] and the instance
/// has logical sequences (a modeling error, not a runtime condition).
pub fn try_solve_robust_seeded(
    inst: &Instance,
    fm: &FailureModel,
    kind: AdversaryKind,
    opts: &RobustOptions,
    seed: Option<&CutPool>,
) -> Result<(RobustSolution, CutPool), RobustError> {
    if kind == AdversaryKind::FfcTunnelCount {
        assert_eq!(
            inst.num_lss(),
            0,
            "FFC's failure set is defined for pure tunnel instances"
        );
    }

    // Initial cuts: the no-failure scenario for every pair, which bounds the
    // objective and seeds the master.
    let mut cuts: Vec<Cut> = inst
        .pair_ids()
        .map(|p| {
            let wc = WorstCase {
                available: 0.0, // unused in the master
                y: vec![0.0; inst.tunnels_of(p).len()],
                h_l: inst
                    .lss_of(p)
                    .iter()
                    .map(|&q| no_failure_h(&inst.ls(q).condition))
                    .collect(),
                h_q: inst
                    .segments_of(p)
                    .iter()
                    .map(|&q| no_failure_h(&inst.ls(q).condition))
                    .collect(),
            };
            Cut { pair: p, wc }
        })
        .collect();

    // Warm start: replay the cuts of a previous same-shape solve so the
    // first master already knows the scenarios that bound the last epoch.
    let base_cuts = cuts.len();
    let mut seeded_cuts = 0usize;
    if let Some(pool) = seed {
        if pool.matches(inst) {
            cuts.extend(pool.cuts.iter().map(|(p, wc)| Cut {
                pair: *p,
                wc: wc.clone(),
            }));
            seeded_cuts = pool.cuts.len();
        }
    }

    let mut master = Master::new(inst, opts);
    for cut in &cuts {
        master.append_cut(inst, cut);
    }

    // The exported pool skips the first `base_cuts` entries: the
    // no-failure cuts are regenerated by every solve, so replaying them
    // would only duplicate rows.
    let export = |cuts: &[Cut]| CutPool {
        pairs: inst.num_pairs(),
        tunnels: inst.num_tunnels(),
        lss: inst.num_lss(),
        cuts: cuts[base_cuts..]
            .iter()
            .map(|c| (c.pair, c.wc.clone()))
            .collect(),
    };

    let mut rounds = 0usize;
    let mut warm_rounds = 0usize;
    loop {
        rounds += 1;
        if !opts.warm_start && rounds > 1 {
            // Baseline mode: forget the basis and rebuild the whole master.
            master = Master::new(inst, opts);
            for cut in &cuts {
                master.append_cut(inst, cut);
            }
        }
        let (a, b, z, objective, was_warm) = master.solve(inst, rounds)?;
        if was_warm {
            warm_rounds += 1;
        }

        if rounds > opts.max_rounds {
            // One extra separation pass prices the incumbent so the
            // solution still carries its worst-case availabilities (the
            // round limit is a rare escape hatch, not the steady state).
            let wcs = separate(inst, fm, kind, &a, &b, opts.effective_threads())
                .map_err(RobustError::Adversary)?;
            return Ok((
                RobustSolution {
                    objective,
                    z,
                    a,
                    b,
                    rounds: rounds - 1,
                    cuts: cuts.len(),
                    warm_rounds,
                    seeded_cuts,
                    worst_available: wcs.iter().map(|wc| wc.available).collect(),
                },
                export(&cuts),
            ));
        }

        // Separation: every pair's oracle is independent, so fan the pairs
        // out over worker threads.
        let wcs = separate(inst, fm, kind, &a, &b, opts.effective_threads())
            .map_err(RobustError::Adversary)?;
        let worst_available: Vec<f64> = wcs.iter().map(|wc| wc.available).collect();
        let scale = 1.0 + inst.total_demand();
        let mut violated = 0usize;
        for (p, wc) in inst.pair_ids().zip(wcs) {
            let required = z[p.0] * inst.demand(p);
            if wc.available < required - opts.tol * scale {
                let cut = Cut { pair: p, wc };
                master.append_cut(inst, &cut);
                cuts.push(cut);
                violated += 1;
            }
        }
        if violated == 0 {
            return Ok((
                RobustSolution {
                    objective,
                    z,
                    a,
                    b,
                    rounds,
                    cuts: cuts.len(),
                    warm_rounds,
                    seeded_cuts,
                    worst_available,
                },
                export(&cuts),
            ));
        }
    }
}

/// Runs the worst-case oracle for every pair, chunked over `threads` scoped
/// worker threads. Each worker writes into its own disjoint slice of the
/// result vector, so no synchronization is needed beyond the scope join.
fn separate(
    inst: &Instance,
    fm: &FailureModel,
    kind: AdversaryKind,
    a: &[f64],
    b: &[f64],
    threads: usize,
) -> Result<Vec<WorstCase>, AdversaryError> {
    let pairs: Vec<PairId> = inst.pair_ids().collect();
    let oracle = |p: PairId| -> Result<WorstCase, AdversaryError> {
        match kind {
            AdversaryKind::FfcTunnelCount => Ok(worst_case_ffc(inst, p, fm, a)),
            AdversaryKind::LinkBased => worst_case_link(inst, p, fm, a, b),
        }
    };
    let nt = threads.max(1).min(pairs.len().max(1));
    if nt <= 1 {
        return pairs.into_iter().map(oracle).collect();
    }
    let mut out: Vec<Option<Result<WorstCase, AdversaryError>>> = Vec::new();
    out.resize_with(pairs.len(), || None);
    let chunk = pairs.len().div_ceil(nt);
    let oracle = &oracle;
    std::thread::scope(|s| {
        for (ps, slots) in pairs.chunks(chunk).zip(out.chunks_mut(chunk)) {
            s.spawn(move || {
                for (slot, &p) in slots.iter_mut().zip(ps) {
                    *slot = Some(oracle(p));
                }
            });
        }
    });
    // The scope above joins every worker (a worker panic propagates), so
    // each slot is filled; if one ever were not, recompute it inline
    // rather than aborting — the oracle is a pure function.
    out.into_iter()
        .zip(pairs)
        .map(|(o, p)| o.unwrap_or_else(|| oracle(p)))
        .collect()
}

/// Objective variables of the master.
enum ZVars {
    Shared(VarId),
    PerPair(Vec<Option<VarId>>),
}

/// The live master LP. Variables and capacity rows are created once; each
/// cutting-plane round only appends scenario cut rows, so every re-solve
/// after the first warm-starts from the previous optimal basis.
struct Master {
    lp: IncrementalLp,
    a_vars: Vec<VarId>,
    b_vars: Vec<VarId>,
    z_vars: ZVars,
}

impl Master {
    /// Builds the cut-free master: reservation variables, objective
    /// variables, and the per-arc capacity constraints (Eq. 3, full
    /// duplex).
    fn new(inst: &Instance, opts: &RobustOptions) -> Master {
        let topo = inst.topo();
        let mut lp = LpProblem::new(Sense::Maximize);
        lp.set_options(opts.lp.clone());

        let a_vars: Vec<VarId> = inst.tunnel_ids().map(|_| lp.add_nonneg(0.0)).collect();
        let b_vars: Vec<VarId> = inst.ls_ids().map(|_| lp.add_nonneg(0.0)).collect();

        let z_vars = match opts.objective {
            Objective::DemandScale => ZVars::Shared(lp.add_nonneg(1.0)),
            Objective::Throughput => ZVars::PerPair(
                inst.pair_ids()
                    .map(|p| {
                        let d = inst.demand(p);
                        (d > 0.0).then(|| lp.add_var(0.0, 1.0, d))
                    })
                    .collect(),
            ),
        };

        let mut arc_usage: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); topo.arc_count()];
        for l in inst.tunnel_ids() {
            let path = inst.tunnel(l);
            for (i, &link) in path.links.iter().enumerate() {
                let arc = topo.arc_from(link, path.nodes[i]);
                arc_usage[arc.index()].push((a_vars[l.0], 1.0));
            }
        }
        for arc in topo.arcs() {
            let usage = &arc_usage[arc.index()];
            if !usage.is_empty() {
                lp.add_le(usage.iter().copied(), topo.capacity(arc.link()));
            }
        }

        Master {
            lp: IncrementalLp::new(lp),
            a_vars,
            b_vars,
            z_vars,
        }
    }

    fn z_var_of(&self, p: PairId) -> Option<VarId> {
        match &self.z_vars {
            ZVars::Shared(v) => Some(*v),
            ZVars::PerPair(vs) => vs[p.0],
        }
    }

    /// Appends one scenario cut row
    /// `Σ_l a_l (1-y_l) + Σ_{q∈L} b_q h_q - Σ_{q'∈Q} b_{q'} h_{q'} - z_p d_p >= 0`.
    fn append_cut(&mut self, inst: &Instance, cut: &Cut) {
        let p = cut.pair;
        let mut row: Vec<(VarId, f64)> = Vec::new();
        for (i, &l) in inst.tunnels_of(p).iter().enumerate() {
            let coef = 1.0 - cut.wc.y[i];
            if nonzero(coef) {
                row.push((self.a_vars[l.0], coef));
            }
        }
        for (i, &q) in inst.lss_of(p).iter().enumerate() {
            if nonzero(cut.wc.h_l[i]) {
                row.push((self.b_vars[q.0], cut.wc.h_l[i]));
            }
        }
        for (i, &q) in inst.segments_of(p).iter().enumerate() {
            if nonzero(cut.wc.h_q[i]) {
                row.push((self.b_vars[q.0], -cut.wc.h_q[i]));
            }
        }
        let d = inst.demand(p);
        if d > 0.0 {
            if let Some(zv) = self.z_var_of(p) {
                row.push((zv, -d));
            }
        }
        self.lp.add_ge(row, 0.0);
    }

    /// Re-solves the master (warm after the first call) and reads out
    /// `(a, b, z_per_pair, objective, was_warm)`.
    #[allow(clippy::type_complexity)]
    fn solve(
        &mut self,
        inst: &Instance,
        round: usize,
    ) -> Result<(Vec<f64>, Vec<f64>, Vec<f64>, f64, bool), RobustError> {
        let warm_before = self.lp.stats().warm_solves;
        let sol = self.lp.solve().map_err(RobustError::MasterLp)?;
        if sol.status != Status::Optimal {
            return Err(RobustError::MasterNotOptimal {
                status: sol.status,
                round,
            });
        }
        let was_warm = self.lp.stats().warm_solves > warm_before;

        let a: Vec<f64> = self.a_vars.iter().map(|&v| sol.value(v).max(0.0)).collect();
        let b: Vec<f64> = self.b_vars.iter().map(|&v| sol.value(v).max(0.0)).collect();
        let z: Vec<f64> = inst
            .pair_ids()
            .map(|p| match &self.z_vars {
                ZVars::Shared(v) => sol.value(*v),
                ZVars::PerPair(vs) => vs[p.0].map_or(0.0, |v| sol.value(v)),
            })
            .collect();
        Ok((a, b, z, sol.objective, was_warm))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use pcf_topology::{NodeId, Topology};

    /// Two disjoint 2-hop paths s-a-t and s-b-t, all capacity 1.
    fn diamond() -> Topology {
        let mut t = Topology::new("diamond");
        let s = t.add_node("s");
        let a = t.add_node("a");
        let b = t.add_node("b");
        let d = t.add_node("t");
        t.add_link(s, a, 1.0);
        t.add_link(a, d, 1.0);
        t.add_link(s, b, 1.0);
        t.add_link(b, d, 1.0);
        t
    }

    #[test]
    fn no_failure_equals_capacity_bound() {
        // f = 0: both schemes should grant the full 2 units across the two
        // disjoint paths for a demand of 1 → demand scale 2.
        let topo = diamond();
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .tunnels_per_pair(2)
            .build();
        let fm = FailureModel::links(0);
        let opts = RobustOptions::default();
        for kind in [AdversaryKind::FfcTunnelCount, AdversaryKind::LinkBased] {
            let sol = solve_robust(&inst, &fm, kind, &opts);
            assert!(
                (sol.objective - 2.0).abs() < 1e-5,
                "{kind:?} got {}",
                sol.objective
            );
        }
    }

    #[test]
    fn single_failure_halves_diamond() {
        // f = 1 with two disjoint 1-capacity paths: worst case loses one
        // path → guarantee 1.0. Both FFC (p_st = 1) and PCF agree here.
        let topo = diamond();
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .tunnels_per_pair(2)
            .build();
        let fm = FailureModel::links(1);
        let opts = RobustOptions::default();
        for kind in [AdversaryKind::FfcTunnelCount, AdversaryKind::LinkBased] {
            let sol = solve_robust(&inst, &fm, kind, &opts);
            assert!(
                (sol.objective - 1.0).abs() < 1e-5,
                "{kind:?} got {}",
                sol.objective
            );
        }
    }

    #[test]
    fn two_failures_zero_diamond() {
        let topo = diamond();
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .tunnels_per_pair(2)
            .build();
        let fm = FailureModel::links(2);
        let sol = solve_robust(
            &inst,
            &fm,
            AdversaryKind::LinkBased,
            &RobustOptions::default(),
        );
        assert!(sol.objective.abs() < 1e-6, "got {}", sol.objective);
    }

    #[test]
    fn throughput_objective_caps_at_demand() {
        let topo = diamond();
        // Demand 10 on a network of capacity 2, f = 0: throughput = 2.
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 10.0)])
            .tunnels_per_pair(2)
            .build();
        let opts = RobustOptions {
            objective: Objective::Throughput,
            ..RobustOptions::default()
        };
        let sol = solve_robust(
            &inst,
            &FailureModel::links(0),
            AdversaryKind::LinkBased,
            &opts,
        );
        assert!((sol.objective - 2.0).abs() < 1e-5, "got {}", sol.objective);
        // Tiny demand: capped at z = 1 → throughput = demand.
        let inst2 = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 0.5)])
            .tunnels_per_pair(2)
            .build();
        let sol2 = solve_robust(
            &inst2,
            &FailureModel::links(0),
            AdversaryKind::LinkBased,
            &opts,
        );
        assert!(
            (sol2.objective - 0.5).abs() < 1e-6,
            "got {}",
            sol2.objective
        );
    }

    #[test]
    fn reservations_respect_arc_capacities() {
        let topo = diamond();
        let inst = InstanceBuilder::with_demands(
            &topo,
            vec![(NodeId(0), NodeId(3), 1.0), (NodeId(3), NodeId(0), 1.0)],
        )
        .tunnels_per_pair(2)
        .build();
        let sol = solve_robust(
            &inst,
            &FailureModel::links(1),
            AdversaryKind::LinkBased,
            &RobustOptions::default(),
        );
        // Full duplex: both directions independently get demand scale 1.
        assert!((sol.objective - 1.0).abs() < 1e-5, "got {}", sol.objective);
        // Check per-arc loads.
        let topo = inst.topo();
        let mut arc_load = vec![0.0; topo.arc_count()];
        for l in inst.tunnel_ids() {
            let path = inst.tunnel(l);
            for (i, &link) in path.links.iter().enumerate() {
                let arc = topo.arc_from(link, path.nodes[i]);
                arc_load[arc.index()] += sol.a[l.0];
            }
        }
        for arc in topo.arcs() {
            assert!(
                arc_load[arc.index()] <= topo.capacity(arc.link()) + 1e-6,
                "arc {arc:?} overloaded"
            );
        }
    }

    #[test]
    fn seeded_solve_matches_cold_and_counts_cuts() {
        let topo = diamond();
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .tunnels_per_pair(2)
            .build();
        let fm = FailureModel::links(1);
        let opts = RobustOptions::default();
        let (cold, pool) =
            try_solve_robust_seeded(&inst, &fm, AdversaryKind::LinkBased, &opts, None).unwrap();
        assert_eq!(cold.seeded_cuts, 0);
        assert!(!pool.is_empty(), "f=1 must generate separation cuts");
        assert!(pool.matches(&inst));

        // Warm re-solve of the same instance: identical optimum, the pool
        // injected up front, and no more rounds than the cold solve took.
        let (warm, pool2) =
            try_solve_robust_seeded(&inst, &fm, AdversaryKind::LinkBased, &opts, Some(&pool))
                .unwrap();
        assert!(
            (warm.objective - cold.objective).abs() < 1e-6,
            "warm {} vs cold {}",
            warm.objective,
            cold.objective
        );
        assert_eq!(warm.seeded_cuts, pool.len());
        assert!(warm.rounds <= cold.rounds);
        assert!(pool2.len() >= pool.len());

        // A pool from a differently shaped instance is silently ignored.
        let other = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .tunnels_per_pair(1)
            .build();
        assert!(!pool.matches(&other));
        let (cold2, _) =
            try_solve_robust_seeded(&other, &fm, AdversaryKind::LinkBased, &opts, Some(&pool))
                .unwrap();
        assert_eq!(cold2.seeded_cuts, 0);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::instance::{InstanceBuilder, LogicalSequence};
    use pcf_topology::{LinkId, NodeId, Topology};

    /// Two disjoint 2-hop paths s-a-t and s-b-t, all capacity 1.
    fn diamond() -> Topology {
        let mut t = Topology::new("diamond");
        let s = t.add_node("s");
        let a = t.add_node("a");
        let b = t.add_node("b");
        let d = t.add_node("t");
        t.add_link(s, a, 1.0);
        t.add_link(a, d, 1.0);
        t.add_link(s, b, 1.0);
        t.add_link(b, d, 1.0);
        t
    }

    #[test]
    fn srlg_group_budget_is_respected_end_to_end() {
        // One SRLG couples the two top links (s-a, s-b): a single group
        // failure cuts the source off entirely -> guarantee 0. Without the
        // SRLG (separate groups) the guarantee is 1.
        let topo = diamond();
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .tunnels_per_pair(2)
            .build();
        let coupled = FailureModel::Groups {
            groups: vec![vec![LinkId(0), LinkId(2)], vec![LinkId(1)], vec![LinkId(3)]],
            f: 1,
        };
        let sol = solve_robust(
            &inst,
            &coupled,
            AdversaryKind::LinkBased,
            &RobustOptions::default(),
        );
        assert!(sol.objective.abs() < 1e-6, "got {}", sol.objective);
        let separate = FailureModel::Groups {
            groups: topo.links().map(|l| vec![l]).collect(),
            f: 1,
        };
        let sol2 = solve_robust(
            &inst,
            &separate,
            AdversaryKind::LinkBased,
            &RobustOptions::default(),
        );
        assert!(
            (sol2.objective - 1.0).abs() < 1e-5,
            "got {}",
            sol2.objective
        );
    }

    #[test]
    fn explicit_scenarios_solve_exactly() {
        // Protect only against the failure of the left path's first link:
        // the right path plus the surviving left reservation can be used.
        let topo = diamond();
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .tunnels_per_pair(2)
            .build();
        let fm = FailureModel::Explicit {
            scenarios: vec![vec![LinkId(0)]],
        };
        let sol = solve_robust(
            &inst,
            &fm,
            AdversaryKind::LinkBased,
            &RobustOptions::default(),
        );
        // Worst case: lose the left tunnel entirely -> right tunnel's
        // reservation (capacity 1) is the guarantee.
        assert!((sol.objective - 1.0).abs() < 1e-5, "got {}", sol.objective);
        // Designing against both single-link lefts AND rights is the same
        // as f=1 here.
        let fm2 = FailureModel::Explicit {
            scenarios: topo.links().map(|l| vec![l]).collect(),
        };
        let sol2 = solve_robust(
            &inst,
            &fm2,
            AdversaryKind::LinkBased,
            &RobustOptions::default(),
        );
        let f1 = solve_robust(
            &inst,
            &FailureModel::links(1),
            AdversaryKind::LinkBased,
            &RobustOptions::default(),
        );
        assert!((sol2.objective - f1.objective).abs() < 1e-5);
    }

    #[test]
    fn relaxed_design_is_never_above_exact() {
        // The x ∈ [0,1] relaxation is conservative: its guarantee cannot
        // exceed the exact enumeration's.
        let topo = pcf_topology::zoo::build("Sprint");
        let tm = pcf_traffic::gravity(&topo, 2);
        let inst = crate::schemes::tunnel_instance(&topo, &tm, 3);
        let relaxed = solve_robust(
            &inst,
            &FailureModel::links(1),
            AdversaryKind::LinkBased,
            &RobustOptions::default(),
        );
        let scenarios = topo.links().map(|l| vec![l]).collect();
        let exact = solve_robust(
            &inst,
            &FailureModel::Explicit { scenarios },
            AdversaryKind::LinkBased,
            &RobustOptions::default(),
        );
        assert!(relaxed.objective <= exact.objective + 1e-6 * (1.0 + exact.objective));
    }

    #[test]
    fn throughput_objective_with_lss() {
        let topo = diamond();
        // Demand too large to fully serve; LS (s,a,t) adds nothing here but
        // must not break the throughput accounting.
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 5.0)])
            .tunnels_per_pair(2)
            .add_ls(LogicalSequence::always(vec![
                NodeId(0),
                NodeId(1),
                NodeId(3),
            ]))
            .build();
        let opts = RobustOptions {
            objective: crate::objective::Objective::Throughput,
            ..RobustOptions::default()
        };
        let sol = solve_robust(
            &inst,
            &FailureModel::links(1),
            AdversaryKind::LinkBased,
            &opts,
        );
        // Worst single failure leaves one unit path + whatever the LS is
        // backed by; total throughput is at least 1, at most the demand.
        assert!(sol.objective >= 1.0 - 1e-6);
        assert!(sol.objective <= 5.0 + 1e-9);
    }

    #[test]
    fn later_rounds_warm_start_and_match_cold_rebuild() {
        let topo = pcf_topology::zoo::build("Sprint");
        let tm = pcf_traffic::gravity(&topo, 2);
        let inst = crate::schemes::tunnel_instance(&topo, &tm, 3);
        let fm = FailureModel::links(1);

        let warm = solve_robust(
            &inst,
            &fm,
            AdversaryKind::LinkBased,
            &RobustOptions::default(),
        );
        assert!(warm.rounds >= 2, "expected a multi-round solve");
        // Every master re-solve after the first must reuse the live basis.
        assert_eq!(warm.warm_rounds, warm.rounds - 1);

        let cold_opts = RobustOptions {
            warm_start: false,
            threads: 1,
            ..RobustOptions::default()
        };
        let cold = solve_robust(&inst, &fm, AdversaryKind::LinkBased, &cold_opts);
        assert_eq!(cold.warm_rounds, 0);
        assert!(
            (warm.objective - cold.objective).abs() <= 1e-6 * (1.0 + cold.objective.abs()),
            "warm {} vs cold {}",
            warm.objective,
            cold.objective
        );
    }

    #[test]
    fn starved_master_surfaces_structured_error() {
        let topo = pcf_topology::zoo::build("Sprint");
        let tm = pcf_traffic::gravity(&topo, 2);
        let inst = crate::schemes::tunnel_instance(&topo, &tm, 3);
        let opts = RobustOptions {
            lp: SimplexOptions {
                max_iterations: Some(1),
                ..SimplexOptions::default()
            },
            ..RobustOptions::default()
        };
        let err = crate::robust::try_solve_robust(
            &inst,
            &FailureModel::links(1),
            AdversaryKind::LinkBased,
            &opts,
        )
        .unwrap_err();
        assert_eq!(
            err,
            RobustError::MasterNotOptimal {
                status: Status::IterationLimit,
                round: 1
            }
        );
        assert!(err.to_string().contains("round 1"), "{err}");
    }

    #[test]
    fn round_limit_returns_current_incumbent() {
        let topo = pcf_topology::zoo::build("Sprint");
        let tm = pcf_traffic::gravity(&topo, 2);
        let inst = crate::schemes::tunnel_instance(&topo, &tm, 3);
        let opts = RobustOptions {
            max_rounds: 1,
            ..RobustOptions::default()
        };
        let sol = solve_robust(
            &inst,
            &FailureModel::links(1),
            AdversaryKind::LinkBased,
            &opts,
        );
        // One round cannot certify the worst case; the incumbent is an
        // upper bound of the converged value.
        let full = solve_robust(
            &inst,
            &FailureModel::links(1),
            AdversaryKind::LinkBased,
            &RobustOptions::default(),
        );
        assert!(sol.objective >= full.objective - 1e-9);
        assert_eq!(sol.rounds, 1);
    }
}
