//! Minimal JSON for the wire protocol — no external dependencies.
//!
//! The serving protocol is line-delimited JSON, so this module implements
//! exactly the subset both ends need: parse one request object, render
//! one response object. Objects preserve insertion order
//! (`Vec<(String, Json)>`, never a hash map), so rendering is a pure
//! function of construction order and responses are byte-stable across
//! runs — the property the deterministic digests in `telemetry` and the
//! CI smoke gate rely on.
//!
//! Numbers are `f64` (like JSON itself). Rendering uses Rust's shortest
//! round-trip float formatting; integral values print without a decimal
//! point, and non-finite values (which JSON cannot carry) render as
//! `null`.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub what: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Parses one JSON value from `src` (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }

    /// Renders the value as compact single-line JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    // JSON has no NaN/Inf; null is the least-surprising
                    // degradation and keeps the line parseable.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Object field lookup (None for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one (within the f64
    /// exactly-representable range).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // audit:allow(float-discipline, exact integrality test: fract() of an integral f64 is exactly 0.0 by IEEE-754, no epsilon applies)
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> JsonError {
        JsonError {
            at: self.pos,
            what: what.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-utf8 number"))?;
        let n: f64 = tok.parse().map_err(|_| self.err("malformed number"))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(n))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are rejected rather than paired:
                            // the protocol is ASCII in practice.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("non-utf8 string"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("empty"))?;
                    if (c as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected array")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected , or ] in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected object")?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected : after key")?;
            self.skip_ws();
            let value = self.value()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err("duplicate key"));
            }
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected , or } in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_protocol_shapes() {
        let src = r#"{"cmd":"admit","src":"NodeA","dst":"NodeB","demand":1.5,"flags":[1,2],"deep":{"x":null,"y":true}}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.get("cmd").and_then(Json::as_str), Some("admit"));
        assert_eq!(v.get("demand").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("missing"), None);
        // Render → parse → render is a fixpoint.
        let rendered = v.render();
        assert_eq!(Json::parse(&rendered).unwrap().render(), rendered);
    }

    #[test]
    fn numbers_render_canonically() {
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(0.25).render(), "0.25");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::parse("1e-3").unwrap(), Json::Num(0.001));
        assert_eq!(Json::Num(42.0).as_u64(), Some(42));
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Json::str("a\"b\\c\nd\te");
        let rendered = v.render();
        assert_eq!(Json::parse(&rendered).unwrap(), v);
        assert_eq!(Json::parse(r#""Aé""#).unwrap(), Json::str("A\u{e9}"));
    }

    #[test]
    fn malformed_input_is_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1,\"a\":2}",
            "nan",
            "{\"a\" 1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::Obj(vec![
            ("z".into(), Json::Num(1.0)),
            ("a".into(), Json::Num(2.0)),
        ]);
        assert_eq!(v.render(), r#"{"z":1,"a":2}"#);
    }
}
