//! End-to-end validation: is an allocation *actually* congestion-free?
//!
//! The offline models prove congestion-freedom over a relaxed scenario set;
//! this module checks the real thing by enumerating (or sampling) concrete
//! failure scenarios, realizing the routing for each (paper §4), and
//! verifying that
//!
//! 1. every utilization fraction is in `[0, 1]`,
//! 2. no directed arc carries more than its capacity, and
//! 3. every pair's admitted demand is delivered.
//!
//! Used heavily by the integration and property tests; also useful as an
//! operator-facing audit tool.

use crate::failure::FailureModel;
use crate::instance::Instance;
use crate::realize::{realize_routing, FailureState, RealizeError};

/// Outcome of validating one allocation over a scenario set.
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// Scenarios checked.
    pub scenarios: usize,
    /// Highest arc utilization observed across all scenarios.
    pub max_utilization: f64,
    /// Scenarios where realization failed or a constraint was violated,
    /// with the dead-link mask attached.
    pub violations: Vec<Violation>,
}

/// One failed scenario.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The dead-link mask of the offending scenario.
    pub dead: Vec<bool>,
    /// What went wrong.
    pub kind: ViolationKind,
}

/// Failure modes the validator distinguishes.
#[derive(Debug, Clone)]
pub enum ViolationKind {
    /// The routing could not be realized at all.
    Realize(RealizeError),
    /// An arc exceeded its capacity (arc index, load, capacity).
    Overload {
        /// Directed arc index.
        arc: usize,
        /// Traffic on the arc.
        load: f64,
        /// Arc capacity.
        capacity: f64,
    },
}

impl ValidationReport {
    /// True when every scenario realized a feasible, congestion-free
    /// routing.
    pub fn congestion_free(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Validates an allocation `(a, b, served)` over every scenario in `masks`.
///
/// `served[p] = z_p * d_p`; `tol` is the relative feasibility tolerance.
pub fn validate_scenarios(
    inst: &Instance,
    a: &[f64],
    b: &[f64],
    served: &[f64],
    masks: &[Vec<bool>],
    tol: f64,
) -> ValidationReport {
    let topo = inst.topo();
    let mut max_util: f64 = 0.0;
    let mut violations = Vec::new();
    for mask in masks {
        let state = FailureState::new(inst, mask);
        match realize_routing(inst, &state, a, b, served, tol) {
            Err(e) => violations.push(Violation {
                dead: mask.clone(),
                kind: ViolationKind::Realize(e),
            }),
            Ok(routing) => {
                for arc in topo.arcs() {
                    let load = routing.arc_loads[arc.index()];
                    let cap = topo.capacity(arc.link());
                    if load > cap * (1.0 + tol) + tol {
                        violations.push(Violation {
                            dead: mask.clone(),
                            kind: ViolationKind::Overload {
                                arc: arc.index(),
                                load,
                                capacity: cap,
                            },
                        });
                    }
                    max_util = max_util.max(load / cap);
                }
            }
        }
    }
    ValidationReport {
        scenarios: masks.len(),
        max_utilization: max_util,
        violations,
    }
}

/// Validates over every worst-cardinality scenario of the failure model.
pub fn validate_all(
    inst: &Instance,
    fm: &FailureModel,
    a: &[f64],
    b: &[f64],
    served: &[f64],
    tol: f64,
) -> ValidationReport {
    let masks = fm.enumerate_scenarios(inst.topo());
    validate_scenarios(inst, a, b, served, &masks, tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use crate::robust::{solve_robust, AdversaryKind, RobustOptions};
    use pcf_topology::{NodeId, Topology};

    fn diamond() -> Topology {
        let mut t = Topology::new("diamond");
        let s = t.add_node("s");
        let a = t.add_node("a");
        let b = t.add_node("b");
        let d = t.add_node("t");
        t.add_link(s, a, 1.0);
        t.add_link(a, d, 1.0);
        t.add_link(s, b, 1.0);
        t.add_link(b, d, 1.0);
        t
    }

    #[test]
    fn solved_allocation_validates() {
        let topo = diamond();
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .tunnels_per_pair(2)
            .build();
        let fm = FailureModel::links(1);
        let sol = solve_robust(
            &inst,
            &fm,
            AdversaryKind::LinkBased,
            &RobustOptions::default(),
        );
        let served: Vec<f64> = inst
            .pair_ids()
            .map(|p| sol.z[p.0] * inst.demand(p))
            .collect();
        let report = validate_all(&inst, &fm, &sol.a, &sol.b, &served, 1e-6);
        assert!(
            report.congestion_free(),
            "violations: {:?}",
            report.violations
        );
        assert!(report.max_utilization <= 1.0 + 1e-6);
        assert_eq!(report.scenarios, 4);
    }

    #[test]
    fn overcommitted_allocation_is_caught() {
        let topo = diamond();
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .tunnels_per_pair(2)
            .build();
        // Pretend we can deliver 2.0 under single failures — impossible: the
        // realization must either overload or fail.
        let a = vec![1.0; inst.num_tunnels()];
        let served = vec![2.0];
        let report = validate_all(&inst, &FailureModel::links(1), &a, &[], &served, 1e-6);
        assert!(!report.congestion_free());
    }
}
