//! The lint catalog and the per-line matchers.
//!
//! Each lint is a token property checked over the masked lines of a
//! [`ScannedFile`](crate::scanner::ScannedFile), scoped to a set of
//! workspace paths. Test regions (`#[cfg(test)]` / `#[test]` items),
//! `tests/`, `benches/`, and `examples/` are outside every scope: the
//! guarantees matter on the paths that execute during failures, not in
//! the harnesses that exercise them.

use crate::callgraph::{AnalyzedFile, CallGraph};
use crate::parse::CallTarget;
use crate::scanner::ScannedFile;

/// The library crates whose `src/` trees carry PCF's runtime guarantees.
/// `pcf-cli` and `pcf-bench` are user-facing front ends and are exempt
/// from the panic/float lints; the audit crate holds itself to them.
const LIB_SRC: &[&str] = &[
    "crates/rng/src/",
    "crates/topology/src/",
    "crates/paths/src/",
    "crates/traffic/src/",
    "crates/lp/src/",
    "crates/core/src/",
    "crates/replay/src/",
    "crates/serve/src/",
    "crates/audit/src/",
];

/// Paths whose iteration order leaks into solver output, validation
/// verdicts, or serialized reports.
const DETERMINISTIC_SRC: &[&str] = &[
    "crates/lp/src/",
    "crates/core/src/validate.rs",
    "crates/core/src/realize.rs",
    "crates/core/src/degrade.rs",
    "crates/replay/src/engine.rs",
    "crates/replay/src/report.rs",
    "crates/replay/src/inject.rs",
    "crates/replay/src/shared.rs",
    "crates/serve/src/",
];

/// The module allowed to spell raw float comparisons: everything else
/// goes through its helpers or `total_cmp`.
const EPSILON_MODULE: &str = "crates/lp/src/float.rs";

/// One rule the audit pass enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lint {
    /// No `unwrap()`, `expect(...)`, `panic!`, `unreachable!`, `todo!`,
    /// or `unimplemented!` in library code: failure-time paths must
    /// return structured errors (Props. 5/6 make realization total).
    NoPanicPaths,
    /// No `HashMap`/`HashSet` where iteration order can reach solver
    /// output or reports: use `BTreeMap`/`BTreeSet` or explicit sorts.
    DeterministicIteration,
    /// No `partial_cmp` and no `==`/`!=` against float literals outside
    /// the approved epsilon module: use `total_cmp` or the helpers so a
    /// NaN can never panic a pivot or flip a sort.
    FloatDiscipline,
    /// No bare `std::thread::spawn`: the workspace standardized on
    /// `thread::scope`, which cannot leak a joinable handle.
    ScopedThreadsOnly,
    /// No `Instant`/`SystemTime` outside `pcf-bench`/`pcf-cli`:
    /// wall-clock reads inside the solver would break replay-cache
    /// bit-identity.
    NoWallclockInSolver,
    /// Interprocedural: no panic site (`unwrap`/`expect`/`panic!`/
    /// `assert!` family) may be transitively reachable from a declared
    /// hot entry point (realization, event application, the degradation
    /// ladder, the serve request loop, `PlanCell`/log operations).
    /// Additionally, `// audit:hot`-tagged functions may not index
    /// directly (`expr[..]`) — kernel-internal indexing below them is a
    /// property-tested invariant, not a reachability finding. Findings
    /// carry a witness call chain.
    PanicReachability,
    /// Every atomic op spells its `Ordering::` explicitly at the call;
    /// `Ordering::Relaxed` requires a reasoned `audit:allow`; a field
    /// that is Acquire-loaded must be Release-published somewhere.
    AtomicsDiscipline,
    /// Interprocedural: `// audit:hot` functions must not transitively
    /// reach allocating calls (`Vec::new`, `push`, `collect`,
    /// `format!`, `Box::new`, ...) — the O(1) realize fast path stays
    /// allocation-free.
    HotPathAlloc,
    /// No `.lock()` while another guard is live in the same function —
    /// the workspace invariant that makes the `PlanCell` slot mutex
    /// deadlock-free (a single, never-nested lock).
    LockDiscipline,
    /// A malformed `audit:allow` directive (missing reason, bad syntax).
    /// Never baselinable: a broken escape must not waive anything.
    BadAllow,
}

/// All lints, in reporting order.
pub const ALL_LINTS: &[Lint] = &[
    Lint::NoPanicPaths,
    Lint::DeterministicIteration,
    Lint::FloatDiscipline,
    Lint::ScopedThreadsOnly,
    Lint::NoWallclockInSolver,
    Lint::PanicReachability,
    Lint::AtomicsDiscipline,
    Lint::HotPathAlloc,
    Lint::LockDiscipline,
    Lint::BadAllow,
];

impl Lint {
    /// The lint's stable name: used in `audit:allow(...)`, the baseline
    /// file, and reports.
    pub fn name(self) -> &'static str {
        match self {
            Lint::NoPanicPaths => "no-panic-paths",
            Lint::DeterministicIteration => "deterministic-iteration",
            Lint::FloatDiscipline => "float-discipline",
            Lint::ScopedThreadsOnly => "scoped-threads-only",
            Lint::NoWallclockInSolver => "no-wallclock-in-solver",
            Lint::PanicReachability => "panic-reachability",
            Lint::AtomicsDiscipline => "atomics-discipline",
            Lint::HotPathAlloc => "hot-path-alloc",
            Lint::LockDiscipline => "lock-discipline",
            Lint::BadAllow => "bad-allow",
        }
    }

    /// Looks a lint up by its stable name.
    pub fn by_name(name: &str) -> Option<Lint> {
        ALL_LINTS.iter().copied().find(|l| l.name() == name)
    }

    /// One-line description for `pcf-audit --list`.
    pub fn describe(self) -> &'static str {
        match self {
            Lint::NoPanicPaths => {
                "forbid unwrap()/expect()/panic!/unreachable!/todo!/unimplemented! in library code"
            }
            Lint::DeterministicIteration => {
                "forbid HashMap/HashSet on solver, validation, and report output paths"
            }
            Lint::FloatDiscipline => {
                "forbid partial_cmp and ==/!= against float literals outside the epsilon module"
            }
            Lint::ScopedThreadsOnly => "forbid bare std::thread::spawn (use thread::scope)",
            Lint::NoWallclockInSolver => {
                "forbid Instant/SystemTime outside pcf-bench/pcf-cli (replay bit-identity)"
            }
            Lint::PanicReachability => {
                "no panic site transitively reachable from the declared hot entry points"
            }
            Lint::AtomicsDiscipline => {
                "explicit Ordering on every atomic op; Relaxed needs a reasoned allow; \
                 Acquire loads need a Release publisher"
            }
            Lint::HotPathAlloc => {
                "audit:hot functions must not transitively reach allocating calls"
            }
            Lint::LockDiscipline => "no .lock() while another guard is live in the same function",
            Lint::BadAllow => "malformed audit:allow directives (never baselinable)",
        }
    }

    /// Whether the lint applies to the file at workspace-relative `rel`.
    pub fn in_scope(self, rel: &str) -> bool {
        let under = |prefixes: &[&str]| prefixes.iter().any(|p| rel.starts_with(p));
        match self {
            Lint::NoPanicPaths => under(LIB_SRC),
            Lint::DeterministicIteration => under(DETERMINISTIC_SRC),
            Lint::FloatDiscipline => under(LIB_SRC) && rel != EPSILON_MODULE,
            // Scoped threads are workspace policy, front ends included.
            Lint::ScopedThreadsOnly => rel.starts_with("crates/") && rel.contains("/src/"),
            Lint::NoWallclockInSolver => under(LIB_SRC),
            Lint::PanicReachability
            | Lint::AtomicsDiscipline
            | Lint::HotPathAlloc
            | Lint::LockDiscipline => under(LIB_SRC),
            Lint::BadAllow => rel.starts_with("crates/") || rel.starts_with("tests/"),
        }
    }

    /// Workspace-level lints run over the whole call graph in
    /// [`check_workspace`], not per file in [`check_file`].
    pub fn workspace_level(self) -> bool {
        matches!(
            self,
            Lint::PanicReachability
                | Lint::AtomicsDiscipline
                | Lint::HotPathAlloc
                | Lint::LockDiscipline
        )
    }
}

/// One violation: a lint, a file, a line, and the offending excerpt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub lint: Lint,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// A short description of what matched.
    pub what: String,
    /// For interprocedural lints: the witness call chain from the
    /// entry/hot function to the offending site (fn labels). Empty for
    /// per-line lints.
    pub chain: Vec<String>,
}

impl Finding {
    /// A chain-less finding (the common per-line case).
    pub fn at(lint: Lint, file: &str, line: usize, what: String) -> Finding {
        Finding {
            lint,
            file: file.to_string(),
            line,
            what,
            chain: Vec::new(),
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.lint.name(),
            self.what
        )?;
        if !self.chain.is_empty() {
            write!(f, " (via {})", self.chain.join(" -> "))?;
        }
        Ok(())
    }
}

/// Runs every in-scope per-line lint over one scanned file. The
/// workspace-level lints live in [`check_workspace`].
pub fn check_file(rel: &str, scanned: &ScannedFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    for &lint in ALL_LINTS {
        if lint.workspace_level() || !lint.in_scope(rel) {
            continue;
        }
        if lint == Lint::BadAllow {
            for bad in &scanned.bad_allows {
                findings.push(Finding::at(lint, rel, bad.line, bad.problem.clone()));
            }
            continue;
        }
        for (idx, masked) in scanned.masked_lines.iter().enumerate() {
            let line = idx + 1;
            if scanned.line_in_test(line) {
                continue;
            }
            for what in match_line(lint, masked) {
                if scanned.allowed(lint.name(), line) {
                    continue;
                }
                findings.push(Finding::at(lint, rel, line, what));
            }
        }
    }
    findings.sort_by(|a, b| (a.line, a.lint.name()).cmp(&(b.line, b.lint.name())));
    findings
}

/// Matches one lint against one masked line; returns one entry per hit.
fn match_line(lint: Lint, masked: &str) -> Vec<String> {
    match lint {
        Lint::NoPanicPaths => {
            let mut hits = Vec::new();
            for m in ["panic", "unreachable", "todo", "unimplemented"] {
                for pos in word_positions(masked, m) {
                    if next_nonspace(masked, pos + m.len()) == Some('!') {
                        hits.push(format!("`{m}!` in library code"));
                    }
                }
            }
            for pos in word_positions(masked, "unwrap") {
                if prev_nonspace(masked, pos) == Some('.')
                    && follows_call(masked, pos + "unwrap".len())
                {
                    hits.push("`.unwrap()` in library code".to_string());
                }
            }
            for pos in word_positions(masked, "expect") {
                if prev_nonspace(masked, pos) == Some('.')
                    && next_nonspace(masked, pos + "expect".len()) == Some('(')
                {
                    hits.push("`.expect(..)` in library code".to_string());
                }
            }
            hits
        }
        Lint::DeterministicIteration => ["HashMap", "HashSet"]
            .iter()
            .flat_map(|w| {
                word_positions(masked, w).into_iter().map(move |_| {
                    format!(
                        "`{w}` on a determinism-sensitive path (use BTree{})",
                        &w[4..]
                    )
                })
            })
            .collect(),
        Lint::FloatDiscipline => {
            // Defining the trait method (`fn partial_cmp`) in a canonical
            // `PartialOrd` impl that delegates to `cmp` is not a float
            // comparison; only *calls* are flagged.
            let mut hits: Vec<String> = word_positions(masked, "partial_cmp")
                .into_iter()
                .filter(|&pos| !masked[..pos].trim_end().ends_with("fn"))
                .map(|_| "`partial_cmp` outside the epsilon module (use total_cmp)".to_string())
                .collect();
            for hit in float_eq_hits(masked) {
                hits.push(hit);
            }
            hits
        }
        Lint::ScopedThreadsOnly => {
            let mut hits = Vec::new();
            let mut rest = masked;
            while let Some(pos) = rest.find("thread::spawn") {
                hits.push("bare `thread::spawn` (use thread::scope)".to_string());
                rest = &rest[pos + "thread::spawn".len()..];
            }
            hits
        }
        Lint::NoWallclockInSolver => ["Instant", "SystemTime"]
            .iter()
            .flat_map(|w| {
                word_positions(masked, w)
                    .into_iter()
                    .map(move |_| format!("`{w}` outside pcf-bench/pcf-cli"))
            })
            .collect(),
        // Workspace-level lints never run per line; `check_file` skips
        // them before reaching here.
        Lint::PanicReachability
        | Lint::AtomicsDiscipline
        | Lint::HotPathAlloc
        | Lint::LockDiscipline
        | Lint::BadAllow => Vec::new(),
    }
}

/// The declared hot entry points for panic-reachability:
/// `(file prefix, impl type, fn name)`. These are the functions that
/// must stay total while the system is degraded — realization (Props.
/// 5/6), event application, the degradation ladder, and the serving
/// fast path. Renaming one of them without updating this table is
/// itself a finding (config drift would silently drop coverage).
pub const HOT_ENTRIES: &[(&str, Option<&str>, &str)] = &[
    ("crates/core/src/realize.rs", None, "realize_routing"),
    ("crates/core/src/realize.rs", None, "realize_routing_with"),
    ("crates/core/src/degrade.rs", None, "normal_routing"),
    ("crates/core/src/degrade.rs", None, "degrade_routing"),
    ("crates/core/src/degrade.rs", None, "degrade_fallback"),
    ("crates/replay/src/engine.rs", Some("ReplayEngine"), "apply"),
    (
        "crates/replay/src/engine.rs",
        Some("ReplayEngine"),
        "realize",
    ),
    (
        "crates/replay/src/engine.rs",
        Some("ReplayEngine"),
        "realize_degraded",
    ),
    ("crates/serve/src/server.rs", Some("Server"), "handle_conn"),
    ("crates/serve/src/plan.rs", Some("PlanCell"), "generation"),
    ("crates/serve/src/plan.rs", Some("PlanCell"), "current"),
    ("crates/serve/src/plan.rs", Some("PlanCell"), "swap"),
    ("crates/serve/src/log.rs", Some("EventLog"), "push"),
    ("crates/serve/src/log.rs", Some("EventLog"), "get"),
];

/// Macro names that are panic sites.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Method names that are panic sites.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Atomic operation method names.
const ATOMIC_OPS: &[&str] = &[
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
];

/// Method names that allocate when they do not resolve to a workspace
/// function.
const ALLOC_METHODS: &[&str] = &[
    "push",
    "insert",
    "extend",
    "collect",
    "reserve",
    "append",
    "to_vec",
    "to_owned",
    "to_string",
    "with_capacity",
];

/// Path qualifiers whose associated functions allocate (or set up an
/// allocation: `Vec::new` is lazily allocating on first push, and a hot
/// function has no business constructing one either way).
const ALLOC_TYPES: &[&str] = &[
    "Vec", "VecDeque", "Box", "String", "BTreeMap", "BTreeSet", "HashMap", "HashSet",
];

/// Allocating macros.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Runs the four interprocedural lints over the whole workspace.
/// `entries` is normally [`HOT_ENTRIES`]; tests pass synthetic tables.
pub fn check_workspace(
    files: &[AnalyzedFile],
    entries: &[(&str, Option<&str>, &str)],
) -> Vec<Finding> {
    let graph = CallGraph::build(files);
    let mut findings = Vec::new();
    panic_reachability(files, &graph, entries, &mut findings);
    hot_path_alloc(files, &graph, &mut findings);
    atomics_discipline(files, &mut findings);
    lock_discipline(files, &mut findings);
    findings
}

/// Panic sites of one fn: `(line, description)`, allows respected.
fn panic_sites(file: &AnalyzedFile, f: &crate::parse::FnItem) -> Vec<(usize, String)> {
    let mut sites = Vec::new();
    for call in &f.calls {
        let hit = match &call.target {
            CallTarget::Macro(m) if PANIC_MACROS.contains(&m.as_str()) => Some(format!("`{m}!`")),
            CallTarget::Method { name, .. } if PANIC_METHODS.contains(&name.as_str()) => {
                Some(format!("`.{name}(..)`"))
            }
            _ => None,
        };
        if let Some(what) = hit {
            if !file
                .scanned
                .allowed(Lint::PanicReachability.name(), call.line)
            {
                sites.push((call.line, what));
            }
        }
    }
    sites
}

fn panic_reachability(
    files: &[AnalyzedFile],
    graph: &CallGraph,
    entries: &[(&str, Option<&str>, &str)],
    findings: &mut Vec<Finding>,
) {
    let mut reported: std::collections::BTreeSet<(String, usize, String)> =
        std::collections::BTreeSet::new();
    for &(file_prefix, impl_type, name) in entries {
        let starts = graph.lookup(files, file_prefix, impl_type, name);
        if starts.is_empty() {
            // Only drift-report when the file itself exists in the set
            // (synthetic test workspaces carry their own tables).
            if files.iter().any(|f| f.rel.starts_with(file_prefix)) {
                let label = match impl_type {
                    Some(t) => format!("{t}::{name}"),
                    None => name.to_string(),
                };
                findings.push(Finding::at(
                    Lint::PanicReachability,
                    file_prefix,
                    0,
                    format!("declared hot entry `{label}` not found (update HOT_ENTRIES)"),
                ));
            }
            continue;
        }
        for start in starts {
            let entry_label = graph.fn_of(files, start).label();
            let (order, parents) = graph.bfs(start);
            for n in order {
                let nf = graph.fn_of(files, n);
                let nfile = graph.file_of(files, n);
                if nf.is_test || !Lint::PanicReachability.in_scope(&nfile.rel) {
                    continue;
                }
                for (line, what) in panic_sites(nfile, nf) {
                    let key = (nfile.rel.clone(), line, what.clone());
                    if reported.contains(&key) {
                        continue;
                    }
                    reported.insert(key);
                    findings.push(Finding {
                        lint: Lint::PanicReachability,
                        file: nfile.rel.clone(),
                        line,
                        what: format!("{what} reachable from hot entry `{entry_label}`"),
                        chain: graph.chain(files, &parents, n),
                    });
                }
            }
        }
    }
    // Direct-indexing tier: `audit:hot` functions must not index.
    // (Indexing *below* them — LP kernels — is bounds-guarded by
    // construction and property-tested; tracking it transitively would
    // bury real findings, see DESIGN.md §9.)
    for file in files {
        if !Lint::PanicReachability.in_scope(&file.rel) {
            continue;
        }
        for f in &file.parsed.fns {
            if !f.is_hot || f.is_test {
                continue;
            }
            for &line in &f.index_lines {
                if file.scanned.allowed(Lint::PanicReachability.name(), line) {
                    continue;
                }
                findings.push(Finding::at(
                    Lint::PanicReachability,
                    &file.rel,
                    line,
                    format!("indexing in audit:hot fn `{}` (can panic)", f.label()),
                ));
            }
        }
    }
}

fn hot_path_alloc(files: &[AnalyzedFile], graph: &CallGraph, findings: &mut Vec<Finding>) {
    let mut reported: std::collections::BTreeSet<(String, usize)> =
        std::collections::BTreeSet::new();
    for start in 0..graph.nodes.len() {
        let sf = graph.fn_of(files, start);
        if !sf.is_hot || sf.is_test {
            continue;
        }
        let root_label = sf.label();
        let (order, parents) = graph.bfs(start);
        for n in order {
            let nf = graph.fn_of(files, n);
            let nfile = graph.file_of(files, n);
            if nf.is_test || !Lint::HotPathAlloc.in_scope(&nfile.rel) {
                continue;
            }
            for (ci, call) in nf.calls.iter().enumerate() {
                let resolved_in_workspace = !graph.call_edges[n][ci].is_empty();
                let hit = match &call.target {
                    CallTarget::Macro(m) if ALLOC_MACROS.contains(&m.as_str()) => {
                        Some(format!("`{m}!`"))
                    }
                    CallTarget::Path { qualifier, name }
                        if ALLOC_TYPES.contains(&qualifier.as_str()) =>
                    {
                        Some(format!("`{qualifier}::{name}`"))
                    }
                    CallTarget::Method { name, .. }
                        if ALLOC_METHODS.contains(&name.as_str()) && !resolved_in_workspace =>
                    {
                        Some(format!("`.{name}(..)`"))
                    }
                    _ => None,
                };
                let Some(what) = hit else { continue };
                if nfile.scanned.allowed(Lint::HotPathAlloc.name(), call.line) {
                    continue;
                }
                let key = (nfile.rel.clone(), call.line);
                if reported.contains(&key) {
                    continue;
                }
                reported.insert(key);
                findings.push(Finding {
                    lint: Lint::HotPathAlloc,
                    file: nfile.rel.clone(),
                    line: call.line,
                    what: format!("allocating call {what} reachable from audit:hot `{root_label}`"),
                    chain: graph.chain(files, &parents, n),
                });
            }
        }
    }
}

/// How an atomic op participates in synchronization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AtomicKind {
    Load,
    Store,
    Rmw,
}

fn atomics_discipline(files: &[AnalyzedFile], findings: &mut Vec<Finding>) {
    // Field names declared with an Atomic* type anywhere in the
    // workspace — evidence that an Ordering-less `.load(..)` on them is
    // an atomic op hiding behind an import.
    let mut atomic_fields: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    for file in files {
        for fields in file.parsed.structs.values() {
            for (fname, fty) in fields {
                if fty.starts_with("Atomic") {
                    atomic_fields.insert(fname);
                }
            }
        }
    }
    // (field name) → ops seen: (file, line, kind, orderings).
    type Ops = Vec<(String, usize, AtomicKind, Vec<String>)>;
    let mut per_field: std::collections::BTreeMap<String, Ops> = std::collections::BTreeMap::new();
    for file in files {
        if !Lint::AtomicsDiscipline.in_scope(&file.rel) {
            continue;
        }
        for f in &file.parsed.fns {
            if f.is_test {
                continue;
            }
            for call in &f.calls {
                let CallTarget::Method { receiver, name } = &call.target else {
                    continue;
                };
                if !ATOMIC_OPS.contains(&name.as_str()) {
                    continue;
                }
                let args = call.args.as_deref().unwrap_or("");
                let orderings = extract_orderings(args);
                let field = receiver.field_name().map(str::to_string);
                let is_atomic = !orderings.is_empty()
                    || field.as_deref().is_some_and(|f| atomic_fields.contains(f));
                if !is_atomic {
                    continue; // Vec::swap, slice ops, non-atomic loads
                }
                let allowed = file
                    .scanned
                    .allowed(Lint::AtomicsDiscipline.name(), call.line);
                if orderings.is_empty() {
                    if !allowed {
                        findings.push(Finding::at(
                            Lint::AtomicsDiscipline,
                            &file.rel,
                            call.line,
                            format!(
                                "atomic `.{name}(..)` without a spelled-out `Ordering::` \
                                 (import-shadowed orderings hide the contract)"
                            ),
                        ));
                    }
                } else if orderings.iter().any(|o| o == "Relaxed") && !allowed {
                    findings.push(Finding::at(
                        Lint::AtomicsDiscipline,
                        &file.rel,
                        call.line,
                        format!(
                            "`Ordering::Relaxed` on `.{name}(..)` needs a reasoned \
                             audit:allow(atomics-discipline, ...)"
                        ),
                    ));
                }
                let kind = match name.as_str() {
                    "load" => AtomicKind::Load,
                    "store" => AtomicKind::Store,
                    _ => AtomicKind::Rmw,
                };
                if let Some(field) = field {
                    per_field.entry(field).or_default().push((
                        file.rel.clone(),
                        call.line,
                        kind,
                        orderings,
                    ));
                }
            }
        }
    }
    // Acquire/Release symmetry per field: an Acquire-side load with no
    // Release-side publisher anywhere is a broken happens-before edge.
    let release_side = |o: &str| matches!(o, "Release" | "AcqRel" | "SeqCst");
    let acquire_side = |o: &str| matches!(o, "Acquire" | "AcqRel" | "SeqCst");
    for (field, ops) in &per_field {
        let has_release = ops.iter().any(|(_, _, kind, ords)| {
            *kind != AtomicKind::Load && ords.iter().any(|o| release_side(o))
        });
        let acquire_load = ops.iter().find(|(_, _, kind, ords)| {
            *kind == AtomicKind::Load && ords.iter().any(|o| acquire_side(o))
        });
        let has_writer = ops.iter().any(|(_, _, kind, _)| *kind != AtomicKind::Load);
        if let Some((file, line, _, _)) = acquire_load {
            if has_writer && !has_release {
                findings.push(Finding::at(
                    Lint::AtomicsDiscipline,
                    file,
                    *line,
                    format!(
                        "field `{field}` is Acquire-loaded here but never \
                         Release-published (no Release/AcqRel/SeqCst write)"
                    ),
                ));
            }
        }
    }
}

/// All `Ordering::X` names in an argument string.
fn extract_orderings(args: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = args;
    while let Some(at) = rest.find("Ordering") {
        let after = &rest[at + "Ordering".len()..];
        if let Some(path) = after.strip_prefix("::") {
            let name: String = path.chars().take_while(|c| c.is_alphanumeric()).collect();
            if !name.is_empty() {
                out.push(name);
            }
        }
        rest = &rest[at + "Ordering".len()..];
    }
    out
}

fn lock_discipline(files: &[AnalyzedFile], findings: &mut Vec<Finding>) {
    for file in files {
        if !Lint::LockDiscipline.in_scope(&file.rel) {
            continue;
        }
        for f in &file.parsed.fns {
            if f.is_test || f.body == (0, 0) {
                continue;
            }
            lock_scan(file, f, findings);
        }
    }
}

/// Walks one body tracking live `MutexGuard`s: a `let`-bound guard
/// lives until its block closes (or an explicit `drop(name)`); an
/// unbound `.lock()` temporary lives to the end of its statement. A
/// second `.lock()` while any guard is live is a finding.
fn lock_scan(file: &AnalyzedFile, f: &crate::parse::FnItem, findings: &mut Vec<Finding>) {
    let (b0, b1) = f.body;
    if b0 == 0 || b1 < b0 {
        return;
    }
    struct Guard {
        name: Option<String>,
        depth: usize,
        temp: bool,
    }
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut stmt = String::new();
    for (li, raw) in file
        .scanned
        .masked_lines
        .iter()
        .enumerate()
        .skip(b0 - 1)
        .take(b1 - b0 + 1)
    {
        let line_no = li + 1;
        let bytes = raw.as_bytes();
        let mut i = 0usize;
        while i < bytes.len() {
            let c = bytes[i] as char;
            match c {
                // Statement boundaries reset `stmt` and must not leak the
                // boundary char into the next statement's text (a leading
                // `{` would hide the `let ` prefix of a guard binding).
                '{' => {
                    depth += 1;
                    stmt.clear();
                    i += 1;
                    continue;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    guards.retain(|g| g.depth <= depth);
                    stmt.clear();
                    i += 1;
                    continue;
                }
                ';' => {
                    guards.retain(|g| !(g.temp && g.depth == depth));
                    stmt.clear();
                    i += 1;
                    continue;
                }
                '.' if raw[i..].starts_with(".lock(") => {
                    if !guards.is_empty()
                        && !file.scanned.allowed(Lint::LockDiscipline.name(), line_no)
                    {
                        findings.push(Finding::at(
                            Lint::LockDiscipline,
                            &file.rel,
                            line_no,
                            format!(
                                "`.lock()` in `{}` while another guard is live \
                                 (nested locking risks deadlock)",
                                f.label()
                            ),
                        ));
                    }
                    let trimmed = stmt.trim_start();
                    let bound = trimmed.strip_prefix("let ").map(|rest| {
                        let rest = rest.trim_start();
                        let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
                        rest.chars()
                            .take_while(|c| c.is_alphanumeric() || *c == '_')
                            .collect::<String>()
                    });
                    match bound {
                        Some(name) if !name.is_empty() => guards.push(Guard {
                            name: Some(name),
                            depth,
                            temp: false,
                        }),
                        _ => guards.push(Guard {
                            name: None,
                            depth,
                            temp: true,
                        }),
                    }
                    i += ".lock(".len();
                    stmt.push_str(".lock(");
                    continue;
                }
                'd' if raw[i..].starts_with("drop(")
                    && (i == 0
                        || !(bytes[i - 1] as char).is_alphanumeric() && bytes[i - 1] != b'_') =>
                {
                    let inner: String = raw[i + "drop(".len()..]
                        .chars()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect();
                    guards.retain(|g| g.name.as_deref() != Some(inner.as_str()));
                }
                _ => {}
            }
            stmt.push(c);
            i += 1;
        }
        stmt.push(' ');
    }
}

/// Byte positions where `word` occurs with non-identifier neighbours.
fn word_positions(line: &str, word: &str) -> Vec<usize> {
    let bytes = line.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut out = Vec::new();
    let mut start = 0usize;
    while let Some(pos) = line[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            out.push(at);
        }
        start = at + word.len();
    }
    out
}

/// First non-space char at or after byte `from`.
fn next_nonspace(line: &str, from: usize) -> Option<char> {
    line.get(from..)?.chars().find(|c| !c.is_whitespace())
}

/// Last non-space char strictly before byte `at`.
fn prev_nonspace(line: &str, at: usize) -> Option<char> {
    line.get(..at)?.chars().rev().find(|c| !c.is_whitespace())
}

/// True when the text after an `unwrap` word is an empty call `()`.
/// (`unwrap_or`, `unwrap_err`, field accesses etc. never match: the word
/// boundary already excluded them.)
fn follows_call(line: &str, from: usize) -> bool {
    let mut it = line
        .get(from..)
        .unwrap_or("")
        .chars()
        .filter(|c| !c.is_whitespace());
    it.next() == Some('(') && it.next() == Some(')')
}

/// Finds `==` / `!=` with a float literal on either side.
fn float_eq_hits(masked: &str) -> Vec<String> {
    let bytes = masked.as_bytes();
    let mut hits = Vec::new();
    let mut i = 0usize;
    while i + 1 < bytes.len() {
        let is_eq = bytes[i] == b'=' && bytes[i + 1] == b'=';
        let is_ne = bytes[i] == b'!' && bytes[i + 1] == b'=';
        if is_eq || is_ne {
            // Exclude `<=`, `>=`, `=>`-adjacent sequences.
            let prev_op = i > 0 && matches!(bytes[i - 1], b'<' | b'>' | b'=' | b'!');
            // Both operator bytes are ASCII, so i and i + 2 are char
            // boundaries and the slices below cannot split a char.
            if !prev_op
                && (is_float_literal_before(masked, i) || is_float_literal_after(masked, i + 2))
            {
                let op = if is_eq { "==" } else { "!=" };
                hits.push(format!(
                    "float literal compared with `{op}` (use the epsilon helpers or total_cmp)"
                ));
            }
            i += 2;
            continue;
        }
        i += 1;
    }
    hits
}

/// Is the token ending just before byte `at` (skipping spaces) a float
/// literal like `0.0`, `1.`, `1e-6`, `2.5e3`, `0f64`?
fn is_float_literal_before(line: &str, at: usize) -> bool {
    let s = line[..at].trim_end();
    let token: String = s
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '+' | '-'))
        .collect::<Vec<char>>()
        .into_iter()
        .rev()
        .collect();
    token_is_float(token.trim_start_matches(['+', '-']))
}

/// Is the token starting at byte `at` (skipping spaces) a float literal?
fn is_float_literal_after(line: &str, at: usize) -> bool {
    let s = line.get(at..).unwrap_or("").trim_start();
    let s = s.strip_prefix(['+', '-']).unwrap_or(s);
    let token: String = s
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '+' | '-'))
        .collect();
    token_is_float(&token)
}

/// `0.0`, `1.`, `1e-6`, `1_000.5`, `3f64` are float literals; `0`, `x0`,
/// `usize` are not.
fn token_is_float(token: &str) -> bool {
    let t = token.trim_end_matches("f64").trim_end_matches("f32");
    if t.is_empty() || !t.starts_with(|c: char| c.is_ascii_digit()) {
        return false;
    }
    let explicit_suffix = token.len() != t.len();
    let has_dot = t.contains('.');
    let has_exp = t.chars().any(|c| matches!(c, 'e' | 'E'))
        && t.chars()
            .all(|c| c.is_ascii_digit() || matches!(c, '.' | '_' | 'e' | 'E' | '+' | '-'));
    (has_dot || has_exp || explicit_suffix)
        && t.chars()
            .all(|c| c.is_ascii_digit() || matches!(c, '.' | '_' | 'e' | 'E' | '+' | '-'))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::ScannedFile;

    fn findings(rel: &str, src: &str) -> Vec<Finding> {
        check_file(rel, &ScannedFile::scan(src))
    }

    #[test]
    fn unwrap_and_macros_are_caught_variants_are_not() {
        let f = findings(
            "crates/core/src/x.rs",
            "a.unwrap();\nb.unwrap_or(0);\nc.unwrap_or_else(|| 0);\npanic!();\nunreachable!();\nd.expect(\"msg\");\nd.expect_err(\"msg\");\n",
        );
        let panics: Vec<_> = f.iter().filter(|x| x.lint == Lint::NoPanicPaths).collect();
        assert_eq!(panics.len(), 4, "{panics:?}");
        assert_eq!(panics[0].line, 1);
        assert_eq!(panics[1].line, 4);
        assert_eq!(panics[2].line, 5);
        assert_eq!(panics[3].line, 6);
    }

    #[test]
    fn float_literal_comparisons_are_caught() {
        let src = "if x == 0.0 {}\nif 1e-6 != y {}\nif n == 0 {}\nif x <= 0.0 {}\nif x >= 1.0 {}\nlet z = 2.5f64 == w;\n";
        let f = findings("crates/core/src/x.rs", src);
        let lines: Vec<usize> = f
            .iter()
            .filter(|x| x.lint == Lint::FloatDiscipline)
            .map(|x| x.line)
            .collect();
        assert_eq!(lines, vec![1, 2, 6], "{f:?}");
    }

    #[test]
    fn partial_cmp_calls_flagged_but_trait_definitions_are_not() {
        let src = "impl PartialOrd for P {\n    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {\n        Some(self.cmp(other))\n    }\n}\nlet o = a.partial_cmp(&b);\n";
        let f = findings("crates/core/src/x.rs", src);
        let lines: Vec<usize> = f
            .iter()
            .filter(|x| x.lint == Lint::FloatDiscipline)
            .map(|x| x.line)
            .collect();
        assert_eq!(lines, vec![6], "{f:?}");
    }

    #[test]
    fn hashmap_only_flagged_on_deterministic_paths() {
        let src = "use std::collections::HashMap;\n";
        assert!(findings("crates/lp/src/model.rs", src)
            .iter()
            .any(|f| f.lint == Lint::DeterministicIteration));
        assert!(!findings("crates/topology/src/graph.rs", src)
            .iter()
            .any(|f| f.lint == Lint::DeterministicIteration));
    }

    #[test]
    fn wallclock_scope_exempts_bench_and_cli() {
        let src = "let t = std::time::Instant::now();\n";
        assert!(findings("crates/replay/src/report.rs", src)
            .iter()
            .any(|f| f.lint == Lint::NoWallclockInSolver));
        assert!(findings("crates/bench/src/lib.rs", src).is_empty());
        assert!(findings("crates/cli/src/main.rs", src).is_empty());
    }

    #[test]
    fn thread_spawn_is_flagged_everywhere_scope_is_not() {
        let src = "std::thread::spawn(|| {});\nstd::thread::scope(|s| { s.spawn(|| {}); });\n";
        let f = findings("crates/cli/src/main.rs", src);
        let spawns: Vec<_> = f
            .iter()
            .filter(|x| x.lint == Lint::ScopedThreadsOnly)
            .collect();
        assert_eq!(spawns.len(), 1);
        assert_eq!(spawns[0].line, 1);
    }

    #[test]
    fn epsilon_module_is_exempt_from_float_discipline() {
        let src = "pub fn is_zero(x: f64) -> bool { x == 0.0 }\n";
        assert!(findings("crates/lp/src/float.rs", src).is_empty());
        assert!(!findings("crates/lp/src/simplex.rs", src).is_empty());
    }

    #[test]
    fn allows_suppress_and_malformed_allows_report() {
        let src = "x.unwrap(); // audit:allow(no-panic-paths, invariant: built above)\ny.unwrap(); // audit:allow(no-panic-paths)\n";
        let f = findings("crates/core/src/x.rs", src);
        assert_eq!(
            f.iter().filter(|x| x.lint == Lint::NoPanicPaths).count(),
            1,
            "{f:?}"
        );
        assert_eq!(f.iter().filter(|x| x.lint == Lint::BadAllow).count(), 1);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); assert!(y == 0.0); }\n}\n";
        assert!(findings("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn nested_lock_is_flagged_sequential_locks_are_not() {
        let nested = "use std::sync::Mutex;\npub fn f(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {\n    let g1 = a.lock();\n    let g2 = b.lock();\n    0\n}\n";
        let files = crate::analyze_files(&[crate::SourceFile {
            rel: "crates/serve/src/x.rs".to_string(),
            text: nested.to_string(),
        }]);
        let f = check_workspace(&files, &[]);
        assert!(
            f.iter().any(|x| x.lint == Lint::LockDiscipline),
            "nested lock not flagged: {f:#?}"
        );

        // Dropping the first guard before the second lock is fine.
        let seq = "use std::sync::Mutex;\npub fn f(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {\n    let g1 = a.lock();\n    drop(g1);\n    let g2 = b.lock();\n    0\n}\n";
        let files = crate::analyze_files(&[crate::SourceFile {
            rel: "crates/serve/src/x.rs".to_string(),
            text: seq.to_string(),
        }]);
        let f = check_workspace(&files, &[]);
        assert!(
            !f.iter().any(|x| x.lint == Lint::LockDiscipline),
            "sequential locks falsely flagged: {f:#?}"
        );
    }

    #[test]
    fn lint_names_round_trip() {
        for &l in ALL_LINTS {
            assert_eq!(Lint::by_name(l.name()), Some(l));
        }
        assert_eq!(Lint::by_name("nope"), None);
    }
}
