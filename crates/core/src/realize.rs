//! Realizing PCF's response mechanisms (paper §4).
//!
//! The offline models decide reservations; this module turns a solved
//! allocation plus a *concrete* failure into the actual routing:
//!
//! * [`FailureState`] — which tunnels are alive and which LSs are active;
//! * [`reservation_matrix`] — the matrix `M` over the pairs of interest
//!   (Proposition 5: an invertible M-matrix);
//! * [`realize_routing`] — solves `M × U = D` (one linear system, not an
//!   LP) and expands reservations into per-arc loads (Proposition 6); its
//!   building blocks ([`live_pairs`], [`check_utilizations`],
//!   [`expand_routing`]) are public so `pcf-replay` can cache the matrix
//!   factorization across repeated failure states;
//! * [`proportional_routing`] — the distributed alternative for
//!   topologically sorted LSs (Proposition 7), identical to FFC's local
//!   rescaling;
//! * [`topological_order`] / [`greedy_topsort`] — the sortability check and
//!   the PCF-CLS-TopSort pruning heuristic (§5.2).

use crate::instance::{Instance, LogicalSequence, LsId, PairId, TunnelId};
use pcf_lp::{solve_dense, DenseMatrix, SparseLu};
use std::collections::{BTreeMap, BTreeSet};

/// Which tunnels are alive and which LSs are active under a concrete
/// failure.
#[derive(Debug, Clone)]
pub struct FailureState {
    /// Dead-link mask.
    pub dead: Vec<bool>,
    /// Per-link surviving capacity fraction in `[0, 1]` (`1.0` everywhere
    /// when no link is degraded).
    pub cap_scale: Vec<f64>,
    /// Tunnel liveness (a tunnel dies with any of its links).
    pub tunnel_alive: Vec<bool>,
    /// LS activation (condition evaluation).
    pub ls_active: Vec<bool>,
}

impl FailureState {
    /// Evaluates liveness/activation for a dead-link mask.
    ///
    /// Errors with [`RealizeError::MaskLengthMismatch`] when the mask does
    /// not cover exactly the topology's links.
    pub fn new(inst: &Instance, dead: &[bool]) -> Result<Self, RealizeError> {
        if dead.len() != inst.topo().link_count() {
            return Err(RealizeError::MaskLengthMismatch {
                expected: inst.topo().link_count(),
                got: dead.len(),
            });
        }
        let tunnel_alive = inst
            .tunnel_ids()
            .map(|l| inst.tunnel(l).links.iter().all(|e| !dead[e.index()]))
            .collect();
        let ls_active = inst
            .ls_ids()
            .map(|q| inst.ls(q).condition.holds(dead))
            .collect();
        Ok(FailureState {
            dead: dead.to_vec(),
            cap_scale: vec![1.0; dead.len()],
            tunnel_alive,
            ls_active,
        })
    }

    /// Like [`FailureState::new`], but with per-link capacity scales for
    /// partial degradation. Degraded links stay alive (tunnel liveness and
    /// LS conditions read only `dead`); the scales shrink reservations via
    /// [`degraded_reservations`] and the caps the caller checks against.
    pub fn with_cap_scale(
        inst: &Instance,
        dead: &[bool],
        cap_scale: &[f64],
    ) -> Result<Self, RealizeError> {
        if cap_scale.len() != inst.topo().link_count() {
            return Err(RealizeError::MaskLengthMismatch {
                expected: inst.topo().link_count(),
                got: cap_scale.len(),
            });
        }
        let mut state = FailureState::new(inst, dead)?;
        state.cap_scale = cap_scale.to_vec();
        Ok(state)
    }

    /// True when every link retains full capacity.
    pub fn undegraded(&self) -> bool {
        self.cap_scale.iter().all(|&s| s >= 1.0)
    }

    /// Packs tunnel liveness and LS activation into a compact bit
    /// signature. Two states with equal signatures realize identical
    /// routings for the same allocation: the realization only reads the
    /// dead-link mask through these two vectors.
    pub fn liveness_signature(&self) -> Vec<u64> {
        let bits = self.tunnel_alive.len() + self.ls_active.len();
        let mut sig = vec![0u64; bits.div_ceil(64).max(1)];
        for (i, &alive) in self
            .tunnel_alive
            .iter()
            .chain(self.ls_active.iter())
            .enumerate()
        {
            sig[i >> 6] |= (alive as u64) << (i & 63);
        }
        sig
    }

    /// Live tunnels of a pair.
    pub fn live_tunnels<'a>(
        &'a self,
        inst: &'a Instance,
        p: PairId,
    ) -> impl Iterator<Item = TunnelId> + 'a {
        inst.tunnels_of(p)
            .iter()
            .copied()
            .filter(move |l| self.tunnel_alive[l.0])
    }

    /// Active LSs of `L(p)`.
    pub fn active_lss<'a>(
        &'a self,
        inst: &'a Instance,
        p: PairId,
    ) -> impl Iterator<Item = LsId> + 'a {
        inst.lss_of(p)
            .iter()
            .copied()
            .filter(move |q| self.ls_active[q.0])
    }

    /// Active LSs of `Q(p)` (obligations).
    pub fn active_segments<'a>(
        &'a self,
        inst: &'a Instance,
        p: PairId,
    ) -> impl Iterator<Item = LsId> + 'a {
        inst.segments_of(p)
            .iter()
            .copied()
            .filter(move |q| self.ls_active[q.0])
    }
}

/// Error from routing realization.
#[derive(Debug, Clone, PartialEq)]
pub enum RealizeError {
    /// The dead-link mask does not cover exactly the topology's links.
    MaskLengthMismatch {
        /// Links in the topology.
        expected: usize,
        /// Entries in the supplied mask.
        got: usize,
    },
    /// The reservation matrix was singular (allocation does not satisfy the
    /// paper's feasibility conditions).
    SingularMatrix,
    /// Some utilization fraction left `[0, 1]` beyond tolerance — the
    /// allocation is not actually guaranteed under this scenario.
    UtilizationOutOfRange {
        /// Offending pair.
        pair: PairId,
        /// Computed fraction.
        u: f64,
    },
    /// A pair must carry traffic but has no live reservation at all,
    /// even though some tunnel or LS of it survived (a plan deficiency).
    NoReservation(PairId),
    /// A pair must carry traffic but every tunnel and LS of it is dead:
    /// the failure physically cut the pair off (beyond any plan).
    Disconnected(PairId),
}

impl std::fmt::Display for RealizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RealizeError::MaskLengthMismatch { expected, got } => {
                write!(
                    f,
                    "dead-link mask has {got} entries, topology has {expected} links"
                )
            }
            RealizeError::SingularMatrix => write!(f, "singular reservation matrix"),
            RealizeError::UtilizationOutOfRange { pair, u } => {
                write!(f, "utilization {u} out of [0,1] for pair {pair:?}")
            }
            RealizeError::NoReservation(p) => write!(f, "no live reservation for pair {p:?}"),
            RealizeError::Disconnected(p) => {
                write!(f, "pair {p:?} disconnected: no surviving tunnel or LS")
            }
        }
    }
}

impl std::error::Error for RealizeError {}

/// The pairs of interest `P` under a failure state (appendix definition):
/// pairs with served demand, closed under "is an active segment of an LS of
/// a pair in `P` with positive reservation".
///
/// `eps` filters solver noise: demands and reservations at or below it are
/// treated as zero (they would otherwise drag pairs with no meaningful
/// reservation into the linear system).
pub fn pairs_of_interest(
    inst: &Instance,
    state: &FailureState,
    served: &[f64], // z_p * d_p per pair
    b: &[f64],
    eps: f64,
) -> Vec<PairId> {
    let n = inst.num_pairs();
    let mut interest = vec![false; n];
    let mut queue: Vec<PairId> = Vec::new();
    for p in inst.pair_ids() {
        if served[p.0] > eps {
            interest[p.0] = true;
            queue.push(p);
        }
    }
    while let Some(p) = queue.pop() {
        // Every active LS q of this pair with b_q > eps makes its segments
        // interesting.
        for q in state.active_lss(inst, p) {
            if b[q.0] > eps {
                for (u, v) in inst.ls(q).segments() {
                    // audit:allow(no-panic-paths, Instance construction interns a pair for every LS segment) audit:allow(panic-reachability, same invariant: segment pairs are interned at construction)
                    let sp = inst.pair_id(u, v).expect("segment pairs are interned");
                    if !interest[sp.0] {
                        interest[sp.0] = true;
                        queue.push(sp);
                    }
                }
            }
        }
    }
    inst.pair_ids().filter(|p| interest[p.0]).collect()
}

/// Builds the reservation matrix `M` (Fig. 7 of the paper) over the given
/// pairs of interest: diagonal = live reservation of the pair, off-diagonal
/// `(ij, mn) = -Σ b_q` over active LSs of `(m,n)` that use `(i,j)` as a
/// segment.
pub fn reservation_matrix(
    inst: &Instance,
    state: &FailureState,
    a: &[f64],
    b: &[f64],
    pairs: &[PairId],
) -> DenseMatrix {
    let index: BTreeMap<PairId, usize> = pairs.iter().enumerate().map(|(i, &p)| (p, i)).collect();
    let mut m = DenseMatrix::zeros(pairs.len());
    for (i, &p) in pairs.iter().enumerate() {
        let mut diag = 0.0;
        for l in state.live_tunnels(inst, p) {
            diag += a[l.0];
        }
        for q in state.active_lss(inst, p) {
            diag += b[q.0];
        }
        m.set(i, i, diag);
        for q in state.active_segments(inst, p) {
            if b[q.0] > 0.0 {
                let owner = inst.ls_pair(q);
                if let Some(&j) = index.get(&owner) {
                    if j != i {
                        m.add(i, j, -b[q.0]);
                    }
                }
            }
        }
    }
    m
}

/// A realized routing for one concrete failure scenario.
#[derive(Debug, Clone)]
pub struct Routing {
    /// The pairs of interest, in matrix order.
    pub pairs: Vec<PairId>,
    /// Utilization fraction `U*(i,j) ∈ [0,1]` per pair (matrix order).
    pub u: Vec<f64>,
    /// Traffic carried by each tunnel (instance tunnel order; zero for dead
    /// or uninvolved tunnels).
    pub tunnel_flow: Vec<f64>,
    /// Load per directed arc.
    pub arc_loads: Vec<f64>,
}

impl Routing {
    /// Maximum arc utilization (load / capacity).
    pub fn max_utilization(&self, inst: &Instance) -> f64 {
        let topo = inst.topo();
        topo.arcs()
            .map(|arc| self.arc_loads[arc.index()] / topo.capacity(arc.link()))
            .fold(0.0, f64::max)
    }
}

/// The absolute feasibility tolerance the realization uses: the caller's
/// relative `tol` scaled by total served demand.
pub fn absolute_tolerance(served: &[f64], tol: f64) -> f64 {
    tol * (1.0 + served.iter().sum::<f64>())
}

/// The pairs the linear system is actually solved over: the
/// [`pairs_of_interest`] that hold a live reservation.
///
/// A pair whose reservation AND whole load (demand plus worst-case
/// obligations) are both at noise level is dropped; a pair with meaningful
/// load and no reservation is a genuine violation —
/// [`RealizeError::Disconnected`] when every tunnel and LS of the pair is
/// dead (the failure cut it off), [`RealizeError::NoReservation`] when
/// something survived but carries no reservation (a plan deficiency).
/// Exposed so the replay engine can rebuild the exact system
/// [`realize_routing`] would solve and cache its factorization.
pub fn live_pairs(
    inst: &Instance,
    state: &FailureState,
    a: &[f64],
    b: &[f64],
    served: &[f64],
    tol_abs: f64,
) -> Result<Vec<PairId>, RealizeError> {
    let pairs = pairs_of_interest(inst, state, served, b, tol_abs);
    let mut keep = Vec::with_capacity(pairs.len());
    for &p in &pairs {
        let live: f64 = state.live_tunnels(inst, p).map(|l| a[l.0]).sum::<f64>()
            + state.active_lss(inst, p).map(|q| b[q.0]).sum::<f64>();
        if live <= tol_abs {
            let load_bound: f64 =
                served[p.0] + state.active_segments(inst, p).map(|q| b[q.0]).sum::<f64>();
            if load_bound > 10.0 * tol_abs {
                return Err(no_reservation_kind(inst, state, p));
            }
        } else {
            keep.push(p);
        }
    }
    Ok(keep)
}

/// Classifies a zero-reservation pair: physically cut off
/// ([`RealizeError::Disconnected`]) vs. alive-but-unreserved
/// ([`RealizeError::NoReservation`]).
fn no_reservation_kind(inst: &Instance, state: &FailureState, p: PairId) -> RealizeError {
    let has_live_structure =
        state.live_tunnels(inst, p).next().is_some() || state.active_lss(inst, p).next().is_some();
    if has_live_structure {
        RealizeError::NoReservation(p)
    } else {
        RealizeError::Disconnected(p)
    }
}

/// Expands per-pair utilizations into tunnel flows and arc loads
/// (Proposition 6's load accounting). Public so the replay engine can turn
/// cache-served solutions into full routings.
pub fn expand_routing(
    inst: &Instance,
    state: &FailureState,
    a: &[f64],
    pairs: &[PairId],
    u: &[f64],
) -> Routing {
    let topo = inst.topo();
    let mut tunnel_flow = vec![0.0; inst.num_tunnels()];
    let mut arc_loads = vec![0.0; topo.arc_count()];
    for (i, &p) in pairs.iter().enumerate() {
        if u[i] <= 0.0 {
            continue;
        }
        for l in state.live_tunnels(inst, p) {
            let flow = u[i] * a[l.0];
            if flow <= 0.0 {
                continue;
            }
            tunnel_flow[l.0] += flow;
            let path = inst.tunnel(l);
            for (hop, &link) in path.links.iter().enumerate() {
                let arc = topo.arc_from(link, path.nodes[hop]);
                arc_loads[arc.index()] += flow;
            }
        }
    }
    Routing {
        pairs: pairs.to_vec(),
        u: u.to_vec(),
        tunnel_flow,
        arc_loads,
    }
}

/// Realizes the routing for a concrete failure by solving the linear system
/// `M × U = D` (paper §4.1, Propositions 5–6).
///
/// `served[p]` is the traffic the pair must deliver (`z_p · d_p`). The
/// tolerance `tol` accepts small numerical overshoot of `U` beyond `[0,1]`.
pub fn realize_routing(
    inst: &Instance,
    state: &FailureState,
    a: &[f64],
    b: &[f64],
    served: &[f64],
    tol: f64,
) -> Result<Routing, RealizeError> {
    realize_routing_with(inst, state, a, b, served, tol, RealizeKernel::Dense)
}

/// Rescales tunnel reservations for partial capacity degradation:
/// `ã_l = a_l · Π_{e∈τ_l} cap_scale_e`.
///
/// Every link's realized tunnel load then shrinks at least as fast as its
/// capacity (the load on `e` scales by `Π ≤ cap_scale_e`), so a plan that is
/// congestion-free at nominal capacities stays congestion-free at the
/// degraded capacities when realized with the rescaled reservations. LS
/// reservations need no scaling: they ride on segment pairs whose own
/// tunnel terms already carry the degradation.
pub fn degraded_reservations(inst: &Instance, state: &FailureState, a: &[f64]) -> Vec<f64> {
    let mut out = a.to_vec();
    if state.undegraded() {
        return out;
    }
    for l in inst.tunnel_ids() {
        let scale: f64 = inst
            .tunnel(l)
            .links
            .iter()
            .map(|e| state.cap_scale[e.index()].clamp(0.0, 1.0))
            .product();
        out[l.0] *= scale;
    }
    out
}

/// Which linear-algebra kernel [`realize_routing_with`] uses for `M × U = D`.
///
/// The sparse kernel follows the dense factorization's pivot order
/// bit-for-bit (`SparseLu::factor_dense_compat`), so the two kernels return
/// byte-identical utilizations — and therefore byte-identical
/// `ValidationReport` digests — on every realizable scenario. The property
/// tests in `validate` hold both paths to that.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum RealizeKernel {
    /// Dense LU (`pcf_lp::solve_dense`), the original path.
    #[default]
    Dense,
    /// Sparse LU in dense-compatible pivot order.
    Sparse,
}

/// [`realize_routing`] with an explicit linear-algebra kernel.
pub fn realize_routing_with(
    inst: &Instance,
    state: &FailureState,
    a: &[f64],
    b: &[f64],
    served: &[f64],
    tol: f64,
    kernel: RealizeKernel,
) -> Result<Routing, RealizeError> {
    let tol_abs = absolute_tolerance(served, tol);
    let pairs = live_pairs(inst, state, a, b, served, tol_abs)?;
    if pairs.is_empty() {
        return Ok(Routing {
            pairs,
            u: Vec::new(),
            tunnel_flow: vec![0.0; inst.num_tunnels()],
            arc_loads: vec![0.0; inst.topo().arc_count()],
        });
    }
    let m = reservation_matrix(inst, state, a, b, &pairs);
    let d: Vec<f64> = pairs.iter().map(|&p| served[p.0]).collect();
    let u = match kernel {
        RealizeKernel::Dense => solve_dense(&m, &[d])
            .map_err(|_| RealizeError::SingularMatrix)?
            .into_iter()
            .next()
            .ok_or(RealizeError::SingularMatrix)?,
        RealizeKernel::Sparse => SparseLu::factor_dense_compat(&m)
            .map_err(|_| RealizeError::SingularMatrix)?
            .solve(&d),
    };
    let u = check_utilizations(&pairs, u, tol)?;
    Ok(expand_routing(inst, state, a, &pairs, &u))
}

/// Range-checks and clamps the solved utilization fractions (`U ∈ [0,1]`
/// within `tol`). Shared by the from-scratch and cached realization paths
/// so both reject exactly the same solutions.
pub fn check_utilizations(
    pairs: &[PairId],
    mut u: Vec<f64>,
    tol: f64,
) -> Result<Vec<f64>, RealizeError> {
    for (i, &p) in pairs.iter().enumerate() {
        if u[i] < -tol || u[i] > 1.0 + tol {
            return Err(RealizeError::UtilizationOutOfRange { pair: p, u: u[i] });
        }
        u[i] = u[i].clamp(0.0, 1.0);
    }
    Ok(u)
}

/// A strict partial order check: pairs can be topologically sorted w.r.t.
/// "`(i,j) > (i',j')` iff `(i',j')` is a segment of some LS in `L(i,j)` with
/// positive reservation" (paper §4.2). Conditions are ignored (every LS is
/// assumed activatable), which is conservative.
///
/// Returns the pair order (greatest first) or `None` when the relation is
/// cyclic.
pub fn topological_order(inst: &Instance, b: &[f64]) -> Option<Vec<PairId>> {
    let n = inst.num_pairs();
    // Edge (p -> segment pair) for each LS of p.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    for q in inst.ls_ids() {
        if b[q.0] <= 0.0 {
            continue;
        }
        let owner = inst.ls_pair(q);
        for (u, v) in inst.ls(q).segments() {
            // audit:allow(no-panic-paths, Instance construction interns a pair for every LS segment) audit:allow(panic-reachability, same invariant: segment pairs are interned at construction)
            let sp = inst.pair_id(u, v).expect("segment pairs are interned");
            if sp != owner {
                adj[owner.0].push(sp.0);
                indeg[sp.0] += 1;
            } else {
                return None; // self-loop: a pair serving itself
            }
        }
    }
    let mut order = Vec::with_capacity(n);
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    // Deterministic order.
    queue.sort_unstable();
    while let Some(i) = queue.pop() {
        order.push(PairId(i));
        for &j in &adj[i] {
            indeg[j] -= 1;
            if indeg[j] == 0 {
                queue.push(j);
            }
        }
    }
    if order.len() == n {
        Some(order)
    } else {
        None
    }
}

/// PCF-CLS-TopSort (§5.2): greedily keeps a prefix-respecting subset of LSs
/// that admits a topological order, pruning any LS that would create a
/// cycle. Returns the kept LSs and the number pruned.
pub fn greedy_topsort(lss: &[LogicalSequence]) -> (Vec<LogicalSequence>, usize) {
    type Pair = (u32, u32);
    // reach[x] contains pairs reachable from x in the kept relation.
    let mut adj: BTreeMap<Pair, Vec<Pair>> = BTreeMap::new();
    let reaches = |adj: &BTreeMap<Pair, Vec<Pair>>, from: Pair, to: Pair| -> bool {
        if from == to {
            return true;
        }
        let mut stack = vec![from];
        let mut seen = BTreeSet::new();
        while let Some(x) = stack.pop() {
            if x == to {
                return true;
            }
            if !seen.insert(x) {
                continue;
            }
            if let Some(next) = adj.get(&x) {
                stack.extend(next.iter().copied());
            }
        }
        false
    };
    let mut kept = Vec::new();
    let mut pruned = 0usize;
    for ls in lss {
        let owner: Pair = (ls.source().0, ls.dest().0);
        let segs: Vec<Pair> = ls.segments().map(|(u, v)| (u.0, v.0)).collect();
        // Adding edges owner -> seg creates a cycle iff some seg already
        // reaches owner (or equals it).
        let cycle = segs.iter().any(|&sp| reaches(&adj, sp, owner));
        if cycle {
            pruned += 1;
            continue;
        }
        for &sp in &segs {
            adj.entry(owner).or_default().push(sp);
        }
        kept.push(ls.clone());
    }
    (kept, pruned)
}

/// Local proportional routing (paper §4.2, Proposition 7): traffic of each
/// pair is split over its live tunnels and active LSs in proportion to the
/// reservations; LS traffic recursively becomes segment obligations.
///
/// Requires the LSs to be topologically sortable; returns the same
/// [`Routing`] as [`realize_routing`] (Proposition 7 states the two agree).
pub fn proportional_routing(
    inst: &Instance,
    state: &FailureState,
    a: &[f64],
    b: &[f64],
    served: &[f64],
    tol: f64,
) -> Result<Routing, RealizeError> {
    let tol_abs = absolute_tolerance(served, tol);
    let order = topological_order(inst, b).ok_or(RealizeError::SingularMatrix)?;
    let pairs = pairs_of_interest(inst, state, served, b, tol_abs);
    let in_p = {
        let mut v = vec![false; inst.num_pairs()];
        for &p in &pairs {
            v[p.0] = true;
        }
        v
    };
    let mut u_all = vec![0.0f64; inst.num_pairs()];
    // Obligation accumulated on each pair from LSs processed so far.
    let mut obligation = vec![0.0f64; inst.num_pairs()];
    for &p in &order {
        if !in_p[p.0] {
            continue;
        }
        let demand_here = served[p.0] + obligation[p.0];
        if demand_here <= tol_abs {
            continue;
        }
        let denom: f64 = state.live_tunnels(inst, p).map(|l| a[l.0]).sum::<f64>()
            + state.active_lss(inst, p).map(|q| b[q.0]).sum::<f64>();
        if denom <= tol_abs {
            return Err(no_reservation_kind(inst, state, p));
        }
        let u = demand_here / denom;
        if u > 1.0 + tol {
            return Err(RealizeError::UtilizationOutOfRange { pair: p, u });
        }
        let u = u.min(1.0);
        u_all[p.0] = u;
        // Traffic sent down each active LS becomes segment obligations.
        for q in state.active_lss(inst, p) {
            let flow = u * b[q.0];
            if flow > 0.0 {
                for (x, y) in inst.ls(q).segments() {
                    // audit:allow(no-panic-paths, Instance construction interns a pair for every LS segment) audit:allow(panic-reachability, same invariant: segment pairs are interned at construction)
                    let sp = inst.pair_id(x, y).expect("segment pairs are interned");
                    obligation[sp.0] += flow;
                }
            }
        }
    }
    let u: Vec<f64> = pairs.iter().map(|&p| u_all[p.0]).collect();
    Ok(expand_routing(inst, state, a, &pairs, &u))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::{Condition, FailureModel};
    use crate::instance::InstanceBuilder;
    use crate::robust::{solve_robust, AdversaryKind, RobustOptions};
    use pcf_topology::{NodeId, Topology};

    fn diamond() -> Topology {
        let mut t = Topology::new("diamond");
        let s = t.add_node("s");
        let a = t.add_node("a");
        let b = t.add_node("b");
        let d = t.add_node("t");
        t.add_link(s, a, 1.0);
        t.add_link(a, d, 1.0);
        t.add_link(s, b, 1.0);
        t.add_link(b, d, 1.0);
        t
    }

    fn served(inst: &Instance, sol: &crate::robust::RobustSolution) -> Vec<f64> {
        inst.pair_ids()
            .map(|p| sol.z[p.0] * inst.demand(p))
            .collect()
    }

    #[test]
    fn tunnel_only_routing_no_failure() {
        let topo = diamond();
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .tunnels_per_pair(2)
            .build();
        let sol = solve_robust(
            &inst,
            &FailureModel::links(1),
            AdversaryKind::LinkBased,
            &RobustOptions::default(),
        );
        let dead = vec![false; 4];
        let state = FailureState::new(&inst, &dead).unwrap();
        let routing =
            realize_routing(&inst, &state, &sol.a, &sol.b, &served(&inst, &sol), 1e-7).unwrap();
        // Demand scale 1, reservations total >= 1; all u in [0,1]; no arc
        // overloaded.
        assert!(routing.max_utilization(&inst) <= 1.0 + 1e-7);
        let delivered: f64 = routing.tunnel_flow.iter().sum();
        assert!((delivered - 1.0).abs() < 1e-6, "delivered {delivered}");
    }

    #[test]
    fn tunnel_only_routing_under_failure_rescales() {
        let topo = diamond();
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .tunnels_per_pair(2)
            .build();
        let sol = solve_robust(
            &inst,
            &FailureModel::links(1),
            AdversaryKind::LinkBased,
            &RobustOptions::default(),
        );
        let mut dead = vec![false; 4];
        dead[0] = true; // kill one path
        let state = FailureState::new(&inst, &dead).unwrap();
        let routing =
            realize_routing(&inst, &state, &sol.a, &sol.b, &served(&inst, &sol), 1e-7).unwrap();
        assert!(routing.max_utilization(&inst) <= 1.0 + 1e-7);
        let delivered: f64 = routing.tunnel_flow.iter().sum();
        assert!((delivered - sol.objective).abs() < 1e-6);
        // The dead tunnel carries nothing.
        for l in inst.tunnel_ids() {
            if !state.tunnel_alive[l.0] {
                assert_eq!(routing.tunnel_flow[l.0], 0.0);
            }
        }
    }

    #[test]
    fn ls_routing_cascades_obligations() {
        // Fig. 4-like chain with an LS; verify both realizations agree.
        let inst = crate::figures::fig4_ls_instance(3, 2, 3);
        let fm = FailureModel::links(1);
        let sol = solve_robust(
            &inst,
            &fm,
            AdversaryKind::LinkBased,
            &RobustOptions::default(),
        );
        assert!(sol.objective > 0.5);
        let sv = served(&inst, &sol);
        for mask in fm.enumerate_scenarios(inst.topo()) {
            let state = FailureState::new(&inst, &mask).unwrap();
            let lin = realize_routing(&inst, &state, &sol.a, &sol.b, &sv, 1e-6).unwrap();
            let prop = proportional_routing(&inst, &state, &sol.a, &sol.b, &sv, 1e-6).unwrap();
            assert!(lin.max_utilization(&inst) <= 1.0 + 1e-6);
            // Proposition 7: the two mechanisms produce the same split.
            assert_eq!(lin.pairs, prop.pairs);
            for (ul, up) in lin.u.iter().zip(&prop.u) {
                assert!((ul - up).abs() < 1e-8, "lin {ul} vs prop {up}");
            }
        }
    }

    #[test]
    fn topological_order_detects_cycles() {
        let topo = diamond();
        // Two LSs referencing each other's endpoint pair: (s,t) via a and
        // (s,a) via t -> (s,t) > (s,a) and (s,a) > (s,t)? Build LS1 from s
        // to t through a; LS2 from s to a through t.
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .add_ls(LogicalSequence::always(vec![
                NodeId(0),
                NodeId(1),
                NodeId(3),
            ]))
            .add_ls(LogicalSequence::always(vec![
                NodeId(0),
                NodeId(3),
                NodeId(1),
            ]))
            .build();
        // LS1: (s,t) -> (s,a), (a,t). LS2: (s,a) -> (s,t), (t,a). Cycle
        // (s,t) -> (s,a) -> (s,t).
        assert!(topological_order(&inst, &[1.0, 1.0]).is_none());
        // With only the first LS (b2 = 0) the order exists.
        assert!(topological_order(&inst, &[1.0, 0.0]).is_some());
    }

    #[test]
    fn greedy_topsort_prunes_cycle_makers() {
        let ls1 = LogicalSequence::always(vec![NodeId(0), NodeId(1), NodeId(3)]);
        let ls2 = LogicalSequence::always(vec![NodeId(0), NodeId(3), NodeId(1)]);
        let (kept, pruned) = greedy_topsort(&[ls1.clone(), ls2]);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0], ls1);
        assert_eq!(pruned, 1);
    }

    #[test]
    fn greedy_topsort_keeps_acyclic_sets() {
        let ls1 = LogicalSequence::always(vec![NodeId(0), NodeId(1), NodeId(3)]);
        let ls2 = LogicalSequence::always(vec![NodeId(1), NodeId(2), NodeId(3)]);
        let (kept, pruned) = greedy_topsort(&[ls1, ls2]);
        assert_eq!(kept.len(), 2);
        assert_eq!(pruned, 0);
    }

    #[test]
    fn conditional_ls_inactive_when_condition_false() {
        let topo = diamond();
        let ls = LogicalSequence {
            hops: vec![NodeId(0), NodeId(2), NodeId(3)],
            condition: Condition::LinkDead(pcf_topology::LinkId(0)),
        };
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .add_ls(ls)
            .build();
        let no_fail = FailureState::new(&inst, &[false; 4]).unwrap();
        assert!(!no_fail.ls_active[0]);
        let mut dead = vec![false; 4];
        dead[0] = true;
        let failed = FailureState::new(&inst, &dead).unwrap();
        assert!(failed.ls_active[0]);
    }

    #[test]
    fn mask_length_mismatch_is_a_structured_error() {
        let topo = diamond();
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .tunnels_per_pair(2)
            .build();
        // 3 entries for a 4-link topology.
        let err = FailureState::new(&inst, &[false; 3]).unwrap_err();
        assert_eq!(
            err,
            RealizeError::MaskLengthMismatch {
                expected: 4,
                got: 3
            }
        );
        assert!(err.to_string().contains("3 entries"));
        assert!(FailureState::new(&inst, &[false; 4]).is_ok());
    }

    #[test]
    fn liveness_signature_distinguishes_states() {
        let topo = diamond();
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .tunnels_per_pair(2)
            .build();
        let alive = FailureState::new(&inst, &[false; 4]).unwrap();
        let mut dead = vec![false; 4];
        dead[0] = true;
        let failed = FailureState::new(&inst, &dead).unwrap();
        assert_ne!(alive.liveness_signature(), failed.liveness_signature());
        // Equal states, equal signatures.
        assert_eq!(
            failed.liveness_signature(),
            FailureState::new(&inst, &dead)
                .unwrap()
                .liveness_signature()
        );
    }

    #[test]
    fn routing_reports_missing_reservation() {
        let topo = diamond();
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .tunnels_per_pair(2)
            .build();
        // No reservations at all but positive served demand.
        let state = FailureState::new(&inst, &[false; 4]).unwrap();
        let a = vec![0.0; inst.num_tunnels()];
        let err = realize_routing(&inst, &state, &a, &[], &[1.0], 1e-7).unwrap_err();
        assert!(matches!(err, RealizeError::NoReservation(_)));
    }

    #[test]
    fn routing_reports_disconnection_distinctly() {
        let topo = diamond();
        let inst = InstanceBuilder::with_demands(&topo, vec![(NodeId(0), NodeId(3), 1.0)])
            .tunnels_per_pair(2)
            .build();
        // Cut both exits of s: every tunnel of (s,t) is dead, so the pair
        // is physically disconnected — a different failure class than a
        // live-but-unreserved pair.
        let mut dead = vec![false; 4];
        dead[0] = true;
        dead[2] = true;
        let state = FailureState::new(&inst, &dead).unwrap();
        let a = vec![1.0; inst.num_tunnels()];
        let err = realize_routing(&inst, &state, &a, &[], &[1.0], 1e-7).unwrap_err();
        let p = inst.pair_id(NodeId(0), NodeId(3)).unwrap();
        assert_eq!(err, RealizeError::Disconnected(p));
        assert!(err.to_string().contains("disconnected"));
        // The proportional path classifies identically.
        let perr = proportional_routing(&inst, &state, &a, &[], &[1.0], 1e-7).unwrap_err();
        assert_eq!(perr, RealizeError::Disconnected(p));
    }
}

#[cfg(test)]
mod fig6_tests {
    use super::*;
    use crate::figures::fig6_instance;
    use crate::instance::TunnelId;

    /// The paper's Fig. 7 reservation matrix, reproduced entry by entry,
    /// and Fig. 6(b)'s realized tunnel fractions for destination B.
    #[test]
    fn fig7_matrix_and_fig6b_routing() {
        let (inst, ids) = fig6_instance();
        let no_fail = vec![false; inst.topo().link_count()];
        let state = FailureState::new(&inst, &no_fail).unwrap();
        let a = vec![1.0; inst.num_tunnels()];
        let b = vec![1.0; inst.num_lss()];
        // Pairs of interest: AB (demand) plus the LS segments AC, CD, AD, DB.
        let served: Vec<f64> = inst.pair_ids().map(|p| inst.demand(p)).collect();
        let pairs = pairs_of_interest(&inst, &state, &served, &b, 1e-9);
        assert_eq!(pairs.len(), 5);
        let m = reservation_matrix(&inst, &state, &a, &b, &pairs);
        let idx = |s, t| {
            let p = inst.pair_id(s, t).unwrap();
            pairs.iter().position(|&q| q == p).unwrap()
        };
        let (na, nb, nc, nd) = (ids.a, ids.b, ids.c, ids.d);
        // Fig. 7 diagonal: a_l1 .. a_l3 + b_q1 .. a_l5 + b_q2.
        assert_eq!(m.get(idx(na, nc), idx(na, nc)), 1.0);
        assert_eq!(m.get(idx(nc, nd), idx(nc, nd)), 1.0);
        assert_eq!(m.get(idx(na, nd), idx(na, nd)), 2.0); // a_l3 + b_q1
        assert_eq!(m.get(idx(nd, nb), idx(nd, nb)), 1.0);
        assert_eq!(m.get(idx(na, nb), idx(na, nb)), 2.0); // a_l5 + b_q2
                                                          // Fig. 7 off-diagonals: −b_q1 in rows AC, CD (column AD); −b_q2 in
                                                          // rows AD, DB (column AB).
        assert_eq!(m.get(idx(na, nc), idx(na, nd)), -1.0);
        assert_eq!(m.get(idx(nc, nd), idx(na, nd)), -1.0);
        assert_eq!(m.get(idx(na, nd), idx(na, nb)), -1.0);
        assert_eq!(m.get(idx(nd, nb), idx(na, nb)), -1.0);
        // Everything else zero.
        assert_eq!(m.get(idx(na, nc), idx(na, nb)), 0.0);
        assert_eq!(m.get(idx(na, nb), idx(na, nd)), 0.0);

        // Fig. 6(b): the realized fractions to destination B.
        let routing = realize_routing(&inst, &state, &a, &b, &served, 1e-9).unwrap();
        let flow = |l: usize| routing.tunnel_flow[TunnelId(l).0];
        assert!((flow(4) - 0.5).abs() < 1e-12, "l5 carries 1/2");
        assert!((flow(3) - 0.5).abs() < 1e-12, "l4 carries 1/2");
        assert!((flow(2) - 0.25).abs() < 1e-12, "l3 carries 1/4");
        assert!((flow(0) - 0.25).abs() < 1e-12, "l1 carries 1/4");
        assert!((flow(1) - 0.25).abs() < 1e-12, "l2 carries 1/4");
        // Topologically sorted ((A,B) > (A,D) > segments): the distributed
        // realization agrees (Prop. 7).
        let prop = proportional_routing(&inst, &state, &a, &b, &served, 1e-9).unwrap();
        for (x, y) in routing.u.iter().zip(&prop.u) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    /// §4.2's ordering claim on the same example: (A,B) > (A,D) because q2
    /// uses segment (A,D) — and the topological order reflects it.
    #[test]
    fn fig6_topological_order() {
        let (inst, ids) = fig6_instance();
        let order = topological_order(&inst, &[1.0, 1.0]).expect("sortable");
        let pos = |s, t| {
            let p = inst.pair_id(s, t).unwrap();
            order.iter().position(|&q| q == p).unwrap()
        };
        assert!(pos(ids.a, ids.b) < pos(ids.a, ids.d), "AB before AD");
        assert!(pos(ids.a, ids.d) < pos(ids.a, ids.c), "AD before AC");
        assert!(pos(ids.a, ids.d) < pos(ids.c, ids.d), "AD before CD");
    }
}
