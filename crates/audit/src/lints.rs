//! The lint catalog and the per-line matchers.
//!
//! Each lint is a token property checked over the masked lines of a
//! [`ScannedFile`](crate::scanner::ScannedFile), scoped to a set of
//! workspace paths. Test regions (`#[cfg(test)]` / `#[test]` items),
//! `tests/`, `benches/`, and `examples/` are outside every scope: the
//! guarantees matter on the paths that execute during failures, not in
//! the harnesses that exercise them.

use crate::scanner::ScannedFile;

/// The library crates whose `src/` trees carry PCF's runtime guarantees.
/// `pcf-cli` and `pcf-bench` are user-facing front ends and are exempt
/// from the panic/float lints; the audit crate holds itself to them.
const LIB_SRC: &[&str] = &[
    "crates/rng/src/",
    "crates/topology/src/",
    "crates/paths/src/",
    "crates/traffic/src/",
    "crates/lp/src/",
    "crates/core/src/",
    "crates/replay/src/",
    "crates/serve/src/",
    "crates/audit/src/",
];

/// Paths whose iteration order leaks into solver output, validation
/// verdicts, or serialized reports.
const DETERMINISTIC_SRC: &[&str] = &[
    "crates/lp/src/",
    "crates/core/src/validate.rs",
    "crates/core/src/realize.rs",
    "crates/core/src/degrade.rs",
    "crates/replay/src/engine.rs",
    "crates/replay/src/report.rs",
    "crates/replay/src/inject.rs",
    "crates/replay/src/shared.rs",
    "crates/serve/src/",
];

/// The module allowed to spell raw float comparisons: everything else
/// goes through its helpers or `total_cmp`.
const EPSILON_MODULE: &str = "crates/lp/src/float.rs";

/// One rule the audit pass enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lint {
    /// No `unwrap()`, `expect(...)`, `panic!`, `unreachable!`, `todo!`,
    /// or `unimplemented!` in library code: failure-time paths must
    /// return structured errors (Props. 5/6 make realization total).
    NoPanicPaths,
    /// No `HashMap`/`HashSet` where iteration order can reach solver
    /// output or reports: use `BTreeMap`/`BTreeSet` or explicit sorts.
    DeterministicIteration,
    /// No `partial_cmp` and no `==`/`!=` against float literals outside
    /// the approved epsilon module: use `total_cmp` or the helpers so a
    /// NaN can never panic a pivot or flip a sort.
    FloatDiscipline,
    /// No bare `std::thread::spawn`: the workspace standardized on
    /// `thread::scope`, which cannot leak a joinable handle.
    ScopedThreadsOnly,
    /// No `Instant`/`SystemTime` outside `pcf-bench`/`pcf-cli`:
    /// wall-clock reads inside the solver would break replay-cache
    /// bit-identity.
    NoWallclockInSolver,
    /// A malformed `audit:allow` directive (missing reason, bad syntax).
    /// Never baselinable: a broken escape must not waive anything.
    BadAllow,
}

/// All lints, in reporting order.
pub const ALL_LINTS: &[Lint] = &[
    Lint::NoPanicPaths,
    Lint::DeterministicIteration,
    Lint::FloatDiscipline,
    Lint::ScopedThreadsOnly,
    Lint::NoWallclockInSolver,
    Lint::BadAllow,
];

impl Lint {
    /// The lint's stable name: used in `audit:allow(...)`, the baseline
    /// file, and reports.
    pub fn name(self) -> &'static str {
        match self {
            Lint::NoPanicPaths => "no-panic-paths",
            Lint::DeterministicIteration => "deterministic-iteration",
            Lint::FloatDiscipline => "float-discipline",
            Lint::ScopedThreadsOnly => "scoped-threads-only",
            Lint::NoWallclockInSolver => "no-wallclock-in-solver",
            Lint::BadAllow => "bad-allow",
        }
    }

    /// Looks a lint up by its stable name.
    pub fn by_name(name: &str) -> Option<Lint> {
        ALL_LINTS.iter().copied().find(|l| l.name() == name)
    }

    /// One-line description for `pcf-audit --list`.
    pub fn describe(self) -> &'static str {
        match self {
            Lint::NoPanicPaths => {
                "forbid unwrap()/expect()/panic!/unreachable!/todo!/unimplemented! in library code"
            }
            Lint::DeterministicIteration => {
                "forbid HashMap/HashSet on solver, validation, and report output paths"
            }
            Lint::FloatDiscipline => {
                "forbid partial_cmp and ==/!= against float literals outside the epsilon module"
            }
            Lint::ScopedThreadsOnly => "forbid bare std::thread::spawn (use thread::scope)",
            Lint::NoWallclockInSolver => {
                "forbid Instant/SystemTime outside pcf-bench/pcf-cli (replay bit-identity)"
            }
            Lint::BadAllow => "malformed audit:allow directives (never baselinable)",
        }
    }

    /// Whether the lint applies to the file at workspace-relative `rel`.
    pub fn in_scope(self, rel: &str) -> bool {
        let under = |prefixes: &[&str]| prefixes.iter().any(|p| rel.starts_with(p));
        match self {
            Lint::NoPanicPaths => under(LIB_SRC),
            Lint::DeterministicIteration => under(DETERMINISTIC_SRC),
            Lint::FloatDiscipline => under(LIB_SRC) && rel != EPSILON_MODULE,
            // Scoped threads are workspace policy, front ends included.
            Lint::ScopedThreadsOnly => rel.starts_with("crates/") && rel.contains("/src/"),
            Lint::NoWallclockInSolver => under(LIB_SRC),
            Lint::BadAllow => rel.starts_with("crates/") || rel.starts_with("tests/"),
        }
    }
}

/// One violation: a lint, a file, a line, and the offending excerpt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub lint: Lint,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// A short description of what matched.
    pub what: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.lint.name(),
            self.what
        )
    }
}

/// Runs every in-scope lint over one scanned file.
pub fn check_file(rel: &str, scanned: &ScannedFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    for &lint in ALL_LINTS {
        if !lint.in_scope(rel) {
            continue;
        }
        if lint == Lint::BadAllow {
            for bad in &scanned.bad_allows {
                findings.push(Finding {
                    lint,
                    file: rel.to_string(),
                    line: bad.line,
                    what: bad.problem.clone(),
                });
            }
            continue;
        }
        for (idx, masked) in scanned.masked_lines.iter().enumerate() {
            let line = idx + 1;
            if scanned.line_in_test(line) {
                continue;
            }
            for what in match_line(lint, masked) {
                if scanned.allowed(lint.name(), line) {
                    continue;
                }
                findings.push(Finding {
                    lint,
                    file: rel.to_string(),
                    line,
                    what,
                });
            }
        }
    }
    findings.sort_by(|a, b| (a.line, a.lint.name()).cmp(&(b.line, b.lint.name())));
    findings
}

/// Matches one lint against one masked line; returns one entry per hit.
fn match_line(lint: Lint, masked: &str) -> Vec<String> {
    match lint {
        Lint::NoPanicPaths => {
            let mut hits = Vec::new();
            for m in ["panic", "unreachable", "todo", "unimplemented"] {
                for pos in word_positions(masked, m) {
                    if next_nonspace(masked, pos + m.len()) == Some('!') {
                        hits.push(format!("`{m}!` in library code"));
                    }
                }
            }
            for pos in word_positions(masked, "unwrap") {
                if prev_nonspace(masked, pos) == Some('.')
                    && follows_call(masked, pos + "unwrap".len())
                {
                    hits.push("`.unwrap()` in library code".to_string());
                }
            }
            for pos in word_positions(masked, "expect") {
                if prev_nonspace(masked, pos) == Some('.')
                    && next_nonspace(masked, pos + "expect".len()) == Some('(')
                {
                    hits.push("`.expect(..)` in library code".to_string());
                }
            }
            hits
        }
        Lint::DeterministicIteration => ["HashMap", "HashSet"]
            .iter()
            .flat_map(|w| {
                word_positions(masked, w).into_iter().map(move |_| {
                    format!(
                        "`{w}` on a determinism-sensitive path (use BTree{})",
                        &w[4..]
                    )
                })
            })
            .collect(),
        Lint::FloatDiscipline => {
            // Defining the trait method (`fn partial_cmp`) in a canonical
            // `PartialOrd` impl that delegates to `cmp` is not a float
            // comparison; only *calls* are flagged.
            let mut hits: Vec<String> = word_positions(masked, "partial_cmp")
                .into_iter()
                .filter(|&pos| !masked[..pos].trim_end().ends_with("fn"))
                .map(|_| "`partial_cmp` outside the epsilon module (use total_cmp)".to_string())
                .collect();
            for hit in float_eq_hits(masked) {
                hits.push(hit);
            }
            hits
        }
        Lint::ScopedThreadsOnly => {
            let mut hits = Vec::new();
            let mut rest = masked;
            while let Some(pos) = rest.find("thread::spawn") {
                hits.push("bare `thread::spawn` (use thread::scope)".to_string());
                rest = &rest[pos + "thread::spawn".len()..];
            }
            hits
        }
        Lint::NoWallclockInSolver => ["Instant", "SystemTime"]
            .iter()
            .flat_map(|w| {
                word_positions(masked, w)
                    .into_iter()
                    .map(move |_| format!("`{w}` outside pcf-bench/pcf-cli"))
            })
            .collect(),
        Lint::BadAllow => Vec::new(),
    }
}

/// Byte positions where `word` occurs with non-identifier neighbours.
fn word_positions(line: &str, word: &str) -> Vec<usize> {
    let bytes = line.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut out = Vec::new();
    let mut start = 0usize;
    while let Some(pos) = line[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            out.push(at);
        }
        start = at + word.len();
    }
    out
}

/// First non-space char at or after byte `from`.
fn next_nonspace(line: &str, from: usize) -> Option<char> {
    line.get(from..)?.chars().find(|c| !c.is_whitespace())
}

/// Last non-space char strictly before byte `at`.
fn prev_nonspace(line: &str, at: usize) -> Option<char> {
    line.get(..at)?.chars().rev().find(|c| !c.is_whitespace())
}

/// True when the text after an `unwrap` word is an empty call `()`.
/// (`unwrap_or`, `unwrap_err`, field accesses etc. never match: the word
/// boundary already excluded them.)
fn follows_call(line: &str, from: usize) -> bool {
    let mut it = line
        .get(from..)
        .unwrap_or("")
        .chars()
        .filter(|c| !c.is_whitespace());
    it.next() == Some('(') && it.next() == Some(')')
}

/// Finds `==` / `!=` with a float literal on either side.
fn float_eq_hits(masked: &str) -> Vec<String> {
    let bytes = masked.as_bytes();
    let mut hits = Vec::new();
    let mut i = 0usize;
    while i + 1 < bytes.len() {
        let is_eq = bytes[i] == b'=' && bytes[i + 1] == b'=';
        let is_ne = bytes[i] == b'!' && bytes[i + 1] == b'=';
        if is_eq || is_ne {
            // Exclude `<=`, `>=`, `=>`-adjacent sequences.
            let prev_op = i > 0 && matches!(bytes[i - 1], b'<' | b'>' | b'=' | b'!');
            // Both operator bytes are ASCII, so i and i + 2 are char
            // boundaries and the slices below cannot split a char.
            if !prev_op
                && (is_float_literal_before(masked, i) || is_float_literal_after(masked, i + 2))
            {
                let op = if is_eq { "==" } else { "!=" };
                hits.push(format!(
                    "float literal compared with `{op}` (use the epsilon helpers or total_cmp)"
                ));
            }
            i += 2;
            continue;
        }
        i += 1;
    }
    hits
}

/// Is the token ending just before byte `at` (skipping spaces) a float
/// literal like `0.0`, `1.`, `1e-6`, `2.5e3`, `0f64`?
fn is_float_literal_before(line: &str, at: usize) -> bool {
    let s = line[..at].trim_end();
    let token: String = s
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '+' | '-'))
        .collect::<Vec<char>>()
        .into_iter()
        .rev()
        .collect();
    token_is_float(token.trim_start_matches(['+', '-']))
}

/// Is the token starting at byte `at` (skipping spaces) a float literal?
fn is_float_literal_after(line: &str, at: usize) -> bool {
    let s = line.get(at..).unwrap_or("").trim_start();
    let s = s.strip_prefix(['+', '-']).unwrap_or(s);
    let token: String = s
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '+' | '-'))
        .collect();
    token_is_float(&token)
}

/// `0.0`, `1.`, `1e-6`, `1_000.5`, `3f64` are float literals; `0`, `x0`,
/// `usize` are not.
fn token_is_float(token: &str) -> bool {
    let t = token.trim_end_matches("f64").trim_end_matches("f32");
    if t.is_empty() || !t.starts_with(|c: char| c.is_ascii_digit()) {
        return false;
    }
    let explicit_suffix = token.len() != t.len();
    let has_dot = t.contains('.');
    let has_exp = t.chars().any(|c| matches!(c, 'e' | 'E'))
        && t.chars()
            .all(|c| c.is_ascii_digit() || matches!(c, '.' | '_' | 'e' | 'E' | '+' | '-'));
    (has_dot || has_exp || explicit_suffix)
        && t.chars()
            .all(|c| c.is_ascii_digit() || matches!(c, '.' | '_' | 'e' | 'E' | '+' | '-'))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::ScannedFile;

    fn findings(rel: &str, src: &str) -> Vec<Finding> {
        check_file(rel, &ScannedFile::scan(src))
    }

    #[test]
    fn unwrap_and_macros_are_caught_variants_are_not() {
        let f = findings(
            "crates/core/src/x.rs",
            "a.unwrap();\nb.unwrap_or(0);\nc.unwrap_or_else(|| 0);\npanic!();\nunreachable!();\nd.expect(\"msg\");\nd.expect_err(\"msg\");\n",
        );
        let panics: Vec<_> = f.iter().filter(|x| x.lint == Lint::NoPanicPaths).collect();
        assert_eq!(panics.len(), 4, "{panics:?}");
        assert_eq!(panics[0].line, 1);
        assert_eq!(panics[1].line, 4);
        assert_eq!(panics[2].line, 5);
        assert_eq!(panics[3].line, 6);
    }

    #[test]
    fn float_literal_comparisons_are_caught() {
        let src = "if x == 0.0 {}\nif 1e-6 != y {}\nif n == 0 {}\nif x <= 0.0 {}\nif x >= 1.0 {}\nlet z = 2.5f64 == w;\n";
        let f = findings("crates/core/src/x.rs", src);
        let lines: Vec<usize> = f
            .iter()
            .filter(|x| x.lint == Lint::FloatDiscipline)
            .map(|x| x.line)
            .collect();
        assert_eq!(lines, vec![1, 2, 6], "{f:?}");
    }

    #[test]
    fn partial_cmp_calls_flagged_but_trait_definitions_are_not() {
        let src = "impl PartialOrd for P {\n    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {\n        Some(self.cmp(other))\n    }\n}\nlet o = a.partial_cmp(&b);\n";
        let f = findings("crates/core/src/x.rs", src);
        let lines: Vec<usize> = f
            .iter()
            .filter(|x| x.lint == Lint::FloatDiscipline)
            .map(|x| x.line)
            .collect();
        assert_eq!(lines, vec![6], "{f:?}");
    }

    #[test]
    fn hashmap_only_flagged_on_deterministic_paths() {
        let src = "use std::collections::HashMap;\n";
        assert!(findings("crates/lp/src/model.rs", src)
            .iter()
            .any(|f| f.lint == Lint::DeterministicIteration));
        assert!(!findings("crates/topology/src/graph.rs", src)
            .iter()
            .any(|f| f.lint == Lint::DeterministicIteration));
    }

    #[test]
    fn wallclock_scope_exempts_bench_and_cli() {
        let src = "let t = std::time::Instant::now();\n";
        assert!(findings("crates/replay/src/report.rs", src)
            .iter()
            .any(|f| f.lint == Lint::NoWallclockInSolver));
        assert!(findings("crates/bench/src/lib.rs", src).is_empty());
        assert!(findings("crates/cli/src/main.rs", src).is_empty());
    }

    #[test]
    fn thread_spawn_is_flagged_everywhere_scope_is_not() {
        let src = "std::thread::spawn(|| {});\nstd::thread::scope(|s| { s.spawn(|| {}); });\n";
        let f = findings("crates/cli/src/main.rs", src);
        let spawns: Vec<_> = f
            .iter()
            .filter(|x| x.lint == Lint::ScopedThreadsOnly)
            .collect();
        assert_eq!(spawns.len(), 1);
        assert_eq!(spawns[0].line, 1);
    }

    #[test]
    fn epsilon_module_is_exempt_from_float_discipline() {
        let src = "pub fn is_zero(x: f64) -> bool { x == 0.0 }\n";
        assert!(findings("crates/lp/src/float.rs", src).is_empty());
        assert!(!findings("crates/lp/src/simplex.rs", src).is_empty());
    }

    #[test]
    fn allows_suppress_and_malformed_allows_report() {
        let src = "x.unwrap(); // audit:allow(no-panic-paths, invariant: built above)\ny.unwrap(); // audit:allow(no-panic-paths)\n";
        let f = findings("crates/core/src/x.rs", src);
        assert_eq!(
            f.iter().filter(|x| x.lint == Lint::NoPanicPaths).count(),
            1,
            "{f:?}"
        );
        assert_eq!(f.iter().filter(|x| x.lint == Lint::BadAllow).count(), 1);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); assert!(y == 0.0); }\n}\n";
        assert!(findings("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn lint_names_round_trip() {
        for &l in ALL_LINTS {
            assert_eq!(Lint::by_name(l.name()), Some(l));
        }
        assert_eq!(Lint::by_name("nope"), None);
    }
}
