//! PCF: Provably Resilient Flexible Routing (SIGCOMM 2020) — core library.
//!
//! Implements congestion-free traffic engineering: bandwidth allocation and
//! failure response that guarantee no link is overloaded under any targeted
//! failure scenario, for FFC, PCF-TF, PCF-LS, PCF-CLS, logical flows, R3,
//! and the optimal (intrinsic capability) baseline.

pub mod admission;
pub mod adversary;
pub mod augment;
pub mod degrade;
pub mod dualized;
pub mod failure;
pub mod figures;
pub mod instance;
pub mod logical_flow;
pub mod objective;
pub mod optimal;
pub mod r3;
pub mod realize;
pub mod robust;
pub mod scale;
pub mod schemes;
pub mod validate;

pub use admission::{
    admit, availability_under, candidate_links, integral_worst_case, AdmitOutcome,
    ScenarioWorstCase,
};
pub use augment::{augment_capacity, Augmentation};
pub use degrade::{
    degrade_fallback, degrade_routing, normal_routing, overload_bound, peak_utilization,
    DegradeMode, DegradedRouting, LadderStage,
};
pub use dualized::DualizedError;
pub use failure::{Condition, Degradation, FailureModel, GroupBudget, Scenario};
pub use instance::{Instance, InstanceBuilder, LogicalSequence, LsId, PairId, TunnelId};
pub use logical_flow::{
    bypass_flows, decompose_flows, pcf_cls_pipeline, solve_logical_flow, ClsResult, FlowSolution,
    FlowSpec,
};
pub use objective::Objective;
pub use optimal::{
    max_concurrent_flow, max_throughput, optimal_demand_scale, optimal_throughput, McfResult,
    ScenarioCoverage,
};
pub use r3::{solve_generalized_r3, solve_r3, R3Solution};
pub use realize::{
    absolute_tolerance, check_utilizations, degraded_reservations, expand_routing, greedy_topsort,
    live_pairs, proportional_routing, realize_routing, realize_routing_with, reservation_matrix,
    topological_order, FailureState, RealizeError, RealizeKernel, Routing,
};
pub use robust::{
    solve_robust, try_solve_robust, try_solve_robust_seeded, AdversaryKind, CutPool, RobustError,
    RobustOptions, RobustSolution,
};
pub use scale::scale_to_mlu;
pub use schemes::{
    pcf_ls_instance, solve_ffc, solve_ffc_seeded, solve_pcf_cls, solve_pcf_ls, solve_pcf_ls_seeded,
    solve_pcf_tf, solve_pcf_tf_seeded, tunnel_instance,
};
pub use validate::{
    validate_all, validate_all_with, validate_scenarios, validate_scenarios_with,
    validate_structured, validate_structured_scenarios_with, validate_structured_with, ArcHotspot,
    ValidationReport, Violation, ViolationKind, ViolationSummary,
};
