//! An item-level Rust parser over masked source text.
//!
//! The workspace is hermetic (no `syn`), so this is a hand-rolled
//! single-pass recognizer, not a grammar-complete parser. It extracts
//! exactly what the interprocedural lints need from a
//! [`ScannedFile`](crate::scanner::ScannedFile)'s masked lines:
//!
//! * `fn` items with their enclosing `impl` type (and trait, for
//!   `impl Trait for Type` blocks), signature line, body span, receiver
//!   (`self`) presence, parameter names/types, and simplified return
//!   type;
//! * call expressions inside each body — free calls `foo(..)`, path
//!   calls `Type::method(..)`, method calls `recv.method(..)` with a
//!   classified receiver chain, and macro invocations `name!(..)`;
//! * indexing expressions `expr[..]` (each a potential panic site);
//! * struct field types, so `self.field.method()` receivers can be
//!   resolved through the field's declared type;
//! * `// audit:hot` markers binding to the next `fn` item.
//!
//! Everything here is *deliberately* approximate: the call graph built
//! on top treats unresolved receivers conservatively (all same-name
//! candidates). Masking has already removed comments and string
//! literals, so the only hazards left are structural (generics, nested
//! closures, shadowed names) — the hostile fixtures in the test suite
//! pin the behaviour on those.

use crate::scanner::ScannedFile;
use std::collections::BTreeMap;

/// How a method call's receiver was written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Receiver {
    /// `self.method(..)`, or a chain of plain field accesses rooted at
    /// `self` or a local: `head` is `None` for `self`,
    /// `Some(var)` for a local/param; `fields` the field path walked.
    /// `indexed` is true when any step went through `[..]` (the final
    /// value type is then unknown, but the field name is still useful
    /// for the atomics lint: `self.slots[i].store(..)` names `slots`).
    Chain {
        head: Option<String>,
        fields: Vec<String>,
        indexed: bool,
    },
    /// Anything else: `foo().method()`, `(expr).method()`, literals.
    Opaque,
}

impl Receiver {
    /// The last named field (or the head variable) in the chain — what
    /// the atomics lint keys symmetry on.
    pub fn field_name(&self) -> Option<&str> {
        match self {
            Receiver::Chain { head, fields, .. } => fields
                .last()
                .map(String::as_str)
                .or(head.as_deref().filter(|h| *h != "self")),
            Receiver::Opaque => None,
        }
    }
}

/// One call expression's shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallTarget {
    /// `name(..)` with no qualifier.
    Free(String),
    /// `Qualifier::name(..)` — the qualifier is the last path segment
    /// before the called name (`std::mem::take` → qualifier `mem`).
    Path { qualifier: String, name: String },
    /// `receiver.name(..)`.
    Method { receiver: Receiver, name: String },
    /// `name!(..)` / `name![..]` / `name!{..}`.
    Macro(String),
}

impl CallTarget {
    /// The called name, whatever the shape.
    pub fn name(&self) -> &str {
        match self {
            CallTarget::Free(n) => n,
            CallTarget::Path { name, .. } => name,
            CallTarget::Method { name, .. } => name,
            CallTarget::Macro(n) => n,
        }
    }
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// 1-based line of the called name.
    pub line: usize,
    /// What is being called.
    pub target: CallTarget,
    /// The argument text between the call's parentheses — captured only
    /// for concurrency-relevant names (atomic ops, `lock`) so the
    /// atomics lint can inspect `Ordering::` arguments.
    pub args: Option<String>,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Enclosing `impl` block's type, if any.
    pub impl_type: Option<String>,
    /// Enclosing `impl Trait for Type` block's trait, if any.
    pub trait_of: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub sig_line: usize,
    /// 1-based body span (inclusive); `(0, 0)` for bodyless items
    /// (trait method declarations).
    pub body: (usize, usize),
    /// Inside a `#[cfg(test)]` / `#[test]` region.
    pub is_test: bool,
    /// Tagged `// audit:hot`.
    pub is_hot: bool,
    /// Takes a `self` receiver.
    pub has_self: bool,
    /// Parameter names mapped to simplified types.
    pub params: BTreeMap<String, String>,
    /// `let name: Type` / `let name = Type::new(..)` bindings (no
    /// shadowing scopes — last binding wins).
    pub locals: BTreeMap<String, String>,
    /// Simplified return type, `Result`/`Option`/`Arc`/`Box` unwrapped.
    pub ret: Option<String>,
    /// Calls in body order.
    pub calls: Vec<CallSite>,
    /// 1-based lines holding `expr[..]` indexing.
    pub index_lines: Vec<usize>,
}

impl FnItem {
    /// `Type::name` or plain `name` — the label used in witness chains.
    pub fn label(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Everything the parser extracted from one file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// All `fn` items, in source order (nested fns appear after their
    /// parent).
    pub fns: Vec<FnItem>,
    /// Struct name → field name → simplified field type.
    pub structs: BTreeMap<String, BTreeMap<String, String>>,
}

/// Method names whose argument text is captured for the atomics and
/// lock lints.
const CAPTURE_ARGS: &[&str] = &[
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "lock",
];

/// Words that look like calls when followed by `(` but are not.
fn is_keyword(w: &str) -> bool {
    matches!(
        w,
        "if" | "else"
            | "while"
            | "for"
            | "in"
            | "loop"
            | "match"
            | "return"
            | "break"
            | "continue"
            | "move"
            | "as"
            | "where"
            | "unsafe"
            | "ref"
            | "mut"
            | "dyn"
            | "let"
            | "pub"
            | "use"
            | "mod"
            | "fn"
            | "impl"
            | "struct"
            | "enum"
            | "union"
            | "trait"
            | "type"
            | "const"
            | "static"
            | "crate"
            | "super"
            | "await"
            | "async"
    )
}

/// Strips references, smart pointers, and `Result`/`Option` wrappers
/// down to the innermost type's last path segment: `&mut Arc<Telemetry>`
/// → `Telemetry`, `Result<Routing, RealizeError>` → `Routing`,
/// `Box<dyn Factor>` → `Factor`, `std::sync::MutexGuard<'_, T>` → omits
/// nothing special — `MutexGuard`.
pub fn simplify_type(raw: &str) -> String {
    let mut s = raw.trim();
    loop {
        s = s.trim_start_matches(['&', ' ']).trim();
        if let Some(rest) = s.strip_prefix("mut ") {
            s = rest;
            continue;
        }
        if let Some(rest) = s.strip_prefix("dyn ") {
            s = rest;
            continue;
        }
        if s.starts_with('\'') {
            // Lifetime: drop it and whatever whitespace follows.
            match s.find(char::is_whitespace) {
                Some(at) => {
                    s = &s[at..];
                    continue;
                }
                None => return String::new(),
            }
        }
        break;
    }
    // Drop a module path before the head type (`std::sync::Mutex<..>` →
    // `Mutex<..>`) so the wrapper unwrapping below sees the bare name.
    let head_end = s.find('<').unwrap_or(s.len());
    if let Some(sep) = s[..head_end].rfind("::") {
        s = &s[sep + 2..];
    }
    // Unwrap one layer of container generics, recursively.
    for wrapper in ["Result", "Option", "Arc", "Rc", "Box", "Mutex", "RwLock"] {
        if let Some(rest) = s.strip_prefix(wrapper) {
            let rest = rest.trim_start();
            if let Some(inner) = rest.strip_prefix('<') {
                // First top-level generic argument.
                let mut depth = 0usize;
                let mut end = inner.len();
                for (i, c) in inner.char_indices() {
                    match c {
                        '<' => depth += 1,
                        '>' if depth > 0 => depth -= 1,
                        '>' | ',' => {
                            end = i;
                            break;
                        }
                        _ => {}
                    }
                }
                return simplify_type(&inner[..end]);
            }
        }
    }
    // Last `::` segment, generics stripped.
    let no_generics = match s.find('<') {
        Some(at) => &s[..at],
        None => s,
    };
    no_generics
        .rsplit("::")
        .next()
        .unwrap_or(no_generics)
        .trim()
        .to_string()
}

/// What a `{` opened.
enum Scope {
    /// An `impl` block: `(type, trait)`.
    Impl(String, Option<String>),
    /// A function body: index into `fns`.
    Fn(usize),
    /// Anything else (mod, match, loop, block...).
    Other,
}

struct Parser<'a> {
    chars: Vec<char>,
    i: usize,
    line: usize,
    scanned: &'a ScannedFile,
    scopes: Vec<Scope>,
    out: ParsedFile,
}

/// Parses one scanned file into items and calls.
pub fn parse_file(scanned: &ScannedFile) -> ParsedFile {
    let text = scanned.masked_lines.join("\n");
    let mut p = Parser {
        chars: text.chars().collect(),
        i: 0,
        line: 1,
        scanned,
        scopes: Vec::new(),
        out: ParsedFile::default(),
    };
    p.run();
    // Bind `// audit:hot` markers: each marks the first fn whose
    // signature line is at or after the marker line.
    for &mark in &scanned.hot_marks {
        if let Some(f) = p
            .out
            .fns
            .iter_mut()
            .filter(|f| f.sig_line >= mark)
            .min_by_key(|f| f.sig_line)
        {
            f.is_hot = true;
        }
    }
    p.out
}

impl Parser<'_> {
    fn run(&mut self) {
        while self.i < self.chars.len() {
            let c = self.chars[self.i];
            if c == '\n' {
                self.line += 1;
                self.i += 1;
                continue;
            }
            if is_ident_start(c) {
                let start = self.i;
                let word = self.read_ident();
                match word.as_str() {
                    "impl" => self.parse_impl_header(),
                    "struct" => self.parse_struct(),
                    "fn" => self.parse_fn(),
                    "let" => self.parse_let(),
                    _ => self.maybe_call(&word, start),
                }
                continue;
            }
            match c {
                '{' => {
                    self.scopes.push(Scope::Other);
                    self.i += 1;
                }
                '}' => {
                    self.close_scope();
                    self.i += 1;
                }
                '[' => {
                    self.maybe_index_site();
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
        // Unterminated bodies (truncated input): close what's open.
        while !self.scopes.is_empty() {
            self.close_scope();
        }
    }

    fn close_scope(&mut self) {
        if let Some(Scope::Fn(idx)) = self.scopes.pop() {
            self.out.fns[idx].body.1 = self.line;
        }
    }

    /// Innermost open function, if any.
    fn current_fn(&self) -> Option<usize> {
        self.scopes.iter().rev().find_map(|s| match s {
            Scope::Fn(idx) => Some(*idx),
            _ => None,
        })
    }

    /// Innermost impl block, if any.
    fn current_impl(&self) -> Option<(String, Option<String>)> {
        self.scopes.iter().rev().find_map(|s| match s {
            Scope::Impl(t, tr) => Some((t.clone(), tr.clone())),
            _ => None,
        })
    }

    fn read_ident(&mut self) -> String {
        let mut w = String::new();
        while self.i < self.chars.len() && is_ident_char(self.chars[self.i]) {
            w.push(self.chars[self.i]);
            self.i += 1;
        }
        w
    }

    /// Advances past whitespace (tracking lines).
    fn skip_ws(&mut self) {
        while self.i < self.chars.len() && self.chars[self.i].is_whitespace() {
            if self.chars[self.i] == '\n' {
                self.line += 1;
            }
            self.i += 1;
        }
    }

    /// Consumes a balanced `<...>` group starting at the current `<`.
    /// Ignores the `>` of `->` arrows inside (e.g. `Fn() -> T` bounds).
    fn skip_angles(&mut self) {
        let mut depth = 0usize;
        while self.i < self.chars.len() {
            let c = self.chars[self.i];
            if c == '\n' {
                self.line += 1;
            } else if c == '<' {
                depth += 1;
            } else if c == '>' && self.chars.get(self.i.wrapping_sub(1)) != Some(&'-') {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    self.i += 1;
                    return;
                }
            }
            self.i += 1;
        }
    }

    /// Consumes a balanced bracket group starting at the current
    /// opener, returning the interior text.
    fn capture_balanced(&mut self, open: char, close: char) -> String {
        let mut depth = 0usize;
        let mut inner = String::new();
        while self.i < self.chars.len() {
            let c = self.chars[self.i];
            if c == '\n' {
                self.line += 1;
            }
            if c == open {
                depth += 1;
                if depth == 1 {
                    self.i += 1;
                    continue;
                }
            } else if c == close {
                depth -= 1;
                if depth == 0 {
                    self.i += 1;
                    return inner;
                }
            }
            inner.push(c);
            self.i += 1;
        }
        inner
    }

    /// After the `impl` keyword: parse `impl<G> Trait for Type { ... }`
    /// or `impl<G> Type { ... }` up to and including the opening brace.
    fn parse_impl_header(&mut self) {
        self.skip_ws();
        if self.chars.get(self.i) == Some(&'<') {
            self.skip_angles();
        }
        // Capture header text up to the block's `{` (angle-depth aware:
        // `impl Foo<{N}>` does not occur in this workspace).
        let mut header = String::new();
        let mut angle = 0usize;
        while self.i < self.chars.len() {
            let c = self.chars[self.i];
            if c == '\n' {
                self.line += 1;
            }
            match c {
                '<' => angle += 1,
                '>' if self.chars.get(self.i.wrapping_sub(1)) != Some(&'-') => {
                    angle = angle.saturating_sub(1)
                }
                '{' if angle == 0 => break,
                ';' if angle == 0 => {
                    // `impl Trait for Type;`-style (does not occur) —
                    // bail without a scope.
                    self.i += 1;
                    return;
                }
                _ => {}
            }
            header.push(if c == '\n' { ' ' } else { c });
            self.i += 1;
        }
        let header = match header.find(" where ") {
            Some(at) => header[..at].to_string(),
            None => header,
        };
        let (trait_part, type_part) = match split_top_level_for(&header) {
            Some((t, ty)) => (Some(simplify_type(t)), ty.to_string()),
            None => (None, header),
        };
        let ty = simplify_type(&type_part);
        if self.chars.get(self.i) == Some(&'{') {
            self.i += 1;
            self.scopes.push(Scope::Impl(ty, trait_part));
        }
    }

    /// After the `struct` keyword: record field types for named-field
    /// structs; skip tuple/unit structs.
    fn parse_struct(&mut self) {
        self.skip_ws();
        let name = self.read_ident();
        if name.is_empty() {
            return;
        }
        self.skip_ws();
        if self.chars.get(self.i) == Some(&'<') {
            self.skip_angles();
            self.skip_ws();
        }
        match self.chars.get(self.i) {
            Some(&'{') => {
                let body = self.capture_balanced('{', '}');
                let mut fields = BTreeMap::new();
                for field in split_top_level(&body, ',') {
                    let field = field.trim();
                    // Strip attributes and visibility.
                    let field = strip_attrs_and_vis(field);
                    if let Some((fname, fty)) = field.split_once(':') {
                        let fname = fname.trim();
                        if fname.chars().all(is_ident_char) && !fname.is_empty() {
                            fields.insert(fname.to_string(), simplify_type(fty));
                        }
                    }
                }
                self.out.structs.insert(name, fields);
            }
            // Tuple struct: let the main loop scan the parens (variant
            // constructors are not calls because no fn scope is open at
            // item level; inside a fn, `struct` is rare and harmless).
            _ => {}
        }
    }

    /// After the `fn` keyword: parse the signature; on `{`, open the
    /// body scope.
    fn parse_fn(&mut self) {
        self.skip_ws();
        // `fn(` is a function-pointer type, not an item.
        if !self.chars.get(self.i).copied().is_some_and(is_ident_start) {
            return;
        }
        let sig_line = self.line;
        let name = self.read_ident();
        self.skip_ws();
        if self.chars.get(self.i) == Some(&'<') {
            self.skip_angles();
            self.skip_ws();
        }
        if self.chars.get(self.i) != Some(&'(') {
            return;
        }
        let params_text = self.capture_balanced('(', ')');
        // Scan to `{` (body) or `;` (declaration), capturing the return
        // type, skipping `where` clauses and any generics.
        let mut after = String::new();
        let mut angle = 0usize;
        let mut has_body = false;
        while self.i < self.chars.len() {
            let c = self.chars[self.i];
            if c == '\n' {
                self.line += 1;
            }
            match c {
                '<' => angle += 1,
                '>' if self.chars.get(self.i.wrapping_sub(1)) != Some(&'-') => {
                    angle = angle.saturating_sub(1)
                }
                '{' if angle == 0 => {
                    has_body = true;
                    break;
                }
                ';' if angle == 0 => break,
                _ => {}
            }
            after.push(if c == '\n' { ' ' } else { c });
            self.i += 1;
        }
        let ret_text = after
            .split(" where ")
            .next()
            .unwrap_or("")
            .trim()
            .strip_prefix("->")
            .map(|r| simplify_type(r));
        let (has_self, params) = parse_params(&params_text);
        let (impl_type, trait_of) = match self.current_impl() {
            Some((t, tr)) => (Some(t), tr),
            None => (None, None),
        };
        let idx = self.out.fns.len();
        self.out.fns.push(FnItem {
            name,
            impl_type,
            trait_of,
            sig_line,
            body: (0, 0),
            is_test: self.scanned.line_in_test(sig_line),
            is_hot: false,
            has_self,
            params,
            locals: BTreeMap::new(),
            ret: ret_text,
            calls: Vec::new(),
            index_lines: Vec::new(),
        });
        if has_body {
            self.out.fns[idx].body.0 = self.line;
            self.scopes.push(Scope::Fn(idx));
            self.i += 1; // consume `{`
        } else if self.chars.get(self.i) == Some(&';') {
            self.i += 1;
        }
    }

    /// After the `let` keyword inside a body: record `let x: T` and
    /// `let x = Type::new(..)` typed bindings. Consumes at most the
    /// type annotation (which contains no calls); initializers are left
    /// for the main loop.
    fn parse_let(&mut self) {
        let Some(fn_idx) = self.current_fn() else {
            return;
        };
        self.skip_ws();
        // Optional `mut`; patterns (`let (a, b)`, `let Some(x)`) are
        // skipped — no binding recorded.
        let mut name = self.read_ident();
        if name == "mut" {
            self.skip_ws();
            name = self.read_ident();
        }
        if name.is_empty() || name.chars().next().is_some_and(|c| c.is_uppercase()) {
            return; // pattern (`let Some(x)` / `let Ok(..)`) or odd form
        }
        self.skip_ws();
        match self.chars.get(self.i) {
            Some(&':') if self.chars.get(self.i + 1) != Some(&':') => {
                // `let x: T = ...` — consume the annotation up to `=`
                // or `;` at depth 0.
                self.i += 1;
                let mut ty = String::new();
                let mut angle = 0usize;
                let mut square = 0usize;
                while self.i < self.chars.len() {
                    let c = self.chars[self.i];
                    if c == '\n' {
                        self.line += 1;
                    }
                    match c {
                        '<' => angle += 1,
                        '>' if self.chars.get(self.i.wrapping_sub(1)) != Some(&'-') => {
                            angle = angle.saturating_sub(1)
                        }
                        '[' => square += 1,
                        ']' => square = square.saturating_sub(1),
                        '=' | ';' if angle == 0 && square == 0 => break,
                        _ => {}
                    }
                    ty.push(if c == '\n' { ' ' } else { c });
                    self.i += 1;
                }
                self.out.fns[fn_idx].locals.insert(name, simplify_type(&ty));
            }
            Some(&'=') => {
                // Peek (without consuming) for a constructor-shaped
                // initializer: `Type::new(..)` / `Type::with_..` /
                // `Type::from..` / `Type::default()`.
                let rest: String = self.chars[self.i + 1..]
                    .iter()
                    .take(120)
                    .collect::<String>();
                let rest = rest.trim_start();
                if let Some((ty, ctor)) = constructor_shape(rest) {
                    if constructor_name(ctor) {
                        self.out.fns[fn_idx].locals.insert(name, ty.to_string());
                    }
                }
            }
            _ => {}
        }
    }

    /// An identifier followed by `(`, `!(`, or a turbofish then `(` is
    /// a call; classify it by what precedes the name.
    fn maybe_call(&mut self, word: &str, word_start: usize) {
        let Some(fn_idx) = self.current_fn() else {
            return;
        };
        if is_keyword(word) {
            return;
        }
        let call_line = self.line;
        // Look ahead: `!` + delimiter = macro; turbofish `::<..>` may
        // precede the parens; plain `(` = call.
        let mut j = self.i;
        while j < self.chars.len() && self.chars[j].is_whitespace() && self.chars[j] != '\n' {
            j += 1;
        }
        let target = match self.chars.get(j) {
            Some(&'!') => {
                let delim = self.chars.get(j + 1).copied();
                if matches!(delim, Some('(') | Some('[') | Some('{')) {
                    Some(CallTarget::Macro(word.to_string()))
                } else {
                    None
                }
            }
            Some(&'(') => Some(self.classify_call(word, word_start)),
            Some(&':')
                if self.chars.get(j + 1) == Some(&':') && self.chars.get(j + 2) == Some(&'<') =>
            {
                // Turbofish: `name::<T>(..)`.
                let mut depth = 0usize;
                let mut k = j + 2;
                while k < self.chars.len() {
                    match self.chars[k] {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                k += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                while k < self.chars.len() && self.chars[k].is_whitespace() {
                    k += 1;
                }
                if self.chars.get(k) == Some(&'(') {
                    Some(self.classify_call(word, word_start))
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some(target) = target {
            let args = if CAPTURE_ARGS.contains(&word) {
                // Capture the argument text; do not consume (the main
                // loop still scans the interior for nested calls).
                Some(self.peek_args())
            } else {
                None
            };
            self.out.fns[fn_idx].calls.push(CallSite {
                line: call_line,
                target,
                args,
            });
        }
    }

    /// Reads ahead from the current position to the call's `(` and
    /// captures the balanced argument text without consuming.
    fn peek_args(&self) -> String {
        let mut j = self.i;
        while j < self.chars.len() && self.chars[j] != '(' {
            j += 1;
        }
        let mut depth = 0usize;
        let mut args = String::new();
        while j < self.chars.len() {
            let c = self.chars[j];
            if c == '(' {
                depth += 1;
                if depth == 1 {
                    j += 1;
                    continue;
                }
            } else if c == ')' {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            args.push(if c == '\n' { ' ' } else { c });
            j += 1;
        }
        args
    }

    /// Classifies a called name by the tokens before it: `.` → method
    /// (receiver chain parsed backwards), `::` → path call, else free.
    fn classify_call(&self, word: &str, word_start: usize) -> CallTarget {
        let before = prev_nonspace_at(&self.chars, word_start);
        match before {
            Some((at, '.')) => CallTarget::Method {
                receiver: parse_receiver_backwards(&self.chars, at),
                name: word.to_string(),
            },
            Some((at, ':')) if at > 0 && self.chars[at - 1] == ':' => {
                // Walk the path backwards: the qualifier is the segment
                // immediately before `::`.
                let k = at - 1; // index of first ':'
                let mut qualifier = String::new();
                loop {
                    // k points at the first `:` of `::`; read the ident
                    // before it.
                    let mut e = k;
                    while e > 0 && self.chars[e - 1].is_whitespace() {
                        e -= 1;
                    }
                    // Skip a generic group `Foo::<T>::bar` (rare).
                    if e > 0 && self.chars[e - 1] == '>' {
                        let mut depth = 0usize;
                        while e > 0 {
                            match self.chars[e - 1] {
                                '>' => depth += 1,
                                '<' => {
                                    depth -= 1;
                                    if depth == 0 {
                                        e -= 1;
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            e -= 1;
                        }
                    }
                    let mut s = e;
                    while s > 0 && is_ident_char(self.chars[s - 1]) {
                        s -= 1;
                    }
                    if s == e {
                        break;
                    }
                    let seg: String = self.chars[s..e].iter().collect();
                    if qualifier.is_empty() {
                        qualifier = seg;
                    }
                    // Only the nearest qualifier matters (`a::b::c(` →
                    // qualifier `b`); stop walking either way.
                    break;
                }
                if qualifier.is_empty() {
                    CallTarget::Free(word.to_string())
                } else {
                    CallTarget::Path {
                        qualifier,
                        name: word.to_string(),
                    }
                }
            }
            _ => CallTarget::Free(word.to_string()),
        }
    }

    /// A `[` directly after a value expression is an indexing site.
    fn maybe_index_site(&mut self) {
        let Some(fn_idx) = self.current_fn() else {
            return;
        };
        if self.out.fns[fn_idx].is_test {
            return;
        }
        match prev_nonspace_at(&self.chars, self.i) {
            Some((_, c)) if is_ident_char(c) || c == ')' || c == ']' || c == '?' => {
                let line = self.line;
                let f = &mut self.out.fns[fn_idx];
                if f.index_lines.last() != Some(&line) {
                    f.index_lines.push(line);
                }
            }
            _ => {}
        }
    }
}

/// `impl Trait for Type` → splits at the top-level ` for ` keyword.
fn split_top_level_for(header: &str) -> Option<(&str, &str)> {
    let bytes = header.as_bytes();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i + 4 < header.len() {
        match bytes[i] {
            b'<' | b'(' | b'[' => depth += 1,
            b'>' | b')' | b']' => depth = depth.saturating_sub(1),
            b'f' if depth == 0
                && header[i..].starts_with("for")
                && i > 0
                && bytes[i - 1].is_ascii_whitespace()
                && bytes.get(i + 3).is_some_and(|b| b.is_ascii_whitespace()) =>
            {
                return Some((&header[..i], &header[i + 3..]));
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Splits on a separator at angle/paren/bracket depth 0.
fn split_top_level(s: &str, sep: char) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '<' | '(' | '[' | '{' => depth += 1,
            '>' if s.as_bytes().get(i.wrapping_sub(1)) != Some(&b'-') => {
                depth = depth.saturating_sub(1)
            }
            ')' | ']' | '}' => depth = depth.saturating_sub(1),
            c if c == sep && depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

/// Strips `#[...]` attributes and `pub` / `pub(crate)` visibility off a
/// struct-field declaration.
fn strip_attrs_and_vis(mut field: &str) -> &str {
    loop {
        field = field.trim_start();
        if field.starts_with("#[") {
            match field.find(']') {
                Some(at) => field = &field[at + 1..],
                None => return "",
            }
            continue;
        }
        if let Some(rest) = field.strip_prefix("pub") {
            let rest = rest.trim_start();
            if let Some(stripped) = rest.strip_prefix('(') {
                match stripped.find(')') {
                    Some(at) => field = &stripped[at + 1..],
                    None => return "",
                }
            } else {
                field = rest;
            }
            continue;
        }
        return field;
    }
}

/// Parses a parameter list: returns (has_self, name → simplified type).
fn parse_params(params: &str) -> (bool, BTreeMap<String, String>) {
    let mut has_self = false;
    let mut map = BTreeMap::new();
    for (i, part) in split_top_level(params, ',').into_iter().enumerate() {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if i == 0 {
            // `&self`, `&mut self`, `self`, `mut self`, `&'a self`,
            // `self: Arc<Self>`.
            let cleaned = part.trim_start_matches('&').trim_start();
            let cleaned = if cleaned.starts_with('\'') {
                match cleaned.find(char::is_whitespace) {
                    Some(at) => cleaned[at..].trim_start(),
                    None => cleaned,
                }
            } else {
                cleaned
            };
            let cleaned = cleaned.strip_prefix("mut ").unwrap_or(cleaned);
            if cleaned == "self" || cleaned.starts_with("self:") || cleaned.starts_with("self ") {
                has_self = true;
                continue;
            }
        }
        if let Some((name, ty)) = part.split_once(':') {
            let name = name.trim().trim_start_matches("mut ").trim();
            if !name.is_empty() && name.chars().all(is_ident_char) {
                map.insert(name.to_string(), simplify_type(ty));
            }
        }
    }
    (has_self, map)
}

/// Recognizes `Type::method(` at the start of `rest`; returns the type
/// and method names.
fn constructor_shape(rest: &str) -> Option<(&str, &str)> {
    let ty_end = rest.find(|c: char| !is_ident_char(c))?;
    let ty = &rest[..ty_end];
    if ty.is_empty() || !ty.chars().next().is_some_and(|c| c.is_uppercase()) {
        return None;
    }
    let after = &rest[ty_end..];
    let after = after.strip_prefix("::")?;
    let m_end = after.find(|c: char| !is_ident_char(c))?;
    let method = &after[..m_end];
    if after[m_end..].trim_start().starts_with('(') {
        Some((ty, method))
    } else {
        None
    }
}

/// Constructor-ish method names whose return type is assumed `Self`.
fn constructor_name(m: &str) -> bool {
    m == "new" || m == "default" || m.starts_with("with_") || m.starts_with("from")
}

/// Last non-whitespace char strictly before index `at`, with its index.
fn prev_nonspace_at(chars: &[char], at: usize) -> Option<(usize, char)> {
    let mut i = at;
    while i > 0 {
        i -= 1;
        if !chars[i].is_whitespace() {
            return Some((i, chars[i]));
        }
    }
    None
}

/// Parses a receiver chain backwards from the `.` before a method name:
/// `self.cache.lookup(..)` → Chain(head=None, fields=["cache"]).
fn parse_receiver_backwards(chars: &[char], dot_at: usize) -> Receiver {
    let mut i = dot_at; // index of the `.`
    let mut segs: Vec<String> = Vec::new();
    let mut indexed = false;
    loop {
        // Before the `.`: skip whitespace, then optionally a `[..]`
        // group and/or `?`, then an ident.
        let mut j = i;
        while j > 0 && chars[j - 1].is_whitespace() {
            j -= 1;
        }
        if j == 0 {
            return Receiver::Opaque;
        }
        if chars[j - 1] == '?' {
            j -= 1;
            while j > 0 && chars[j - 1].is_whitespace() {
                j -= 1;
            }
        }
        if chars[j - 1] == ']' {
            indexed = true;
            let mut depth = 0usize;
            while j > 0 {
                match chars[j - 1] {
                    ']' => depth += 1,
                    '[' => {
                        depth -= 1;
                        if depth == 0 {
                            j -= 1;
                            break;
                        }
                    }
                    '\n' => {}
                    _ => {}
                }
                j -= 1;
            }
            while j > 0 && chars[j - 1].is_whitespace() {
                j -= 1;
            }
        }
        if j == 0 || !is_ident_char(chars[j - 1]) {
            return Receiver::Opaque;
        }
        let mut s = j;
        while s > 0 && is_ident_char(chars[s - 1]) {
            s -= 1;
        }
        let seg: String = chars[s..j].iter().collect();
        // A digit start means we walked into a number (float method
        // calls like `0.5.min(..)`) — opaque.
        if seg.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            return Receiver::Opaque;
        }
        segs.push(seg);
        // Is there another `.` before this segment?
        let mut k = s;
        while k > 0 && chars[k - 1].is_whitespace() {
            k -= 1;
        }
        if k > 0 && chars[k - 1] == '.' {
            // Guard against `..` range syntax and float literals.
            if k > 1 && chars[k - 2] == '.' {
                return Receiver::Opaque;
            }
            i = k - 1;
            continue;
        }
        // Head reached. A preceding `)`/`]`/ident would mean a more
        // complex expression (`foo().x.m()`) — opaque.
        if k > 0 && (chars[k - 1] == ')' || chars[k - 1] == ']') {
            return Receiver::Opaque;
        }
        break;
    }
    segs.reverse();
    let head = if segs.first().map(String::as_str) == Some("self") {
        segs.remove(0);
        None
    } else if segs.len() == 1 {
        return Receiver::Chain {
            head: Some(segs.remove(0)),
            fields: Vec::new(),
            indexed,
        };
    } else {
        Some(segs.remove(0))
    };
    Receiver::Chain {
        head,
        fields: segs,
        indexed,
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::ScannedFile;

    fn parse(src: &str) -> ParsedFile {
        parse_file(&ScannedFile::scan(src))
    }

    #[test]
    fn fn_items_with_impl_context() {
        let p = parse(
            "impl Server {\n    pub fn run(&self) -> io::Result<()> {\n        self.go();\n    }\n}\nfn free_one(x: u32) -> u32 { helper(x) }\n",
        );
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].name, "run");
        assert_eq!(p.fns[0].impl_type.as_deref(), Some("Server"));
        assert!(p.fns[0].has_self);
        assert_eq!(p.fns[1].name, "free_one");
        assert_eq!(p.fns[1].impl_type, None);
        assert!(!p.fns[1].has_self);
        assert_eq!(p.fns[1].calls.len(), 1);
        assert_eq!(p.fns[1].calls[0].target, CallTarget::Free("helper".into()));
    }

    #[test]
    fn trait_impls_record_the_trait() {
        let p = parse("impl Factor for DenseFactor {\n    fn solve(&self) {}\n}\n");
        assert_eq!(p.fns[0].trait_of.as_deref(), Some("Factor"));
        assert_eq!(p.fns[0].impl_type.as_deref(), Some("DenseFactor"));
    }

    #[test]
    fn method_and_path_and_macro_calls_classified() {
        let p = parse(
            "fn f(&self) {\n    self.log.push(1);\n    SparseLu::factor(&m);\n    vec![1, 2];\n    format!(\"x\");\n}\n",
        );
        let f = &p.fns[0];
        assert_eq!(f.calls.len(), 4);
        match &f.calls[0].target {
            CallTarget::Method { receiver, name } => {
                assert_eq!(name, "push");
                assert_eq!(
                    receiver,
                    &Receiver::Chain {
                        head: None,
                        fields: vec!["log".into()],
                        indexed: false
                    }
                );
            }
            other => panic!("expected method call, got {other:?}"),
        }
        assert_eq!(
            f.calls[1].target,
            CallTarget::Path {
                qualifier: "SparseLu".into(),
                name: "factor".into()
            }
        );
        assert_eq!(f.calls[2].target, CallTarget::Macro("vec".into()));
        assert_eq!(f.calls[3].target, CallTarget::Macro("format".into()));
    }

    #[test]
    fn atomic_args_are_captured() {
        let p = parse("fn f(&self) {\n    self.gen.store(1, Ordering::Release);\n}\n");
        let call = &p.fns[0].calls[0];
        assert_eq!(call.target.name(), "store");
        assert!(call.args.as_deref().unwrap().contains("Ordering::Release"));
    }

    #[test]
    fn index_sites_and_indexed_receivers() {
        let p = parse("fn f(&self, i: usize) {\n    self.slots[i].store(0, Ordering::Release);\n    let x = arr[i];\n}\n");
        let f = &p.fns[0];
        assert_eq!(f.index_lines, vec![2, 3]);
        match &f.calls[0].target {
            CallTarget::Method { receiver, .. } => {
                assert_eq!(receiver.field_name(), Some("slots"));
                match receiver {
                    Receiver::Chain { indexed, .. } => assert!(indexed),
                    _ => panic!(),
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn struct_fields_and_typed_locals() {
        let p = parse(
            "struct Server {\n    pub log: Arc<EventLog>,\n    cell: PlanCell,\n}\nfn f() {\n    let a: Vec<f64> = make();\n    let b = SparseLu::new(3);\n    b.solve();\n}\n",
        );
        assert_eq!(p.structs["Server"]["log"], "EventLog");
        assert_eq!(p.structs["Server"]["cell"], "PlanCell");
        let f = &p.fns[0];
        assert_eq!(f.locals["a"], "Vec");
        assert_eq!(f.locals["b"], "SparseLu");
    }

    #[test]
    fn return_types_are_simplified() {
        let p = parse(
            "fn f() -> Result<Routing, RealizeError> { g() }\nfn g() -> &'static str { \"\" }\n",
        );
        assert_eq!(p.fns[0].ret.as_deref(), Some("Routing"));
        assert_eq!(p.fns[1].ret.as_deref(), Some("str"));
    }

    #[test]
    fn hot_marks_bind_to_the_next_fn() {
        let p = parse("// audit:hot\npub fn fast() {}\npub fn slow() {}\n");
        assert!(p.fns[0].is_hot);
        assert!(!p.fns[1].is_hot);
    }

    #[test]
    fn nested_fns_and_closures_attribute_calls_correctly() {
        let p = parse(
            "fn outer() {\n    let c = |x: u32| inner_call(x);\n    fn nested() { nested_call(); }\n    outer_call();\n}\n",
        );
        let outer = p.fns.iter().find(|f| f.name == "outer").unwrap();
        let nested = p.fns.iter().find(|f| f.name == "nested").unwrap();
        let outer_names: Vec<&str> = outer.calls.iter().map(|c| c.target.name()).collect();
        assert!(outer_names.contains(&"inner_call"), "{outer_names:?}");
        assert!(outer_names.contains(&"outer_call"));
        assert!(!outer_names.contains(&"nested_call"));
        assert_eq!(nested.calls[0].target.name(), "nested_call");
    }

    #[test]
    fn test_region_fns_are_marked() {
        let p = parse("#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib() {}\n");
        assert!(p.fns[0].is_test);
        assert!(!p.fns[1].is_test);
    }

    #[test]
    fn simplify_type_unwraps_containers() {
        assert_eq!(simplify_type("&mut Arc<Telemetry>"), "Telemetry");
        assert_eq!(simplify_type("Result<Vec<f64>, LpError>"), "Vec");
        assert_eq!(simplify_type("Box<dyn Factor>"), "Factor");
        assert_eq!(simplify_type("&'a ReplayEngine<'a>"), "ReplayEngine");
        assert_eq!(
            simplify_type("std::sync::Mutex<Arc<PlanEpoch>>"),
            "PlanEpoch"
        );
    }
}
