//! A minimal protocol client: single requests, pipelined batches, and a
//! scripted-session driver for the CLI and the CI smoke job.
//!
//! [`ServeClient::request_batch`] pipelines: it writes every request
//! line, flushes once, then reads the matching responses. Responses are
//! served strictly in request order (the server handles one line at a
//! time per connection), so alignment is positional — this is what lets
//! a single reader connection sustain deep queues without paying one
//! round trip per query.

use crate::json::Json;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;

/// A client-side failure: transport or protocol.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server sent something that is not a protocol response.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(what) => write!(f, "protocol error: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// One connection to a `pcf serve` daemon.
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl ServeClient {
    /// Connects to `addr` (e.g. `127.0.0.1:7474`).
    pub fn connect(addr: &str) -> Result<ServeClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ServeClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request line and reads its response.
    pub fn request(&mut self, line: &str) -> Result<Json, ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Pipelines a batch: writes every request, flushes once, then reads
    /// the responses in request order.
    pub fn request_batch<S: AsRef<str>>(&mut self, lines: &[S]) -> Result<Vec<Json>, ClientError> {
        for line in lines {
            self.writer.write_all(line.as_ref().as_bytes())?;
            self.writer.write_all(b"\n")?;
        }
        self.writer.flush()?;
        lines.iter().map(|_| self.read_response()).collect()
    }

    fn read_response(&mut self) -> Result<Json, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Protocol(
                "connection closed before response".into(),
            ));
        }
        Json::parse(line.trim())
            .map_err(|e| ClientError::Protocol(format!("unparseable response: {e}: {line:?}")))
    }
}

/// Outcome of a scripted session.
#[derive(Debug, Clone, Default)]
pub struct ScriptReport {
    /// Commands sent.
    pub commands: usize,
    /// Responses that violated the protocol or the script's expectation.
    pub violations: usize,
    /// `(request, response)` pairs in order.
    pub transcript: Vec<(String, String)>,
}

impl ScriptReport {
    /// True when every response matched its expectation.
    pub fn clean(&self) -> bool {
        self.violations == 0
    }
}

/// Runs a command script against a server: one JSON command per line,
/// `#` comments and blank lines skipped. A line prefixed with `!` is
/// expected to fail (`"ok":false`); every other line must succeed. Any
/// mismatch — including an unparseable response — counts as a violation.
pub fn run_script(addr: &str, script: &str) -> Result<ScriptReport, ClientError> {
    let mut client = ServeClient::connect(addr)?;
    let mut report = ScriptReport::default();
    for raw in script.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (expect_ok, cmd) = match line.strip_prefix('!') {
            Some(rest) => (false, rest.trim()),
            None => (true, line),
        };
        let resp = client.request(cmd)?;
        let ok = resp.get("ok").and_then(Json::as_bool);
        if ok != Some(expect_ok) {
            report.violations += 1;
        }
        report.commands += 1;
        report.transcript.push((cmd.to_string(), resp.render()));
    }
    Ok(report)
}
