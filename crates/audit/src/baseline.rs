//! The checked-in debt baseline and the downward-only ratchet.
//!
//! `audit.baseline` (workspace root) records, per `(lint, file)`, how many
//! violations are tolerated — the debt that existed when the lint was
//! introduced. The comparison is a ratchet:
//!
//! * more findings than the baseline for any `(lint, file)` → **fail**,
//!   with every finding in that bucket printed (the new one is among
//!   them — line numbers shift too much under refactoring to pin debt to
//!   specific lines, so the whole bucket is shown);
//! * fewer findings → pass, with a nudge to tighten the baseline
//!   (`pcf-audit --write-baseline`) so the improvement cannot regress;
//! * findings of a never-baselinable lint (`bad-allow`) → always fail.
//!
//! The file format is `count lint path` per line, `#` comments, sorted —
//! merge conflicts stay readable and diffs show debt direction at a
//! glance.

use crate::lints::{Finding, Lint};
use std::collections::BTreeMap;

/// Tolerated findings per `(lint name, file)`.
pub type Baseline = BTreeMap<(String, String), usize>;

/// Errors from [`parse_baseline`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineError {
    /// 1-based line in the baseline file.
    pub line: usize,
    /// What is wrong.
    pub problem: String,
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "audit.baseline:{}: {}", self.line, self.problem)
    }
}

impl std::error::Error for BaselineError {}

/// Parses the baseline file format: `count lint path`, `#` comments.
pub fn parse_baseline(text: &str) -> Result<Baseline, BaselineError> {
    let mut base = Baseline::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let err = |problem: &str| BaselineError {
            line: idx + 1,
            problem: problem.to_string(),
        };
        let count: usize = parts
            .next()
            .and_then(|c| c.parse().ok())
            .ok_or_else(|| err("expected `count lint path`"))?;
        let lint = parts.next().ok_or_else(|| err("missing lint name"))?;
        let path = parts.next().ok_or_else(|| err("missing file path"))?;
        if parts.next().is_some() {
            return Err(err("trailing tokens after `count lint path`"));
        }
        let l = Lint::by_name(lint).ok_or_else(|| err("unknown lint name"))?;
        if l == Lint::BadAllow {
            return Err(err("bad-allow findings cannot be baselined"));
        }
        if base
            .insert((lint.to_string(), path.to_string()), count)
            .is_some()
        {
            return Err(err("duplicate (lint, path) entry"));
        }
    }
    Ok(base)
}

/// Renders findings as a fresh baseline file.
pub fn render_baseline(findings: &[Finding]) -> String {
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for f in findings {
        if f.lint == Lint::BadAllow {
            continue; // never baselinable
        }
        *counts
            .entry((f.lint.name().to_string(), f.file.clone()))
            .or_insert(0) += 1;
    }
    let mut out = String::from(
        "# pcf-audit baseline: tolerated pre-existing findings, per (lint, file).\n\
         # Ratchet only downward: fix a finding, then run `pcf-audit --write-baseline`.\n\
         # Format: count lint path\n",
    );
    for ((lint, path), count) in &counts {
        out.push_str(&format!("{count} {lint} {path}\n"));
    }
    out
}

/// One `(lint, file)` bucket that exceeded its baseline.
#[derive(Debug, Clone)]
pub struct Regression {
    /// Lint name.
    pub lint: String,
    /// Workspace-relative file.
    pub file: String,
    /// Findings now present.
    pub found: usize,
    /// Findings the baseline tolerates.
    pub tolerated: usize,
    /// Every finding in the bucket (the offender is among them).
    pub findings: Vec<Finding>,
}

/// The verdict of findings vs. baseline.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    /// Buckets over baseline — any entry fails the audit.
    pub regressions: Vec<Regression>,
    /// Buckets now under baseline: `(lint, file, found, tolerated)`.
    pub improvements: Vec<(String, String, usize, usize)>,
    /// Total findings (baselined debt included).
    pub total_findings: usize,
    /// Total tolerated by the baseline.
    pub total_tolerated: usize,
}

impl Comparison {
    /// True when the tree is no worse than the baseline.
    pub fn pass(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compares findings against the baseline.
pub fn compare(findings: &[Finding], baseline: &Baseline) -> Comparison {
    let mut buckets: BTreeMap<(String, String), Vec<Finding>> = BTreeMap::new();
    for f in findings {
        buckets
            .entry((f.lint.name().to_string(), f.file.clone()))
            .or_default()
            .push(f.clone());
    }
    let mut cmp = Comparison {
        total_findings: findings.len(),
        total_tolerated: baseline.values().sum(),
        ..Comparison::default()
    };
    for ((lint, file), bucket) in &buckets {
        let tolerated = if lint == Lint::BadAllow.name() {
            0
        } else {
            baseline
                .get(&(lint.clone(), file.clone()))
                .copied()
                .unwrap_or(0)
        };
        if bucket.len() > tolerated {
            cmp.regressions.push(Regression {
                lint: lint.clone(),
                file: file.clone(),
                found: bucket.len(),
                tolerated,
                findings: bucket.clone(),
            });
        }
    }
    for ((lint, file), &tolerated) in baseline {
        let found = buckets
            .get(&(lint.clone(), file.clone()))
            .map_or(0, Vec::len);
        if found < tolerated {
            cmp.improvements
                .push((lint.clone(), file.clone(), found, tolerated));
        }
    }
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(lint: Lint, file: &str, line: usize) -> Finding {
        Finding::at(lint, file, line, "test".to_string())
    }

    #[test]
    fn round_trip_render_parse() {
        let fs = vec![
            finding(Lint::NoPanicPaths, "crates/core/src/a.rs", 3),
            finding(Lint::NoPanicPaths, "crates/core/src/a.rs", 9),
            finding(Lint::FloatDiscipline, "crates/lp/src/b.rs", 1),
        ];
        let text = render_baseline(&fs);
        let base = parse_baseline(&text).expect("round trip");
        assert_eq!(
            base.get(&("no-panic-paths".into(), "crates/core/src/a.rs".into())),
            Some(&2)
        );
        assert_eq!(
            base.get(&("float-discipline".into(), "crates/lp/src/b.rs".into())),
            Some(&1)
        );
        assert!(compare(&fs, &base).pass());
    }

    #[test]
    fn exceeding_baseline_fails_with_bucket_listing() {
        let base = parse_baseline("1 no-panic-paths crates/core/src/a.rs\n").expect("parse");
        let fs = vec![
            finding(Lint::NoPanicPaths, "crates/core/src/a.rs", 3),
            finding(Lint::NoPanicPaths, "crates/core/src/a.rs", 5),
        ];
        let cmp = compare(&fs, &base);
        assert!(!cmp.pass());
        assert_eq!(cmp.regressions.len(), 1);
        assert_eq!(cmp.regressions[0].found, 2);
        assert_eq!(cmp.regressions[0].tolerated, 1);
        assert_eq!(cmp.regressions[0].findings.len(), 2);
    }

    #[test]
    fn shrinking_is_an_improvement_not_a_failure() {
        let base = parse_baseline("2 no-panic-paths crates/core/src/a.rs\n").expect("parse");
        let fs = vec![finding(Lint::NoPanicPaths, "crates/core/src/a.rs", 3)];
        let cmp = compare(&fs, &base);
        assert!(cmp.pass());
        assert_eq!(cmp.improvements.len(), 1);
        assert_eq!(cmp.improvements[0].2, 1);
        assert_eq!(cmp.improvements[0].3, 2);
    }

    #[test]
    fn bad_allow_is_never_baselinable() {
        assert!(parse_baseline("1 bad-allow crates/core/src/a.rs\n").is_err());
        let fs = vec![finding(Lint::BadAllow, "crates/core/src/a.rs", 3)];
        assert!(!compare(&fs, &Baseline::new()).pass());
    }

    #[test]
    fn malformed_baselines_are_rejected() {
        assert!(parse_baseline("x no-panic-paths a.rs\n").is_err());
        assert!(parse_baseline("1 nonsense-lint a.rs\n").is_err());
        assert!(parse_baseline("1 no-panic-paths\n").is_err());
        assert!(parse_baseline("1 no-panic-paths a.rs extra\n").is_err());
        assert!(
            parse_baseline("1 no-panic-paths a.rs\n1 no-panic-paths a.rs\n").is_err(),
            "duplicates rejected"
        );
        assert!(parse_baseline("# comment\n\n")
            .expect("empty ok")
            .is_empty());
    }
}
