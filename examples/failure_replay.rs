//! Replaying a day of link churn against a solved PCF plan.
//!
//! Solves PCF-LS on Sprint for single-link failures, then streams a
//! generated flap trace through the replay engine twice — once cold
//! (factor every event) and once with the factorization cache — and
//! prints the outcome and the speedup. A final pass injects
//! beyond-budget failure bursts and lets the degradation ladder
//! (DESIGN.md §10) serve them best-effort.
//!
//! Run with `cargo run --release --example failure_replay`.

use pcf_core::{pcf_ls_instance, solve_pcf_ls, DegradeMode, FailureModel, RobustOptions};
use pcf_replay::{replay_trace, EventTrace, FaultInjector, ReplayOptions};
use pcf_topology::zoo;
use pcf_traffic::gravity;

fn main() {
    let topo = zoo::build("Sprint");
    let tm = gravity(&topo, 1);
    let inst = pcf_ls_instance(&topo, &tm, 3);
    let fm = FailureModel::links(1);
    let sol = solve_pcf_ls(&inst, &fm, &RobustOptions::default());
    println!(
        "PCF-LS on {}: guaranteed demand scale {:.4}",
        topo.name(),
        sol.objective
    );
    let served: Vec<f64> = inst
        .pair_ids()
        .map(|p| sol.z[p.0] * inst.demand(p))
        .collect();

    // A day of churn: links flap one at a time, matching the f=1 design.
    let trace = EventTrace::flaps(&topo, 2000, 1, 42);
    println!(
        "replaying {} events ({} concurrent failures at worst)",
        trace.len(),
        trace.max_concurrent_down()
    );

    for (label, cache_capacity) in [("cold ", 0usize), ("cache", 1024)] {
        let opts = ReplayOptions {
            cache_capacity,
            ..ReplayOptions::default()
        };
        let t0 = std::time::Instant::now();
        let report = replay_trace(&inst, &sol.a, &sol.b, &served, &trace, &opts);
        let secs = t0.elapsed().as_secs_f64();
        println!(
            "{label}: {:>8.0} events/s  max util {:.4}  violations {}  \
             latency p50/p99 {}/{} us  hit rate {:.1}%",
            report.events as f64 / secs,
            report.max_utilization,
            report.violations.len(),
            report.latency.p50_ns() / 1_000,
            report.latency.p99_ns() / 1_000,
            100.0 * report.cache.hit_rate(),
        );
        assert!(
            report.congestion_free(),
            "a plan solved for f=1 must survive an f=1 trace"
        );
    }

    // Beyond the budget: bursts failing 2–3 links at once against the
    // f=1 plan. With shedding enabled every event is still served.
    let bursts = FaultInjector::new(7).beyond_budget_bursts(&topo, 20, 1);
    let opts = ReplayOptions {
        degrade: DegradeMode::Shed,
        ..ReplayOptions::default()
    };
    let report = replay_trace(&inst, &sol.a, &sol.b, &served, &bursts, &opts);
    println!(
        "beyond-budget bursts ({} concurrent failures at worst): \
         {} normal / {} rescaled / {} shed / {} failed; \
         total shed {:.3}, worst residual overload {:.4}",
        bursts.max_concurrent_down(),
        report.degrade.normal,
        report.degrade.rescaled,
        report.degrade.shed,
        report.degrade.failed,
        report.total_shed,
        report.worst_overload,
    );
    assert_eq!(report.degrade.failed, 0, "the serving path is total");
}
